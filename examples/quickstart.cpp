// Quickstart: build the paper's Figure 1 network, compare classical IM (IC)
// with opinion-aware MEO (OI model), reproducing Example 2's punchline --
// the IC-optimal seed is the opinion-spread-worst choice.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "diffusion/spread_estimator.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

int main() {
  using namespace holim;

  // The 4-node Twitter snapshot of Figure 1: A=0, B=1, C=2, D=3.
  GraphBuilder builder(4);
  builder.AddEdge(1, 0);  // B -> A
  builder.AddEdge(1, 2);  // B -> C
  builder.AddEdge(0, 3);  // A -> D
  builder.AddEdge(2, 3);  // C -> D
  Graph graph = std::move(builder).Build().ValueOrDie();

  // Influence probabilities (first layer) and opinion/interaction
  // parameters (second layer). Edge ids are (src,dst)-sorted:
  // (0,3)=A->D, (1,0)=B->A, (1,2)=B->C, (2,3)=C->D.
  InfluenceParams influence;
  influence.model = DiffusionModel::kIndependentCascade;
  influence.probability = {0.8, 0.1, 0.1, 0.9};
  OpinionParams opinions;
  opinions.opinion = {0.8, 0.0, 0.6, -0.3};
  opinions.interaction = {0.9, 0.7, 0.8, 0.1};

  McOptions mc;
  mc.num_simulations = 100000;
  mc.seed = 1;

  const char* names = "ABCD";
  std::printf("node  sigma(.)   sigma_o(.)\n");
  std::printf("----  ---------  ----------\n");
  for (NodeId u = 0; u < 4; ++u) {
    const double sigma = EstimateSpread(graph, influence, {u}, mc);
    const double sigma_o =
        EstimateOpinionSpread(graph, influence, opinions,
                              OiBase::kIndependentCascade, {u}, /*lambda=*/1.0,
                              mc)
            .opinion_spread;
    std::printf("   %c  %9.4f  %10.4f\n", names[u], sigma, sigma_o);
  }
  std::printf(
      "\nClassical IM picks C (max sigma) -- but C has the WORST opinion\n"
      "spread; the OI model picks A instead (Example 2 of the paper).\n");
  return 0;
}

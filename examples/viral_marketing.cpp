// Viral marketing with opinions: the paper's motivating scenario (Sec. 1).
//
// A brand wants k ambassadors on a social network where users hold prior
// opinions about the product category. We compare three strategies:
//   1. EaSyIM  (opinion-oblivious IM)      -- maximizes raw reach,
//   2. OSIM    (opinion-aware MEO)         -- maximizes effective opinion,
//   3. Degree  (naive)                     -- follower count.
// and evaluate all three on expected *effective opinion spread* (Def. 7).
//
// Run: ./build/examples/viral_marketing [num_users]

#include <cstdio>
#include <cstdlib>

#include "algo/heuristics.h"
#include "algo/score_greedy.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

int main(int argc, char** argv) {
  using namespace holim;
  const NodeId num_users = argc > 1 ? std::atoi(argv[1]) : 5000;
  const uint32_t k = 20;

  // Follower network with power-law degrees; WC influence probabilities.
  Graph graph = GenerateBarabasiAlbert(num_users, 4, 7).ValueOrDie();
  InfluenceParams influence = MakeWeightedCascade(graph);
  // Prior opinions about the product category: normally distributed (most
  // users mildly opinionated, tails love/hate it); interactions from history.
  OpinionParams opinions =
      MakeRandomOpinions(graph, OpinionDistribution::kStandardNormal, 13);

  std::printf("Network: %u users, %llu follow edges\n\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  OsimSelector osim(graph, influence, opinions, OiBase::kIndependentCascade,
                    /*l=*/3);
  EasyImSelector easyim(graph, influence, /*l=*/3);
  DegreeSelector degree(graph);

  McOptions mc;
  mc.num_simulations = 2000;
  mc.seed = 5;

  struct Row {
    const char* name;
    SeedSelection selection;
  };
  Row rows[] = {
      {"OSIM (opinion-aware)", osim.Select(k).ValueOrDie()},
      {"EaSyIM (reach only)", easyim.Select(k).ValueOrDie()},
      {"Degree (followers)", degree.Select(k).ValueOrDie()},
  };

  std::printf("%-22s  %14s  %14s  %10s\n", "strategy", "eff. opinion",
              "raw spread", "time");
  std::printf("%-22s  %14s  %14s  %10s\n", "--------", "------------",
              "----------", "----");
  for (const Row& row : rows) {
    auto estimate = EstimateOpinionSpread(graph, influence, opinions,
                                          OiBase::kIndependentCascade,
                                          row.selection.seeds, 1.0, mc);
    std::printf("%-22s  %14.2f  %14.2f  %8.2fs\n", row.name,
                estimate.effective_opinion_spread, estimate.plain_spread,
                row.selection.elapsed_seconds);
  }
  std::printf(
      "\nOSIM trades a little raw reach for a much better effective opinion\n"
      "spread: it avoids seeding communities that dislike the product.\n");
  return 0;
}

// Customer-churn analysis (paper Sec. 4.1.2): identify customers to target
// with retention offers so that positive ("stay") sentiment propagates and
// churn cascades are suppressed.
//
// Pipeline (exactly the paper's): synthesize customer profiles -> induce an
// attribute-similarity graph -> label-propagate churn labels into opinions
// in [-1, 1] -> solve MEO with OSIM to pick retention targets.
//
// Run: ./build/examples/churn_analysis [num_customers]

#include <cstdio>
#include <cstdlib>

#include "algo/heuristics.h"
#include "algo/score_greedy.h"
#include "data/churn.h"
#include "diffusion/spread_estimator.h"

int main(int argc, char** argv) {
  using namespace holim;
  ChurnOptions options;
  options.num_customers = argc > 1 ? std::atoi(argv[1]) : 8000;
  options.target_avg_degree = 30;
  options.seed = 2012;

  auto data = BuildChurnData(options).ValueOrDie();
  std::printf("Churn graph: %u customers, %llu similarity edges\n",
              data.graph.num_nodes(),
              static_cast<unsigned long long>(data.graph.num_edges()));
  std::printf("Label propagation hold-out sign accuracy: %.1f%%\n\n",
              100.0 * data.holdout_sign_accuracy);

  const uint32_t k = 25;
  OsimSelector osim(data.graph, data.influence, data.opinions,
                    OiBase::kIndependentCascade, /*l=*/3);
  auto targets = osim.Select(k).ValueOrDie();

  McOptions mc;
  mc.num_simulations = 2000;
  mc.seed = 3;
  auto osim_estimate = EstimateOpinionSpread(
      data.graph, data.influence, data.opinions, OiBase::kIndependentCascade,
      targets.seeds, /*lambda=*/1.0, mc);

  RandomSelector random(data.graph, 17);
  auto random_estimate = EstimateOpinionSpread(
      data.graph, data.influence, data.opinions, OiBase::kIndependentCascade,
      random.Select(k).ValueOrDie().seeds, 1.0, mc);

  std::printf("Retention campaign with k=%u targets:\n", k);
  std::printf("  OSIM targets:   effective opinion spread = %8.2f\n",
              osim_estimate.effective_opinion_spread);
  std::printf("  random targets: effective opinion spread = %8.2f\n\n",
              random_estimate.effective_opinion_spread);

  std::printf("First 10 customers to target (stay-affinity in [-1,1]):\n");
  for (uint32_t i = 0; i < 10 && i < targets.seeds.size(); ++i) {
    const NodeId c = targets.seeds[i];
    std::printf("  customer %6u  opinion %+0.3f  degree %u\n", c,
                data.opinions.opinion[c], data.graph.OutDegree(c));
  }
  return 0;
}

// Scalability demo: EaSyIM's linear time/space on a large graph -- the
// paper's headline systems claim ("IM on commodity hardware, even laptops").
//
// Generates a DBLP-scale synthetic graph, runs EaSyIM(l=1..3), and reports
// the time and memory overhead beyond graph storage.
//
// Run: ./build/examples/scalability [scale]   (scale in (0,1], default 0.1)

#include <cstdio>
#include <cstdlib>

#include "algo/score_greedy.h"
#include "data/datasets.h"
#include "graph/stats.h"
#include "model/influence_params.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace holim;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  Timer load_timer;
  Graph graph = LoadSyntheticDataset("DBLP", scale).ValueOrDie();
  InfluenceParams params = MakeUniformIc(graph, 0.1);
  const double load_seconds = load_timer.ElapsedSeconds();

  auto stats = ComputeGraphStats(graph, 8, 1);
  std::printf("DBLP stand-in @ scale %.2f: n=%u m=%llu avg_deg=%.1f "
              "eff_diam90=%.1f (built in %s)\n",
              scale, stats.num_nodes,
              static_cast<unsigned long long>(stats.num_edges),
              stats.avg_out_degree, stats.effective_diameter_90,
              HumanSeconds(load_seconds).c_str());
  std::printf("graph memory: %s\n\n",
              HumanBytes(graph.MemoryFootprintBytes()).c_str());

  const uint32_t k = 50;
  std::printf("%-14s  %10s  %14s  %12s\n", "algorithm", "time", "exec memory",
              "seeds");
  std::printf("%-14s  %10s  %14s  %12s\n", "---------", "----", "-----------",
              "-----");
  for (uint32_t l = 1; l <= 3; ++l) {
    ScoreGreedyOptions options;
    options.activation = ActivationStrategy::kMonteCarloMajority;
    options.mc_rounds = 10;
    EasyImSelector selector(graph, params, l, options);
    auto selection = selector.Select(k).ValueOrDie();
    std::printf("%-14s  %10s  %14s  %8zu/%u\n", selector.name().c_str(),
                HumanSeconds(selection.elapsed_seconds).c_str(),
                HumanBytes(selection.overhead_bytes).c_str(),
                selection.seeds.size(), k);
  }
  std::printf(
      "\nEaSyIM's working set is O(n) score buffers -- the execution memory\n"
      "stays a small constant fraction of the graph itself (Fig. 5h / 6j).\n");
  return 0;
}

// Twitter topic analysis (paper Sec. 4.1.1): build a synthetic tweet
// corpus, extract topic-focussed subgraphs, estimate the OI parameters
// from the data, and check which diffusion model best predicts each
// topic's ground-truth opinion spread.
//
// Run: ./build/examples/twitter_topics [num_users]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "data/twitter.h"
#include "diffusion/oc_model.h"
#include "diffusion/spread_estimator.h"
#include "graph/subgraph.h"
#include "model/influence_params.h"

int main(int argc, char** argv) {
  using namespace holim;
  TwitterCorpusOptions options;
  options.num_users = argc > 1 ? std::atoi(argv[1]) : 20000;
  options.num_topics = 8;
  options.seed = 2016;
  auto corpus = BuildTwitterCorpus(options).ValueOrDie();

  std::printf("background graph: %u users, %llu follow edges\n",
              corpus.background.num_nodes(),
              static_cast<unsigned long long>(corpus.background.num_edges()));
  std::printf("opinion estimation error: seeds %.1f%%, non-seeds %.1f%% "
              "(paper: 3.4%% / 8.6%%)\n\n",
              100 * corpus.seed_opinion_error,
              100 * corpus.nonseed_opinion_error);

  McOptions mc;
  mc.num_simulations = 500;
  mc.seed = 7;

  std::printf("%-10s %7s %7s %11s %11s %11s\n", "topic", "users", "seeds",
              "truth", "OI-predict", "OC-predict");
  double err_oi = 0, err_oc = 0;
  for (const TopicData& topic : corpus.topics) {
    const Graph& sub = topic.subgraph.graph;
    OpinionParams local;
    local.opinion =
        ProjectNodeValues(topic.subgraph, corpus.estimated.opinion);
    local.interaction =
        ProjectEdgeValues(topic.subgraph, corpus.estimated.interaction);
    // Replay the known activation trace; compare opinion layers only.
    InfluenceParams replay = MakeUniformIc(sub, 1.0);
    InfluenceParams lt = MakeLinearThreshold(sub);
    const double oi =
        EstimateOpinionSpread(sub, replay, local, OiBase::kIndependentCascade,
                              topic.originators, 1.0, mc)
            .opinion_spread;
    const double oc =
        EstimateOcOpinionSpread(sub, lt, local, topic.originators, mc);
    std::printf("%-10s %7u %7zu %11.2f %11.2f %11.2f\n",
                topic.hashtag.c_str(), sub.num_nodes(),
                topic.originators.size(), topic.ground_truth_spread, oi, oc);
    err_oi += std::abs(oi - topic.ground_truth_spread);
    err_oc += std::abs(oc - topic.ground_truth_spread);
  }
  std::printf("\nmean |error|: OI %.2f vs OC %.2f — the interaction-aware\n"
              "model tracks real cascades more closely (paper Fig. 5a).\n",
              err_oi / corpus.topics.size(), err_oc / corpus.topics.size());
  return 0;
}

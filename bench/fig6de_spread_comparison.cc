// Figures 6d-6e: spread of EaSyIM(l=3) vs TIM+ (epsilon sweep) vs CELF++
// on HepPh and DBLP under IC.

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "algo/tim_plus.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(SpreadOracle oracle, ParseOracleFlag(args));
  // CELF++ evaluates every node once: keep instances small by default.
  const double scale = args.GetDouble("scale", 0.05);
  ResultTable table("Figures 6d-6e — spread comparison (IC)",
                    {"dataset", "algorithm", "k", "spread"},
                    CsvPath("fig6de_spread_comparison"));
  for (const std::string& dataset : {std::string("HepPh"),
                                     std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.05 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);

    // Two frozen snapshot sets per dataset: CELF++ selects on one, and ALL
    // algorithms are judged on an independently seeded one (config.seed + 1,
    // the same convention as the ablation benches) — otherwise CELF++ would
    // be trained and evaluated on the same sample and gain an in-sample
    // advantage over EaSyIM/TIM+, whose selection never saw the worlds.
    std::shared_ptr<const SketchOracle> sketch;
    std::shared_ptr<const SketchOracle> eval_sketch;
    if (oracle == SpreadOracle::kSketch) {
      sketch = MakeSketchOracle(w.graph, w.params, config.mc, config.seed);
      eval_sketch =
          MakeSketchOracle(w.graph, w.params, config.mc, config.seed + 1);
    }

    auto report = [&](const std::string& name,
                      const std::vector<NodeId>& seeds) {
      auto values = eval_sketch
                        ? SpreadAtPrefixesSketch(*eval_sketch, seeds, grid)
                        : SpreadAtPrefixes(w.graph, w.params, seeds, grid,
                                           config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({dataset, name, std::to_string(grid[i]),
                      CsvWriter::Num(values[i])});
      }
    };

    EasyImSelector easyim(w.graph, w.params, 3);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection easy_sel, easyim.Select(max_k));
    report(easyim.name(), easy_sel.seeds);

    for (double eps : {0.1, 0.15, 0.2}) {
      TimPlusOptions tim_opts;
      tim_opts.epsilon = eps;
      tim_opts.max_theta = 400000;  // memory safety valve
      TimPlusSelector tim(w.graph, w.params, tim_opts);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection tim_sel, tim.Select(max_k));
      report(tim.name(), tim_sel.seeds);
    }

    std::shared_ptr<McObjective> objective;
    if (sketch) {
      objective = std::make_shared<SketchSpreadObjective>(sketch);
    } else {
      McOptions celf_mc;
      celf_mc.num_simulations = std::min<uint32_t>(config.mc, 100);
      celf_mc.seed = config.seed;
      objective =
          std::make_shared<SpreadObjective>(w.graph, w.params, celf_mc);
    }
    CelfSelector celf(w.graph, objective, true, "CELF++");
    HOLIM_ASSIGN_OR_RETURN(SeedSelection celf_sel, celf.Select(max_k));
    report("CELF++", celf_sel.seeds);
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 6d-6e): all methods within a few\n"
              "percent of each other; EaSyIM mirrors the state of the art.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 6d-6e — EaSyIM vs TIM+ vs CELF++ spread", Run,
                   [](BenchArgs* args) { DeclareOracleFlag(args); });
}

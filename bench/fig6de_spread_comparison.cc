// Figures 6d-6e: spread of EaSyIM(l=3) vs TIM+ (epsilon sweep) vs CELF++
// on HepPh and DBLP under IC.

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  // CELF++ evaluates every node once: keep instances small by default.
  const double scale = args.GetDouble("scale", 0.05);
  ResultTable table("Figures 6d-6e — spread comparison (IC)",
                    {"dataset", "algorithm", "k", "spread"},
                    CsvPath("fig6de_spread_comparison"));
  for (const std::string& dataset : {std::string("HepPh"),
                                     std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.05 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);

    // One engine per dataset; with --oracle=sketch the CELF++ selection
    // worlds (seeded config.seed) become a Workspace artifact, and ALL
    // algorithms are judged on an independently seeded set (config.seed +
    // 1, the same convention as the ablation benches) — otherwise CELF++
    // would be trained and evaluated on the same sample and gain an
    // in-sample advantage over EaSyIM/TIM+, whose selection never saw the
    // worlds.
    HolimEngine engine(w.graph);
    std::shared_ptr<const SketchOracle> eval_sketch;
    if (common.oracle == SpreadOracle::kSketch) {
      eval_sketch = GetBenchSketchOracle(engine, w.graph, w.params, config,
                                         /*seed_offset=*/1);
    }

    auto report = [&](const std::string& name,
                      const std::vector<NodeId>& seeds) {
      auto values = eval_sketch
                        ? SpreadAtPrefixesSketch(*eval_sketch, seeds, grid,
                                                 common.sketch_eval)
                        : SpreadAtPrefixes(w.graph, w.params, seeds, grid,
                                           config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({dataset, name, std::to_string(grid[i]),
                      CsvWriter::Num(values[i])});
      }
    };

    SolveRequest easy = MakeSolveRequest("easyim", max_k, w.params, config);
    HOLIM_ASSIGN_OR_RETURN(SolveResult easy_sel, engine.Solve(easy));
    report(easy_sel.algorithm, easy_sel.seeds);

    for (double eps : {0.1, 0.15, 0.2}) {
      SolveRequest tim = MakeSolveRequest("tim+", max_k, w.params, config);
      tim.epsilon = eps;
      tim.max_theta = 400000;  // memory safety valve
      HOLIM_ASSIGN_OR_RETURN(SolveResult tim_sel, engine.Solve(tim));
      report(tim_sel.algorithm, tim_sel.seeds);
    }

    SolveRequest celf = MakeSolveRequest("celf++", max_k, w.params, config,
                                         common);
    // MC path: the historical CELF++ simulation budget; sketch path: the
    // selection worlds R = config.mc.
    celf.mc = std::min<uint32_t>(config.mc, 100);
    celf.num_sketches = config.mc;
    HOLIM_ASSIGN_OR_RETURN(SolveResult celf_sel, engine.Solve(celf));
    report("CELF++", celf_sel.seeds);
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 6d-6e): all methods within a few\n"
              "percent of each other; EaSyIM mirrors the state of the art.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 6d-6e — EaSyIM vs TIM+ vs CELF++ spread", Run,
                   [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

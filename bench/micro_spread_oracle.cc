// Spread-oracle microbenchmark: the sketch oracle (presampled live-edge
// snapshots + incremental marginal-gain session) versus the per-candidate
// Monte-Carlo spread path, on the 100k-node WC benchmark graph. Emits
// BENCH_spread.json; the CI bench-gate (tools/check_bench_regression.py)
// fails the job when the deterministic metrics (arena bytes/snapshot,
// session work ratio, sketch-vs-MC spread parity) or the timing ratios
// (CELF speedup vs MC, incremental-session speedup vs one-shot sketch,
// bit-parallel speedup vs the scalar session) regress against the
// committed baseline.
//
// The sketch legs carried over from earlier baselines are pinned to
// --sketch-eval=scalar traversal so their seconds stay comparable across
// baseline generations; the bit-parallel kernel (64 live-edge worlds per
// machine word) gets its own timed legs, HOLIM_CHECKed bitwise-identical
// to the scalar results before any timing is reported.
//
// All numbers are single-thread on purpose (explicit ThreadPool(1) for the
// MC path, serial sampling/evaluation for the sketch path): the reference
// bench host is single-core, and ratios of single-thread times transfer
// across machines where raw seconds would not.
//
// The CELF comparison restricts candidates to the top-degree pool so the
// MC path finishes in CI time; all three paths (MC, one-shot sketch,
// incremental session) hill-climb the same candidates with the same
// tie-break (gain, then smaller node id), so the comparison is
// apples-to-apples. The incremental session's per-round spread is
// HOLIM_CHECKed bitwise-equal to one-shot Estimate on the same prefix.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <queue>
#include <string>
#include <vector>

#include "common.h"
#include "diffusion/sketch_oracle.h"
#include "graph/generators.h"

using namespace holim;

namespace {

// Top `count` nodes by out-degree, ties toward the smaller id — the
// deterministic candidate pool every CELF variant hill-climbs.
std::vector<NodeId> TopDegreeNodes(const Graph& g, std::size_t count) {
  std::vector<NodeId> nodes(g.num_nodes());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    if (g.OutDegree(a) != g.OutDegree(b)) {
      return g.OutDegree(a) > g.OutDegree(b);
    }
    return a < b;
  });
  nodes.resize(std::min(count, nodes.size()));
  return nodes;
}

struct CelfEntry {
  NodeId node;
  double gain;
  uint32_t round;
  bool operator<(const CelfEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // smaller id pops first on ties
  }
};

struct CelfRun {
  std::vector<NodeId> seeds;
  double seconds = 0.0;
  uint64_t evaluations = 0;
};

// Lazy-forward greedy over `candidates` with pluggable marginal-gain and
// commit hooks — the shared loop of the three compared paths.
template <typename GainFn, typename CommitFn>
CelfRun RunCelf(const std::vector<NodeId>& candidates, uint32_t k,
                const GainFn& gain, const CommitFn& commit) {
  CelfRun run;
  Timer timer;
  std::priority_queue<CelfEntry> heap;
  for (NodeId u : candidates) {
    ++run.evaluations;
    heap.push({u, gain(u), 0});
  }
  while (run.seeds.size() < k && !heap.empty()) {
    CelfEntry top = heap.top();
    heap.pop();
    const uint32_t round = static_cast<uint32_t>(run.seeds.size());
    if (top.round == round) {
      commit(top.node, top.gain);
      run.seeds.push_back(top.node);
      continue;
    }
    ++run.evaluations;
    top.gain = gain(top.node);
    top.round = round;
    heap.push(top);
  }
  run.seconds = timer.ElapsedSeconds();
  return run;
}

Status Run(const BenchArgs& args) {
  const NodeId nodes = static_cast<NodeId>(args.GetInt("nodes", 100000));
  const uint32_t snapshots =
      static_cast<uint32_t>(args.GetInt("snapshots", 200));
  const uint32_t mc = static_cast<uint32_t>(args.GetInt("mc", 200));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 50));
  const std::size_t candidates =
      static_cast<std::size_t>(args.GetInt("candidates", 200));
  const uint32_t evals = static_cast<uint32_t>(args.GetInt("evals", 10));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path = args.GetString("json", "BENCH_spread.json");
  if (nodes == 0 || snapshots == 0 || mc == 0 || k == 0 || candidates < k ||
      evals == 0) {
    return Status::InvalidArgument(
        "--nodes/--snapshots/--mc/--k/--evals must be positive and "
        "--candidates >= --k");
  }

  HOLIM_ASSIGN_OR_RETURN(Graph graph, GenerateBarabasiAlbert(nodes, 4, seed));
  InfluenceParams params = MakeWeightedCascade(graph);
  std::printf("graph: n=%u m=%llu, WC weights, R=%u snapshots, mc=%u\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), snapshots,
              mc);

  ThreadPool single(1);
  McOptions mc_options;
  mc_options.num_simulations = mc;
  mc_options.seed = seed;
  mc_options.pool = &single;

  // ---- arena: sampling cost + deterministic memory -----------------------
  Timer sample_timer;
  SketchOptions sketch_options;
  sketch_options.num_snapshots = snapshots;
  sketch_options.seed = seed;
  SketchOracle oracle(graph, params, sketch_options);
  const double sample_seconds = sample_timer.ElapsedSeconds();
  const double arena_bytes_per_snapshot =
      static_cast<double>(oracle.ArenaBytes()) / snapshots;
  std::printf("arena: %.1f MiB total, %.0f bytes/snapshot, sampled in "
              "%.3fs\n",
              MemoryMeter::ToMiB(oracle.ArenaBytes()),
              arena_bytes_per_snapshot, sample_seconds);

  // ---- one-shot evaluation throughput: sketch vs MC ----------------------
  const std::vector<NodeId> eval_seeds = TopDegreeNodes(graph, k);
  double mc_eval_seconds = 0.0, sketch_eval_seconds = 0.0;
  double mc_value = 0.0, sketch_value = 0.0;
  {
    Timer t;
    for (uint32_t i = 0; i < evals; ++i) {
      mc_value = EstimateSpread(graph, params, eval_seeds, mc_options);
    }
    mc_eval_seconds = t.ElapsedSeconds();
  }
  {
    Timer t;
    for (uint32_t i = 0; i < evals; ++i) {
      sketch_value = oracle.Estimate(eval_seeds, SketchEval::kScalar);
    }
    sketch_eval_seconds = t.ElapsedSeconds();
  }
  double bp_eval_seconds = 0.0, bp_value = 0.0;
  {
    Timer t;
    for (uint32_t i = 0; i < evals; ++i) {
      bp_value = oracle.Estimate(eval_seeds, SketchEval::kBitParallel);
    }
    bp_eval_seconds = t.ElapsedSeconds();
  }
  HOLIM_CHECK(bp_value == sketch_value)
      << "bit-parallel one-shot estimate diverged from scalar";
  const double eval_throughput_ratio = mc_eval_seconds / sketch_eval_seconds;
  std::printf("\none_shot_eval (k=%u seeds, %u evals each):\n"
              "  MC          %.4fs (sigma %.1f)\n"
              "  sketch      %.4fs (sigma %.1f)  -> %.2fx throughput\n"
              "  bitparallel %.4fs (sigma bitwise equal)\n",
              k, evals, mc_eval_seconds, mc_value, sketch_eval_seconds,
              sketch_value, eval_throughput_ratio, bp_eval_seconds);

  // ---- CELF: MC vs one-shot sketch vs incremental session ----------------
  const std::vector<NodeId> pool = TopDegreeNodes(graph, candidates);
  std::vector<NodeId> trial;

  // The per-candidate MC path: every marginal gain re-simulates mc fresh
  // cascades from the whole trial set S + u. The committed value is
  // maintained CELF-style (sum of selected gains) — no extra evaluations.
  CelfRun mc_run;
  {
    std::vector<NodeId> committed;
    double committed_value = 0.0;
    mc_run = RunCelf(
        pool, k,
        [&](NodeId u) {
          trial = committed;
          trial.push_back(u);
          return EstimateSpread(graph, params, trial, mc_options) -
                 committed_value;
        },
        [&](NodeId u, double gain) {
          committed.push_back(u);
          committed_value += gain;
        });
  }

  // One-shot sketch: the frozen worlds remove estimator noise, but every
  // gain still re-walks reach(S + u) from scratch.
  CelfRun oneshot_run;
  {
    std::vector<NodeId> committed;
    double committed_value = 0.0;
    oneshot_run = RunCelf(
        pool, k,
        [&](NodeId u) {
          trial = committed;
          trial.push_back(u);
          return oracle.Estimate(trial, SketchEval::kScalar) - committed_value;
        },
        [&](NodeId u, double gain) {
          committed.push_back(u);
          committed_value += gain;
        });
  }

  // Incremental session, scalar traversal: activate-once across the whole
  // k-round run, one snapshot walked at a time.
  CelfRun session_run;
  {
    SketchOracle::Session session(oracle, SketchEval::kScalar);
    session_run =
        RunCelf(pool, k, [&](NodeId u) { return session.MarginalGain(u); },
                [&](NodeId u, double) { session.Commit(u); });
  }
  // Incremental session, bit-parallel traversal: the same activate-once
  // session evaluating 64 live-edge worlds per machine word.
  CelfRun bp_run;
  {
    SketchOracle::Session session(oracle, SketchEval::kBitParallel);
    bp_run =
        RunCelf(pool, k, [&](NodeId u) { return session.MarginalGain(u); },
                [&](NodeId u, double) { session.Commit(u); });
  }
  // The acceptance contract, verified outside the timed loops: a session
  // in EITHER eval mode replaying the selected seeds has, after every
  // commit, a spread bitwise equal to one-shot Estimate on the same prefix
  // in either eval mode.
  {
    SketchOracle::Session scalar_replay(oracle, SketchEval::kScalar);
    SketchOracle::Session bp_replay(oracle, SketchEval::kBitParallel);
    std::vector<NodeId> prefix;
    for (NodeId u : session_run.seeds) {
      scalar_replay.Commit(u);
      bp_replay.Commit(u);
      prefix.push_back(u);
      const double sigma = oracle.Estimate(prefix, SketchEval::kScalar);
      HOLIM_CHECK(scalar_replay.Spread() == sigma)
          << "session/one-shot divergence at round " << prefix.size();
      HOLIM_CHECK(bp_replay.Spread() == sigma)
          << "bit-parallel session diverged from scalar at round "
          << prefix.size();
      HOLIM_CHECK(oracle.Estimate(prefix, SketchEval::kBitParallel) == sigma)
          << "bit-parallel one-shot diverged from scalar at round "
          << prefix.size();
    }
  }
  HOLIM_CHECK(session_run.seeds == oneshot_run.seeds)
      << "incremental session CELF picked different seeds than one-shot "
         "sketch CELF";
  HOLIM_CHECK(bp_run.seeds == session_run.seeds)
      << "bit-parallel session CELF picked different seeds than scalar";
  HOLIM_CHECK(bp_run.evaluations == session_run.evaluations)
      << "bit-parallel CELF took a different lazy-queue path than scalar";

  const double celf_speedup_vs_mc = mc_run.seconds / session_run.seconds;
  const double incremental_vs_oneshot_speedup =
      oneshot_run.seconds / session_run.seconds;
  const double bp_speedup_vs_scalar_session =
      session_run.seconds / bp_run.seconds;
  const double bp_celf_speedup_vs_mc = mc_run.seconds / bp_run.seconds;
  std::printf(
      "\ncelf (k=%u over top-%zu-degree candidates):\n"
      "  MC oracle         %.4fs  (%llu evaluations)\n"
      "  one-shot sketch   %.4fs  (%llu evaluations)\n"
      "  scalar session    %.4fs  (%llu evaluations)\n"
      "  bitparallel sess. %.4fs  (%llu evaluations)\n"
      "  scalar session vs MC %.2fx, vs one-shot %.2fx; bitparallel vs "
      "scalar session %.2fx, vs MC %.2fx\n",
      k, pool.size(), mc_run.seconds,
      static_cast<unsigned long long>(mc_run.evaluations),
      oneshot_run.seconds,
      static_cast<unsigned long long>(oneshot_run.evaluations),
      session_run.seconds,
      static_cast<unsigned long long>(session_run.evaluations),
      bp_run.seconds, static_cast<unsigned long long>(bp_run.evaluations),
      celf_speedup_vs_mc, incremental_vs_oneshot_speedup,
      bp_speedup_vs_scalar_session, bp_celf_speedup_vs_mc);

  // ---- spread parity vs MC (deterministic) -------------------------------
  // The old `seeds_match_mc` flag was misleading: the seed LISTS routinely
  // differ (the MC oracle hill-climbs noisy estimates), which says nothing
  // about seed QUALITY. Judge both seed sets under the same fixed-seed MC
  // estimator instead: parity = MC-spread(sketch seeds) / MC-spread(MC
  // seeds). ~1.0 means the sketch oracle picks seeds as good as the
  // MC-driven greedy; deterministic because mc_options.seed is fixed.
  const double mc_sigma_sketch_seeds =
      EstimateSpread(graph, params, session_run.seeds, mc_options);
  const double mc_sigma_mc_seeds =
      EstimateSpread(graph, params, mc_run.seeds, mc_options);
  const double spread_parity_vs_mc = mc_sigma_sketch_seeds / mc_sigma_mc_seeds;
  std::printf("\nspread_parity_vs_mc: MC-sigma(sketch seeds) %.1f / "
              "MC-sigma(MC seeds) %.1f = %.4f\n",
              mc_sigma_sketch_seeds, mc_sigma_mc_seeds, spread_parity_vs_mc);

  // ---- session work ratio (deterministic) --------------------------------
  // Nodes touched when evaluating the k growing prefixes of the session's
  // seeds one-shot (re-walking reach(S_j) per prefix) versus the
  // activate-once session (every (snapshot, node) pair at most once).
  // Derived from integer reach counts, so it is exactly reproducible.
  int64_t oneshot_prefix_touched = 0;
  int64_t session_touched = 0;
  {
    std::vector<NodeId> prefix;
    for (uint32_t j = 0; j < k; ++j) {
      prefix.push_back(session_run.seeds[j]);
      const double sigma = oracle.Estimate(prefix);
      oneshot_prefix_touched +=
          std::llround(sigma * snapshots) +
          static_cast<int64_t>(snapshots) * static_cast<int64_t>(prefix.size());
    }
    SketchOracle::Session session(oracle);
    for (NodeId u : session_run.seeds) session.Commit(u);
    session_touched = session.total_activated();
  }
  const double session_work_ratio =
      static_cast<double>(oneshot_prefix_touched) /
      static_cast<double>(session_touched);
  std::printf("\nsession_work_ratio: %lld one-shot prefix touches vs %lld "
              "session touches = %.2fx less exploration\n",
              static_cast<long long>(oneshot_prefix_touched),
              static_cast<long long>(session_touched), session_work_ratio);

  // ---- JSON --------------------------------------------------------------
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(
      f,
      "{\n  \"bench\": \"spread_oracle\",\n  \"nodes\": %u,\n"
      "  \"edges\": %llu,\n  \"model\": \"WC\",\n  \"snapshots\": %u,\n"
      "  \"mc\": %u,\n  \"k\": %u,\n  \"candidates\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"arena\": {\n    \"bytes\": %zu,\n"
      "    \"bytes_per_snapshot\": %.1f,\n    \"sample_seconds\": %.6f\n"
      "  },\n"
      "  \"one_shot_eval\": {\n    \"evals\": %u,\n"
      "    \"mc_seconds\": %.6f,\n    \"sketch_seconds\": %.6f,\n"
      "    \"eval_throughput_ratio\": %.4f\n  },\n"
      "  \"session\": {\n    \"oneshot_prefix_touched\": %lld,\n"
      "    \"session_touched\": %lld,\n"
      "    \"session_work_ratio\": %.4f\n  },\n"
      "  \"celf\": {\n    \"mc_seconds\": %.6f,\n"
      "    \"oneshot_seconds\": %.6f,\n"
      "    \"incremental_seconds\": %.6f,\n"
      "    \"celf_speedup_vs_mc\": %.4f,\n"
      "    \"incremental_vs_oneshot_speedup\": %.4f,\n"
      "    \"spread_parity_vs_mc\": %.4f\n  },\n"
      "  \"bitparallel\": {\n    \"oneshot_eval_seconds\": %.6f,\n"
      "    \"celf_seconds\": %.6f,\n"
      "    \"speedup_vs_scalar_session\": %.4f,\n"
      "    \"celf_speedup_vs_mc\": %.4f\n  }\n}\n",
      graph.num_nodes(), static_cast<unsigned long long>(graph.num_edges()),
      snapshots, mc, k, pool.size(), static_cast<unsigned long long>(seed),
      oracle.ArenaBytes(), arena_bytes_per_snapshot, sample_seconds, evals,
      mc_eval_seconds, sketch_eval_seconds, eval_throughput_ratio,
      static_cast<long long>(oneshot_prefix_touched),
      static_cast<long long>(session_touched), session_work_ratio,
      mc_run.seconds, oneshot_run.seconds, session_run.seconds,
      celf_speedup_vs_mc, incremental_vs_oneshot_speedup,
      spread_parity_vs_mc, bp_eval_seconds, bp_run.seconds,
      bp_speedup_vs_scalar_session, bp_celf_speedup_vs_mc);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Spread-oracle microbenchmark (sketch vs Monte-Carlo, single-thread)",
      Run, [](BenchArgs* args) {
        args->Declare("nodes", "graph size (default 100000)");
        args->Declare("snapshots",
                      "sketch-oracle live-edge worlds R (default 200)");
        args->Declare("k", "CELF seeds (default 50)");
        args->Declare("candidates",
                      "top-degree CELF candidate pool (default 200; the "
                      "per-candidate MC leg dominates the bench runtime)");
        args->Declare("evals",
                      "repetitions of the one-shot evaluation timing "
                      "(default 10)");
        args->Declare("json",
                      "output JSON path (default BENCH_spread.json)");
      });
}

// Extension bench: EaSyIM against its lineage and the wider baseline field
// on one dataset/model — ASIM (the probability-blind precursor EaSyIM
// refines, paper Sec. 3.2), StaticGreedy, IMM, DegreeDiscount, PageRank,
// Random. Complements the paper's Figs. 6d-6e with the cheaper heuristics.
// Every algorithm dispatches through one HolimEngine by registry name — no
// per-binary selector constructions.

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(
      Workload w, LoadWorkload("NetHEPT", config.scale,
                               DiffusionModel::kIndependentCascade));
  const uint32_t max_k =
      std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 10);
  auto grid = SeedGrid(max_k);
  ResultTable table("Ablation — baseline panorama (NetHEPT, IC)",
                    {"algorithm", "k", "spread", "select_seconds"},
                    CsvPath("ablation_baselines"));

  HolimEngine engine(w.graph);
  const char* algorithms[] = {"easyim",   "asim",           "static-greedy",
                              "imm",      "imrank",         "degreediscount",
                              "pagerank", "random"};
  for (const char* algorithm : algorithms) {
    SolveRequest request =
        MakeSolveRequest(algorithm, max_k, w.params, config);
    request.epsilon = 0.2;       // IMM
    request.max_theta = 400000;  // IMM
    request.num_snapshots = 100;  // StaticGreedy
    HOLIM_ASSIGN_OR_RETURN(SolveResult sel, engine.Solve(request));
    auto values = SpreadAtPrefixes(w.graph, w.params, sel.seeds, grid,
                                   config.mc, config.seed);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({sel.algorithm, std::to_string(grid[i]),
                    CsvWriter::Num(values[i]),
                    CsvWriter::Num(sel.select_seconds)});
    }
  }
  table.Print();
  std::printf("\nReading: EaSyIM should match StaticGreedy/IMM quality while\n"
              "beating ASIM (probability-blind) and the degree heuristics.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Ablation — baseline panorama", Run);
}

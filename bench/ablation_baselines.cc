// Extension bench: EaSyIM against its lineage and the wider baseline field
// on one dataset/model — ASIM (the probability-blind precursor EaSyIM
// refines, paper Sec. 3.2), StaticGreedy, IMM, DegreeDiscount, PageRank,
// Random. Complements the paper's Figs. 6d-6e with the cheaper heuristics.

#include <memory>

#include "algo/asim.h"
#include "algo/heuristics.h"
#include "algo/imm.h"
#include "algo/imrank.h"
#include "algo/score_greedy.h"
#include "algo/static_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(
      Workload w, LoadWorkload("NetHEPT", config.scale,
                               DiffusionModel::kIndependentCascade));
  const uint32_t max_k =
      std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 10);
  auto grid = SeedGrid(max_k);
  ResultTable table("Ablation — baseline panorama (NetHEPT, IC)",
                    {"algorithm", "k", "spread", "select_seconds"},
                    CsvPath("ablation_baselines"));

  std::vector<std::unique_ptr<SeedSelector>> selectors;
  selectors.push_back(std::make_unique<EasyImSelector>(w.graph, w.params, 3));
  selectors.push_back(std::make_unique<AsimSelector>(w.graph, w.params));
  StaticGreedyOptions sg_options;
  sg_options.num_snapshots = 100;
  selectors.push_back(std::make_unique<StaticGreedySelector>(
      w.graph, w.params, sg_options));
  ImmOptions imm_options;
  imm_options.epsilon = 0.2;
  imm_options.max_theta = 400000;
  selectors.push_back(
      std::make_unique<ImmSelector>(w.graph, w.params, imm_options));
  selectors.push_back(std::make_unique<ImRankSelector>(w.graph, w.params));
  selectors.push_back(
      std::make_unique<DegreeDiscountSelector>(w.graph, 0.1));
  selectors.push_back(std::make_unique<PageRankSelector>(w.graph));
  selectors.push_back(std::make_unique<RandomSelector>(w.graph, config.seed));

  for (auto& selector : selectors) {
    HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, selector->Select(max_k));
    auto values = SpreadAtPrefixes(w.graph, w.params, sel.seeds, grid,
                                   config.mc, config.seed);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({selector->name(), std::to_string(grid[i]),
                    CsvWriter::Num(values[i]),
                    CsvWriter::Num(sel.elapsed_seconds)});
    }
  }
  table.Print();
  std::printf("\nReading: EaSyIM should match StaticGreedy/IMM quality while\n"
              "beating ASIM (probability-blind) and the degree heuristics.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Ablation — baseline panorama", Run);
}

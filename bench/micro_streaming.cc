// Streaming-delta microbenchmark: a churn sequence of random 64-op edge
// batches on the WC benchmark graph, served two ways per batch —
// INCREMENTAL (HolimEngine::ApplyDelta patches the cached sketch arena in
// place, then a warm re-solve) versus REBUILD (a fresh engine on the
// mutated graph pays full sampling before the same solve). A second leg
// runs the same comparison on the RR-set engine (RrCollection::ApplyDelta
// block replay vs a fresh GenerateParallel). Emits BENCH_streaming.json;
// the CI bench-gate (tools/check_bench_regression.py, "streaming"
// dispatch) fails the job when the incremental speedup drops below the
// absolute floor or regresses against the committed baseline.
//
// Per-step parity is HOLIM_CHECKed: the warm post-delta solve must pick
// bitwise-identical seeds and spread to the cold rebuild, and the patched
// RR arena must equal the fresh replay entry for entry — the streaming
// layer's correctness contract, enforced in the timing harness itself.
//
// The solve uses a cheap selector (degreediscount) on purpose: selector
// state is evicted on every delta either way, so a heavyweight selector
// would just dilute the artifact-maintenance comparison this bench
// isolates (sketch resampling is the dominant rebuild cost in the
// many-queries-per-epoch serving shape; see micro_engine.cc).
//
// The two legs run DIFFERENT churn rates and models on purpose, each in
// its artifact's representative regime. The sketch patch is row-granular
// (only touched sources resample), so it absorbs bulk 64-op batches; its
// leg runs sparse uniform IC, where sampling pays the full m * R RNG
// draws but the live arenas stay thin (under WC the live-edge mass is ~n
// per snapshot by construction, so arena splicing would shadow the
// sampling saving). RR replay is block-granular (any affected member
// dirties a 256-set block of reverse traversals), so its payoff regime
// is small targeted batches on its own WC epoch chain — WC is where RR
// sampling is expensive and worth preserving.
//
// Single-thread on purpose: the reference bench host is single-core and
// the speedup is a ratio of single-thread times.

#include <cstdio>
#include <string>
#include <vector>

#include "algo/rr_sets.h"
#include "bench_support/engine_support.h"
#include "common.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace holim;

namespace {

Status Run(const BenchArgs& args) {
  const NodeId nodes = static_cast<NodeId>(args.GetInt("nodes", 30000));
  const uint32_t snapshots =
      static_cast<uint32_t>(args.GetInt("snapshots", 256));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 50));
  const std::size_t batches =
      static_cast<std::size_t>(args.GetInt("batches", 8));
  const std::size_t ops = static_cast<std::size_t>(args.GetInt("ops", 64));
  const std::size_t rr_ops =
      static_cast<std::size_t>(args.GetInt("rr_ops", 1));
  const std::size_t theta =
      static_cast<std::size_t>(args.GetInt("theta", 100000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path =
      args.GetString("json", "BENCH_streaming.json");
  if (nodes == 0 || snapshots == 0 || k == 0 || batches == 0 || ops == 0) {
    return Status::InvalidArgument(
        "--nodes/--snapshots/--k/--batches/--ops must be positive");
  }

  const double p = args.GetDouble("p", 0.005);
  HOLIM_ASSIGN_OR_RETURN(Graph base, GenerateBarabasiAlbert(nodes, 16, seed));
  InfluenceParams current = MakeUniformIc(base, p);
  std::printf("graph: n=%u m=%llu, R=%u snapshots, %zu batches x %zu ops "
              "IC(p=%g) (rr leg: x %zu ops, WC), k=%u, theta=%zu\n",
              base.num_nodes(),
              static_cast<unsigned long long>(base.num_edges()), snapshots,
              batches, ops, p, rr_ops, k, theta);

  HolimEngine engine(base);
  auto make_request = [&](const InfluenceParams& params) {
    SolveRequest request;
    request.algorithm = "degreediscount";
    request.k = k;
    request.params = &params;
    request.mc = snapshots;
    request.seed = seed;
    request.oracle = SpreadOracle::kSketch;
    request.num_sketches = snapshots;
    request.evaluate_spread = true;
    return request;
  };

  // Prime the warm engine: the initial solve builds the sketch arena the
  // incremental leg will keep patching (untimed — both legs start from a
  // served epoch-0 state).
  {
    const SolveRequest request = make_request(current);
    HOLIM_ASSIGN_OR_RETURN(SolveResult primed, engine.Solve(request));
    std::printf("epoch 0 primed: spread %.2f, workspace %zu artifact(s)\n",
                primed.spread, engine.workspace().num_artifacts());
  }

  // RR leg state: its own epoch chain over the same base graph (see the
  // header comment — the RR churn rate and model are deliberately
  // different).
  StreamingGraph rr_streaming(base);
  InfluenceParams rr_params = MakeWeightedCascade(base);
  RrCollection patched_rr(base, rr_params);
  patched_rr.GenerateParallel(theta, seed);

  Rng churn(seed + 0x5EEDC0DEULL);
  Rng rr_churn(seed + 0xC0FFEEULL);
  double inc_solve_seconds = 0.0, rebuild_solve_seconds = 0.0;
  double inc_rr_seconds = 0.0, rebuild_rr_seconds = 0.0;
  std::size_t patched_total = 0, evicted_total = 0;
  for (std::size_t step = 0; step < batches; ++step) {
    const GraphDelta delta = MakeRandomDelta(engine.graph(), ops, churn);

    // Incremental: patch artifacts, re-solve warm.
    Timer inc_timer;
    HOLIM_ASSIGN_OR_RETURN(HolimEngine::DeltaReport report,
                           engine.ApplyDelta(delta, current));
    current = std::move(report.params);
    const SolveRequest request = make_request(current);
    HOLIM_ASSIGN_OR_RETURN(SolveResult warm, engine.Solve(request));
    const double inc_step = inc_timer.ElapsedSeconds();
    inc_solve_seconds += inc_step;
    patched_total += report.patched_sketches;
    evicted_total += report.evicted_artifacts;

    // Rebuild: fresh engine on the same mutated graph, full sampling.
    Timer rebuild_timer;
    HolimEngine cold_engine(engine.graph());
    HOLIM_ASSIGN_OR_RETURN(SolveResult cold, cold_engine.Solve(request));
    const double rebuild_step = rebuild_timer.ElapsedSeconds();
    rebuild_solve_seconds += rebuild_step;

    HOLIM_CHECK(warm.seeds == cold.seeds)
        << "warm/cold seed divergence at step " << step;
    HOLIM_CHECK(warm.spread == cold.spread)
        << "warm/cold spread divergence at step " << step;
    HOLIM_CHECK(warm.sketch_arena_bytes == cold.sketch_arena_bytes)
        << "warm/cold arena-bytes divergence at step " << step;

    // RR leg: block replay vs fresh generate after a small targeted batch.
    const GraphDelta rr_delta =
        MakeRandomDelta(rr_streaming.graph(), rr_ops, rr_churn);
    HOLIM_ASSIGN_OR_RETURN(ResolvedDelta rr_resolved,
                           rr_streaming.Apply(rr_delta));
    HOLIM_ASSIGN_OR_RETURN(
        rr_params, ApplyDeltaToParams(rr_streaming.previous(), rr_params,
                                      rr_streaming.graph(), rr_resolved));
    Timer inc_rr_timer;
    HOLIM_RETURN_NOT_OK(
        patched_rr.ApplyDelta(rr_streaming.graph(), rr_params));
    const double inc_rr_step = inc_rr_timer.ElapsedSeconds();
    inc_rr_seconds += inc_rr_step;
    Timer rebuild_rr_timer;
    RrCollection fresh_rr(rr_streaming.graph(), rr_params);
    fresh_rr.GenerateParallel(theta, seed);
    const double rebuild_rr_step = rebuild_rr_timer.ElapsedSeconds();
    rebuild_rr_seconds += rebuild_rr_step;
    HOLIM_CHECK(patched_rr.total_entries() == fresh_rr.total_entries() &&
                patched_rr.total_width() == fresh_rr.total_width())
        << "patched/fresh RR arena divergence at step " << step;
    for (std::size_t s = 0; s < fresh_rr.num_sets(); s += 997) {
      const auto a = patched_rr.set(s);
      const auto b = fresh_rr.set(s);
      HOLIM_CHECK(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "patched/fresh RR set divergence at set " << s;
    }

    std::printf("step %zu: epoch=%llu +%zu/-%zu/~%zu  solve %.3fs inc vs "
                "%.3fs rebuild (warm artifact %.3fs select %.3fs eval "
                "%.3fs)  rr %.3fs inc vs %.3fs rebuild\n",
                step, static_cast<unsigned long long>(report.epoch),
                report.inserted, report.removed, report.reweighted, inc_step,
                rebuild_step, warm.artifact_seconds, warm.select_seconds,
                warm.spread_seconds, inc_rr_step, rebuild_rr_step);
  }

  const double solve_speedup = rebuild_solve_seconds / inc_solve_seconds;
  const double rr_speedup = rebuild_rr_seconds / inc_rr_seconds;
  std::printf("\nchurn totals (%zu batches):\n"
              "  solve: incremental %.3fs, rebuild %.3fs -> %.2fx\n"
              "  rr:    incremental %.3fs, rebuild %.3fs -> %.2fx\n"
              "  artifacts: %zu patched, %zu evicted\n",
              batches, inc_solve_seconds, rebuild_solve_seconds,
              solve_speedup, inc_rr_seconds, rebuild_rr_seconds, rr_speedup,
              patched_total, evicted_total);

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(
      f,
      "{\n  \"bench\": \"streaming\",\n  \"nodes\": %u,\n"
      "  \"edges\": %llu,\n  \"model\": \"IC\",\n  \"p\": %g,\n"
      "  \"rr_model\": \"WC\",\n  \"snapshots\": %u,\n"
      "  \"k\": %u,\n  \"batches\": %zu,\n  \"ops_per_batch\": %zu,\n"
      "  \"rr_ops_per_batch\": %zu,\n"
      "  \"theta\": %zu,\n  \"seed\": %llu,\n  \"algorithm\": "
      "\"degreediscount\",\n"
      "  \"solve\": {\n    \"incremental_seconds\": %.6f,\n"
      "    \"rebuild_seconds\": %.6f,\n    \"speedup\": %.4f,\n"
      "    \"parity\": true\n  },\n"
      "  \"rr\": {\n    \"incremental_seconds\": %.6f,\n"
      "    \"rebuild_seconds\": %.6f,\n    \"speedup\": %.4f,\n"
      "    \"arena_match\": true\n  },\n"
      "  \"artifacts\": {\n    \"patched\": %zu,\n    \"evicted\": %zu\n"
      "  }\n}\n",
      base.num_nodes(), static_cast<unsigned long long>(base.num_edges()), p,
      snapshots, k, batches, ops, rr_ops, theta,
      static_cast<unsigned long long>(seed), inc_solve_seconds,
      rebuild_solve_seconds, solve_speedup, inc_rr_seconds,
      rebuild_rr_seconds, rr_speedup, patched_total, evicted_total);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Streaming-delta microbenchmark (incremental artifacts vs rebuild)",
      Run, [](BenchArgs* args) {
        args->Declare("nodes", "graph size (default 30000)");
        args->Declare("p",
                      "uniform IC probability of the solve leg (default "
                      "0.005; sparse on purpose — see header comment)");
        args->Declare("snapshots",
                      "sketch-oracle live-edge worlds R (default 256)");
        args->Declare("k", "seeds per re-solve (default 50)");
        args->Declare("batches", "churn batches (default 8)");
        args->Declare("ops", "edge ops per batch (default 64)");
        args->Declare("rr_ops",
                      "edge ops per batch in the RR leg's own churn chain "
                      "(default 1 — the single-edge point update, block "
                      "replay's payoff regime)");
        args->Declare("theta", "RR sets in the RR leg (default 100000)");
        args->Declare("json",
                      "output JSON path (default BENCH_streaming.json)");
      });
}

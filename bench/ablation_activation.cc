// Ablation (DESIGN.md): the ScoreGREEDY activated-set strategy. Algorithm 1
// line 11 leaves the V(a) estimator open; this bench compares the three
// implementations on quality and cost.

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(
      Workload w, LoadWorkload("NetHEPT", config.scale,
                               DiffusionModel::kIndependentCascade));
  const uint32_t k = std::min<uint32_t>(50, w.graph.num_nodes() / 10);
  ResultTable table("Ablation — ScoreGREEDY activated-set strategy",
                    {"strategy", "spread@k", "seconds"},
                    CsvPath("ablation_activation"));
  McOptions mc;
  mc.num_simulations = config.mc;
  mc.seed = config.seed;
  for (auto strategy :
       {ActivationStrategy::kSeedsOnly, ActivationStrategy::kMonteCarloMajority,
        ActivationStrategy::kExpectedReach}) {
    ScoreGreedyOptions options;
    options.activation = strategy;
    options.seed = config.seed;
    EasyImSelector selector(w.graph, w.params, 3, options);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, selector.Select(k));
    const double spread = EstimateSpread(w.graph, w.params, sel.seeds, mc);
    table.AddRow({ActivationStrategyName(strategy), CsvWriter::Num(spread),
                  CsvWriter::Num(sel.elapsed_seconds)});
  }
  table.Print();
  std::printf("\nReading: seeds-only is fastest but risks redundant seeds in\n"
              "one region; mc-majority (default) trades a little time for\n"
              "better dispersion; expected-reach is the deterministic mid.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Ablation — activated-set strategies", Run);
}

// Table 3: EaSyIM(l=1) vs TIM+ (eps=0.1), k = 50 — running time and memory
// on DBLP / YouTube / socLive stand-ins. The paper's numbers: TIM+ is
// ~3x faster on DBLP but uses ~758x more memory, and crashes (OOM) on the
// larger datasets.

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.005);
  // TIM+'s RR sets stay bounded by this cap; it emulates the paper's 100 GB
  // box at our scale. When the cap binds TIM+ reports "OOM" like the paper.
  const std::size_t ram_cap =
      static_cast<std::size_t>(args.GetInt("tim_theta_cap", 2'000'000));

  ResultTable table(
      "Table 3 — EaSyIM(l=1) vs TIM+ (k=50, eps=0.1)",
      {"dataset", "tim_minutes", "easyim_minutes", "easyim_vs_tim_time",
       "tim_MiB", "easyim_MiB", "tim_vs_easyim_memory"},
      CsvPath("table3_easyim_vs_tim"));
  for (const std::string& dataset :
       {std::string("DBLP"), std::string("YouTube"),
        std::string("SocLiveJournal")}) {
    const double shrink = dataset == "DBLP" ? 1.0
                          : dataset == "YouTube" ? 0.4
                                                 : 0.1;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    HolimEngine engine(w.graph);
    const uint32_t k = std::min<uint32_t>(50, w.graph.num_nodes() / 10);

    SolveRequest easy = MakeSolveRequest("easyim", k, w.params, config);
    easy.l = 1;
    HOLIM_ASSIGN_OR_RETURN(SolveResult easy_sel, engine.Solve(easy));
    // O(n) rolling buffers (scorer scratch, reported by the solve) plus
    // the driver's per-node score vector.
    const double easy_mib = MemoryMeter::ToMiB(easy_sel.scratch_bytes +
                                               w.graph.num_nodes() * 8);

    SolveRequest tim = MakeSolveRequest("tim+", k, w.params, config);
    tim.epsilon = 0.1;
    tim.max_theta = ram_cap;
    HOLIM_ASSIGN_OR_RETURN(SolveResult tim_sel, engine.Solve(tim));
    const bool oom = tim_sel.Stat("theta_capped") != 0.0;
    const double tim_mib =
        MemoryMeter::ToMiB(
            static_cast<std::size_t>(tim_sel.Stat("rr_memory_bytes")));

    table.AddRow(
        {dataset,
         oom ? "OOM (cap hit)"
             : CsvWriter::Num(tim_sel.select_seconds / 60),
         CsvWriter::Num(easy_sel.select_seconds / 60),
         oom ? "-"
             : CsvWriter::Num(easy_sel.select_seconds /
                              std::max(1e-9, tim_sel.select_seconds)) + "x",
         CsvWriter::Num(tim_mib), CsvWriter::Num(easy_mib),
         CsvWriter::Num(tim_mib / std::max(1e-9, easy_mib)) + "x"});
  }
  table.Print();
  std::printf("\nExpected shape (paper Table 3): TIM+ faster where it fits\n"
              "but its memory is 2-3 orders of magnitude larger; it OOMs on\n"
              "the big datasets while EaSyIM completes everywhere.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Table 3 — EaSyIM vs TIM+", Run,
                   [](BenchArgs* args) {
                     args->Declare("tim_theta_cap",
                                   "RR-set cap emulating the RAM budget");
                   });
}

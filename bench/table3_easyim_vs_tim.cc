// Table 3: EaSyIM(l=1) vs TIM+ (eps=0.1), k = 50 — running time and memory
// on DBLP / YouTube / socLive stand-ins. The paper's numbers: TIM+ is
// ~3x faster on DBLP but uses ~758x more memory, and crashes (OOM) on the
// larger datasets.

#include "algo/score_greedy.h"
#include "algo/tim_plus.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.005);
  // TIM+'s RR sets stay bounded by this cap; it emulates the paper's 100 GB
  // box at our scale. When the cap binds TIM+ reports "OOM" like the paper.
  const std::size_t ram_cap =
      static_cast<std::size_t>(args.GetInt("tim_theta_cap", 2'000'000));

  ResultTable table(
      "Table 3 — EaSyIM(l=1) vs TIM+ (k=50, eps=0.1)",
      {"dataset", "tim_minutes", "easyim_minutes", "easyim_vs_tim_time",
       "tim_MiB", "easyim_MiB", "tim_vs_easyim_memory"},
      CsvPath("table3_easyim_vs_tim"));
  for (const std::string& dataset :
       {std::string("DBLP"), std::string("YouTube"),
        std::string("SocLiveJournal")}) {
    const double shrink = dataset == "DBLP" ? 1.0
                          : dataset == "YouTube" ? 0.4
                                                 : 0.1;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t k = std::min<uint32_t>(50, w.graph.num_nodes() / 10);

    EasyImSelector easyim(w.graph, w.params, 1);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection easy_sel, easyim.Select(k));
    EasyImScorer scorer(w.graph, w.params, 1);
    const double easy_mib = MemoryMeter::ToMiB(scorer.ScratchBytes() +
                                               w.graph.num_nodes() * 8);

    TimPlusOptions tim_opts;
    tim_opts.epsilon = 0.1;
    tim_opts.max_theta = ram_cap;
    TimPlusSelector tim(w.graph, w.params, tim_opts);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection tim_sel, tim.Select(k));
    const bool oom = tim.last_run_stats().theta_capped;
    const double tim_mib =
        MemoryMeter::ToMiB(tim.last_run_stats().rr_memory_bytes);

    table.AddRow(
        {dataset,
         oom ? "OOM (cap hit)" : CsvWriter::Num(tim_sel.elapsed_seconds / 60),
         CsvWriter::Num(easy_sel.elapsed_seconds / 60),
         oom ? "-"
             : CsvWriter::Num(easy_sel.elapsed_seconds /
                              std::max(1e-9, tim_sel.elapsed_seconds)) + "x",
         CsvWriter::Num(tim_mib), CsvWriter::Num(easy_mib),
         CsvWriter::Num(tim_mib / std::max(1e-9, easy_mib)) + "x"});
  }
  table.Print();
  std::printf("\nExpected shape (paper Table 3): TIM+ faster where it fits\n"
              "but its memory is 2-3 orders of magnitude larger; it OOMs on\n"
              "the big datasets while EaSyIM completes everywhere.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Table 3 — EaSyIM vs TIM+", Run,
                   [](BenchArgs* args) {
                     args->Declare("tim_theta_cap",
                                   "RR-set cap emulating the RAM budget");
                   });
}

// Figure 7j (appendix): EaSyIM memory on the four large datasets
// (socLive / Orkut / Twitter / Friendster stand-ins, scaled).

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  // Large graphs get an aggressive shrink; --scale raises it.
  const double scale = args.GetDouble("scale", 0.002);
  ResultTable table("Figure 7j — EaSyIM memory on large datasets (k=100)",
                    {"dataset", "n", "arcs", "graph_MiB", "exec_MiB",
                     "select_seconds"},
                    CsvPath("fig7j_large_memory"));
  for (const std::string& dataset : LargeDatasetNames()) {
    HOLIM_ASSIGN_OR_RETURN(DatasetSpec spec, FindDatasetSpec(dataset));
    const double shrink = spec.paper_edges > 1'000'000'000 ? 0.02 : 0.2;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t k = std::min<uint32_t>(100, w.graph.num_nodes() / 10);
    ScoreGreedyOptions options;
    options.mc_rounds = 5;  // keep the MC-majority step cheap at scale
    EasyImSelector easyim(w.graph, w.params, 1, options);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, easyim.Select(k));
    EasyImScorer scorer(w.graph, w.params, 1);
    table.AddRow(
        {dataset, std::to_string(w.graph.num_nodes()),
         std::to_string(w.graph.num_edges()),
         CsvWriter::Num(MemoryMeter::ToMiB(w.graph.MemoryFootprintBytes() +
                                           w.params.MemoryFootprintBytes())),
         CsvWriter::Num(MemoryMeter::ToMiB(scorer.ScratchBytes() +
                                           w.graph.num_nodes() * 8)),
         CsvWriter::Num(sel.elapsed_seconds)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 7j): execution memory stays a\n"
              "vanishing fraction of graph memory — billion-edge feasible.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figure 7j — large-dataset memory", Run);
}

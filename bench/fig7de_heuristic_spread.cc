// Figures 7d-7e (appendix): spread of EaSyIM(l=3) vs SIMPATH (NetHEPT, LT)
// and vs IRIE (YouTube, WC).

#include <memory>

#include "algo/irie.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(SpreadOracle oracle, ParseOracleFlag(args));
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table("Figures 7d-7e — EaSyIM vs SIMPATH/IRIE spread",
                    {"figure", "dataset", "algorithm", "k", "spread"},
                    CsvPath("fig7de_heuristic_spread"));

  // With --oracle=sketch the per-workload snapshot set is sampled once
  // and reused for both algorithms' prefix sweeps (incremental sessions).
  auto evaluate = [&](const Workload& w, const std::vector<NodeId>& seeds,
                      const std::vector<uint32_t>& grid,
                      const SketchOracle* sketch) {
    return sketch ? SpreadAtPrefixesSketch(*sketch, seeds, grid)
                  : SpreadAtPrefixes(w.graph, w.params, seeds, grid,
                                     config.mc, config.seed);
  };
  auto make_sketch = [&](const Workload& w) {
    return oracle == SpreadOracle::kSketch
               ? MakeSketchOracle(w.graph, w.params, config.mc, config.seed)
               : nullptr;
  };

  // 7d: NetHEPT under LT — EaSyIM vs SIMPATH.
  {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload("NetHEPT", scale, DiffusionModel::kLinearThreshold));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);
    EasyImSelector easyim(w.graph, w.params, 3);
    SimpathSelector simpath(w.graph, w.params);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection easy_sel, easyim.Select(max_k));
    HOLIM_ASSIGN_OR_RETURN(SeedSelection sp_sel, simpath.Select(max_k));
    auto sketch = make_sketch(w);
    auto easy_values = evaluate(w, easy_sel.seeds, grid, sketch.get());
    auto sp_values = evaluate(w, sp_sel.seeds, grid, sketch.get());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({"7d", "NetHEPT", "EaSyIM,l=3", std::to_string(grid[i]),
                    CsvWriter::Num(easy_values[i])});
      table.AddRow({"7d", "NetHEPT", "SIMPATH", std::to_string(grid[i]),
                    CsvWriter::Num(sp_values[i])});
    }
  }

  // 7e: YouTube under WC — EaSyIM vs IRIE.
  {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload("YouTube", scale * 0.05,
                                 DiffusionModel::kWeightedCascade));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);
    EasyImSelector easyim(w.graph, w.params, 3);
    IrieSelector irie(w.graph, w.params);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection easy_sel, easyim.Select(max_k));
    HOLIM_ASSIGN_OR_RETURN(SeedSelection irie_sel, irie.Select(max_k));
    auto sketch = make_sketch(w);
    auto easy_values = evaluate(w, easy_sel.seeds, grid, sketch.get());
    auto irie_values = evaluate(w, irie_sel.seeds, grid, sketch.get());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({"7e", "YouTube", "EaSyIM,l=3", std::to_string(grid[i]),
                    CsvWriter::Num(easy_values[i])});
      table.AddRow({"7e", "YouTube", "IRIE", std::to_string(grid[i]),
                    CsvWriter::Num(irie_values[i])});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7d-7e): EaSyIM matches the\n"
              "specialist heuristics' spread on their home models.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 7d-7e — spread vs SIMPATH/IRIE (appendix)", Run,
                   [](BenchArgs* args) { DeclareOracleFlag(args); });
}

// Figures 7d-7e (appendix): spread of EaSyIM(l=3) vs SIMPATH (NetHEPT, LT)
// and vs IRIE (YouTube, WC).

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table("Figures 7d-7e — EaSyIM vs SIMPATH/IRIE spread",
                    {"figure", "dataset", "algorithm", "k", "spread"},
                    CsvPath("fig7de_heuristic_spread"));

  // With --oracle=sketch the per-workload snapshot set is a Workspace
  // artifact, sampled once and reused for both algorithms' prefix sweeps
  // (incremental sessions).
  auto evaluate = [&](const Workload& w, const std::vector<NodeId>& seeds,
                      const std::vector<uint32_t>& grid,
                      const SketchOracle* sketch) {
    return sketch ? SpreadAtPrefixesSketch(*sketch, seeds, grid,
                                           common.sketch_eval)
                  : SpreadAtPrefixes(w.graph, w.params, seeds, grid,
                                     config.mc, config.seed);
  };
  auto make_sketch = [&](HolimEngine& engine, const Workload& w) {
    if (common.oracle != SpreadOracle::kSketch) {
      return std::shared_ptr<const SketchOracle>();
    }
    return GetBenchSketchOracle(engine, w.graph, w.params, config);
  };
  auto run_panel = [&](const char* figure, const Workload& w,
                       const char* easy_label, const std::string& rival,
                       const char* rival_label) -> Status {
    HolimEngine engine(w.graph);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);
    HOLIM_ASSIGN_OR_RETURN(
        SolveResult easy_sel,
        engine.Solve(MakeSolveRequest("easyim", max_k, w.params, config)));
    HOLIM_ASSIGN_OR_RETURN(
        SolveResult rival_sel,
        engine.Solve(MakeSolveRequest(rival, max_k, w.params, config)));
    auto sketch = make_sketch(engine, w);
    auto easy_values = evaluate(w, easy_sel.seeds, grid, sketch.get());
    auto rival_values = evaluate(w, rival_sel.seeds, grid, sketch.get());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({figure, w.dataset, easy_label, std::to_string(grid[i]),
                    CsvWriter::Num(easy_values[i])});
      table.AddRow({figure, w.dataset, rival_label, std::to_string(grid[i]),
                    CsvWriter::Num(rival_values[i])});
    }
    return Status::OK();
  };

  // 7d: NetHEPT under LT — EaSyIM vs SIMPATH.
  {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload("NetHEPT", scale, DiffusionModel::kLinearThreshold));
    HOLIM_RETURN_NOT_OK(run_panel("7d", w, "EaSyIM,l=3", "simpath",
                                  "SIMPATH"));
  }

  // 7e: YouTube under WC — EaSyIM vs IRIE.
  {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload("YouTube", scale * 0.05,
                                 DiffusionModel::kWeightedCascade));
    HOLIM_RETURN_NOT_OK(run_panel("7e", w, "EaSyIM,l=3", "irie", "IRIE"));
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7d-7e): EaSyIM matches the\n"
              "specialist heuristics' spread on their home models.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 7d-7e — spread vs SIMPATH/IRIE (appendix)", Run,
                   [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

// Figures 6f-6h: running time vs seeds — EaSyIM (l sweep) vs CELF++ vs TIM+
// on NetHEPT (LT), DBLP (IC), YouTube (WC).

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "algo/tim_plus.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  ScoreGreedyOptions sg_options;
  HOLIM_ASSIGN_OR_RETURN(sg_options.incremental_rescore,
                         ParseRescoreFlag(args, "full"));
  struct Panel {
    const char* figure;
    const char* dataset;
    DiffusionModel model;
    double shrink;
  };
  const Panel panels[] = {
      {"6f", "NetHEPT", DiffusionModel::kLinearThreshold, 1.0},
      {"6g", "DBLP", DiffusionModel::kIndependentCascade, 0.1},
      {"6h", "YouTube", DiffusionModel::kWeightedCascade, 0.05},
  };
  ResultTable table("Figures 6f-6h — running time vs seeds",
                    {"figure", "dataset", "algorithm", "k", "seconds"},
                    CsvPath("fig6fgh_time_comparison"));
  for (const Panel& panel : panels) {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload(panel.dataset, scale * panel.shrink, panel.model));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      for (uint32_t l : {1u, 3u, 5u}) {
        EasyImSelector easyim(w.graph, w.params, l, sg_options);
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, easyim.Select(k));
        table.AddRow({panel.figure, panel.dataset, easyim.name(),
                      std::to_string(k),
                      CsvWriter::Num(sel.elapsed_seconds)});
      }
      TimPlusOptions tim_opts;
      tim_opts.epsilon = 0.2;
      tim_opts.max_theta = 200000;
      TimPlusSelector tim(w.graph, w.params, tim_opts);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection tim_sel, tim.Select(k));
      table.AddRow({panel.figure, panel.dataset, "TIM+", std::to_string(k),
                    CsvWriter::Num(tim_sel.elapsed_seconds)});
      // CELF++ on the smallest panel only (paper: DNF on DBLP/YouTube).
      if (std::string(panel.dataset) == "NetHEPT" && k <= max_k / 2) {
        McOptions celf_mc;
        celf_mc.num_simulations = 50;
        celf_mc.seed = config.seed;
        auto objective =
            std::make_shared<SpreadObjective>(w.graph, w.params, celf_mc);
        CelfSelector celf(w.graph, objective, true, "CELF++");
        HOLIM_ASSIGN_OR_RETURN(SeedSelection celf_sel, celf.Select(k));
        table.AddRow({panel.figure, panel.dataset, "CELF++",
                      std::to_string(k),
                      CsvWriter::Num(celf_sel.elapsed_seconds)});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 6f-6h): EaSyIM time linear in l\n"
              "and k; CELF++ slowest by orders of magnitude; TIM+ fast but\n"
              "see Fig. 6i for its memory footprint.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 6f-6h — EaSyIM vs CELF++/TIM+ running time", Run,
                   [](BenchArgs* args) {
                     holim::DeclareRescoreFlag(args, "full");
                   });
}

// Figures 6f-6h: running time vs seeds — EaSyIM (l sweep) vs CELF++ vs TIM+
// on NetHEPT (LT), DBLP (IC), YouTube (WC).

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/false,
                                  /*rescore_default=*/"full"};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  struct Panel {
    const char* figure;
    const char* dataset;
    DiffusionModel model;
    double shrink;
  };
  const Panel panels[] = {
      {"6f", "NetHEPT", DiffusionModel::kLinearThreshold, 1.0},
      {"6g", "DBLP", DiffusionModel::kIndependentCascade, 0.1},
      {"6h", "YouTube", DiffusionModel::kWeightedCascade, 0.05},
  };
  ResultTable table("Figures 6f-6h — running time vs seeds",
                    {"figure", "dataset", "algorithm", "k", "seconds"},
                    CsvPath("fig6fgh_time_comparison"));
  for (const Panel& panel : panels) {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload(panel.dataset, scale * panel.shrink, panel.model));
    // One engine per panel: each EaSyIM(l) selector (and its sweep
    // scratch) becomes one Workspace artifact reused across the whole
    // k-grid. Reported seconds are the Select time alone, so warm reuse
    // does not skew the figure's timing methodology.
    HolimEngine engine(w.graph);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      for (uint32_t l : {1u, 3u, 5u}) {
        SolveRequest easy =
            MakeSolveRequest("easyim", k, w.params, config, common);
        easy.l = l;
        HOLIM_ASSIGN_OR_RETURN(SolveResult sel, engine.Solve(easy));
        table.AddRow({panel.figure, panel.dataset, sel.algorithm,
                      std::to_string(k),
                      CsvWriter::Num(sel.select_seconds)});
      }
      SolveRequest tim = MakeSolveRequest("tim+", k, w.params, config);
      tim.epsilon = 0.2;
      tim.max_theta = 200000;
      HOLIM_ASSIGN_OR_RETURN(SolveResult tim_sel, engine.Solve(tim));
      table.AddRow({panel.figure, panel.dataset, "TIM+", std::to_string(k),
                    CsvWriter::Num(tim_sel.select_seconds)});
      // CELF++ on the smallest panel only (paper: DNF on DBLP/YouTube).
      if (std::string(panel.dataset) == "NetHEPT" && k <= max_k / 2) {
        SolveRequest celf = MakeSolveRequest("celf++", k, w.params, config);
        celf.mc = 50;
        HOLIM_ASSIGN_OR_RETURN(SolveResult celf_sel, engine.Solve(celf));
        table.AddRow({panel.figure, panel.dataset, "CELF++",
                      std::to_string(k),
                      CsvWriter::Num(celf_sel.select_seconds)});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 6f-6h): EaSyIM time linear in l\n"
              "and k; CELF++ slowest by orders of magnitude; TIM+ fast but\n"
              "see Fig. 6i for its memory footprint.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 6f-6h — EaSyIM vs CELF++/TIM+ running time", Run,
                   [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

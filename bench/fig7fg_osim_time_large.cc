// Figures 7f-7g (appendix): OSIM running time with l and k — HepPh under
// OC and DBLP/YouTube under OI.

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/false,
                                  /*rescore_default=*/"full"};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  ResultTable table("Figures 7f-7g — OSIM time vs seeds",
                    {"figure", "dataset", "selector", "k", "seconds"},
                    CsvPath("fig7fg_osim_time_large"));

  // 7f: HepPh under OC, including a Modified-GREEDY reference point.
  {
    const double scale = std::min(config.scale, 0.05);
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload("HepPh", scale, DiffusionModel::kLinearThreshold));
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kStandardNormal, config.seed);
    std::fill(opinions.interaction.begin(), opinions.interaction.end(), 1.0);
    // One engine per workload: each OSIM(l) scorer is a Workspace artifact
    // reused across the k-grid (reported seconds stay pure Select time).
    HolimEngine engine(w.graph);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      for (uint32_t k : SeedGrid(max_k)) {
        SolveRequest osim =
            MakeSolveRequest("osim", k, w.params, config, common);
        osim.opinions = &opinions;
        osim.oi_base = OiBase::kLinearThreshold;
        osim.l = l;
        HOLIM_ASSIGN_OR_RETURN(SolveResult sel, engine.Solve(osim));
        table.AddRow({"7f", "HepPh", "OSIM,l=" + std::to_string(l),
                      std::to_string(k),
                      CsvWriter::Num(sel.select_seconds)});
      }
    }
    SolveRequest greedy = MakeSolveRequest("greedy", 3, w.params, config);
    greedy.opinions = &opinions;
    greedy.oi_base = OiBase::kLinearThreshold;
    greedy.lambda = 1.0;
    greedy.mc = 50;
    HOLIM_ASSIGN_OR_RETURN(SolveResult gs, engine.Solve(greedy));
    table.AddRow({"7f", "HepPh", "Modified-GREEDY", "3",
                  CsvWriter::Num(gs.select_seconds)});
  }

  // 7g: DBLP and YouTube under OI (GREEDY omitted: paper reports >1 month).
  for (const std::string& dataset : {std::string("DBLP"),
                                     std::string("YouTube")}) {
    const double shrink = dataset == "DBLP" ? 0.02 : 0.01;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kUniform, config.seed);
    HolimEngine engine(w.graph);
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      for (uint32_t k : SeedGrid(config.max_k)) {
        SolveRequest osim =
            MakeSolveRequest("osim", k, w.params, config, common);
        osim.opinions = &opinions;
        osim.l = l;
        HOLIM_ASSIGN_OR_RETURN(SolveResult sel, engine.Solve(osim));
        table.AddRow({"7g", dataset, "OSIM,l=" + std::to_string(l),
                      std::to_string(k),
                      CsvWriter::Num(sel.select_seconds)});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7f-7g): time linear in l and k;\n"
              "Modified-GREEDY off the chart.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figures 7f-7g — OSIM running time (appendix)",
                   Run, [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

// Figures 7f-7g (appendix): OSIM running time with l and k — HepPh under
// OC and DBLP/YouTube under OI.

#include <memory>

#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ScoreGreedyOptions sg_options;
  HOLIM_ASSIGN_OR_RETURN(sg_options.incremental_rescore,
                         ParseRescoreFlag(args, "full"));
  ResultTable table("Figures 7f-7g — OSIM time vs seeds",
                    {"figure", "dataset", "selector", "k", "seconds"},
                    CsvPath("fig7fg_osim_time_large"));

  // 7f: HepPh under OC, including a Modified-GREEDY reference point.
  {
    const double scale = std::min(config.scale, 0.05);
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload("HepPh", scale, DiffusionModel::kLinearThreshold));
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kStandardNormal, config.seed);
    std::fill(opinions.interaction.begin(), opinions.interaction.end(), 1.0);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      for (uint32_t k : SeedGrid(max_k)) {
        OsimSelector osim(w.graph, w.params, opinions,
                          OiBase::kLinearThreshold, l, sg_options);
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, osim.Select(k));
        table.AddRow({"7f", "HepPh", "OSIM,l=" + std::to_string(l),
                      std::to_string(k),
                      CsvWriter::Num(sel.elapsed_seconds)});
      }
    }
    McOptions greedy_mc;
    greedy_mc.num_simulations = 50;
    greedy_mc.seed = config.seed;
    auto objective = std::make_shared<EffectiveOpinionObjective>(
        w.graph, w.params, opinions, OiBase::kLinearThreshold, 1.0,
        greedy_mc);
    GreedySelector greedy(w.graph, objective, "Modified-GREEDY");
    HOLIM_ASSIGN_OR_RETURN(SeedSelection gs, greedy.Select(3));
    table.AddRow({"7f", "HepPh", "Modified-GREEDY", "3",
                  CsvWriter::Num(gs.elapsed_seconds)});
  }

  // 7g: DBLP and YouTube under OI (GREEDY omitted: paper reports >1 month).
  for (const std::string& dataset : {std::string("DBLP"),
                                     std::string("YouTube")}) {
    const double shrink = dataset == "DBLP" ? 0.02 : 0.01;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kUniform, config.seed);
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      for (uint32_t k : SeedGrid(config.max_k)) {
        OsimSelector osim(w.graph, w.params, opinions,
                          OiBase::kIndependentCascade, l, sg_options);
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, osim.Select(k));
        table.AddRow({"7g", dataset, "OSIM,l=" + std::to_string(l),
                      std::to_string(k),
                      CsvWriter::Num(sel.elapsed_seconds)});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7f-7g): time linear in l and k;\n"
              "Modified-GREEDY off the chart.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figures 7f-7g — OSIM running time (appendix)",
                   Run, [](BenchArgs* args) {
                     holim::DeclareRescoreFlag(args, "full");
                   });
}

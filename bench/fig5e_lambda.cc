// Figure 5e: effect of the negative-opinion penalty — opinion spread of
// seeds selected with lambda=1 vs lambda=0 on NetHEPT and HepPh.
//
// OSIM's score assignment itself is lambda-free; lambda enters through the
// objective the seeds are *evaluated and greedily grown* against. We follow
// the paper: run OSIM, then evaluate Γoλ=1 of both seed sets, where the
// lambda=0 seeds come from maximizing raw positive opinion mass (we emulate
// this by flipping negative-opinion contributions off in a modified opinion
// vector during selection).

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ResultTable table("Figure 5e — lambda=1 vs lambda=0",
                    {"dataset", "k", "lambda1", "lambda0"},
                    CsvPath("fig5e_lambda"));
  for (const std::string& dataset : {std::string("NetHEPT"),
                                     std::string("HepPh")}) {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale,
                                 DiffusionModel::kIndependentCascade));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    auto grid = SeedGrid(config.max_k);
    const int kInstances = 3;  // paper: averaged over 3 generated instances
    std::vector<double> v1(grid.size(), 0), v0(grid.size(), 0);
    for (int instance = 0; instance < kInstances; ++instance) {
      OpinionParams opinions = MakeRandomOpinions(
          w.graph, OpinionDistribution::kStandardNormal,
          config.seed + 1000 * instance);

      // lambda = 1 selection: plain OSIM (scores net out negatives).
      OsimSelector lambda1_selector(w.graph, w.params, opinions,
                                    OiBase::kIndependentCascade, 3);
      // lambda = 0 selection: negative opinions contribute nothing to the
      // objective; select with negatives zeroed out.
      OpinionParams clipped = opinions;
      for (double& o : clipped.opinion) o = std::max(0.0, o);
      OsimSelector lambda0_selector(w.graph, w.params, clipped,
                                    OiBase::kIndependentCascade, 3);

      HOLIM_ASSIGN_OR_RETURN(SeedSelection s1,
                             lambda1_selector.Select(config.max_k));
      HOLIM_ASSIGN_OR_RETURN(SeedSelection s0,
                             lambda0_selector.Select(config.max_k));
      // Both evaluated under the true objective with lambda = 1 (Def. 7).
      auto e1 = OpinionSpreadAtPrefixes(w.graph, w.params, opinions,
                                        OiBase::kIndependentCascade, s1.seeds,
                                        grid, 1.0, config.mc, config.seed);
      auto e0 = OpinionSpreadAtPrefixes(w.graph, w.params, opinions,
                                        OiBase::kIndependentCascade, s0.seeds,
                                        grid, 1.0, config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        v1[i] += e1[i] / kInstances;
        v0[i] += e0[i] / kInstances;
      }
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({dataset, std::to_string(grid[i]), CsvWriter::Num(v1[i]),
                    CsvWriter::Num(v0[i])});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5e): lambda=1 >= lambda=0 — \n"
              "ignoring negative opinion during selection costs spread.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figure 5e — penalty parameter ablation", Run);
}

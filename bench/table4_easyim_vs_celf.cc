// Table 4: EaSyIM(l=1) vs CELF++, k = 100 — running time and memory on
// NetHEPT / HepPh / DBLP. Paper: EaSyIM ~40-45x faster, ~7x less memory;
// CELF++ DNFs on DBLP.

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  const double scale = args.GetDouble("scale", 0.01);
  // CELF++ budget: skip datasets whose initial pass would exceed this many
  // objective evaluations x simulations (emulates the paper's 7-day DNF).
  // Only the MC oracle pays it — the sketch session's per-evaluation cost
  // is near-O(touched), which is the point of --oracle=sketch.
  const uint64_t celf_budget =
      static_cast<uint64_t>(args.GetInt("celf_budget", 2'000'000));

  ResultTable table(
      "Table 4 — EaSyIM(l=1) vs CELF++ (k=100 scaled)",
      {"dataset", "celf_minutes", "easyim_minutes", "celf_vs_easyim_time",
       "celf_MiB", "easyim_MiB", "celf_vs_easyim_memory"},
      CsvPath("table4_easyim_vs_celf"));
  for (const std::string& dataset :
       {std::string("NetHEPT"), std::string("HepPh"), std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.3 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    HolimEngine engine(w.graph);
    const uint32_t k = std::min<uint32_t>(100, w.graph.num_nodes() / 10);

    SolveRequest easy = MakeSolveRequest("easyim", k, w.params, config);
    easy.l = 1;
    HOLIM_ASSIGN_OR_RETURN(SolveResult easy_sel, engine.Solve(easy));
    const double easy_mib = MemoryMeter::ToMiB(easy_sel.scratch_bytes +
                                               w.graph.num_nodes() * 8);

    const uint32_t celf_mc = 50;
    const uint64_t estimated_work =
        static_cast<uint64_t>(w.graph.num_nodes()) * celf_mc;
    const bool sketch = common.oracle == SpreadOracle::kSketch;
    // MC CELF's memory is a rough per-node model; the sketch oracle's
    // footprint is its measured arena (capacity-based convention),
    // reported by the solve below.
    double celf_mib = MemoryMeter::ToMiB(40ull * w.graph.num_nodes());
    if (!sketch && estimated_work > celf_budget) {
      table.AddRow({dataset, "DNF (budget)",
                    CsvWriter::Num(easy_sel.select_seconds / 60), "-",
                    CsvWriter::Num(celf_mib), CsvWriter::Num(easy_mib),
                    CsvWriter::Num(celf_mib / std::max(1e-9, easy_mib)) +
                        "x"});
      continue;
    }
    SolveRequest celf =
        MakeSolveRequest("celf++", k, w.params, config, common);
    celf.mc = celf_mc;
    celf.num_sketches = celf_mc;
    HOLIM_ASSIGN_OR_RETURN(SolveResult celf_sel, engine.Solve(celf));
    if (sketch) {
      celf_mib = MemoryMeter::ToMiB(celf_sel.sketch_arena_bytes);
    }
    table.AddRow(
        {dataset, CsvWriter::Num(celf_sel.select_seconds / 60),
         CsvWriter::Num(easy_sel.select_seconds / 60),
         CsvWriter::Num(celf_sel.select_seconds /
                        std::max(1e-9, easy_sel.select_seconds)) + "x",
         CsvWriter::Num(celf_mib), CsvWriter::Num(easy_mib),
         CsvWriter::Num(celf_mib / std::max(1e-9, easy_mib)) + "x"});
  }
  table.Print();
  std::printf("\nExpected shape (paper Table 4): EaSyIM 40x+ faster and ~7x\n"
              "lighter; CELF++ does not finish on DBLP.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Table 4 — EaSyIM vs CELF++", Run,
                   [](BenchArgs* args) {
                     args->Declare("celf_budget",
                                   "evaluation budget emulating the paper's "
                                   "7-day timeout (MC oracle only)");
                     DeclareCommonOptions(args, kSpec);
                   });
}

// Table 4: EaSyIM(l=1) vs CELF++, k = 100 — running time and memory on
// NetHEPT / HepPh / DBLP. Paper: EaSyIM ~40-45x faster, ~7x less memory;
// CELF++ DNFs on DBLP.

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(SpreadOracle oracle, ParseOracleFlag(args));
  const double scale = args.GetDouble("scale", 0.01);
  // CELF++ budget: skip datasets whose initial pass would exceed this many
  // objective evaluations x simulations (emulates the paper's 7-day DNF).
  // Only the MC oracle pays it — the sketch session's per-evaluation cost
  // is near-O(touched), which is the point of --oracle=sketch.
  const uint64_t celf_budget =
      static_cast<uint64_t>(args.GetInt("celf_budget", 2'000'000));

  ResultTable table(
      "Table 4 — EaSyIM(l=1) vs CELF++ (k=100 scaled)",
      {"dataset", "celf_minutes", "easyim_minutes", "celf_vs_easyim_time",
       "celf_MiB", "easyim_MiB", "celf_vs_easyim_memory"},
      CsvPath("table4_easyim_vs_celf"));
  for (const std::string& dataset :
       {std::string("NetHEPT"), std::string("HepPh"), std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.3 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t k = std::min<uint32_t>(100, w.graph.num_nodes() / 10);

    EasyImSelector easyim(w.graph, w.params, 1);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection easy_sel, easyim.Select(k));
    EasyImScorer scorer(w.graph, w.params, 1);
    const double easy_mib = MemoryMeter::ToMiB(scorer.ScratchBytes() +
                                               w.graph.num_nodes() * 8);

    McOptions celf_mc;
    celf_mc.num_simulations = 50;
    celf_mc.seed = config.seed;
    const uint64_t estimated_work =
        static_cast<uint64_t>(w.graph.num_nodes()) * celf_mc.num_simulations;
    std::shared_ptr<const SketchOracle> sketch;
    if (oracle == SpreadOracle::kSketch) {
      sketch = MakeSketchOracle(w.graph, w.params, celf_mc.num_simulations,
                                config.seed);
    }
    // MC CELF's memory is a rough per-node model; the sketch oracle's
    // footprint is its measured arena (capacity-based convention).
    const double celf_mib =
        sketch ? MemoryMeter::ToMiB(sketch->ArenaBytes())
               : MemoryMeter::ToMiB(40ull * w.graph.num_nodes());
    if (!sketch && estimated_work > celf_budget) {
      table.AddRow({dataset, "DNF (budget)",
                    CsvWriter::Num(easy_sel.elapsed_seconds / 60), "-",
                    CsvWriter::Num(celf_mib), CsvWriter::Num(easy_mib),
                    CsvWriter::Num(celf_mib / std::max(1e-9, easy_mib)) +
                        "x"});
      continue;
    }
    std::shared_ptr<McObjective> objective;
    if (sketch) {
      objective = std::make_shared<SketchSpreadObjective>(sketch);
    } else {
      objective =
          std::make_shared<SpreadObjective>(w.graph, w.params, celf_mc);
    }
    CelfSelector celf(w.graph, objective, true, "CELF++");
    HOLIM_ASSIGN_OR_RETURN(SeedSelection celf_sel, celf.Select(k));
    table.AddRow(
        {dataset, CsvWriter::Num(celf_sel.elapsed_seconds / 60),
         CsvWriter::Num(easy_sel.elapsed_seconds / 60),
         CsvWriter::Num(celf_sel.elapsed_seconds /
                        std::max(1e-9, easy_sel.elapsed_seconds)) + "x",
         CsvWriter::Num(celf_mib), CsvWriter::Num(easy_mib),
         CsvWriter::Num(celf_mib / std::max(1e-9, easy_mib)) + "x"});
  }
  table.Print();
  std::printf("\nExpected shape (paper Table 4): EaSyIM 40x+ faster and ~7x\n"
              "lighter; CELF++ does not finish on DBLP.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Table 4 — EaSyIM vs CELF++", Run,
                   [](BenchArgs* args) {
                     args->Declare("celf_budget",
                                   "evaluation budget emulating the paper's "
                                   "7-day timeout (MC oracle only)");
                     DeclareOracleFlag(args);
                   });
}

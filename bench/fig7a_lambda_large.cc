// Figure 7a (appendix): lambda=1 vs lambda=0 on DBLP and YouTube.

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ResultTable table("Figure 7a — lambda=1 vs lambda=0 (large datasets)",
                    {"dataset", "k", "lambda1", "lambda0"},
                    CsvPath("fig7a_lambda_large"));
  for (const std::string& dataset : {std::string("DBLP"),
                                     std::string("YouTube")}) {
    const double shrink = dataset == "DBLP" ? 0.02 : 0.01;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kUniform, config.seed);
    OsimSelector lambda1_selector(w.graph, w.params, opinions,
                                  OiBase::kIndependentCascade, 3);
    OpinionParams clipped = opinions;
    for (double& o : clipped.opinion) o = std::max(0.0, o);
    OsimSelector lambda0_selector(w.graph, w.params, clipped,
                                  OiBase::kIndependentCascade, 3);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection s1,
                           lambda1_selector.Select(config.max_k));
    HOLIM_ASSIGN_OR_RETURN(SeedSelection s0,
                           lambda0_selector.Select(config.max_k));
    auto grid = SeedGrid(config.max_k);
    auto v1 = OpinionSpreadAtPrefixes(w.graph, w.params, opinions,
                                      OiBase::kIndependentCascade, s1.seeds,
                                      grid, 1.0, config.mc, config.seed);
    auto v0 = OpinionSpreadAtPrefixes(w.graph, w.params, opinions,
                                      OiBase::kIndependentCascade, s0.seeds,
                                      grid, 1.0, config.mc, config.seed);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({dataset, std::to_string(grid[i]), CsvWriter::Num(v1[i]),
                    CsvWriter::Num(v0[i])});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 7a): lambda=1 >= lambda=0.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 7a — penalty ablation on DBLP/YouTube", Run);
}

// Table 2: dataset statistics. Prints paper-reported shape next to the
// synthetic stand-in's measured shape so the substitution is auditable.

#include "common.h"

using namespace holim;
using namespace holim::bench;

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Table 2 — datasets: paper shape vs synthetic stand-in (at --scale)",
      [](const BenchArgs& args) -> Status {
        auto config = ReadCommonConfig(args);
        ResultTable table(
            "Table 2",
            {"dataset", "paper_n", "paper_m", "type", "paper_avg_deg",
             "paper_diam90", "gen_n", "gen_arcs", "gen_avg_deg", "gen_diam90"},
            CsvPath("table2_datasets"));
        for (const auto& spec : AllDatasetSpecs()) {
          // Large datasets get an extra shrink so the table finishes fast.
          const bool large = spec.paper_nodes > 2'000'000;
          const double scale = config.scale * (large ? 0.05 : 1.0);
          HOLIM_ASSIGN_OR_RETURN(Graph g,
                                 LoadSyntheticDataset(spec.name, scale));
          auto stats = ComputeGraphStats(g, 16, config.seed);
          table.AddRow({spec.name, std::to_string(spec.paper_nodes),
                        std::to_string(spec.paper_edges),
                        spec.directed ? "Directed" : "Undirected",
                        CsvWriter::Num(spec.paper_avg_degree),
                        CsvWriter::Num(spec.paper_diameter90),
                        std::to_string(stats.num_nodes),
                        std::to_string(stats.num_edges),
                        CsvWriter::Num(stats.avg_out_degree),
                        CsvWriter::Num(stats.effective_diameter_90)});
        }
        table.Print();
        return Status::OK();
      });
}

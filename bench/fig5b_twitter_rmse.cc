// Figure 5b: normalized RMSE (%) of predicted opinion spread vs ground
// truth on the Twitter substrate as the seed budget varies. The seeds are
// the topic originators truncated/extended to k.

#include <cmath>

#include "common.h"
#include "data/twitter.h"
#include "diffusion/independent_cascade.h"
#include "diffusion/oc_model.h"
#include "graph/subgraph.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  TwitterCorpusOptions options;
  options.num_users =
      static_cast<NodeId>(std::max(2000.0, 1'600'000 * config.scale * 0.1));
  options.num_topics = static_cast<uint32_t>(args.GetInt("topics", 10));
  options.originators_per_topic = 24;
  options.seed = config.seed;
  HOLIM_ASSIGN_OR_RETURN(TwitterCorpus corpus, BuildTwitterCorpus(options));

  ResultTable table("Figure 5b — normalized RMSE vs seeds (%)",
                    {"k", "IC", "OC", "OI"}, CsvPath("fig5b_twitter_rmse"));
  McOptions mc;
  mc.num_simulations = config.mc;
  mc.seed = config.seed;

  for (uint32_t k : {5u, 10u, 15u, 20u}) {
    double se_oi = 0, se_oc = 0, se_ic = 0, norm = 0;
    uint32_t counted = 0;
    for (const TopicData& topic : corpus.topics) {
      if (topic.originators.size() < k) continue;
      ++counted;
      std::vector<NodeId> seeds(topic.originators.begin(),
                                topic.originators.begin() + k);
      const Graph& sub = topic.subgraph.graph;
      OpinionParams local;
      local.opinion =
          ProjectNodeValues(topic.subgraph, corpus.estimated.opinion);
      local.interaction =
          ProjectEdgeValues(topic.subgraph, corpus.estimated.interaction);
      InfluenceParams influence = MakeUniformIc(sub, 1.0);
      InfluenceParams lt = MakeLinearThreshold(sub);

      // Ground truth restricted to cascades reachable from these k seeds is
      // approximated by the full-topic truth scaled by seed share.
      const double gt = topic.ground_truth_spread *
                        static_cast<double>(k) / topic.originators.size();
      const double oi = EstimateOpinionSpread(sub, influence, local,
                                              OiBase::kIndependentCascade,
                                              seeds, 1.0, mc)
                            .opinion_spread;
      const double oc = EstimateOcOpinionSpread(sub, lt, local, seeds, mc);
      // IC static-opinion baseline (see fig5a).
      double ic = 0;
      {
        IcSimulator sim(sub, influence);
        Rng rng(mc.seed);
        double acc = 0;
        for (uint32_t r = 0; r < mc.num_simulations; ++r) {
          const Cascade& cascade = sim.Run(seeds, rng);
          for (std::size_t i = seeds.size(); i < cascade.order.size(); ++i) {
            acc += local.opinion[cascade.order[i].node];
          }
        }
        ic = acc / mc.num_simulations;
      }
      se_oi += (oi - gt) * (oi - gt);
      se_oc += (oc - gt) * (oc - gt);
      se_ic += (ic - gt) * (ic - gt);
      norm += gt * gt;
    }
    if (counted == 0 || norm == 0) continue;
    table.AddRow({std::to_string(k),
                  CsvWriter::Num(100 * std::sqrt(se_ic / norm)),
                  CsvWriter::Num(100 * std::sqrt(se_oc / norm)),
                  CsvWriter::Num(100 * std::sqrt(se_oi / norm))});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5b): OI lowest error, IC highest.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5b — normalized RMSE of opinion-spread prediction",
                   Run, [](BenchArgs* args) {
                     args->Declare("topics", "number of topic subgraphs");
                   });
}

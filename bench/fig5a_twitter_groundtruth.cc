// Figure 5a: average opinion spread per topic on the Twitter substrate,
// k = 50 (paper uses the real originators as seeds and compares the spread
// predicted by IC / OC / OI against the ground-truth cascade).

#include <cmath>

#include "common.h"
#include "data/twitter.h"
#include "diffusion/independent_cascade.h"
#include "diffusion/oc_model.h"
#include "graph/subgraph.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  TwitterCorpusOptions options;
  options.num_users =
      static_cast<NodeId>(std::max(2000.0, 1'600'000 * config.scale * 0.1));
  options.num_topics = static_cast<uint32_t>(args.GetInt("topics", 12));
  options.seed = config.seed;
  HOLIM_ASSIGN_OR_RETURN(TwitterCorpus corpus, BuildTwitterCorpus(options));

  std::printf("corpus: %u users, %zu topics; opinion estimation error "
              "seeds=%.2f%% non-seeds=%.2f%% (paper: 3.43%% / 8.57%%)\n",
              corpus.background.num_nodes(), corpus.topics.size(),
              100 * corpus.seed_opinion_error,
              100 * corpus.nonseed_opinion_error);

  ResultTable table("Figure 5a — per-topic opinion spread vs ground truth",
                    {"topic", "GroundTruth", "OI", "OC", "IC"},
                    CsvPath("fig5a_twitter_groundtruth"));
  McOptions mc;
  mc.num_simulations = config.mc;
  mc.seed = config.seed;

  double err_oi = 0, err_oc = 0, err_ic = 0;
  double avg_gt = 0, avg_oi = 0, avg_oc = 0, avg_ic = 0;
  for (const TopicData& topic : corpus.topics) {
    const Graph& sub = topic.subgraph.graph;
    // Project the corpus-level estimated parameters onto the topic graph.
    OpinionParams local;
    local.opinion = ProjectNodeValues(topic.subgraph, corpus.estimated.opinion);
    local.interaction =
        ProjectEdgeValues(topic.subgraph, corpus.estimated.interaction);
    // The topic subgraph IS the recorded activation trace (every node in
    // it tweeted), so the first layer replays activation with p = 1 and the
    // three models differ only in their *opinion* dynamics — exactly what
    // Fig. 5a compares.
    InfluenceParams influence = MakeUniformIc(sub, 1.0);
    InfluenceParams lt = MakeLinearThreshold(sub);

    // OI prediction: estimated opinions + estimated interactions.
    const double oi = EstimateOpinionSpread(sub, influence, local,
                                            OiBase::kIndependentCascade,
                                            topic.originators, 1.0, mc)
                          .opinion_spread;
    // OC prediction: LT layer, opinion averaging without interaction.
    const double oc =
        EstimateOcOpinionSpread(sub, lt, local, topic.originators, mc);
    // IC prediction: opinion-oblivious activation; each activated node
    // contributes its static estimated opinion (no change dynamics).
    double ic = 0;
    {
      IcSimulator sim(sub, influence);
      Rng rng(mc.seed);
      double acc = 0;
      for (uint32_t r = 0; r < mc.num_simulations; ++r) {
        const Cascade& cascade = sim.Run(topic.originators, rng);
        for (std::size_t i = topic.originators.size();
             i < cascade.order.size(); ++i) {
          acc += local.opinion[cascade.order[i].node];
        }
      }
      ic = acc / mc.num_simulations;
    }
    const double gt = topic.ground_truth_spread;
    table.AddRow({topic.hashtag, CsvWriter::Num(gt), CsvWriter::Num(oi),
                  CsvWriter::Num(oc), CsvWriter::Num(ic)});
    err_oi += std::abs(oi - gt);
    err_oc += std::abs(oc - gt);
    err_ic += std::abs(ic - gt);
    avg_gt += gt;
    avg_oi += oi;
    avg_oc += oc;
    avg_ic += ic;
  }
  const double t = static_cast<double>(corpus.topics.size());
  table.AddRow({"Average", CsvWriter::Num(avg_gt / t),
                CsvWriter::Num(avg_oi / t), CsvWriter::Num(avg_oc / t),
                CsvWriter::Num(avg_ic / t)});
  table.Print();
  std::printf(
      "\nmean |error| vs ground truth:  OI=%.2f  OC=%.2f  IC=%.2f\n"
      "Expected shape (paper Fig. 5a): OI closest to ground truth.\n",
      err_oi / t, err_oc / t, err_ic / t);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5a — Twitter topics: model predictions vs "
                   "ground-truth opinion spread (k=originators)",
                   Run, [](BenchArgs* args) {
                     args->Declare("topics", "number of topic subgraphs");
                   });
}

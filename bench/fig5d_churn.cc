// Figure 5d: opinion spread vs seeds on the PAKDD churn substrate for
// OI-, OC- and IC-selected seeds (the paper's churn-prevention use case).

#include "algo/score_greedy.h"
#include "common.h"
#include "data/churn.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ChurnOptions options;
  options.num_customers =
      static_cast<uint32_t>(std::max(2000.0, 34'000 * config.scale));
  options.seed = config.seed;
  HOLIM_ASSIGN_OR_RETURN(ChurnData data, BuildChurnData(options));
  std::printf("churn graph: %u customers, %llu edges, holdout accuracy "
              "%.1f%%\n",
              data.graph.num_nodes(),
              static_cast<unsigned long long>(data.graph.num_edges()),
              100 * data.holdout_sign_accuracy);

  InfluenceParams lt = MakeLinearThreshold(data.graph);
  OsimSelector oi_selector(data.graph, data.influence, data.opinions,
                           OiBase::kIndependentCascade, 3);
  OpinionParams phi_one = data.opinions;
  std::fill(phi_one.interaction.begin(), phi_one.interaction.end(), 1.0);
  OsimSelector oc_selector(data.graph, lt, phi_one, OiBase::kLinearThreshold,
                           3);
  EasyImSelector ic_selector(data.graph, data.influence, 3);

  const uint32_t max_k = std::min<uint32_t>(200, config.max_k * 2);
  HOLIM_ASSIGN_OR_RETURN(SeedSelection oi_seeds, oi_selector.Select(max_k));
  HOLIM_ASSIGN_OR_RETURN(SeedSelection oc_seeds, oc_selector.Select(max_k));
  HOLIM_ASSIGN_OR_RETURN(SeedSelection ic_seeds, ic_selector.Select(max_k));

  ResultTable table("Figure 5d — opinion spread vs seeds (churn)",
                    {"k", "OI", "OC", "IC"}, CsvPath("fig5d_churn"));
  auto grid = SeedGrid(max_k);
  auto evaluate = [&](const std::vector<NodeId>& seeds) {
    return OpinionSpreadAtPrefixes(data.graph, data.influence, data.opinions,
                                   OiBase::kIndependentCascade, seeds, grid,
                                   1.0, config.mc, config.seed);
  };
  auto oi_values = evaluate(oi_seeds.seeds);
  auto oc_values = evaluate(oc_seeds.seeds);
  auto ic_values = evaluate(ic_seeds.seeds);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({std::to_string(grid[i]), CsvWriter::Num(oi_values[i]),
                  CsvWriter::Num(oc_values[i]), CsvWriter::Num(ic_values[i])});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5d): OI dominates OC and IC.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5d — churn prevention: opinion spread of "
                   "OI/OC/IC-selected retention targets",
                   Run);
}

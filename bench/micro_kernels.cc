// Google-benchmark microbenchmarks for the hot kernels: EaSyIM / OSIM score
// assignment, one IC simulation, and RR-set sampling. These support the
// complexity contracts asserted in DESIGN.md (O(l(m+n)) score passes,
// O(m+n) simulation).

#include <benchmark/benchmark.h>

#include "algo/easyim.h"
#include "algo/osim.h"
#include "algo/rr_sets.h"
#include "diffusion/independent_cascade.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

struct Fixture {
  Graph graph;
  InfluenceParams params;
  OpinionParams opinions;
};

const Fixture& GetFixture(int64_t n) {
  static std::map<int64_t, Fixture>* cache = new std::map<int64_t, Fixture>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Fixture f;
    f.graph = GenerateBarabasiAlbert(static_cast<NodeId>(n), 4, 99)
                  .ValueOrDie();
    f.params = MakeUniformIc(f.graph, 0.1);
    f.opinions =
        MakeRandomOpinions(f.graph, OpinionDistribution::kUniform, 7);
    it = cache->emplace(n, std::move(f)).first;
  }
  return it->second;
}

void BM_EasyImScorePass(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  EasyImScorer scorer(f.graph, f.params, 3);
  EpochSet excluded(f.graph.num_nodes());
  excluded.Reset(f.graph.num_nodes());
  std::vector<double> scores;
  for (auto _ : state) {
    scorer.AssignScores(excluded, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          (f.graph.num_edges() + f.graph.num_nodes()));
}
BENCHMARK(BM_EasyImScorePass)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OsimScorePass(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  OsimScorer scorer(f.graph, f.params, f.opinions, 3);
  EpochSet excluded(f.graph.num_nodes());
  excluded.Reset(f.graph.num_nodes());
  std::vector<double> scores;
  for (auto _ : state) {
    scorer.AssignScores(excluded, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          (f.graph.num_edges() + f.graph.num_nodes()));
}
BENCHMARK(BM_OsimScorePass)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EasyImScorePassParallel(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  EasyImScorer scorer(f.graph, f.params, 3);
  EpochSet excluded(f.graph.num_nodes());
  excluded.Reset(f.graph.num_nodes());
  std::vector<double> scores;
  for (auto _ : state) {
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          (f.graph.num_edges() + f.graph.num_nodes()));
}
BENCHMARK(BM_EasyImScorePassParallel)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_OsimScorePassParallel(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  OsimScorer scorer(f.graph, f.params, f.opinions, 3);
  EpochSet excluded(f.graph.num_nodes());
  excluded.Reset(f.graph.num_nodes());
  std::vector<double> scores;
  for (auto _ : state) {
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          (f.graph.num_edges() + f.graph.num_nodes()));
}
BENCHMARK(BM_OsimScorePassParallel)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8});

// One-seed-per-round dirty-frontier rescore against the level table (an
// early ScoreGREEDY round; compare with BM_*ScorePass). The exclusion set
// is rebuilt (outside the timed region) whenever it reaches 1% of the
// graph so iterations keep measuring sparse-exclusion rescores instead of
// drifting toward an almost-empty graph.
template <typename Scorer>
void RunIncrementalRescore(benchmark::State& state, const Graph& graph,
                           Scorer& scorer) {
  const NodeId n = graph.num_nodes();
  const NodeId reset_at = std::max<NodeId>(1, n / 100);
  EpochSet excluded(n);
  excluded.Reset(n);
  std::vector<double> scores;
  scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
  NodeId next = 1, excluded_count = 0;
  std::vector<NodeId> newly(1);
  for (auto _ : state) {
    if (excluded_count == reset_at) {
      state.PauseTiming();
      excluded.Reset(n);
      excluded_count = 0;
      scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
      state.ResumeTiming();
    }
    newly[0] = next;
    excluded.Insert(next);
    ++excluded_count;
    scorer.AssignScoresIncremental(excluded, &newly, &scores, nullptr);
    benchmark::DoNotOptimize(scores.data());
    next = (next + 7919) % n;  // stride; re-picks impossible before reset
  }
}

void BM_EasyImIncrementalRescore(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  EasyImScorer scorer(f.graph, f.params, 3);
  RunIncrementalRescore(state, f.graph, scorer);
}
BENCHMARK(BM_EasyImIncrementalRescore)->Arg(10000)->Arg(100000);

void BM_OsimIncrementalRescore(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  OsimScorer scorer(f.graph, f.params, f.opinions, 3);
  RunIncrementalRescore(state, f.graph, scorer);
}
BENCHMARK(BM_OsimIncrementalRescore)->Arg(10000)->Arg(100000);

void BM_IcSimulation(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  IcSimulator sim(f.graph, f.params);
  Rng rng(1);
  const NodeId seeds[] = {0, 1, 2, 3, 4};
  std::size_t total = 0;
  for (auto _ : state) {
    total += sim.Run(seeds, rng).order.size();
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_IcSimulation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RrSetSampling(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  RrCollection rr(f.graph, f.params);
  Rng rng(2);
  for (auto _ : state) {
    rr.Clear();
    rr.Generate(100, rng);
    benchmark::DoNotOptimize(rr.num_sets());
  }
}
BENCHMARK(BM_RrSetSampling)->Arg(1000)->Arg(10000);

void BM_RrSetSamplingParallel(benchmark::State& state) {
  const Fixture& f = GetFixture(state.range(0));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  RrCollection rr(f.graph, f.params);
  uint64_t seed = 2;
  for (auto _ : state) {
    rr.Clear();
    rr.GenerateParallel(2048, seed++, &pool);
    benchmark::DoNotOptimize(rr.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RrSetSamplingParallel)
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Args({100000, 1})
    ->Args({100000, 4});

void BM_RrSelectMaxCoverage(benchmark::State& state) {
  // CELF against the persistent incremental index (built once at generate).
  const Fixture& f = GetFixture(state.range(0));
  RrCollection rr(f.graph, f.params);
  rr.GenerateParallel(static_cast<std::size_t>(state.range(1)), 3, nullptr);
  for (auto _ : state) {
    auto coverage = rr.SelectMaxCoverage(50);
    benchmark::DoNotOptimize(coverage.seeds.data());
  }
}
BENCHMARK(BM_RrSelectMaxCoverage)->Args({10000, 20000})->Args({100000, 50000});

void BM_RrSelectMaxCoverageRebuild(benchmark::State& state) {
  // Legacy path: rebuilds the transient inverted index on every call.
  const Fixture& f = GetFixture(state.range(0));
  RrCollection rr(f.graph, f.params, /*track_widths=*/false,
                  /*build_index=*/false);
  rr.GenerateParallel(static_cast<std::size_t>(state.range(1)), 3, nullptr);
  for (auto _ : state) {
    auto coverage = rr.SelectMaxCoverageRebuild(50);
    benchmark::DoNotOptimize(coverage.seeds.data());
  }
}
BENCHMARK(BM_RrSelectMaxCoverageRebuild)
    ->Args({10000, 20000})
    ->Args({100000, 50000});

}  // namespace
}  // namespace holim

BENCHMARK_MAIN();

// Figures 7b-7c (appendix): OSIM l-sweep — HepPh under the OC model
// (o ~ N(0,1)) and DBLP/YouTube under OI (o ~ rand(-1,1)).

#include <memory>

#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ResultTable table("Figures 7b-7c — OSIM l-sweep (OC / OI)",
                    {"figure", "dataset", "model", "selector", "k",
                     "opinion_spread"},
                    CsvPath("fig7bc_osim_lsweep"));

  // 7b: HepPh under OC (phi == 1, LT layer), vs Modified-GREEDY.
  {
    const double scale = std::min(config.scale, 0.05);
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload("HepPh", scale, DiffusionModel::kLinearThreshold));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kStandardNormal, config.seed);
    std::fill(opinions.interaction.begin(), opinions.interaction.end(), 1.0);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    auto grid = SeedGrid(max_k);
    McOptions greedy_mc;
    greedy_mc.num_simulations = 60;
    greedy_mc.seed = config.seed;
    auto objective = std::make_shared<EffectiveOpinionObjective>(
        w.graph, w.params, opinions, OiBase::kLinearThreshold, 1.0,
        greedy_mc);
    GreedySelector greedy(w.graph, objective, "Modified-GREEDY");
    HOLIM_ASSIGN_OR_RETURN(SeedSelection gs,
                           greedy.Select(std::min<uint32_t>(max_k, 10)));
    auto gv = OpinionSpreadAtPrefixes(w.graph, w.params, opinions,
                                      OiBase::kLinearThreshold, gs.seeds,
                                      SeedGrid(std::min<uint32_t>(max_k, 10)),
                                      1.0, config.mc, config.seed);
    auto small_grid = SeedGrid(std::min<uint32_t>(max_k, 10));
    for (std::size_t i = 0; i < small_grid.size(); ++i) {
      table.AddRow({"7b", "HepPh", "OC", "GREEDY",
                    std::to_string(small_grid[i]), CsvWriter::Num(gv[i])});
    }
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      OsimSelector osim(w.graph, w.params, opinions, OiBase::kLinearThreshold,
                        l);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection seeds, osim.Select(max_k));
      auto values = OpinionSpreadAtPrefixes(
          w.graph, w.params, opinions, OiBase::kLinearThreshold, seeds.seeds,
          grid, 1.0, config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({"7b", "HepPh", "OC", "OSIM,l=" + std::to_string(l),
                      std::to_string(grid[i]), CsvWriter::Num(values[i])});
      }
    }
  }

  // 7c: DBLP and YouTube under OI with uniform opinions; GREEDY omitted
  // (paper: not scalable).
  for (const std::string& dataset : {std::string("DBLP"),
                                     std::string("YouTube")}) {
    const double shrink = dataset == "DBLP" ? 0.02 : 0.01;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kUniform, config.seed);
    auto grid = SeedGrid(config.max_k);
    for (uint32_t l : {1u, 2u, 3u, 5u}) {
      OsimSelector osim(w.graph, w.params, opinions,
                        OiBase::kIndependentCascade, l);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection seeds, osim.Select(config.max_k));
      auto values = OpinionSpreadAtPrefixes(
          w.graph, w.params, opinions, OiBase::kIndependentCascade,
          seeds.seeds, grid, 1.0, config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({"7c", dataset, "OI", "OSIM,l=" + std::to_string(l),
                      std::to_string(grid[i]), CsvWriter::Num(values[i])});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7b-7c): spread grows with l,\n"
              "best around l=3; OSIM tracks GREEDY on HepPh.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figures 7b-7c — OSIM l-sweep (appendix)",
                   Run);
}

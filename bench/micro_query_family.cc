// Query-family microbenchmark: the four non-topk query kinds solved
// through HolimEngine on one prepared BA/WC graph, emitting
// BENCH_query.json for the CI bench-gate (tools/check_bench_regression.py,
// "query_family" dispatch).
//
// Deterministic parity metrics (gated exactly — they are contracts, not
// timings):
//   * budgeted.uniform_parity        — uniform-cost budgeted CELF at
//     budget == k is bitwise-identical to plain top-k CELF (1.0 = equal);
//   * budgeted.lazy_eager_seed_match — lazy (CELF) and eager (greedy)
//     budgeted selection agree seed-for-seed under degree costs;
//   * targeted.allones_parity        — all-ones targeted selection is
//     bitwise-identical to untargeted (weighted kernels reproduce the
//     integer path);
//   * targeted.topic_gain_ratio      — weighted spread of the targeted
//     solve over the untargeted winner rescored on the same Twitter-topic
//     weights (>= 1.0: targeting must not lose to not targeting);
//   * explain.contribution_sum_parity — sum of explain's per-seed
//     contributions over the evaluate spread (exactly 1.0 at the
//     power-of-two snapshot count used here).
//
// Timing ratios (best-of-two in CI, machine-transferable):
//   * budgeted.lazy_speedup          — eager budgeted greedy seconds over
//     lazy budgeted CELF seconds on the same session oracle;
//   * explain.explain_speedup_vs_solve — selecting k seeds vs explaining
//     the same k seeds (attribution must cost far less than search).
//
// Single-thread on purpose: ratios of single-thread times transfer.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/engine_support.h"
#include "bench_support/query_support.h"
#include "common.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace holim;

namespace {

Status Run(const BenchArgs& args) {
  const NodeId nodes = static_cast<NodeId>(args.GetInt("nodes", 30000));
  const uint32_t snapshots =
      static_cast<uint32_t>(args.GetInt("snapshots", 256));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 10));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path = args.GetString("json", "BENCH_query.json");
  if (nodes == 0 || snapshots == 0 || k == 0) {
    return Status::InvalidArgument(
        "--nodes/--snapshots/--k must be positive");
  }

  HOLIM_ASSIGN_OR_RETURN(Graph graph, GenerateBarabasiAlbert(nodes, 4, seed));
  InfluenceParams params = MakeWeightedCascade(graph);
  std::printf("graph: n=%u m=%llu, WC weights, R=%u snapshots, k=%u\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), snapshots,
              k);

  HolimEngine engine(graph);
  auto make_request = [&](const char* algorithm) {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = k;
    request.params = &params;
    request.mc = snapshots;
    request.seed = seed;
    request.oracle = SpreadOracle::kSketch;
    request.num_sketches = snapshots;  // power of two: exact telescoping
    request.evaluate_spread = true;
    return request;
  };

  // --- top-k reference (also warms the shared arena) ---------------------
  SolveRequest topk = make_request("celf");
  HOLIM_ASSIGN_OR_RETURN(SolveResult plain, engine.Solve(topk));
  const double solve_seconds = plain.select_seconds;
  std::printf("topk celf: spread %.2f in %.3fs\n", plain.spread,
              solve_seconds);

  // --- budgeted: uniform parity + lazy-vs-eager under degree costs -------
  SolveRequest uniform = make_request("celf");
  uniform.query = QueryKind::kBudgeted;
  uniform.budget = static_cast<double>(k);
  HOLIM_ASSIGN_OR_RETURN(SolveResult capped, engine.Solve(uniform));
  const bool uniform_parity = capped.seeds == plain.seeds &&
                              capped.seed_scores == plain.seed_scores &&
                              capped.spread == plain.spread;

  HOLIM_ASSIGN_OR_RETURN(std::vector<double> degree_costs,
                         MaterializeCosts("degree", graph));
  double total_cost = 0.0;
  for (const double c : degree_costs) total_cost += c;
  // A budget around k average costs: several seeds fit, hubs force the
  // benefit-per-cost trade-off (and the drop rule) to matter.
  const double budget = k * total_cost / graph.num_nodes();

  SolveRequest lazy = make_request("celf");
  lazy.query = QueryKind::kBudgeted;
  lazy.node_costs = degree_costs;
  lazy.budget = budget;
  HOLIM_ASSIGN_OR_RETURN(SolveResult lazy_result, engine.Solve(lazy));

  SolveRequest eager = make_request("greedy");
  eager.query = QueryKind::kBudgeted;
  eager.node_costs = degree_costs;
  eager.budget = budget;
  HOLIM_ASSIGN_OR_RETURN(SolveResult eager_result, engine.Solve(eager));

  const bool lazy_eager_match = lazy_result.seeds == eager_result.seeds;
  const double lazy_speedup =
      eager_result.select_seconds /
      std::max(1e-9, lazy_result.select_seconds);
  std::printf("budgeted (budget %.1f, degree costs): %zu seeds, cost %.1f, "
              "lazy %.3fs vs eager %.3fs -> %.1fx\n",
              budget, lazy_result.seeds.size(), lazy_result.total_cost,
              lazy_result.select_seconds, eager_result.select_seconds,
              lazy_speedup);

  // --- targeted: all-ones parity + Twitter-topic gain --------------------
  SolveRequest allones = make_request("celf");
  allones.query = QueryKind::kTargeted;
  allones.target_weights.assign(graph.num_nodes(), 1.0);
  HOLIM_ASSIGN_OR_RETURN(SolveResult aimed_uniform, engine.Solve(allones));
  const bool allones_parity =
      aimed_uniform.seeds == plain.seeds &&
      aimed_uniform.seed_scores == plain.seed_scores &&
      aimed_uniform.targeted_spread == aimed_uniform.spread;

  HOLIM_ASSIGN_OR_RETURN(std::vector<double> topic_weights,
                         MaterializeTargets("twitter-topic:1", graph, seed));
  SolveRequest targeted = make_request("celf");
  targeted.query = QueryKind::kTargeted;
  targeted.target_weights = topic_weights;
  HOLIM_ASSIGN_OR_RETURN(SolveResult aimed, engine.Solve(targeted));

  SolveRequest rescored = make_request("celf");
  rescored.query = QueryKind::kEvaluate;
  rescored.given_seeds = plain.seeds;
  rescored.target_weights = topic_weights;
  HOLIM_ASSIGN_OR_RETURN(SolveResult baseline, engine.Solve(rescored));
  const double topic_gain_ratio =
      aimed.targeted_spread / std::max(1e-9, baseline.targeted_spread);
  std::printf("targeted (twitter-topic:1): sigma_w %.2f vs untargeted "
              "winner %.2f -> %.2fx\n",
              aimed.targeted_spread, baseline.targeted_spread,
              topic_gain_ratio);

  // --- explain: exact telescoping + attribution cost ---------------------
  SolveRequest evaluate = make_request("celf");
  evaluate.query = QueryKind::kEvaluate;
  evaluate.given_seeds = plain.seeds;
  HOLIM_ASSIGN_OR_RETURN(SolveResult scored, engine.Solve(evaluate));

  SolveRequest explain = make_request("celf");
  explain.query = QueryKind::kExplain;
  explain.given_seeds = plain.seeds;
  constexpr int kExplainReps = 20;
  double explain_seconds = 0.0;
  double contribution_sum = 0.0;
  for (int rep = 0; rep < kExplainReps; ++rep) {
    HOLIM_ASSIGN_OR_RETURN(SolveResult attributed, engine.Solve(explain));
    explain_seconds += attributed.spread_seconds;
    contribution_sum = 0.0;
    for (const double c : attributed.seed_contributions) {
      contribution_sum += c;
    }
  }
  explain_seconds /= kExplainReps;
  const double contribution_sum_parity =
      contribution_sum / std::max(1e-9, scored.spread);
  const double explain_speedup =
      solve_seconds / std::max(1e-9, explain_seconds);
  std::printf("explain: contributions sum %.4f vs evaluate %.4f "
              "(parity %.6f), %.4fs vs solve %.3fs -> %.0fx\n",
              contribution_sum, scored.spread, contribution_sum_parity,
              explain_seconds, solve_seconds, explain_speedup);

  HOLIM_CHECK(uniform_parity) << "uniform-cost budgeted != topk";
  HOLIM_CHECK(allones_parity) << "all-ones targeted != untargeted";
  HOLIM_CHECK(contribution_sum == scored.spread)
      << "explain contributions do not telescope to the evaluate spread";

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(
      f,
      "{\n  \"bench\": \"query_family\",\n  \"nodes\": %u,\n"
      "  \"edges\": %llu,\n  \"model\": \"WC\",\n  \"k\": %u,\n"
      "  \"snapshots\": %u,\n  \"seed\": %llu,\n"
      "  \"budgeted\": {\n    \"uniform_parity\": %.1f,\n"
      "    \"lazy_eager_seed_match\": %.1f,\n"
      "    \"budget\": %.4f,\n    \"lazy_seconds\": %.6f,\n"
      "    \"eager_seconds\": %.6f,\n    \"lazy_speedup\": %.4f\n  },\n"
      "  \"targeted\": {\n    \"allones_parity\": %.1f,\n"
      "    \"topic_gain_ratio\": %.4f\n  },\n"
      "  \"explain\": {\n    \"contribution_sum_parity\": %.6f,\n"
      "    \"explain_seconds\": %.6f,\n    \"solve_seconds\": %.6f,\n"
      "    \"explain_speedup_vs_solve\": %.4f\n  }\n}\n",
      graph.num_nodes(), static_cast<unsigned long long>(graph.num_edges()),
      k, snapshots, static_cast<unsigned long long>(seed),
      uniform_parity ? 1.0 : 0.0, lazy_eager_match ? 1.0 : 0.0, budget,
      lazy_result.select_seconds, eager_result.select_seconds, lazy_speedup,
      allones_parity ? 1.0 : 0.0, topic_gain_ratio, contribution_sum_parity,
      explain_seconds, solve_seconds, explain_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Query-family microbenchmark (budgeted / targeted / explain)", Run,
      [](BenchArgs* args) {
        args->Declare("nodes", "graph size (default 30000)");
        args->Declare("snapshots",
                      "sketch-oracle live-edge worlds R (default 256 — a "
                      "power of two so explain telescopes exactly)");
        args->Declare("k", "seeds per query (default 10)");
        args->Declare("json", "output JSON path (default BENCH_query.json)");
      });
}

// Figure 5h: memory (graph loading vs execution overhead) of OSIM and
// Modified-GREEDY across the four medium datasets, k = 100.

#include <memory>

#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  ResultTable table(
      "Figure 5h — memory on medium datasets (k=100 scaled)",
      {"dataset", "algorithm", "graph_MiB", "exec_MiB"},
      CsvPath("fig5h_osim_memory"));
  for (const std::string& dataset : MediumDatasetNames()) {
    // Modified-GREEDY appears on the two small datasets, so keep them
    // modest; the larger two only run OSIM.
    const double scale = std::min(config.scale, 0.05);
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale,
                                 DiffusionModel::kIndependentCascade));
    OpinionParams opinions = MakeRandomOpinions(
        w.graph, OpinionDistribution::kStandardNormal, config.seed);
    const double graph_mib = MemoryMeter::ToMiB(
        w.graph.MemoryFootprintBytes() + w.params.MemoryFootprintBytes() +
        opinions.MemoryFootprintBytes());
    const uint32_t k = std::min<uint32_t>(100, w.graph.num_nodes() / 10);

    {
      OsimSelector osim(w.graph, w.params, opinions,
                        OiBase::kIndependentCascade, 3);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection selection, osim.Select(k));
      table.AddRow({dataset, "OSIM", CsvWriter::Num(graph_mib),
                    CsvWriter::Num(MemoryMeter::ToMiB(
                        selection.overhead_bytes))});
    }
    {
      // Modified-GREEDY only on the two small datasets (as in the paper,
      // where it cannot complete on DBLP/YouTube).
      if (dataset == "NetHEPT" || dataset == "HepPh") {
        McOptions mc;
        mc.num_simulations = 30;
        mc.seed = config.seed;
        auto objective = std::make_shared<EffectiveOpinionObjective>(
            w.graph, w.params, opinions, OiBase::kIndependentCascade, 1.0,
            mc);
        GreedySelector greedy(w.graph, objective, "Modified-GREEDY");
        HOLIM_ASSIGN_OR_RETURN(SeedSelection selection,
                               greedy.Select(std::min<uint32_t>(k, 3)));
        table.AddRow({dataset, "Modified-GREEDY", CsvWriter::Num(graph_mib),
                      CsvWriter::Num(MemoryMeter::ToMiB(
                          selection.overhead_bytes))});
      } else {
        table.AddRow({dataset, "Modified-GREEDY", CsvWriter::Num(graph_mib),
                      "DNF (paper: >1 month)"});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5h): execution memory is a small\n"
              "constant overhead above graph loading for both algorithms.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figure 5h — OSIM memory consumption", Run);
}

// RR-engine microbenchmark: sets/sec and bytes/set for the flat-arena
// sketch engine versus the legacy nested-vector serial path, across thread
// counts, plus the incremental_select section — IMM-style append-then-select
// rounds with the persistent incremental index versus the legacy
// rebuild-the-index-every-round path. Emits BENCH_rr_engine.json; the CI
// bench-gate (tools/check_bench_regression.py) fails the job when
// bytes_per_set or the incremental_select speedup regresses against the
// committed baseline (see .github/workflows/ci.yml).

#include <cstdio>
#include <string>
#include <vector>

#include "algo/rr_sets.h"
#include "common.h"
#include "graph/generators.h"

using namespace holim;

namespace {

// The seed's RR sampler: one heap-allocated std::vector per set, sampled
// sequentially. Kept here as the throughput/memory baseline the arena
// engine is measured against.
struct NestedBaseline {
  std::vector<std::vector<NodeId>> sets;

  void Generate(const Graph& g, const InfluenceParams& params,
                std::size_t count, Rng& rng) {
    EpochSet visited(g.num_nodes());
    std::vector<NodeId> stack;
    const bool lt = params.model == DiffusionModel::kLinearThreshold;
    sets.reserve(sets.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId root =
          static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
      visited.Reset(g.num_nodes());
      stack.clear();
      std::vector<NodeId> rr{root};
      visited.Insert(root);
      stack.push_back(root);
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        auto in_neighbors = g.InNeighbors(v);
        auto in_edges = g.InEdgeIds(v);
        if (lt) {
          double r = rng.NextDouble();
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const double w = params.p(in_edges[j]);
            if (r < w) {
              const NodeId u = in_neighbors[j];
              if (!visited.Contains(u)) {
                visited.Insert(u);
                stack.push_back(u);
                rr.push_back(u);
              }
              break;
            }
            r -= w;
          }
        } else {
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const NodeId u = in_neighbors[j];
            if (visited.Contains(u)) continue;
            if (rng.NextBernoulli(params.p(in_edges[j]))) {
              visited.Insert(u);
              stack.push_back(u);
              rr.push_back(u);
            }
          }
        }
      }
      sets.push_back(std::move(rr));
    }
  }

  std::size_t MemoryBytes() const {
    std::size_t bytes = sets.capacity() * sizeof(std::vector<NodeId>);
    for (const auto& rr : sets) bytes += rr.capacity() * sizeof(NodeId);
    return bytes;
  }
};

struct Row {
  std::string engine;
  std::size_t threads;
  double seconds;
  double sets_per_sec;
  double bytes_per_set;
};

// One append-then-select path of the incremental_select comparison.
struct SelectPathStats {
  double generate_seconds = 0.0;
  double select_seconds = 0.0;
  std::vector<RrCollection::CoverageResult> per_round;
};

// Runs `rounds` IMM-style doubling rounds — append `round_sets` sets, then
// select k — timing generation and selection separately. `select` is
// invoked with the collection after each append.
template <typename SelectFn>
SelectPathStats RunSelectRounds(RrCollection& rr, std::size_t rounds,
                                std::size_t round_sets, uint64_t seed,
                                const SelectFn& select) {
  SelectPathStats stats;
  for (std::size_t r = 0; r < rounds; ++r) {
    Timer generate_timer;
    rr.GenerateParallel(round_sets, seed + 1000 * (r + 1), nullptr);
    stats.generate_seconds += generate_timer.ElapsedSeconds();
    Timer select_timer;
    stats.per_round.push_back(select(rr));
    stats.select_seconds += select_timer.ElapsedSeconds();
  }
  return stats;
}

Status Run(const BenchArgs& args) {
  const NodeId nodes =
      static_cast<NodeId>(args.GetInt("nodes", 100000));
  const std::size_t num_sets =
      static_cast<std::size_t>(args.GetInt("sets", 20000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path =
      args.GetString("json", "BENCH_rr_engine.json");
  if (nodes == 0 || num_sets == 0) {
    return Status::InvalidArgument("--nodes and --sets must be positive");
  }

  HOLIM_ASSIGN_OR_RETURN(Graph graph,
                         GenerateBarabasiAlbert(nodes, 4, seed));
  InfluenceParams params = MakeWeightedCascade(graph);
  std::printf("graph: n=%u m=%llu, WC weights, %zu RR sets per run\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), num_sets);

  std::vector<Row> rows;
  {
    NestedBaseline nested;
    Rng rng(seed);
    Timer timer;
    nested.Generate(graph, params, num_sets, rng);
    const double secs = timer.ElapsedSeconds();
    rows.push_back({"nested_serial_seed", 1, secs, num_sets / secs,
                    static_cast<double>(nested.MemoryBytes()) / num_sets});
  }
  {
    RrCollection rr(graph, params);
    Rng rng(seed);
    Timer timer;
    rr.Generate(num_sets, rng);
    const double secs = timer.ElapsedSeconds();
    rows.push_back({"arena_serial", 1, secs, num_sets / secs,
                    static_cast<double>(rr.MemoryBytes()) / num_sets});
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    RrCollection rr(graph, params);
    Timer timer;
    rr.GenerateParallel(num_sets, seed, &pool);
    const double secs = timer.ElapsedSeconds();
    char name[32];
    std::snprintf(name, sizeof(name), "arena_parallel_%zut", threads);
    rows.push_back({name, threads, secs, num_sets / secs,
                    static_cast<double>(rr.MemoryBytes()) / num_sets});
  }

  ResultTable table(
      "RR engine — generation throughput and memory",
      {"engine", "threads", "seconds", "sets_per_sec", "bytes_per_set"},
      bench::CsvPath("micro_rr_engine"));
  for (const Row& r : rows) {
    table.AddRow({r.engine, std::to_string(r.threads), CsvWriter::Num(r.seconds),
                  CsvWriter::Num(r.sets_per_sec),
                  CsvWriter::Num(r.bytes_per_set)});
  }
  table.Print();
  const double speedup_8t = rows.back().sets_per_sec / rows[0].sets_per_sec;
  std::printf("\narena 8-thread vs nested serial seed: %.2fx sets/sec, "
              "%.0f vs %.0f bytes/set\n",
              speedup_8t, rows.back().bytes_per_set, rows[0].bytes_per_set);

  // incremental_select: rounds x (append round_sets, select k), comparing
  // the legacy rebuild-every-round path against the persistent incremental
  // index. Selection output must be identical; only the cost may differ.
  const std::size_t rounds =
      static_cast<std::size_t>(args.GetInt("rounds", 8));
  const std::size_t round_sets =
      static_cast<std::size_t>(args.GetInt("round_sets", 5000));
  const uint32_t select_k = static_cast<uint32_t>(args.GetInt("k", 50));
  if (rounds == 0 || round_sets == 0 || select_k == 0) {
    return Status::InvalidArgument("--rounds/--round_sets/--k must be positive");
  }
  SelectPathStats rebuild_path;
  {
    RrCollection rr(graph, params, /*track_widths=*/false,
                    /*build_index=*/false);
    rebuild_path = RunSelectRounds(
        rr, rounds, round_sets, seed,
        [select_k](RrCollection& c) {
          return c.SelectMaxCoverageRebuild(select_k);
        });
  }
  SelectPathStats incremental_path;
  double index_bytes_per_set = 0.0;
  {
    RrCollection rr(graph, params);
    incremental_path = RunSelectRounds(
        rr, rounds, round_sets, seed,
        [select_k](RrCollection& c) {
          return c.Snapshot().SelectMaxCoverage(select_k);
        });
    index_bytes_per_set =
        static_cast<double>(rr.IndexMemoryBytes()) / rr.num_sets();
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    HOLIM_CHECK(rebuild_path.per_round[r].seeds ==
                incremental_path.per_round[r].seeds)
        << "incremental/rebuild seed divergence in round " << r;
    HOLIM_CHECK(rebuild_path.per_round[r].covered_fraction ==
                incremental_path.per_round[r].covered_fraction)
        << "incremental/rebuild coverage divergence in round " << r;
  }
  const double select_speedup =
      rebuild_path.select_seconds / incremental_path.select_seconds;
  const double end_to_end_speedup =
      (rebuild_path.generate_seconds + rebuild_path.select_seconds) /
      (incremental_path.generate_seconds + incremental_path.select_seconds);
  std::printf(
      "\nincremental_select (%zu rounds x %zu sets, k=%u):\n"
      "  rebuild     generate %.4fs  select %.4fs\n"
      "  incremental generate %.4fs  select %.4fs  (index %.1f B/set)\n"
      "  select speedup %.2fx, end-to-end %.2fx\n",
      rounds, round_sets, select_k, rebuild_path.generate_seconds,
      rebuild_path.select_seconds, incremental_path.generate_seconds,
      incremental_path.select_seconds, index_bytes_per_set, select_speedup,
      end_to_end_speedup);

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(f,
               "{\n  \"bench\": \"rr_engine\",\n  \"nodes\": %u,\n"
               "  \"edges\": %llu,\n  \"model\": \"WC\",\n  \"sets\": %zu,\n"
               "  \"speedup_8t_vs_seed\": %.4f,\n  \"results\": [\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()), num_sets,
               speedup_8t);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.6f, \"sets_per_sec\": %.1f, "
                 "\"bytes_per_set\": %.1f}%s\n",
                 r.engine.c_str(), r.threads, r.seconds, r.sets_per_sec,
                 r.bytes_per_set, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"incremental_select\": {\n"
               "    \"rounds\": %zu,\n    \"sets_per_round\": %zu,\n"
               "    \"k\": %u,\n"
               "    \"rebuild_generate_seconds\": %.6f,\n"
               "    \"rebuild_select_seconds\": %.6f,\n"
               "    \"incremental_generate_seconds\": %.6f,\n"
               "    \"incremental_select_seconds\": %.6f,\n"
               "    \"index_bytes_per_set\": %.1f,\n"
               "    \"select_speedup\": %.4f,\n"
               "    \"end_to_end_speedup\": %.4f\n  }\n}\n",
               rounds, round_sets, select_k, rebuild_path.generate_seconds,
               rebuild_path.select_seconds,
               incremental_path.generate_seconds,
               incremental_path.select_seconds, index_bytes_per_set,
               select_speedup, end_to_end_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "RR-engine microbenchmark (sets/sec, bytes/set)", Run,
                   [](BenchArgs* args) {
                     args->Declare("nodes", "graph size (default 100000)");
                     args->Declare("sets", "RR sets per run (default 20000)");
                     args->Declare("rounds",
                                   "incremental_select append/select rounds "
                                   "(default 8)");
                     args->Declare("round_sets",
                                   "sets appended per round (default 5000)");
                     args->Declare("k",
                                   "seeds selected per round (default 50)");
                     args->Declare("json",
                                   "output JSON path "
                                   "(default BENCH_rr_engine.json)");
                   });
}

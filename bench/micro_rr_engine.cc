// RR-engine microbenchmark: sets/sec and bytes/set for the flat-arena
// sketch engine versus the legacy nested-vector serial path, across thread
// counts. Emits BENCH_rr_engine.json so successive PRs can track RR-set
// generation throughput (see .github/workflows/ci.yml).

#include <cstdio>
#include <string>
#include <vector>

#include "algo/rr_sets.h"
#include "common.h"
#include "graph/generators.h"

using namespace holim;

namespace {

// The seed's RR sampler: one heap-allocated std::vector per set, sampled
// sequentially. Kept here as the throughput/memory baseline the arena
// engine is measured against.
struct NestedBaseline {
  std::vector<std::vector<NodeId>> sets;

  void Generate(const Graph& g, const InfluenceParams& params,
                std::size_t count, Rng& rng) {
    EpochSet visited(g.num_nodes());
    std::vector<NodeId> stack;
    const bool lt = params.model == DiffusionModel::kLinearThreshold;
    sets.reserve(sets.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId root =
          static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
      visited.Reset(g.num_nodes());
      stack.clear();
      std::vector<NodeId> rr{root};
      visited.Insert(root);
      stack.push_back(root);
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        auto in_neighbors = g.InNeighbors(v);
        auto in_edges = g.InEdgeIds(v);
        if (lt) {
          double r = rng.NextDouble();
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const double w = params.p(in_edges[j]);
            if (r < w) {
              const NodeId u = in_neighbors[j];
              if (!visited.Contains(u)) {
                visited.Insert(u);
                stack.push_back(u);
                rr.push_back(u);
              }
              break;
            }
            r -= w;
          }
        } else {
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const NodeId u = in_neighbors[j];
            if (visited.Contains(u)) continue;
            if (rng.NextBernoulli(params.p(in_edges[j]))) {
              visited.Insert(u);
              stack.push_back(u);
              rr.push_back(u);
            }
          }
        }
      }
      sets.push_back(std::move(rr));
    }
  }

  std::size_t MemoryBytes() const {
    std::size_t bytes = sets.capacity() * sizeof(std::vector<NodeId>);
    for (const auto& rr : sets) bytes += rr.capacity() * sizeof(NodeId);
    return bytes;
  }
};

struct Row {
  std::string engine;
  std::size_t threads;
  double seconds;
  double sets_per_sec;
  double bytes_per_set;
};

Status Run(const BenchArgs& args) {
  const NodeId nodes =
      static_cast<NodeId>(args.GetInt("nodes", 100000));
  const std::size_t num_sets =
      static_cast<std::size_t>(args.GetInt("sets", 20000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path =
      args.GetString("json", "BENCH_rr_engine.json");
  if (nodes == 0 || num_sets == 0) {
    return Status::InvalidArgument("--nodes and --sets must be positive");
  }

  HOLIM_ASSIGN_OR_RETURN(Graph graph,
                         GenerateBarabasiAlbert(nodes, 4, seed));
  InfluenceParams params = MakeWeightedCascade(graph);
  std::printf("graph: n=%u m=%llu, WC weights, %zu RR sets per run\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), num_sets);

  std::vector<Row> rows;
  {
    NestedBaseline nested;
    Rng rng(seed);
    Timer timer;
    nested.Generate(graph, params, num_sets, rng);
    const double secs = timer.ElapsedSeconds();
    rows.push_back({"nested_serial_seed", 1, secs, num_sets / secs,
                    static_cast<double>(nested.MemoryBytes()) / num_sets});
  }
  {
    RrCollection rr(graph, params);
    Rng rng(seed);
    Timer timer;
    rr.Generate(num_sets, rng);
    const double secs = timer.ElapsedSeconds();
    rows.push_back({"arena_serial", 1, secs, num_sets / secs,
                    static_cast<double>(rr.MemoryBytes()) / num_sets});
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    RrCollection rr(graph, params);
    Timer timer;
    rr.GenerateParallel(num_sets, seed, &pool);
    const double secs = timer.ElapsedSeconds();
    char name[32];
    std::snprintf(name, sizeof(name), "arena_parallel_%zut", threads);
    rows.push_back({name, threads, secs, num_sets / secs,
                    static_cast<double>(rr.MemoryBytes()) / num_sets});
  }

  ResultTable table(
      "RR engine — generation throughput and memory",
      {"engine", "threads", "seconds", "sets_per_sec", "bytes_per_set"},
      bench::CsvPath("micro_rr_engine"));
  for (const Row& r : rows) {
    table.AddRow({r.engine, std::to_string(r.threads), CsvWriter::Num(r.seconds),
                  CsvWriter::Num(r.sets_per_sec),
                  CsvWriter::Num(r.bytes_per_set)});
  }
  table.Print();
  const double speedup_8t = rows.back().sets_per_sec / rows[0].sets_per_sec;
  std::printf("\narena 8-thread vs nested serial seed: %.2fx sets/sec, "
              "%.0f vs %.0f bytes/set\n",
              speedup_8t, rows.back().bytes_per_set, rows[0].bytes_per_set);

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(f,
               "{\n  \"bench\": \"rr_engine\",\n  \"nodes\": %u,\n"
               "  \"edges\": %llu,\n  \"model\": \"WC\",\n  \"sets\": %zu,\n"
               "  \"speedup_8t_vs_seed\": %.4f,\n  \"results\": [\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()), num_sets,
               speedup_8t);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.6f, \"sets_per_sec\": %.1f, "
                 "\"bytes_per_set\": %.1f}%s\n",
                 r.engine.c_str(), r.threads, r.seconds, r.sets_per_sec,
                 r.bytes_per_set, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "RR-engine microbenchmark (sets/sec, bytes/set)", Run,
                   [](BenchArgs* args) {
                     args->Declare("nodes", "graph size (default 100000)");
                     args->Declare("sets", "RR sets per run (default 20000)");
                     args->Declare("json",
                                   "output JSON path "
                                   "(default BENCH_rr_engine.json)");
                   });
}

// Serving-loop microbenchmark: a skewed multi-tenant traffic stream
// played closed-loop through HolimServer twice with the SAME binary and
// workload — once as the BASELINE configuration (FIFO dispatch + plain
// LRU workspaces, no pre-warm) and once as the HEAT configuration
// (artifact-affinity scheduling + benefit-per-byte eviction + pre-warm).
// Emits BENCH_serving.json; the CI bench-gate ("serving" dispatch) pins
// the warm-hit / coalesced-build / pre-warm counters exactly and gates
// the QPS ratio (with an absolute 2x floor) and the p99 ratio as
// timing metrics.
//
// The workload is Zipf-skewed over tenants and models (serving/workload),
// so a bounded queue holds several requests per hot sketch-arena key.
// Per-tenant byte budgets are sized from a probe arena to fit ONE model's
// artifact group — the regime where eviction quality and dispatch order
// decide how often sampling is re-paid. Scheduling must not change
// answers: per-request seeds are HOLIM_CHECKed identical across legs.
//
// Single-thread on purpose: both legs run serial dispatch on one core,
// so the QPS ratio is pure work-reduction (hit rate, coalescing,
// eviction quality) and transfers across machines.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support/bench_main.h"
#include "diffusion/sketch_oracle.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "serving/holim_server.h"
#include "serving/workload.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace holim;

namespace {

struct LegOutcome {
  std::vector<std::string> seeds_by_id;
  ServerStats stats;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[index];
}

Status RunLeg(bool optimized, const WorkloadSpec& spec,
              const std::vector<WorkloadItem>& items, NodeId tenant_nodes,
              uint32_t snapshots, std::size_t queue_depth,
              std::size_t budget_bytes, const std::string& algo,
              LegOutcome* out) {
  ServerOptions options;
  options.queue_depth = queue_depth;
  options.affinity = optimized;
  options.cache_policy = optimized ? Workspace::EvictionPolicy::kHeatBenefit
                                   : Workspace::EvictionPolicy::kLru;
  options.prewarm = optimized;
  options.num_sketches = snapshots;
  options.seed = spec.seed;
  options.max_cache_bytes = budget_bytes;
  HolimServer server(options);
  for (uint32_t t = 0; t < spec.num_tenants; ++t) {
    HOLIM_ASSIGN_OR_RETURN(
        Graph graph, GenerateSocialGraph(tenant_nodes, 6.0, spec.seed + t));
    HOLIM_RETURN_NOT_OK(server.AddTenant(std::move(graph)));
  }

  out->seeds_by_id.assign(items.size(), "");
  std::vector<double> submit_ms(items.size(), 0.0);
  std::vector<double> latency_ms(items.size(), 0.0);
  std::size_t next = 0;
  Timer timer;
  auto submit_next = [&]() -> Status {
    const WorkloadItem& item = items[next++];
    ProtocolRequest request;
    request.verb = RequestVerb::kSolve;
    request.id = item.id;
    request.tenant = item.tenant;
    request.model = item.model;
    request.algo = algo;
    request.k = item.k;
    submit_ms[item.id] = timer.ElapsedMillis();
    return server.Submit(request);
  };
  // Closed loop: fill the admission queue to capacity, then keep it full
  // — dispatch one, submit one. The interleaving (and so every counter)
  // is a pure function of the workload, never of wall time.
  while (next < items.size() && !server.queue_full()) {
    HOLIM_RETURN_NOT_OK(submit_next());
  }
  while (server.queue_size() > 0) {
    HOLIM_ASSIGN_OR_RETURN(ProtocolReply reply, server.DispatchNext());
    if (std::getenv("HOLIM_SERVING_TRACE") != nullptr) {
      std::printf("[trace %s] id=%llu t%u/%s warm=%d\n",
                  optimized ? "heat" : "base",
                  static_cast<unsigned long long>(reply.id),
                  items[reply.id].tenant, items[reply.id].model.c_str(),
                  reply.warm_sketch ? 1 : 0);
    }
    latency_ms[reply.id] = timer.ElapsedMillis() - submit_ms[reply.id];
    out->seeds_by_id[reply.id] = reply.seeds_csv;
    if (next < items.size()) HOLIM_RETURN_NOT_OK(submit_next());
  }
  out->seconds = timer.ElapsedSeconds();
  out->qps = static_cast<double>(items.size()) / out->seconds;
  out->p50_ms = Percentile(latency_ms, 0.50);
  out->p99_ms = Percentile(latency_ms, 0.99);
  out->stats = server.stats();
  return Status::OK();
}

void PrintLeg(const char* name, const LegOutcome& leg, std::size_t requests) {
  std::printf(
      "  %-8s %7.1f q/s  p50 %7.2f ms  p99 %7.2f ms  (%.3fs)  "
      "builds=%llu warm=%llu coalesced=%llu prewarms=%llu\n",
      name, leg.qps, leg.p50_ms, leg.p99_ms, leg.seconds,
      static_cast<unsigned long long>(leg.stats.sketch_builds),
      static_cast<unsigned long long>(leg.stats.warm_sketch_hits),
      static_cast<unsigned long long>(leg.stats.coalesced),
      static_cast<unsigned long long>(leg.stats.prewarms));
  (void)requests;
}

Status Run(const BenchArgs& args) {
  const NodeId tenant_nodes =
      static_cast<NodeId>(args.GetInt("tenant-nodes", 2000));
  const uint32_t tenants = static_cast<uint32_t>(args.GetInt("tenants", 3));
  const uint32_t snapshots =
      static_cast<uint32_t>(args.GetInt("snapshots", 128));
  const std::size_t requests =
      static_cast<std::size_t>(args.GetInt("requests", 192));
  const std::size_t queue_depth =
      static_cast<std::size_t>(args.GetInt("queue-depth", 32));
  const double budget_factor = args.GetDouble("budget-factor", 1.3);
  // A cheap deterministic selector by default: per-request cost is then
  // dominated by the sketch-arena build behind spread evaluation, which
  // is exactly the work the serving layer (affinity + heat cache) can
  // avoid. A sweep-heavy selector (celf) pays its full selection cost on
  // every request in BOTH legs, which only dilutes the comparison.
  const std::string algo = args.GetString("algo", "degreediscount");
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path = args.GetString("json", "BENCH_serving.json");
  if (tenant_nodes < 2 || tenants == 0 || snapshots == 0 || requests == 0 ||
      queue_depth == 0 || budget_factor <= 0.0) {
    return Status::InvalidArgument("all geometry flags must be positive");
  }

  WorkloadSpec spec;
  spec.num_tenants = tenants;
  spec.seed = seed;
  // Steeper skew than the generator defaults: serving wins come from
  // grouping repeat traffic, so the bench models a hot tenant/model pair
  // with a long tail rather than near-uniform load.
  spec.tenant_exponent = 1.4;
  spec.model_exponent = 1.2;
  WorkloadGenerator generator(spec);
  std::vector<WorkloadItem> items;
  items.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) items.push_back(generator.Next());

  // Size the per-tenant budget from a probe arena on tenant 0's topology:
  // budget-factor arenas' worth fits one model group (arena + selector)
  // but never two arenas — the contended regime the bench is about.
  HOLIM_ASSIGN_OR_RETURN(Graph probe_graph,
                         GenerateSocialGraph(tenant_nodes, 6.0, seed));
  InfluenceParams probe_params = MakeUniformIc(probe_graph);
  SketchOptions probe_options;
  probe_options.num_snapshots = snapshots;
  probe_options.seed = seed;
  const SketchOracle probe(probe_graph, probe_params, probe_options);
  const std::size_t arena_bytes = probe.ArenaBytes();
  const std::size_t budget_bytes =
      static_cast<std::size_t>(budget_factor *
                               static_cast<double>(arena_bytes));

  std::printf(
      "serving: %u tenants x %u nodes, R=%u, %zu requests, queue %zu, "
      "budget %.2f arenas (%zu bytes each)\n",
      tenants, tenant_nodes, snapshots, requests, queue_depth, budget_factor,
      arena_bytes);

  LegOutcome baseline;
  HOLIM_RETURN_NOT_OK(RunLeg(/*optimized=*/false, spec, items, tenant_nodes,
                             snapshots, queue_depth, budget_bytes, algo,
                             &baseline));
  LegOutcome heat;
  HOLIM_RETURN_NOT_OK(RunLeg(/*optimized=*/true, spec, items, tenant_nodes,
                             snapshots, queue_depth, budget_bytes, algo,
                             &heat));

  // Scheduling and eviction policy must never change answers: the same
  // request id picks the same seeds in both legs, bitwise.
  for (std::size_t id = 0; id < requests; ++id) {
    HOLIM_CHECK(heat.seeds_by_id[id] == baseline.seeds_by_id[id])
        << "request " << id << " seed divergence between legs: baseline ["
        << baseline.seeds_by_id[id] << "] heat [" << heat.seeds_by_id[id]
        << "]";
  }

  const double qps_ratio = heat.qps / baseline.qps;
  const double p99_ratio = baseline.p99_ms / heat.p99_ms;
  std::printf("\nclosed-loop legs (%zu requests):\n", requests);
  PrintLeg("baseline", baseline, requests);
  PrintLeg("heat", heat, requests);
  std::printf("  -> %.2fx QPS, %.2fx p99, warm-hit %.0f%% vs %.0f%%\n",
              qps_ratio, p99_ratio,
              100.0 * static_cast<double>(heat.stats.warm_sketch_hits) /
                  static_cast<double>(requests),
              100.0 * static_cast<double>(baseline.stats.warm_sketch_hits) /
                  static_cast<double>(requests));

  auto leg_json = [&](const LegOutcome& leg) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\n    \"seconds\": %.6f,\n    \"qps\": %.4f,\n"
        "    \"p50_ms\": %.4f,\n    \"p99_ms\": %.4f,\n"
        "    \"served\": %llu,\n    \"builds\": %llu,\n"
        "    \"warm_sketch_hits\": %llu,\n    \"coalesced\": %llu,\n"
        "    \"prewarms\": %llu,\n    \"expired_in_queue\": %llu,\n"
        "    \"warm_hit_rate\": %.4f\n  }",
        leg.seconds, leg.qps, leg.p50_ms, leg.p99_ms,
        static_cast<unsigned long long>(leg.stats.served),
        static_cast<unsigned long long>(leg.stats.sketch_builds),
        static_cast<unsigned long long>(leg.stats.warm_sketch_hits),
        static_cast<unsigned long long>(leg.stats.coalesced),
        static_cast<unsigned long long>(leg.stats.prewarms),
        static_cast<unsigned long long>(leg.stats.expired_in_queue),
        static_cast<double>(leg.stats.warm_sketch_hits) /
            static_cast<double>(requests));
    return std::string(buf);
  };

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(
      f,
      "{\n  \"bench\": \"serving\",\n  \"tenants\": %u,\n"
      "  \"tenant_nodes\": %u,\n  \"snapshots\": %u,\n"
      "  \"requests\": %zu,\n  \"queue_depth\": %zu,\n"
      "  \"budget_factor\": %.4f,\n  \"algo\": \"%s\",\n"
      "  \"seed\": %llu,\n"
      "  \"baseline\": %s,\n  \"heat\": %s,\n"
      "  \"speedup\": {\n    \"qps_ratio\": %.4f,\n"
      "    \"p99_ratio\": %.4f,\n    \"seeds_match_baseline\": true\n  }\n}\n",
      tenants, tenant_nodes, snapshots, requests, queue_depth, budget_factor,
      algo.c_str(), static_cast<unsigned long long>(seed),
      leg_json(baseline).c_str(),
      leg_json(heat).c_str(), qps_ratio, p99_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Serving-loop microbenchmark (heat+affinity vs FIFO+LRU, same binary)",
      Run, [](BenchArgs* args) {
        args->Declare("tenants", "tenant graphs (default 3)");
        args->Declare("tenant-nodes",
                      "nodes per tenant graph (default 2000)");
        args->Declare("snapshots",
                      "sketch-arena live-edge worlds R (default 128)");
        args->Declare("requests", "workload length (default 192)");
        args->Declare("queue-depth",
                      "bounded admission queue depth (default 32)");
        args->Declare("budget-factor",
                      "per-tenant byte budget in probe-arena units "
                      "(default 2.2)");
        args->Declare("algo",
                      "selection algorithm for every request (default "
                      "degreediscount)");
        args->Declare("json",
                      "output JSON path (default BENCH_serving.json)");
      });
}

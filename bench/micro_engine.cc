// Engine batch-amortization microbenchmark: an 8-query algorithm-
// comparison batch on the 100k-node WC benchmark graph, solved through
// HolimEngine twice — COLD (the Workspace is cleared before every query,
// so each query resamples its sketch-oracle worlds and rebuilds selector
// state) versus WARM (one shared Workspace across the batch, so the
// arena is sampled once and reused). Emits BENCH_engine.json; the CI
// bench-gate (tools/check_bench_regression.py, "engine" dispatch) fails
// the job when the batch speedup or the deterministic workspace footprint
// regresses against the committed baseline.
//
// Every query asks for --oracle=sketch spread evaluation of its selected
// seeds over the same R live-edge worlds (same params fingerprint + seed
// + R => same Workspace key), which is the realistic serving shape: many
// algorithm/query variations against one prepared graph. Warm-vs-cold
// seed sets are HOLIM_CHECKed identical — reuse must be bitwise-free.
//
// Single-thread on purpose (serial solves, serial sampling): the
// reference bench host is single-core and the speedup is a ratio of
// single-thread times, which transfers across machines.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/engine_support.h"
#include "common.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace holim;

namespace {

struct QueryOutcome {
  std::vector<NodeId> seeds;
  double spread = 0.0;
};

Status Run(const BenchArgs& args) {
  const NodeId nodes = static_cast<NodeId>(args.GetInt("nodes", 100000));
  const uint32_t snapshots =
      static_cast<uint32_t>(args.GetInt("snapshots", 200));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 10));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path = args.GetString("json", "BENCH_engine.json");
  if (nodes == 0 || snapshots == 0 || k == 0) {
    return Status::InvalidArgument(
        "--nodes/--snapshots/--k must be positive");
  }

  HOLIM_ASSIGN_OR_RETURN(Graph graph, GenerateBarabasiAlbert(nodes, 4, seed));
  InfluenceParams params = MakeWeightedCascade(graph);

  // The 8-query comparison batch: fast selectors spanning the scoring,
  // snapshot, rank, and degree families, each judged on the shared sketch
  // worlds. (The heavyweights — TIM+/IMM/CELF — have their own gated
  // micro benches; here the artifact amortization is the subject.)
  const char* algorithms[] = {"degree",   "singlediscount", "degreediscount",
                              "pagerank", "random",         "imrank",
                              "asim",     "easyim"};
  constexpr std::size_t kQueries = sizeof(algorithms) / sizeof(algorithms[0]);

  std::printf("graph: n=%u m=%llu, WC weights, R=%u snapshots, %zu-query "
              "batch, k=%u\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), snapshots,
              kQueries, k);

  auto make_request = [&](const char* algorithm) {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = k;
    request.params = &params;
    request.l = 1;  // EaSyIM/ASIM horizon; keeps solve cost << sampling
    request.mc = snapshots;
    request.seed = seed;
    request.oracle = SpreadOracle::kSketch;
    request.num_sketches = snapshots;
    request.evaluate_spread = true;
    return request;
  };

  auto run_batch = [&](HolimEngine& engine, bool clear_between,
                       std::vector<QueryOutcome>* outcomes,
                       uint64_t* sketch_builds) -> Status {
    outcomes->clear();
    const uint64_t misses_before = engine.workspace().misses();
    for (const char* algorithm : algorithms) {
      if (clear_between) engine.workspace().Clear();
      HOLIM_ASSIGN_OR_RETURN(SolveResult result,
                             engine.Solve(make_request(algorithm)));
      outcomes->push_back({std::move(result.seeds), result.spread});
    }
    // Sketch builds = misses on the one sketch key (selector misses are
    // counted too, so subtract the per-query selector miss).
    *sketch_builds = engine.workspace().misses() - misses_before - kQueries;
    return Status::OK();
  };

  // COLD: every query pays its own sampling (Workspace cleared per query).
  HolimEngine cold_engine(graph);
  std::vector<QueryOutcome> cold_outcomes;
  uint64_t cold_sketch_builds = 0;
  Timer cold_timer;
  HOLIM_RETURN_NOT_OK(run_batch(cold_engine, /*clear_between=*/true,
                                &cold_outcomes, &cold_sketch_builds));
  const double cold_seconds = cold_timer.ElapsedSeconds();

  // WARM: one Workspace across the batch.
  HolimEngine warm_engine(graph);
  std::vector<QueryOutcome> warm_outcomes;
  uint64_t warm_sketch_builds = 0;
  Timer warm_timer;
  HOLIM_RETURN_NOT_OK(run_batch(warm_engine, /*clear_between=*/false,
                                &warm_outcomes, &warm_sketch_builds));
  const double warm_seconds = warm_timer.ElapsedSeconds();

  // Reuse must be bitwise-free: warm and cold pick identical seeds and
  // report identical spreads, query by query.
  for (std::size_t q = 0; q < kQueries; ++q) {
    HOLIM_CHECK(warm_outcomes[q].seeds == cold_outcomes[q].seeds)
        << "warm/cold seed divergence in query " << algorithms[q];
    HOLIM_CHECK(warm_outcomes[q].spread == cold_outcomes[q].spread)
        << "warm/cold spread divergence in query " << algorithms[q];
  }

  const double batch_speedup = cold_seconds / warm_seconds;
  const std::size_t workspace_bytes =
      warm_engine.workspace().MemoryFootprintBytes();
  std::printf("\nbatch (%zu queries):\n"
              "  cold  %.3fs  (%llu sketch builds)\n"
              "  warm  %.3fs  (%llu sketch builds)\n"
              "  -> %.2fx amortization, warm workspace %.1f MiB "
              "(%zu artifacts)\n",
              kQueries, cold_seconds,
              static_cast<unsigned long long>(cold_sketch_builds),
              warm_seconds,
              static_cast<unsigned long long>(warm_sketch_builds),
              batch_speedup, MemoryMeter::ToMiB(workspace_bytes),
              warm_engine.workspace().num_artifacts());

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::string algo_list;
  for (const char* algorithm : algorithms) {
    if (!algo_list.empty()) algo_list += "\", \"";
    algo_list += algorithm;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"engine\",\n  \"nodes\": %u,\n  \"edges\": %llu,\n"
      "  \"model\": \"WC\",\n  \"queries\": %zu,\n  \"k\": %u,\n"
      "  \"snapshots\": %u,\n  \"seed\": %llu,\n"
      "  \"algorithms\": [\"%s\"],\n"
      "  \"batch\": {\n    \"cold_seconds\": %.6f,\n"
      "    \"warm_seconds\": %.6f,\n    \"batch_speedup\": %.4f,\n"
      "    \"cold_sketch_builds\": %llu,\n"
      "    \"warm_sketch_builds\": %llu\n  },\n"
      "  \"warm\": {\n    \"workspace_bytes\": %zu,\n"
      "    \"artifacts\": %zu,\n    \"seeds_match_cold\": true\n  }\n}\n",
      graph.num_nodes(), static_cast<unsigned long long>(graph.num_edges()),
      kQueries, k, snapshots, static_cast<unsigned long long>(seed),
      algo_list.c_str(), cold_seconds, warm_seconds, batch_speedup,
      static_cast<unsigned long long>(cold_sketch_builds),
      static_cast<unsigned long long>(warm_sketch_builds), workspace_bytes,
      warm_engine.workspace().num_artifacts());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(
      argc, argv,
      "Engine batch-amortization microbenchmark (warm vs cold Workspace)",
      Run, [](BenchArgs* args) {
        args->Declare("nodes", "graph size (default 100000)");
        args->Declare("snapshots",
                      "sketch-oracle live-edge worlds R shared by the batch "
                      "(default 200)");
        args->Declare("k", "seeds per query (default 10)");
        args->Declare("json", "output JSON path (default BENCH_engine.json)");
      });
}

// Scoring-kernel microbenchmark: full-sweep throughput across thread counts
// plus the incremental_rescore section — a k-seed ScoreGREEDY run comparing
// the legacy full-recompute-every-round path against the dirty-frontier
// incremental rescore (algo/score_sweep.h), for both EaSyIM and OSIM. Seed
// sets must be identical; only the cost may differ. Emits BENCH_scoring.json;
// the CI bench-gate (tools/check_bench_regression.py) fails the job when the
// deterministic work_ratio or the rescore_speedup regresses against the
// committed baseline (see .github/workflows/ci.yml).
//
// Note: wall-clock thread scaling only shows on multi-core runners; the
// work_ratio and rescore_speedup metrics are meaningful on any machine.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/score_greedy.h"
#include "common.h"
#include "graph/generators.h"

using namespace holim;

namespace {

struct SweepRow {
  std::string scorer;
  std::string mode;  // "serial" or "parallel"
  std::size_t threads;
  double seconds;
  double mitems_per_sec;  // l*(m+n) items per sweep
};

struct RescoreRow {
  std::string scorer;
  double full_seconds = 0.0;
  double incremental_seconds = 0.0;
  double rescore_speedup = 0.0;
  // (node-level Delta evaluations on the full-recompute path) / (same on
  // the incremental path, initial rebuild included). Deterministic given
  // the graph seed and config — gated exactly, unlike the timing ratio.
  double work_ratio = 0.0;
  std::size_t scratch_bytes = 0;
};

template <typename Scorer>
double TimeSweeps(Scorer& scorer, const EpochSet& excluded, std::size_t reps,
                  ThreadPool* pool) {
  std::vector<double> scores;
  Timer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    if (pool == nullptr) {
      scorer.AssignScores(excluded, &scores);
    } else {
      scorer.AssignScoresParallel(excluded, &scores, pool);
    }
  }
  return timer.ElapsedSeconds();
}

Status Run(const BenchArgs& args) {
  const NodeId nodes = static_cast<NodeId>(args.GetInt("nodes", 50000));
  const uint32_t l = static_cast<uint32_t>(args.GetInt("l", 3));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 50));
  const std::size_t reps = static_cast<std::size_t>(args.GetInt("reps", 5));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string json_path = args.GetString("json", "BENCH_scoring.json");
  const std::string graph_kind = args.GetString("graph", "er");
  if (nodes == 0 || l == 0 || k == 0 || reps == 0) {
    return Status::InvalidArgument("--nodes/--l/--k/--reps must be positive");
  }

  // er (default): bounded-degree graph, small l-hop reverse balls — the
  // regime the dirty-frontier rescore targets (co-authorship-like). ba:
  // hub-heavy scale-free graph, the adversarial case where the reverse
  // ball of any node covers most of the graph within l hops.
  Graph graph;
  if (graph_kind == "er") {
    HOLIM_ASSIGN_OR_RETURN(graph, GenerateErdosRenyi(nodes, 8.0, seed));
  } else if (graph_kind == "ba") {
    HOLIM_ASSIGN_OR_RETURN(graph, GenerateBarabasiAlbert(nodes, 4, seed));
  } else {
    return Status::InvalidArgument("unknown --graph (er|ba): " + graph_kind);
  }
  InfluenceParams wc = MakeWeightedCascade(graph);
  InfluenceParams ic = MakeUniformIc(graph, 0.1);
  OpinionParams opinions =
      MakeRandomOpinions(graph, OpinionDistribution::kUniform, seed + 1);
  const double sweep_items =
      static_cast<double>(l) * (graph.num_edges() + graph.num_nodes());
  std::printf("graph: n=%u m=%llu, l=%u, k=%u, %zu sweep reps\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), l, k, reps);

  EpochSet no_excluded(graph.num_nodes());
  no_excluded.Reset(graph.num_nodes());

  // --- full-sweep throughput across thread counts -----------------------
  std::vector<SweepRow> sweep_rows;
  auto add_sweep_rows = [&](const std::string& name, auto& scorer) {
    {
      const double secs = TimeSweeps(scorer, no_excluded, reps, nullptr);
      sweep_rows.push_back(
          {name, "serial", 1, secs, reps * sweep_items / secs / 1e6});
    }
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      ThreadPool pool(threads);
      const double secs = TimeSweeps(scorer, no_excluded, reps, &pool);
      sweep_rows.push_back({name, "parallel", threads, secs,
                            reps * sweep_items / secs / 1e6});
    }
  };
  {
    EasyImScorer scorer(graph, wc, l);
    add_sweep_rows("easyim", scorer);
  }
  {
    OsimScorer scorer(graph, ic, opinions, l);
    add_sweep_rows("osim", scorer);
  }
  ResultTable sweep_table(
      "Score sweep — full-pass throughput",
      {"scorer", "mode", "threads", "seconds", "mitems_per_sec"},
      bench::CsvPath("micro_scoring_sweep"));
  for (const SweepRow& r : sweep_rows) {
    sweep_table.AddRow({r.scorer, r.mode, std::to_string(r.threads),
                        CsvWriter::Num(r.seconds),
                        CsvWriter::Num(r.mitems_per_sec)});
  }
  sweep_table.Print();

  // --- incremental rescore vs full recompute over a greedy run ----------
  // seeds-only activation keeps the comparison a pure score-assignment
  // cost (no Monte-Carlo time shared by both paths) and deterministic.
  std::vector<RescoreRow> rescore_rows;
  auto run_rescore = [&](const std::string& name, const auto& make_selector) {
    RescoreRow row;
    row.scorer = name;
    uint64_t full_work = 0, incremental_work = 0;
    std::vector<NodeId> full_seeds, inc_seeds;
    for (const bool incremental : {false, true}) {
      ScoreGreedyOptions options;
      options.activation = ActivationStrategy::kSeedsOnly;
      options.incremental_rescore = incremental;
      auto selector = make_selector(options);
      Timer timer;
      SeedSelection s = selector->Select(k).ValueOrDie();
      const double secs = timer.ElapsedSeconds();
      const ScoreSweepStats& st = selector->scorer().stats();
      if (incremental) {
        row.incremental_seconds = secs;
        incremental_work = st.nodes_full + st.nodes_incremental;
        row.scratch_bytes = s.scratch_bytes;
        inc_seeds = s.seeds;
      } else {
        row.full_seconds = secs;
        full_work = st.nodes_full + st.nodes_incremental;
        full_seeds = s.seeds;
      }
    }
    HOLIM_CHECK(full_seeds == inc_seeds)
        << name << ": incremental/full seed divergence";
    row.rescore_speedup = row.full_seconds / row.incremental_seconds;
    row.work_ratio = static_cast<double>(full_work) /
                     static_cast<double>(incremental_work);
    rescore_rows.push_back(row);
  };
  run_rescore("easyim", [&](const ScoreGreedyOptions& options) {
    return std::make_unique<EasyImSelector>(graph, wc, l, options);
  });
  run_rescore("osim", [&](const ScoreGreedyOptions& options) {
    return std::make_unique<OsimSelector>(
        graph, ic, opinions, OiBase::kIndependentCascade, l, options);
  });

  ResultTable rescore_table(
      "Incremental rescore vs full recompute (ScoreGREEDY, k seeds)",
      {"scorer", "full_s", "incremental_s", "speedup", "work_ratio",
       "scratch_bytes"},
      bench::CsvPath("micro_scoring_rescore"));
  for (const RescoreRow& r : rescore_rows) {
    rescore_table.AddRow(
        {r.scorer, CsvWriter::Num(r.full_seconds),
         CsvWriter::Num(r.incremental_seconds),
         CsvWriter::Num(r.rescore_speedup), CsvWriter::Num(r.work_ratio),
         std::to_string(r.scratch_bytes)});
  }
  rescore_table.Print();
  for (const RescoreRow& r : rescore_rows) {
    std::printf("%s: incremental rescore %.2fx faster, %.1fx less node "
                "work, %.1f MiB scorer scratch\n",
                r.scorer.c_str(), r.rescore_speedup, r.work_ratio,
                MemoryMeter::ToMiB(r.scratch_bytes));
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) return Status::IOError("cannot write " + json_path);
  std::fprintf(f,
               "{\n  \"bench\": \"scoring\",\n  \"graph\": \"%s\",\n"
               "  \"nodes\": %u,\n"
               "  \"edges\": %llu,\n  \"l\": %u,\n  \"k\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"sweep\": [\n",
               graph_kind.c_str(), graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()), l, k,
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
    const SweepRow& r = sweep_rows[i];
    std::fprintf(f,
                 "    {\"scorer\": \"%s\", \"mode\": \"%s\", "
                 "\"threads\": %zu, \"seconds\": %.6f, "
                 "\"mitems_per_sec\": %.2f}%s\n",
                 r.scorer.c_str(), r.mode.c_str(), r.threads, r.seconds,
                 r.mitems_per_sec, i + 1 < sweep_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"incremental_rescore\": {\n"
                  "    \"activation\": \"seeds-only\",\n");
  for (std::size_t i = 0; i < rescore_rows.size(); ++i) {
    const RescoreRow& r = rescore_rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"full_seconds\": %.6f, "
                 "\"incremental_seconds\": %.6f, "
                 "\"rescore_speedup\": %.4f, \"work_ratio\": %.4f, "
                 "\"scratch_bytes\": %zu}%s\n",
                 r.scorer.c_str(), r.full_seconds, r.incremental_seconds,
                 r.rescore_speedup, r.work_ratio, r.scratch_bytes,
                 i + 1 < rescore_rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Scoring-kernel microbenchmark (sweep throughput, "
                   "incremental rescore)",
                   Run, [](BenchArgs* args) {
                     args->Declare("nodes", "graph size (default 50000)");
                     args->Declare("graph",
                                   "topology: er (bounded-degree, default) "
                                   "| ba (hub-heavy adversarial)");
                     args->Declare("l", "path-length horizon (default 3)");
                     args->Declare("k", "greedy seeds (default 50)");
                     args->Declare("reps", "sweep repetitions (default 5)");
                     args->Declare("json",
                                   "output JSON path "
                                   "(default BENCH_scoring.json)");
                   });
}

// Figure 6j: execution-memory overhead (beyond graph loading) of EaSyIM,
// IRIE, CELF++ and SIMPATH on the four medium datasets, k = 100.

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/irie.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table(
      "Figure 6j — execution memory overhead (k=100 scaled)",
      {"dataset", "algorithm", "graph_MiB", "exec_MiB"},
      CsvPath("fig6j_memory_overhead"));
  for (const std::string& dataset : MediumDatasetNames()) {
    const double shrink =
        (dataset == "DBLP" || dataset == "YouTube") ? 0.1 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const double graph_mib = MemoryMeter::ToMiB(
        w.graph.MemoryFootprintBytes() + w.params.MemoryFootprintBytes());
    const uint32_t k = std::min<uint32_t>(100, w.graph.num_nodes() / 10);
    const NodeId n = w.graph.num_nodes();

    // Deterministic working-set accounting per algorithm (RSS deltas are
    // unreliable below a few MiB).
    {
      EasyImScorer scorer(w.graph, w.params, 3);
      table.AddRow({dataset, "EaSyIM", CsvWriter::Num(graph_mib),
                    CsvWriter::Num(MemoryMeter::ToMiB(
                        scorer.ScratchBytes() + n * sizeof(double)))});
    }
    {
      // IRIE: rank + AP + next arrays.
      table.AddRow({dataset, "IRIE", CsvWriter::Num(graph_mib),
                    CsvWriter::Num(MemoryMeter::ToMiB(
                        3ull * n * sizeof(double)))});
    }
    {
      // CELF++: heap entry per node (node, 2 gains, round, prev-best).
      table.AddRow({dataset, "CELF++", CsvWriter::Num(graph_mib),
                    CsvWriter::Num(MemoryMeter::ToMiB(40ull * n))});
    }
    {
      // SIMPATH: on-path marks + exclusion masks + heap.
      table.AddRow({dataset, "SIMPATH", CsvWriter::Num(graph_mib),
                    CsvWriter::Num(MemoryMeter::ToMiB(
                        2ull * n + 24ull * n))});
    }
    (void)k;
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 6j): EaSyIM least overhead,\n"
              "SIMPATH highest among the heuristics; TIM+ omitted (off the\n"
              "chart, see Fig. 6i).\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figure 6j — execution memory overhead", Run);
}

#ifndef HOLIM_BENCH_COMMON_H_
#define HOLIM_BENCH_COMMON_H_

// Shared setup helpers for the figure/table reproduction binaries. Every
// binary prints a fixed-width table (the paper's rows/series) and writes a
// CSV copy under results/.

#include <memory>
#include <string>
#include <vector>

#include "bench_support/bench_main.h"
#include "bench_support/experiment.h"
#include "data/datasets.h"
#include "diffusion/sketch_oracle.h"
#include "diffusion/spread_estimator.h"
#include "graph/stats.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace holim {
namespace bench {

/// A loaded dataset + first-layer parameters.
struct Workload {
  std::string dataset;
  Graph graph;
  InfluenceParams params;
};

inline Result<Workload> LoadWorkload(const std::string& dataset, double scale,
                                     DiffusionModel model) {
  Workload w;
  w.dataset = dataset;
  HOLIM_ASSIGN_OR_RETURN(w.graph, LoadSyntheticDataset(dataset, scale));
  // Note: callers that replay cascades (OI opinion estimation) should call
  // w.graph.BuildEdgeSourceIndex() for O(1) EdgeSource; it is not built
  // here so the memory-figure binaries keep the bare CSR footprint.
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      w.params = MakeUniformIc(w.graph, 0.1);
      break;
    case DiffusionModel::kWeightedCascade:
      w.params = MakeWeightedCascade(w.graph);
      break;
    case DiffusionModel::kLinearThreshold:
      w.params = MakeLinearThreshold(w.graph);
      break;
  }
  return w;
}

/// The k values at which a "vs seeds" figure is sampled.
inline std::vector<uint32_t> SeedGrid(uint32_t max_k) {
  std::vector<uint32_t> grid;
  for (uint32_t k : {1u, max_k / 4, max_k / 2, 3 * max_k / 4, max_k}) {
    if (k >= 1 && (grid.empty() || k > grid.back())) grid.push_back(k);
  }
  return grid;
}

/// Evaluates expected spread of seed prefixes at each k in `grid`.
inline std::vector<double> SpreadAtPrefixes(
    const Graph& graph, const InfluenceParams& params,
    const std::vector<NodeId>& seeds, const std::vector<uint32_t>& grid,
    uint32_t mc, uint64_t seed) {
  std::vector<double> out;
  McOptions options;
  options.num_simulations = mc;
  options.seed = seed;
  for (uint32_t k : grid) {
    const std::size_t take = std::min<std::size_t>(k, seeds.size());
    std::vector<NodeId> prefix(seeds.begin(), seeds.begin() + take);
    out.push_back(EstimateSpread(graph, params, prefix, options));
  }
  return out;
}

/// One-stop sketch-oracle construction for the bench binaries: R
/// snapshots seeded from the common config (serial sampling — the figure
/// binaries are single-thread by methodology). `record_edge_offsets` is
/// needed only by the opinion-replay benches.
inline std::shared_ptr<const SketchOracle> MakeSketchOracle(
    const Graph& graph, const InfluenceParams& params, uint32_t snapshots,
    uint64_t seed, bool record_edge_offsets = false) {
  SketchOptions options;
  options.num_snapshots = snapshots;
  options.seed = seed;
  options.record_edge_offsets = record_edge_offsets;
  return std::make_shared<const SketchOracle>(graph, params, options);
}

/// Sketch-oracle twin of SpreadAtPrefixes: evaluates sigma at each seed
/// prefix over the oracle's frozen snapshots through ONE incremental
/// session — each grid point extends the previous prefix, so the whole
/// sweep activates every (snapshot, node) pair at most once instead of
/// re-walking reach(S) per prefix.
inline std::vector<double> SpreadAtPrefixesSketch(
    const SketchOracle& oracle, const std::vector<NodeId>& seeds,
    const std::vector<uint32_t>& grid,
    SketchEval eval = SketchEval::kBitParallel) {
  SketchOracle::Session session(oracle, eval);
  std::vector<double> out;
  std::size_t committed = 0;
  for (uint32_t k : grid) {
    const std::size_t take = std::min<std::size_t>(k, seeds.size());
    for (; committed < take; ++committed) session.Commit(seeds[committed]);
    out.push_back(session.Spread());
  }
  return out;
}

/// Sketch-oracle twin of OpinionSpreadAtPrefixes (IC base): expected-alpha
/// opinion replay over the oracle's frozen snapshots (exact estimand at
/// lambda == 1; the oracle must be built with record_edge_offsets). The
/// replay is path-dependent, so prefixes are evaluated one-shot — the
/// reuse win is sampling the worlds once across all prefixes/selectors.
inline std::vector<double> OpinionSpreadAtPrefixesSketch(
    const SketchOracle& oracle, const OpinionParams& opinions,
    const std::vector<NodeId>& seeds, const std::vector<uint32_t>& grid,
    double lambda, SketchEval eval = SketchEval::kBitParallel) {
  std::vector<double> out;
  for (uint32_t k : grid) {
    const std::size_t take = std::min<std::size_t>(k, seeds.size());
    std::vector<NodeId> prefix(seeds.begin(), seeds.begin() + take);
    out.push_back(oracle
                      .EstimateOpinion(opinions, OiBase::kIndependentCascade,
                                       prefix, lambda, eval)
                      .effective_opinion_spread);
  }
  return out;
}

/// Evaluates expected effective opinion spread of seed prefixes.
inline std::vector<double> OpinionSpreadAtPrefixes(
    const Graph& graph, const InfluenceParams& params,
    const OpinionParams& opinions, OiBase base,
    const std::vector<NodeId>& seeds, const std::vector<uint32_t>& grid,
    double lambda, uint32_t mc, uint64_t seed) {
  std::vector<double> out;
  McOptions options;
  options.num_simulations = mc;
  options.seed = seed;
  for (uint32_t k : grid) {
    const std::size_t take = std::min<std::size_t>(k, seeds.size());
    std::vector<NodeId> prefix(seeds.begin(), seeds.begin() + take);
    out.push_back(EstimateOpinionSpread(graph, params, opinions, base, prefix,
                                        lambda, options)
                      .effective_opinion_spread);
  }
  return out;
}

inline std::string CsvPath(const std::string& name) {
  return ResultsDir() + "/" + name + ".csv";
}

}  // namespace bench
}  // namespace holim

#endif  // HOLIM_BENCH_COMMON_H_

// Figures 6a-6c: EaSyIM spread vs seeds while sweeping the path-length
// horizon l in {1,2,3,5,7,10} on NetHEPT (LT), DBLP (IC), YouTube (WC).

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  struct Panel {
    const char* figure;
    const char* dataset;
    DiffusionModel model;
  };
  const Panel panels[] = {
      {"6a", "NetHEPT", DiffusionModel::kLinearThreshold},
      {"6b", "DBLP", DiffusionModel::kIndependentCascade},
      {"6c", "YouTube", DiffusionModel::kWeightedCascade},
  };
  ResultTable table("Figures 6a-6c — EaSyIM l-sweep",
                    {"figure", "dataset", "model", "l", "k", "spread"},
                    CsvPath("fig6abc_easyim_lsweep"));
  for (const Panel& panel : panels) {
    // DBLP/YouTube are larger: extra shrink so the sweep stays fast.
    const double shrink =
        std::string(panel.dataset) == "NetHEPT" ? 1.0 : 0.02;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w,
        LoadWorkload(panel.dataset, config.scale * shrink, panel.model));
    auto grid = SeedGrid(config.max_k);
    for (uint32_t l : {1u, 2u, 3u, 5u, 7u, 10u}) {
      EasyImSelector selector(w.graph, w.params, l);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection seeds,
                             selector.Select(config.max_k));
      auto values = SpreadAtPrefixes(w.graph, w.params, seeds.seeds, grid,
                                     config.mc, config.seed);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({panel.figure, panel.dataset,
                      DiffusionModelName(panel.model), std::to_string(l),
                      std::to_string(grid[i]), CsvWriter::Num(values[i])});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 6a-6c): spread grows with l and\n"
              "saturates around l=3..5; l->diameter dips from cyclic error.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figures 6a-6c — EaSyIM path-length sweep",
                   Run);
}

// Figure 6i: memory footprint vs seeds for EaSyIM, CELF++ and TIM+ on
// NetHEPT and DBLP (IC). TIM+'s RR sets are the memory hog; EaSyIM stays
// at O(n) score buffers.

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "algo/tim_plus.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table("Figure 6i — memory vs seeds (IC)",
                    {"dataset", "algorithm", "k", "memory_MiB"},
                    CsvPath("fig6i_memory_growth"));
  for (const std::string& dataset : {std::string("NetHEPT"),
                                     std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.1 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kIndependentCascade));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      {
        EasyImSelector easyim(w.graph, w.params, 3);
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, easyim.Select(k));
        // Deterministic accounting (RSS is noisy at these small sizes):
        // EaSyIM working set = 2 score arrays.
        EasyImScorer scorer(w.graph, w.params, 3);
        table.AddRow({dataset, "EaSyIM", std::to_string(k),
                      CsvWriter::Num(MemoryMeter::ToMiB(
                          scorer.ScratchBytes()))});
      }
      {
        TimPlusOptions tim_opts;
        tim_opts.epsilon = 0.1;
        tim_opts.max_theta = 400000;
        TimPlusSelector tim(w.graph, w.params, tim_opts);
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, tim.Select(k));
        table.AddRow({dataset, "TIM+", std::to_string(k),
                      CsvWriter::Num(MemoryMeter::ToMiB(
                          tim.last_run_stats().rr_memory_bytes))});
      }
      if (dataset == "NetHEPT") {
        McOptions celf_mc;
        celf_mc.num_simulations = 30;
        celf_mc.seed = config.seed;
        auto objective =
            std::make_shared<SpreadObjective>(w.graph, w.params, celf_mc);
        CelfSelector celf(w.graph, objective, true, "CELF++");
        HOLIM_ASSIGN_OR_RETURN(SeedSelection sel, celf.Select(k));
        // CELF++ heap: one entry per node.
        const double heap_mib =
            MemoryMeter::ToMiB(w.graph.num_nodes() * 40);  // HeapEntry ~40B
        table.AddRow({dataset, "CELF++", std::to_string(k),
                      CsvWriter::Num(heap_mib)});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 6i): EaSyIM smallest (~500x less\n"
              "than TIM+); TIM+ grows fastest with k via theta.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv, "Figure 6i — memory growth with seeds", Run);
}

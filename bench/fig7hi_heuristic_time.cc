// Figures 7h-7i (appendix): running time of EaSyIM vs IRIE (WC) and vs
// SIMPATH (LT) on the medium datasets.

#include "algo/irie.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table("Figures 7h-7i — EaSyIM vs IRIE/SIMPATH time",
                    {"figure", "dataset", "algorithm", "k", "seconds"},
                    CsvPath("fig7hi_heuristic_time"));

  // 7h: WC — EaSyIM vs IRIE on all four medium datasets.
  for (const std::string& dataset : MediumDatasetNames()) {
    const double shrink =
        (dataset == "DBLP" || dataset == "YouTube") ? 0.1 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kWeightedCascade));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      EasyImSelector easyim(w.graph, w.params, 3);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection es, easyim.Select(k));
      table.AddRow({"7h", dataset, "EaSyIM", std::to_string(k),
                    CsvWriter::Num(es.elapsed_seconds)});
      IrieSelector irie(w.graph, w.params);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection is, irie.Select(k));
      table.AddRow({"7h", dataset, "IRIE", std::to_string(k),
                    CsvWriter::Num(is.elapsed_seconds)});
    }
  }

  // 7i: LT — EaSyIM vs SIMPATH on NetHEPT/HepPh/DBLP (paper: SIMPATH DNF
  // on DBLP after 5 days; we give it a smaller instance instead).
  for (const std::string& dataset :
       {std::string("NetHEPT"), std::string("HepPh"), std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.05 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kLinearThreshold));
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      EasyImSelector easyim(w.graph, w.params, 3);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection es, easyim.Select(k));
      table.AddRow({"7i", dataset, "EaSyIM", std::to_string(k),
                    CsvWriter::Num(es.elapsed_seconds)});
      SimpathSelector simpath(w.graph, w.params);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection ss, simpath.Select(k));
      table.AddRow({"7i", dataset, "SIMPATH", std::to_string(k),
                    CsvWriter::Num(ss.elapsed_seconds)});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7h-7i): EaSyIM 2-6x faster than\n"
              "IRIE; SIMPATH competitive only on the smallest datasets.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 7h-7i — heuristic running-time comparison", Run);
}

// Figures 7h-7i (appendix): running time of EaSyIM vs IRIE (WC) and vs
// SIMPATH (LT) on the medium datasets.

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.01);
  ResultTable table("Figures 7h-7i — EaSyIM vs IRIE/SIMPATH time",
                    {"figure", "dataset", "algorithm", "k", "seconds"},
                    CsvPath("fig7hi_heuristic_time"));

  // Both algorithms of a panel run through one engine per workload; the
  // EaSyIM scorer state is reused across the k-grid (reported seconds are
  // pure Select time).
  auto run_panel = [&](const char* figure, const Workload& w,
                       const char* easy_label, const std::string& rival,
                       const char* rival_label) -> Status {
    HolimEngine engine(w.graph);
    const uint32_t max_k =
        std::min<uint32_t>(config.max_k / 2, w.graph.num_nodes() / 4);
    for (uint32_t k : SeedGrid(max_k)) {
      HOLIM_ASSIGN_OR_RETURN(
          SolveResult es,
          engine.Solve(MakeSolveRequest("easyim", k, w.params, config)));
      table.AddRow({figure, w.dataset, easy_label, std::to_string(k),
                    CsvWriter::Num(es.select_seconds)});
      HOLIM_ASSIGN_OR_RETURN(
          SolveResult rs,
          engine.Solve(MakeSolveRequest(rival, k, w.params, config)));
      table.AddRow({figure, w.dataset, rival_label, std::to_string(k),
                    CsvWriter::Num(rs.select_seconds)});
    }
    return Status::OK();
  };

  // 7h: WC — EaSyIM vs IRIE on all four medium datasets.
  for (const std::string& dataset : MediumDatasetNames()) {
    const double shrink =
        (dataset == "DBLP" || dataset == "YouTube") ? 0.1 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kWeightedCascade));
    HOLIM_RETURN_NOT_OK(run_panel("7h", w, "EaSyIM", "irie", "IRIE"));
  }

  // 7i: LT — EaSyIM vs SIMPATH on NetHEPT/HepPh/DBLP (paper: SIMPATH DNF
  // on DBLP after 5 days; we give it a smaller instance instead).
  for (const std::string& dataset :
       {std::string("NetHEPT"), std::string("HepPh"), std::string("DBLP")}) {
    const double shrink = dataset == "DBLP" ? 0.05 : 1.0;
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, scale * shrink,
                                 DiffusionModel::kLinearThreshold));
    HOLIM_RETURN_NOT_OK(run_panel("7i", w, "EaSyIM", "simpath", "SIMPATH"));
  }
  table.Print();
  std::printf("\nExpected shape (paper Figs. 7h-7i): EaSyIM 2-6x faster than\n"
              "IRIE; SIMPATH competitive only on the smallest datasets.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figures 7h-7i — heuristic running-time comparison", Run);
}

// Figure 5c: opinion spread vs seeds on the Twitter background graph for
// seeds selected under OI (OSIM), OC, and IC (EaSyIM).

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"
#include "data/twitter.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  TwitterCorpusOptions options;
  options.num_users =
      static_cast<NodeId>(std::max(3000.0, 1'600'000 * config.scale * 0.1));
  options.num_topics = 6;
  options.seed = config.seed;
  HOLIM_ASSIGN_OR_RETURN(TwitterCorpus corpus, BuildTwitterCorpus(options));
  const Graph& bg = corpus.background;
  InfluenceParams influence = MakeUniformIc(bg, 0.12);
  InfluenceParams lt = MakeLinearThreshold(bg);

  // All three selections run through one engine on the background graph.
  // phi_one precedes the engine: cached selectors reference it, so it
  // must outlive the Workspace.
  OpinionParams phi_one = corpus.estimated;
  std::fill(phi_one.interaction.begin(), phi_one.interaction.end(), 1.0);
  HolimEngine engine(bg);
  const uint32_t max_k = std::min<uint32_t>(config.max_k, bg.num_nodes() / 2);

  SolveRequest oi = MakeSolveRequest("osim", max_k, influence, config);
  oi.opinions = &corpus.estimated;
  SolveRequest oc = MakeSolveRequest("osim", max_k, lt, config);
  oc.opinions = &phi_one;
  oc.oi_base = OiBase::kLinearThreshold;
  SolveRequest ic = MakeSolveRequest("easyim", max_k, influence, config);

  HOLIM_ASSIGN_OR_RETURN(SolveResult oi_seeds, engine.Solve(oi));
  HOLIM_ASSIGN_OR_RETURN(SolveResult oc_seeds, engine.Solve(oc));
  HOLIM_ASSIGN_OR_RETURN(SolveResult ic_seeds, engine.Solve(ic));

  ResultTable table("Figure 5c — opinion spread vs seeds (Twitter)",
                    {"k", "OI", "OC", "IC"}, CsvPath("fig5c_twitter_spread"));
  auto grid = SeedGrid(max_k);
  // --oracle=sketch: one snapshot set over the background graph, reused by
  // all three selectors' prefix sweeps (opinion replay needs per-edge phi).
  std::shared_ptr<const SketchOracle> sketch;
  if (common.oracle == SpreadOracle::kSketch) {
    sketch = GetBenchSketchOracle(engine, bg, influence, config,
                                  /*seed_offset=*/0,
                                  /*record_edge_offsets=*/true);
  }
  auto evaluate = [&](const std::vector<NodeId>& seeds) {
    return sketch ? OpinionSpreadAtPrefixesSketch(*sketch, corpus.estimated,
                                                  seeds, grid, 1.0,
                                                  common.sketch_eval)
                  : OpinionSpreadAtPrefixes(bg, influence, corpus.estimated,
                                            OiBase::kIndependentCascade,
                                            seeds, grid, 1.0, config.mc,
                                            config.seed);
  };
  auto oi_values = evaluate(oi_seeds.seeds);
  auto oc_values = evaluate(oc_seeds.seeds);
  auto ic_values = evaluate(ic_seeds.seeds);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({std::to_string(grid[i]), CsvWriter::Num(oi_values[i]),
                  CsvWriter::Num(oc_values[i]), CsvWriter::Num(ic_values[i])});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5c): OI > OC > IC.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5c — opinion spread of OI/OC/IC-selected seeds on "
                   "the Twitter background graph",
                   Run, [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

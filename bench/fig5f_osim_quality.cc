// Figure 5f: OSIM quality vs Modified-GREEDY on NetHEPT (OI model,
// o ~ N(0,1)), sweeping the path-length horizon l in {1, 2, 3, 5}.

#include <memory>

#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  // Modified-GREEDY is O(k * n * sims); shrink the instance accordingly.
  const double scale = args.GetDouble("scale", 0.05);
  HOLIM_ASSIGN_OR_RETURN(
      Workload w,
      LoadWorkload("NetHEPT", scale, DiffusionModel::kIndependentCascade));
  w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
  OpinionParams opinions = MakeRandomOpinions(
      w.graph, OpinionDistribution::kStandardNormal, config.seed);
  std::printf("NetHEPT stand-in: n=%u m=%llu\n", w.graph.num_nodes(),
              static_cast<unsigned long long>(w.graph.num_edges()));

  const uint32_t max_k =
      std::min<uint32_t>(config.max_k / 4, w.graph.num_nodes() / 30);
  auto grid = SeedGrid(max_k);

  ResultTable table("Figure 5f — opinion spread vs seeds (OI, NetHEPT)",
                    {"selector", "k", "effective_opinion_spread"},
                    CsvPath("fig5f_osim_quality"));

  McOptions greedy_mc;
  greedy_mc.num_simulations = std::min<uint32_t>(config.mc, 100);
  greedy_mc.seed = config.seed;
  auto objective = std::make_shared<EffectiveOpinionObjective>(
      w.graph, w.params, opinions, OiBase::kIndependentCascade, 1.0,
      greedy_mc);
  GreedySelector greedy(w.graph, objective, "Modified-GREEDY");
  HOLIM_ASSIGN_OR_RETURN(SeedSelection greedy_seeds, greedy.Select(max_k));
  auto greedy_values = OpinionSpreadAtPrefixes(
      w.graph, w.params, opinions, OiBase::kIndependentCascade,
      greedy_seeds.seeds, grid, 1.0, config.mc, config.seed);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({"Modified-GREEDY", std::to_string(grid[i]),
                  CsvWriter::Num(greedy_values[i])});
  }

  for (uint32_t l : {1u, 2u, 3u, 5u}) {
    OsimSelector osim(w.graph, w.params, opinions,
                      OiBase::kIndependentCascade, l);
    HOLIM_ASSIGN_OR_RETURN(SeedSelection seeds, osim.Select(max_k));
    auto values = OpinionSpreadAtPrefixes(
        w.graph, w.params, opinions, OiBase::kIndependentCascade, seeds.seeds,
        grid, 1.0, config.mc, config.seed);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.AddRow({"OSIM,l=" + std::to_string(l), std::to_string(grid[i]),
                    CsvWriter::Num(values[i])});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5f): spread improves with l up to\n"
              "l=3 and OSIM closely tracks Modified-GREEDY.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5f — OSIM l-sweep vs Modified-GREEDY (quality)",
                   Run);
}

// Extension bench: cross-model robustness of opinion-aware seed selection.
//
// The paper compares OI with IC-N analytically (Sec. 1: IC-N is
// "constrained and specific"). This bench makes the comparison empirical
// with a 2x2 matrix: seeds selected under each model (OSIM for OI; CELF on
// the submodular IC-N positive-spread objective for IC-N) are evaluated
// under both models' dynamics. The paper's position predicts the diagonal
// wins and that OI-selected seeds degrade gracefully under IC-N while
// IC-N-selected seeds (opinion-blind beyond the quality factor) lose badly
// under OI.

#include <memory>

#include "algo/celf.h"
#include "algo/icn_objective.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  const SpreadOracle oracle = common.oracle;
  const double quality = args.GetDouble("quality", 0.8);
  // CELF on the IC-N objective evaluates every node once: keep it modest.
  const double scale = std::min(config.scale, 0.05);
  HOLIM_ASSIGN_OR_RETURN(
      Workload w, LoadWorkload("NetHEPT", scale,
                               DiffusionModel::kIndependentCascade));
  w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
  OpinionParams opinions = MakeRandomOpinions(
      w.graph, OpinionDistribution::kStandardNormal, config.seed);
  const uint32_t k =
      std::min<uint32_t>(config.max_k / 5, w.graph.num_nodes() / 20);

  // Selection under OI: OSIM.
  OsimSelector osim(w.graph, w.params, opinions, OiBase::kIndependentCascade,
                    3);
  HOLIM_ASSIGN_OR_RETURN(SeedSelection oi_seeds, osim.Select(k));

  // Selection under IC-N: CELF on the (submodular) positive-spread
  // objective with uniform quality factor.
  McOptions icn_mc;
  icn_mc.num_simulations = std::min<uint32_t>(config.mc, 100);
  icn_mc.seed = config.seed;
  // --oracle=sketch: CELF's IC-N objective evaluates over presampled
  // worlds (exact in the quality flips given the worlds) instead of fresh
  // MC runs per candidate.
  std::shared_ptr<const SketchOracle> sketch;
  if (oracle == SpreadOracle::kSketch) {
    sketch = MakeSketchOracle(w.graph, w.params, icn_mc.num_simulations,
                              config.seed);
  }
  auto icn_objective = std::make_shared<IcnPositiveSpreadObjective>(
      w.graph, w.params, quality, icn_mc, sketch, common.sketch_eval);
  CelfSelector icn_celf(w.graph, icn_objective, true, "IC-N CELF");
  HOLIM_ASSIGN_OR_RETURN(SeedSelection icn_seeds, icn_celf.Select(k));

  McOptions eval_mc;
  eval_mc.num_simulations = config.mc;
  eval_mc.seed = config.seed + 1;

  auto oi_value = [&](const std::vector<NodeId>& seeds) {
    return EstimateOpinionSpread(w.graph, w.params, opinions,
                                 OiBase::kIndependentCascade, seeds, 1.0,
                                 eval_mc)
        .effective_opinion_spread;
  };
  auto icn_value = [&](const std::vector<NodeId>& seeds) {
    return EstimateIcnPositiveSpread(w.graph, w.params, quality, seeds,
                                     eval_mc);
  };

  ResultTable table("Ablation — OI vs IC-N selection robustness (k=" +
                        std::to_string(k) + ")",
                    {"selected_under", "eval_OI_gamma", "eval_ICN_positive"},
                    CsvPath("ablation_icn_model"));
  table.AddRow({"OI (OSIM)", CsvWriter::Num(oi_value(oi_seeds.seeds)),
                CsvWriter::Num(icn_value(oi_seeds.seeds))});
  table.AddRow({"IC-N (CELF)", CsvWriter::Num(oi_value(icn_seeds.seeds)),
                CsvWriter::Num(icn_value(icn_seeds.seeds))});
  table.Print();
  std::printf("\nReading: each row's own-model column should win its column;\n"
              "IC-N seeds are opinion-blind, so their OI evaluation suffers\n"
              "most (the paper's 'constrained and specific' critique).\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Ablation — cross-model robustness (OI vs IC-N)", Run,
                   [](BenchArgs* args) {
                     args->Declare("quality", "IC-N quality factor q");
                     DeclareCommonOptions(args, kSpec);
                   });
}

// Figure 5g: running time vs seeds for OSIM (l sweep) and Modified-GREEDY
// on NetHEPT under OI. The paper's claim: OSIM is 1e3-1e5x faster.

#include <memory>

#include "algo/greedy.h"
#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/false,
                                  /*rescore_default=*/"full"};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const double scale = args.GetDouble("scale", 0.05);
  ScoreGreedyOptions sg_options;
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  sg_options.incremental_rescore = common.incremental_rescore;
  HOLIM_ASSIGN_OR_RETURN(
      Workload w,
      LoadWorkload("NetHEPT", scale, DiffusionModel::kIndependentCascade));
  OpinionParams opinions = MakeRandomOpinions(
      w.graph, OpinionDistribution::kStandardNormal, config.seed);

  const uint32_t max_k =
      std::min<uint32_t>(config.max_k / 4, w.graph.num_nodes() / 30);
  ResultTable table("Figure 5g — selection time vs seeds (OI, NetHEPT)",
                    {"selector", "k", "seconds"}, CsvPath("fig5g_osim_time"));

  for (uint32_t l : {1u, 2u, 3u, 5u}) {
    for (uint32_t k : SeedGrid(max_k)) {
      OsimSelector osim(w.graph, w.params, opinions,
                        OiBase::kIndependentCascade, l, sg_options);
      HOLIM_ASSIGN_OR_RETURN(SeedSelection selection, osim.Select(k));
      table.AddRow({"OSIM,l=" + std::to_string(l), std::to_string(k),
                    CsvWriter::Num(selection.elapsed_seconds)});
    }
  }
  McOptions greedy_mc;
  greedy_mc.num_simulations = std::min<uint32_t>(config.mc, 100);
  greedy_mc.seed = config.seed;
  for (uint32_t k : SeedGrid(std::min<uint32_t>(max_k, 10))) {
    auto objective = std::make_shared<EffectiveOpinionObjective>(
        w.graph, w.params, opinions, OiBase::kIndependentCascade, 1.0,
        greedy_mc);
    GreedySelector greedy(w.graph, objective, "Modified-GREEDY");
    HOLIM_ASSIGN_OR_RETURN(SeedSelection selection, greedy.Select(k));
    table.AddRow({"Modified-GREEDY", std::to_string(k),
                  CsvWriter::Num(selection.elapsed_seconds)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5g): OSIM linear in k and l;\n"
              "Modified-GREEDY orders of magnitude slower.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 5g — OSIM vs Modified-GREEDY running time", Run,
                   [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

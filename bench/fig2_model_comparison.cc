// Figure 2: opinion spread vs #seeds for seeds chosen under OI (OSIM), OC,
// and IC (EaSyIM) on HepPh and NetHEPT stand-ins. The paper's claim: the
// OI-selected seeds dominate, IC-selected seeds trail badly.

#include <memory>

#include "bench_support/engine_support.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

constexpr CommonOptionsSpec kSpec{/*oracle=*/true};

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, kSpec));
  ResultTable table("Figure 2 — opinion spread vs seeds",
                    {"dataset", "selector", "k", "opinion_spread"},
                    CsvPath("fig2_model_comparison"));
  // The paper averages over 3 instances of the generated opinion data;
  // a single instance carries a large fixed baseline (the giant component's
  // net opinion mass) that masks the selector differences.
  const int kInstances = 3;
  for (const std::string& dataset : {std::string("HepPh"),
                                     std::string("NetHEPT")}) {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale,
                                 DiffusionModel::kIndependentCascade));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    InfluenceParams lt = MakeLinearThreshold(w.graph);
    auto grid = SeedGrid(config.max_k);
    // One engine per dataset: the EaSyIM scorer state (opinion-oblivious,
    // so identical across instances) and the --oracle=sketch worlds are
    // Workspace artifacts reused across all 3 instances x 3 selectors x
    // prefix sweeps (opinion replay reads per-edge phi, hence
    // record_edge_offsets on the evaluation sketch).
    // Per-instance opinion layers are generated up front: the engine's
    // Workspace retains cached OSIM selectors referencing them, so they
    // must outlive the engine (holim_engine.h lifetime contract).
    std::vector<OpinionParams> instance_opinions, instance_phi_one;
    for (int instance = 0; instance < kInstances; ++instance) {
      instance_opinions.push_back(MakeRandomOpinions(
          w.graph, OpinionDistribution::kStandardNormal,
          config.seed + 1000 * instance));
      OpinionParams phi_one = instance_opinions.back();
      std::fill(phi_one.interaction.begin(), phi_one.interaction.end(), 1.0);
      instance_phi_one.push_back(std::move(phi_one));
    }
    HolimEngine engine(w.graph);
    std::shared_ptr<const SketchOracle> sketch;
    if (common.oracle == SpreadOracle::kSketch) {
      sketch = GetBenchSketchOracle(engine, w.graph, w.params, config,
                                    /*seed_offset=*/0,
                                    /*record_edge_offsets=*/true);
    }
    std::vector<double> oi_acc(grid.size(), 0), oc_acc(grid.size(), 0),
        ic_acc(grid.size(), 0);
    for (int instance = 0; instance < kInstances; ++instance) {
      const OpinionParams& opinions = instance_opinions[instance];

      // OI: OSIM seeds; OC: OSIM with phi == 1 on LT weights (the OC
      // special case); IC: opinion-oblivious EaSyIM seeds.
      SolveRequest oi = MakeSolveRequest("osim", config.max_k, w.params,
                                         config);
      oi.opinions = &opinions;
      SolveRequest oc = MakeSolveRequest("osim", config.max_k, lt, config);
      oc.opinions = &instance_phi_one[instance];
      oc.oi_base = OiBase::kLinearThreshold;
      SolveRequest ic = MakeSolveRequest("easyim", config.max_k, w.params,
                                         config);

      HOLIM_ASSIGN_OR_RETURN(SolveResult oi_seeds, engine.Solve(oi));
      HOLIM_ASSIGN_OR_RETURN(SolveResult oc_seeds, engine.Solve(oc));
      HOLIM_ASSIGN_OR_RETURN(SolveResult ic_seeds, engine.Solve(ic));

      // All strategies are judged under the OI ground-truth dynamics.
      auto accumulate = [&](const std::vector<NodeId>& seeds,
                            std::vector<double>* acc) {
        auto values =
            sketch ? OpinionSpreadAtPrefixesSketch(*sketch, opinions, seeds,
                                                   grid, /*lambda=*/1.0,
                                                   common.sketch_eval)
                   : OpinionSpreadAtPrefixes(
                         w.graph, w.params, opinions,
                         OiBase::kIndependentCascade, seeds, grid,
                         /*lambda=*/1.0, config.mc, config.seed);
        for (std::size_t i = 0; i < grid.size(); ++i) {
          (*acc)[i] += values[i] / kInstances;
        }
      };
      accumulate(oi_seeds.seeds, &oi_acc);
      accumulate(oc_seeds.seeds, &oc_acc);
      accumulate(ic_seeds.seeds, &ic_acc);
    }
    struct Series {
      const char* name;
      const std::vector<double>* values;
    };
    const Series series[] = {
        {"OI", &oi_acc}, {"OC", &oc_acc}, {"IC", &ic_acc}};
    for (const auto& s : series) {
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({dataset, s.name, std::to_string(grid[i]),
                      CsvWriter::Num((*s.values)[i])});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 2): OI >= OC >> IC at every k.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 2 — opinion spread under OI/OC/IC seed selection",
                   Run, [](BenchArgs* args) {
                     DeclareCommonOptions(args, kSpec);
                   });
}

// Figure 2: opinion spread vs #seeds for seeds chosen under OI (OSIM), OC,
// and IC (EaSyIM) on HepPh and NetHEPT stand-ins. The paper's claim: the
// OI-selected seeds dominate, IC-selected seeds trail badly.

#include <memory>

#include "algo/score_greedy.h"
#include "common.h"

using namespace holim;
using namespace holim::bench;

namespace {

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  HOLIM_ASSIGN_OR_RETURN(SpreadOracle oracle, ParseOracleFlag(args));
  ResultTable table("Figure 2 — opinion spread vs seeds",
                    {"dataset", "selector", "k", "opinion_spread"},
                    CsvPath("fig2_model_comparison"));
  // The paper averages over 3 instances of the generated opinion data;
  // a single instance carries a large fixed baseline (the giant component's
  // net opinion mass) that masks the selector differences.
  const int kInstances = 3;
  for (const std::string& dataset : {std::string("HepPh"),
                                     std::string("NetHEPT")}) {
    HOLIM_ASSIGN_OR_RETURN(
        Workload w, LoadWorkload(dataset, config.scale,
                                 DiffusionModel::kIndependentCascade));
    w.graph.BuildEdgeSourceIndex();  // O(1) EdgeSource in opinion replay
    InfluenceParams lt = MakeLinearThreshold(w.graph);
    auto grid = SeedGrid(config.max_k);
    // --oracle=sketch: sample the first-layer worlds once per dataset and
    // reuse them across all 3 instances x 3 selectors x prefix sweeps
    // (opinion replay reads per-edge phi, hence record_edge_offsets).
    std::shared_ptr<const SketchOracle> sketch;
    if (oracle == SpreadOracle::kSketch) {
      sketch = MakeSketchOracle(w.graph, w.params, config.mc, config.seed,
                                /*record_edge_offsets=*/true);
    }
    std::vector<double> oi_acc(grid.size(), 0), oc_acc(grid.size(), 0),
        ic_acc(grid.size(), 0);
    for (int instance = 0; instance < kInstances; ++instance) {
      OpinionParams opinions = MakeRandomOpinions(
          w.graph, OpinionDistribution::kStandardNormal,
          config.seed + 1000 * instance);

      // OI: OSIM seeds; OC: OSIM with phi == 1 on LT weights (the OC
      // special case); IC: opinion-oblivious EaSyIM seeds.
      OsimSelector oi_selector(w.graph, w.params, opinions,
                               OiBase::kIndependentCascade, 3);
      OpinionParams phi_one = opinions;
      std::fill(phi_one.interaction.begin(), phi_one.interaction.end(), 1.0);
      OsimSelector oc_selector(w.graph, lt, phi_one,
                               OiBase::kLinearThreshold, 3);
      EasyImSelector ic_selector(w.graph, w.params, 3);

      HOLIM_ASSIGN_OR_RETURN(SeedSelection oi_seeds,
                             oi_selector.Select(config.max_k));
      HOLIM_ASSIGN_OR_RETURN(SeedSelection oc_seeds,
                             oc_selector.Select(config.max_k));
      HOLIM_ASSIGN_OR_RETURN(SeedSelection ic_seeds,
                             ic_selector.Select(config.max_k));

      // All strategies are judged under the OI ground-truth dynamics.
      auto accumulate = [&](const std::vector<NodeId>& seeds,
                            std::vector<double>* acc) {
        auto values =
            sketch ? OpinionSpreadAtPrefixesSketch(*sketch, opinions, seeds,
                                                   grid, /*lambda=*/1.0)
                   : OpinionSpreadAtPrefixes(
                         w.graph, w.params, opinions,
                         OiBase::kIndependentCascade, seeds, grid,
                         /*lambda=*/1.0, config.mc, config.seed);
        for (std::size_t i = 0; i < grid.size(); ++i) {
          (*acc)[i] += values[i] / kInstances;
        }
      };
      accumulate(oi_seeds.seeds, &oi_acc);
      accumulate(oc_seeds.seeds, &oc_acc);
      accumulate(ic_seeds.seeds, &ic_acc);
    }
    struct Series {
      const char* name;
      const std::vector<double>* values;
    };
    const Series series[] = {
        {"OI", &oi_acc}, {"OC", &oc_acc}, {"IC", &ic_acc}};
    for (const auto& s : series) {
      for (std::size_t i = 0; i < grid.size(); ++i) {
        table.AddRow({dataset, s.name, std::to_string(grid[i]),
                      CsvWriter::Num((*s.values)[i])});
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 2): OI >= OC >> IC at every k.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  return BenchMain(argc, argv,
                   "Figure 2 — opinion spread under OI/OC/IC seed selection",
                   Run, [](BenchArgs* args) { DeclareOracleFlag(args); });
}

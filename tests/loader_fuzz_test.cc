// Malformed-input hardening of the graph loaders: every corrupt file —
// truncated, non-finite weights, out-of-range endpoints, trailing bytes,
// random byte-level truncation — must surface as a typed Status, never a
// crash, and must not hand back a half-built graph.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace holim {
namespace {

/// Writes `content` to a unique temp path; unlinks it at scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    path_ = ::testing::TempDir() + "holim_loader_fuzz_" +
            std::to_string(counter_++) + ".tmp";
    std::ofstream out(path_, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

// ------------------------------------------------- text edge lists ------

TEST(EdgeListHardeningTest, MissingFileIsIOError) {
  auto result = ReadEdgeList("/nonexistent/holim/график.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(EdgeListHardeningTest, TruncatedRowIsIOError) {
  TempFile file("0 1\n2\n");
  auto result = ReadEdgeList(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(EdgeListHardeningTest, NonNumericNodeIdIsIOError) {
  TempFile file("0 1\nfoo bar\n");
  auto result = ReadEdgeList(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(WeightedEdgeListHardeningTest, NaNProbabilityRejected) {
  // NaN fails every comparison, so a naive [0,1] range check would pass
  // it through into the sampling kernels.
  TempFile file("0 1 0.5\n1 2 nan\n");
  auto result = ReadWeightedEdgeList(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WeightedEdgeListHardeningTest, InfinityAndOutOfRangeRejected) {
  for (const char* bad : {"0 1 inf\n", "0 1 -0.25\n", "0 1 1.5\n"}) {
    TempFile file(bad);
    auto result = ReadWeightedEdgeList(file.path());
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(WeightedEdgeListHardeningTest, MissingWeightColumnIsIOError) {
  TempFile file("0 1 0.5\n1 2\n");
  auto result = ReadWeightedEdgeList(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(WeightedEdgeListHardeningTest, WellFormedFileStillLoads) {
  TempFile file("# comment\n0 1 0.5\n1 2 0.25\n2 0 1.0\n");
  auto result = ReadWeightedEdgeList(file.path());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.num_nodes(), 3u);
  EXPECT_EQ(result->graph.num_edges(), 3u);
  EXPECT_EQ(result->probability.size(), 3u);
}

// ------------------------------------------------- binary bundles ------

std::string SerializeBundle(const Graph& graph,
                            const std::vector<double>* probability) {
  const std::string path = ::testing::TempDir() + "holim_bundle_ser.tmp";
  EXPECT_TRUE(WriteGraphBundle(path, graph, probability, nullptr, nullptr)
                  .ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

TEST(BinaryIoHardeningTest, BadMagicIsInvalidArgument) {
  TempFile file(std::string(64, '\xEE'));
  auto result = ReadGraphBundle(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryIoHardeningTest, EveryTruncationIsTypedNotACrash) {
  Graph graph = GenerateBarabasiAlbert(40, 2, 3).ValueOrDie();
  std::vector<double> probability(graph.num_edges(), 0.25);
  const std::string bytes = SerializeBundle(graph, &probability);
  ASSERT_GT(bytes.size(), 32u);
  // Every strict prefix must fail with a typed Status (IOError for a short
  // read, InvalidArgument only for the sub-magic prefixes).
  for (std::size_t len = 0; len < bytes.size();
       len += 1 + len / 16 /* denser near the header */) {
    auto result = ReadGraphBundle(
        TempFile(bytes.substr(0, len)).path());
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes";
    const StatusCode code = result.status().code();
    EXPECT_TRUE(code == StatusCode::kIOError ||
                code == StatusCode::kInvalidArgument)
        << "prefix " << len << ": " << result.status().ToString();
  }
}

TEST(BinaryIoHardeningTest, TrailingGarbageRejected) {
  Graph graph = GenerateBarabasiAlbert(20, 2, 3).ValueOrDie();
  const std::string bytes = SerializeBundle(graph, nullptr);
  auto result = ReadGraphBundle(TempFile(bytes + "junk").path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(BinaryIoHardeningTest, NonFiniteStoredProbabilityRejected) {
  Graph graph = GenerateBarabasiAlbert(20, 2, 3).ValueOrDie();
  std::vector<double> probability(graph.num_edges(), 0.25);
  std::string bytes = SerializeBundle(graph, &probability);
  // Corrupt one stored probability into a NaN bit pattern: the well-formed
  // prefix parses, so the loader must catch the value itself. Layout tail:
  // ...probability doubles, then the two absent-section flag bytes — the
  // last double ends 2 bytes before EOF.
  const uint64_t nan_bits = 0x7FF8000000000000ULL;
  ASSERT_GE(bytes.size(), sizeof(nan_bits) + 2);
  std::memcpy(bytes.data() + bytes.size() - 2 - sizeof(nan_bits), &nan_bits,
              sizeof(nan_bits));
  auto result = ReadGraphBundle(TempFile(bytes).path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(BinaryIoHardeningTest, OutOfRangeEndpointRejected) {
  Graph graph = GenerateBarabasiAlbert(20, 2, 3).ValueOrDie();
  std::string bytes = SerializeBundle(graph, nullptr);
  // Layout: magic u64, node count u64, then the source array (count u64,
  // then NodeId entries). Smash the first source id past the node count.
  const std::size_t first_source = sizeof(uint64_t) * 3;
  const NodeId bogus = 1'000'000;
  ASSERT_GE(bytes.size(), first_source + sizeof(bogus));
  std::memcpy(bytes.data() + first_source, &bogus, sizeof(bogus));
  auto result = ReadGraphBundle(TempFile(bytes).path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("out of node range"),
            std::string::npos);
}

TEST(BinaryIoHardeningTest, RandomByteFlipsNeverCrash) {
  Graph graph = GenerateBarabasiAlbert(30, 2, 3).ValueOrDie();
  std::vector<double> probability(graph.num_edges(), 0.5);
  const std::string bytes = SerializeBundle(graph, &probability);
  Rng rng(0xBADF11E5ULL);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = bytes;
    const int flips = 1 + static_cast<int>(rng.Next64() % 4);
    for (int i = 0; i < flips; ++i) {
      corrupt[rng.Next64() % corrupt.size()] ^=
          static_cast<char>(1 + rng.Next64() % 255);
    }
    // Any outcome is legal except a crash or runaway allocation: either a
    // typed error, or the flip landed somewhere harmless and a
    // structurally valid bundle loads.
    auto result = ReadGraphBundle(TempFile(corrupt).path());
    if (result.ok()) {
      EXPECT_EQ(result->graph.num_edges(),
                result->edge_probability.empty()
                    ? result->graph.num_edges()
                    : result->edge_probability.size());
    }
  }
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "algo/easyim.h"
#include "algo/path_union.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(PathUnionTest, PathGraphMatrixEntries) {
  // After l rounds the PU matrix holds walks of length exactly l (the
  // cumulative score lives in Delta, which AssignScores accumulates).
  Graph g = GeneratePath(4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  for (uint32_t l = 1; l <= 3; ++l) {
    PathUnionScorer scorer(g, params, l);
    auto matrix = scorer.WalkUnionMatrix().ValueOrDie();
    for (NodeId u = 0; u < 4; ++u) {
      for (NodeId v = 0; v < 4; ++v) {
        const double expected =
            (v > u && v - u == l) ? std::pow(0.5, l) : 0.0;
        EXPECT_NEAR(matrix[u][v], expected, 1e-12)
            << "l=" << l << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(PathUnionTest, ScoresOnPathMatchEasyIm) {
  // On a DAG with unique paths both algorithms count identically.
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  PathUnionScorer pu(g, params, 4);
  auto pu_scores = pu.AssignScores().ValueOrDie();
  EasyImScorer easy(g, params, 4);
  EpochSet excluded(5);
  excluded.Reset(5);
  std::vector<double> easy_scores;
  easy.AssignScores(excluded, &easy_scores);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_NEAR(pu_scores[u], easy_scores[u], 1e-9) << "node " << u;
  }
}

TEST(PathUnionTest, DiamondUsesProbabilisticUnion) {
  // 0 -> {1,2} -> 3: PU combines the two 0->3 paths by union (Lemma 6's B1
  // vs EaSyIM's plain sum). Union < sum.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  PathUnionScorer pu(g, params, 2);
  auto matrix = pu.WalkUnionMatrix().ValueOrDie();
  // Two length-2 paths each weighing 0.25; union = 1-(1-.25)^2 = 0.4375.
  EXPECT_NEAR(matrix[0][3], 0.4375, 1e-12);

  EasyImScorer easy(g, params, 2);
  EpochSet excluded(4);
  excluded.Reset(4);
  std::vector<double> easy_scores;
  easy.AssignScores(excluded, &easy_scores);
  // EaSyIM adds them: contribution of node 3 to Delta_2(0) is 0.5 > 0.4375,
  // so Delta_EaSyIM(0) > row sum of PU.
  double pu_row = matrix[0][1] + matrix[0][2] + matrix[0][3];
  EXPECT_GT(easy_scores[0], pu_row);
}

TEST(PathUnionTest, CycleDiscountedOnDiagonal) {
  // Triangle: walks that return to the origin are zeroed each round.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  PathUnionScorer pu(g, params, 6);
  auto matrix = pu.WalkUnionMatrix().ValueOrDie();
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(matrix[u][u], 0.0);
}

TEST(PathUnionTest, DenseLimitGuard) {
  Graph g = GenerateErdosRenyi(5000, 2.0, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  PathUnionScorer pu(g, params, 2);
  auto result = pu.AssignScores();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(PathUnionTest, ScoresUpperBoundedByReachableCount) {
  Graph g = GenerateErdosRenyi(60, 3.0, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  PathUnionScorer pu(g, params, 4);
  auto scores = pu.AssignScores().ValueOrDie();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(scores[u], 0.0);
    // Each pairwise union entry is a probability <= 1, and Delta accumulates
    // l rounds of row sums, so Delta <= l * n.
    EXPECT_LE(scores[u], 4.0 * g.num_nodes());
  }
}

}  // namespace
}  // namespace holim

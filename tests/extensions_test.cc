#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "algo/asim.h"
#include "algo/celf.h"
#include "algo/easyim.h"
#include "algo/icn_objective.h"
#include "algo/osim.h"
#include "algo/static_greedy.h"
#include "diffusion/spread_estimator.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

// ---------------------------------------------------------------- ASIM --

TEST(AsimTest, MatchesEasyImWhenProbabilitiesEqualDamping) {
  // ASIM with damping d == EaSyIM under uniform IC probability d.
  Graph g = GenerateBarabasiAlbert(300, 3, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  AsimOptions options;
  options.l = 3;
  options.damping = 0.1;
  AsimSelector asim(g, params, options);
  EasyImScorer easy(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> asim_scores, easy_scores;
  asim.AssignScores(excluded, &asim_scores);
  easy.AssignScores(excluded, &easy_scores);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(asim_scores[u], easy_scores[u], 1e-9) << "node " << u;
  }
}

TEST(AsimTest, ProbabilityBlindUnlikeEasyIm) {
  // Under WC, ASIM ignores the per-edge weights while EaSyIM uses them:
  // on a graph where one node has high-degree *low-weight* edges the two
  // must disagree on scores.
  GraphBuilder b(6);
  // Node 0 -> {1,2,3}: targets with in-degree 3 each (low WC weight).
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(4, 1);
  b.AddEdge(4, 2);
  b.AddEdge(4, 3);
  b.AddEdge(5, 1);
  b.AddEdge(5, 2);
  b.AddEdge(5, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto wc = MakeWeightedCascade(g);
  AsimOptions options;
  options.l = 1;
  options.damping = 0.5;
  AsimSelector asim(g, wc, options);
  EasyImScorer easy(g, wc, 1);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> asim_scores, easy_scores;
  asim.AssignScores(excluded, &asim_scores);
  easy.AssignScores(excluded, &easy_scores);
  // ASIM: 3 * 0.5 = 1.5; EaSyIM: 3 * (1/3) = 1.0.
  EXPECT_NEAR(asim_scores[0], 1.5, 1e-12);
  EXPECT_NEAR(easy_scores[0], 1.0, 1e-12);
}

TEST(AsimTest, SelectsValidSeeds) {
  Graph g = GenerateBarabasiAlbert(200, 3, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  AsimSelector asim(g, params);
  auto selection = asim.Select(10).ValueOrDie();
  EXPECT_EQ(selection.seeds.size(), 10u);
  EXPECT_EQ(asim.name(), "ASIM(l=3)");
}

// -------------------------------------------------------- StaticGreedy --

TEST(StaticGreedyTest, HubWinsOnStar) {
  GraphBuilder b(10);
  for (NodeId leaf = 1; leaf < 10; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  StaticGreedySelector sg(g, params);
  auto selection = sg.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
  // Gain of the hub ~ 1 + 9 * 0.5.
  EXPECT_NEAR(selection.seed_scores[0], 5.5, 1.0);
}

TEST(StaticGreedyTest, MatchesCelfSeedsOnSmallGraph) {
  Graph g = GenerateBarabasiAlbert(60, 2, 3).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  StaticGreedyOptions options;
  options.num_snapshots = 400;
  StaticGreedySelector sg(g, params, options);
  McOptions mc;
  mc.num_simulations = 3000;
  mc.seed = 4;
  auto objective = std::make_shared<SpreadObjective>(g, params, mc);
  CelfSelector celf(g, objective, false, "CELF");
  auto sg_sel = sg.Select(3).ValueOrDie();
  auto celf_sel = celf.Select(3).ValueOrDie();
  // Both optimize the same submodular objective; allow spread-equivalent
  // differences by comparing achieved spread rather than identity.
  const double sg_spread = EstimateSpread(g, params, sg_sel.seeds, mc);
  const double celf_spread = EstimateSpread(g, params, celf_sel.seeds, mc);
  EXPECT_NEAR(sg_spread, celf_spread, 0.1 * std::max(1.0, celf_spread));
}

TEST(StaticGreedyTest, LtSnapshotsRespectSingleLiveInEdge) {
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  StaticGreedyOptions options;
  options.num_snapshots = 50;
  StaticGreedySelector sg(g, params, options);
  auto selection = sg.Select(1).ValueOrDie();
  // Full-weight chain: node 0 reaches everything in every snapshot.
  EXPECT_EQ(selection.seeds[0], 0u);
  EXPECT_NEAR(selection.seed_scores[0], 5.0, 1e-9);
}

TEST(StaticGreedyTest, SnapshotMemoryAccounted) {
  Graph g = GenerateBarabasiAlbert(100, 3, 5).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  StaticGreedySelector sg(g, params);
  (void)sg.Select(2).ValueOrDie();
  EXPECT_GT(sg.SnapshotBytes(), 0u);
}

TEST(StaticGreedyTest, RejectsBadK) {
  Graph g = GeneratePath(4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  StaticGreedySelector sg(g, params);
  EXPECT_FALSE(sg.Select(0).ok());
  EXPECT_FALSE(sg.Select(5).ok());
}

// ----------------------------------------------------- IC-N objective --

TEST(IcnObjectiveTest, QualityOneEqualsPlainSpread) {
  Graph g = GenerateBarabasiAlbert(150, 2, 6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  McOptions mc;
  mc.num_simulations = 4000;
  mc.seed = 7;
  const double icn = EstimateIcnPositiveSpread(g, params, 1.0, {0, 3}, mc);
  const double plain = EstimateSpread(g, params, {0, 3}, mc);
  EXPECT_NEAR(icn, plain, 0.05 * std::max(1.0, plain));
}

TEST(IcnObjectiveTest, QualityZeroGivesZero) {
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  McOptions mc;
  mc.num_simulations = 100;
  EXPECT_DOUBLE_EQ(EstimateIcnPositiveSpread(g, params, 0.0, {0}, mc), 0.0);
}

TEST(IcnObjectiveTest, MonotoneInQuality) {
  Graph g = GenerateBarabasiAlbert(100, 2, 8).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  McOptions mc;
  mc.num_simulations = 4000;
  mc.seed = 9;
  double prev = -1.0;
  for (double q : {0.2, 0.5, 0.8, 1.0}) {
    const double value = EstimateIcnPositiveSpread(g, params, q, {0}, mc);
    EXPECT_GE(value, prev - 0.05);
    prev = value;
  }
}

TEST(IcnObjectiveTest, DrivesGreedySelection) {
  GraphBuilder b(8);
  for (NodeId leaf = 1; leaf < 8; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.6);
  McOptions mc;
  mc.num_simulations = 1000;
  mc.seed = 10;
  auto objective =
      std::make_shared<IcnPositiveSpreadObjective>(g, params, 0.9, mc);
  GreedySelector greedy(g, objective, "IC-N GREEDY");
  auto selection = greedy.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

// ----------------------------------------------- Weighted edge-list IO --

TEST(WeightedEdgeListTest, ReadsProbabilities) {
  const std::string path = "/tmp/holim_weighted_io.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "# comment\n10 20 0.25\n20 30 0.75\n");
    fclose(f);
  }
  auto loaded = ReadWeightedEdgeList(path).ValueOrDie();
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  ASSERT_EQ(loaded.probability.size(), 2u);
  // Edge ids are (src,dst)-sorted after renumbering 10->0, 20->1, 30->2.
  EXPECT_DOUBLE_EQ(loaded.probability[0], 0.25);
  EXPECT_DOUBLE_EQ(loaded.probability[1], 0.75);
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, UndirectedDuplicatesProbability) {
  const std::string path = "/tmp/holim_weighted_io2.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "0 1 0.4\n");
    fclose(f);
  }
  EdgeListOptions options;
  options.undirected = true;
  auto loaded = ReadWeightedEdgeList(path, options).ValueOrDie();
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(loaded.probability[0], 0.4);
  EXPECT_DOUBLE_EQ(loaded.probability[1], 0.4);
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, DuplicateArcsKeepMaxProbability) {
  const std::string path = "/tmp/holim_weighted_io3.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "0 1 0.2\n0 1 0.6\n");
    fclose(f);
  }
  auto loaded = ReadWeightedEdgeList(path).ValueOrDie();
  EXPECT_EQ(loaded.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(loaded.probability[0], 0.6);
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, RejectsBadRows) {
  const std::string path = "/tmp/holim_weighted_io4.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "0 1\n");
    fclose(f);
  }
  EXPECT_FALSE(ReadWeightedEdgeList(path).ok());
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "0 1 1.7\n");
    fclose(f);
  }
  EXPECT_FALSE(ReadWeightedEdgeList(path).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------- Parallel scoring --

TEST(OsimParallelTest, BitwiseIdenticalToSerial) {
  Graph g = GenerateBarabasiAlbert(1500, 3, 12).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 13);
  OsimScorer serial(g, influence, opinions, 4);
  OsimScorer parallel(g, influence, opinions, 4);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  excluded.Insert(7);
  std::vector<double> serial_scores, parallel_scores;
  serial.AssignScores(excluded, &serial_scores);
  ThreadPool pool(4);
  parallel.AssignScoresParallel(excluded, &parallel_scores, &pool);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(serial_scores[u], parallel_scores[u]) << "node " << u;
  }
}

}  // namespace
}  // namespace holim

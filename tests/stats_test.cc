#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"

namespace holim {
namespace {

TEST(BfsTest, DistancesOnPath) {
  Graph g = GeneratePath(5).ValueOrDie();
  auto dist = BfsDistances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dist[u], u);
  // Reverse direction unreachable.
  auto dist_from_end = BfsDistances(g, 4);
  EXPECT_EQ(dist_from_end[0], kUnreachable);
  EXPECT_EQ(dist_from_end[4], 0u);
}

TEST(BfsTest, StarGraph) {
  GraphBuilder b(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto dist = BfsDistances(g, 0);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(dist[leaf], 1u);
}

TEST(ReachabilityTest, CountsClosure) {
  Graph g = GeneratePath(10).ValueOrDie();
  EXPECT_EQ(ForwardReachableCount(g, {0}), 10u);
  EXPECT_EQ(ForwardReachableCount(g, {5}), 5u);
  EXPECT_EQ(ForwardReachableCount(g, {0, 5}), 10u);  // union, no double count
  EXPECT_EQ(ForwardReachableCount(g, {}), 0u);
}

TEST(StatsTest, PathDiameter) {
  Graph g = GeneratePath(11).ValueOrDie();
  auto stats = ComputeGraphStats(g, 11, 1);
  EXPECT_EQ(stats.num_nodes, 11u);
  EXPECT_EQ(stats.num_edges, 10u);
  EXPECT_EQ(stats.observed_diameter, 10u);
  EXPECT_GT(stats.effective_diameter_90, 1.0);
}

TEST(StatsTest, AverageDegree) {
  Graph g = GenerateErdosRenyi(1000, 5.0, 3).ValueOrDie();
  auto stats = ComputeGraphStats(g, 0);
  EXPECT_NEAR(stats.avg_out_degree, 5.0, 0.5);
  EXPECT_EQ(stats.effective_diameter_90, 0.0);  // samples disabled
}

TEST(StatsTest, EmptyGraph) {
  GraphBuilder b(0);
  Graph g = std::move(b).Build().ValueOrDie();
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.avg_out_degree, 0.0);
}

TEST(StatsTest, SmallWorldHasSmallEffectiveDiameter) {
  Graph g = GenerateBarabasiAlbert(5000, 4, 9).ValueOrDie();
  auto stats = ComputeGraphStats(g, 32, 1);
  // Social-like graphs: effective diameter well under 10 (Table 2 band).
  EXPECT_GT(stats.effective_diameter_90, 1.0);
  EXPECT_LT(stats.effective_diameter_90, 10.0);
}

TEST(StatsTest, MaxDegreesTracked) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto stats = ComputeGraphStats(g, 0);
  EXPECT_EQ(stats.max_out_degree, 3u);
  EXPECT_EQ(stats.max_in_degree, 2u);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/generators.h"
#include "graph/stats.h"

namespace holim {
namespace {

TEST(ErdosRenyiTest, ApproximatesTargetDegree) {
  Graph g = GenerateErdosRenyi(2000, 6.0, 1).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 2000u);
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_NEAR(avg, 6.0, 0.5);
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  Graph a = GenerateErdosRenyi(500, 4.0, 7).ValueOrDie();
  Graph b = GenerateErdosRenyi(500, 4.0, 7).ValueOrDie();
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

TEST(ErdosRenyiTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateErdosRenyi(0, 1.0, 1).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, -1.0, 1).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 100.0, 1).ok());
}

TEST(BarabasiAlbertTest, PowerLawHasHubs) {
  Graph g = GenerateBarabasiAlbert(5000, 3, 2).ValueOrDie();
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u));
  }
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  // Preferential attachment: hubs far above the mean degree.
  EXPECT_GT(max_deg, 10 * avg);
}

TEST(BarabasiAlbertTest, EdgeCountMatchesAttachment) {
  const NodeId n = 1000;
  const uint32_t m0 = 3;
  Graph g = GenerateBarabasiAlbert(n, m0, 3).ValueOrDie();
  // Each arriving node adds ~m0 undirected edges = 2*m0 arcs.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 2.0 * m0 * n, 0.1 * m0 * n);
}

TEST(BarabasiAlbertTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateBarabasiAlbert(1, 1, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 0, 1).ok());
}

TEST(WattsStrogatzTest, RingWhenNoRewiring) {
  Graph g = GenerateWattsStrogatz(20, 2, 0.0, 1).ValueOrDie();
  // k/2 = 1 neighbor clockwise, undirected -> every node has degree 2.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.OutDegree(u), 2u);
  }
}

TEST(WattsStrogatzTest, RewiringShrinksDiameter) {
  Graph ring = GenerateWattsStrogatz(400, 2, 0.0, 1).ValueOrDie();
  Graph small_world = GenerateWattsStrogatz(400, 2, 0.3, 1).ValueOrDie();
  auto ring_stats = ComputeGraphStats(ring, 16, 1);
  auto sw_stats = ComputeGraphStats(small_world, 16, 1);
  EXPECT_LT(sw_stats.effective_diameter_90, ring_stats.effective_diameter_90);
}

TEST(WattsStrogatzTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateWattsStrogatz(2, 1, 0.0, 1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(10, 0, 0.0, 1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(10, 2, 1.5, 1).ok());
}

TEST(RmatTest, GeneratesRequestedShape) {
  Graph g = GenerateRmat(10, 5000, 4).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_GT(g.num_edges(), 3000u);  // some dedup/self-loop loss is fine
  EXPECT_LE(g.num_edges(), 5000u);
}

TEST(RmatTest, SkewedQuadrantsProduceSkewedDegrees) {
  Graph g = GenerateRmat(12, 40000, 5).ValueOrDie();
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u));
  }
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(max_deg, 5 * avg);
}

TEST(RmatTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateRmat(0, 10, 1).ok());
  RmatOptions bad;
  bad.a = 0.9;  // sums > 1
  EXPECT_FALSE(GenerateRmat(4, 10, 1, bad).ok());
}

TEST(RandomTreeTest, TreeInvariants) {
  Graph g = GenerateRandomTree(200, 3, 6).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 199u);  // n-1 edges
  EXPECT_EQ(g.InDegree(0), 0u);    // root
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.InDegree(u), 1u);  // unique parent
    EXPECT_LE(g.OutDegree(u), 3u);
  }
  // All nodes reachable from root.
  EXPECT_EQ(ForwardReachableCount(g, {0}), 200u);
}

TEST(PathTest, ChainShape) {
  Graph g = GeneratePath(5).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 4u);
  for (NodeId u = 0; u + 1 < 5; ++u) {
    ASSERT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.OutNeighbors(u)[0], u + 1);
  }
  EXPECT_EQ(g.OutDegree(4), 0u);
}

TEST(SubmodularityGadgetTest, MatchesFig3aShape) {
  const NodeId nx = 4;
  Graph g = GenerateSubmodularityGadget(nx).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 3 * nx);
  EXPECT_EQ(g.num_edges(), 2u * nx);
  for (NodeId i = 0; i < nx; ++i) {
    ASSERT_EQ(g.OutDegree(i), 2u);
    EXPECT_EQ(g.OutNeighbors(i)[0], nx + 2 * i);
    EXPECT_EQ(g.OutNeighbors(i)[1], nx + 2 * i + 1);
  }
  for (NodeId y = nx; y < 3 * nx; ++y) EXPECT_EQ(g.OutDegree(y), 0u);
}

TEST(SetCoverGadgetTest, LayeredStructure) {
  // Sets over 3 elements: R0={0,1}, R1={1,2}.
  auto gadget =
      GenerateSetCoverGadget({{0, 1}, {1, 2}}, 3).ValueOrDie();
  const Graph& g = gadget.graph;
  const NodeId m = 2, q = 3, z = m + q - 2;
  EXPECT_EQ(g.num_nodes(), m + q + z + 1);
  // Set nodes point only at their elements.
  EXPECT_EQ(g.OutDegree(gadget.first_set_node), 2u);
  // Every element points at every z node.
  for (NodeId j = 0; j < q; ++j) {
    EXPECT_EQ(g.OutDegree(gadget.first_element_node + j), z);
  }
  // Every z node points at the sink; the sink is terminal.
  for (NodeId l = 0; l < z; ++l) {
    ASSERT_EQ(g.OutDegree(gadget.first_z_node + l), 1u);
    EXPECT_EQ(g.OutNeighbors(gadget.first_z_node + l)[0], gadget.sink);
  }
  EXPECT_EQ(g.OutDegree(gadget.sink), 0u);
}

TEST(SetCoverGadgetTest, RejectsBadInput) {
  EXPECT_FALSE(GenerateSetCoverGadget({}, 3).ok());
  EXPECT_FALSE(GenerateSetCoverGadget({{5}}, 3).ok());
}

/// Property sweep: every generator yields a valid CSR whose in/out degree
/// sums agree, across a grid of sizes and seeds.
class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(GeneratorPropertyTest, InOutDegreeSumsAgree) {
  const auto [size, seed] = GetParam();
  std::vector<Graph> graphs;
  graphs.push_back(GenerateErdosRenyi(size, 3.0, seed).ValueOrDie());
  graphs.push_back(GenerateBarabasiAlbert(size, 2, seed).ValueOrDie());
  graphs.push_back(GenerateWattsStrogatz(size, 4, 0.1, seed).ValueOrDie());
  graphs.push_back(GenerateRandomTree(size, 4, seed).ValueOrDie());
  for (const Graph& g : graphs) {
    EdgeId out_sum = 0, in_sum = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out_sum += g.OutDegree(u);
      in_sum += g.InDegree(u);
    }
    EXPECT_EQ(out_sum, g.num_edges());
    EXPECT_EQ(in_sum, g.num_edges());
    // Edge ids bijective with (source, position).
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const EdgeId base = g.OutEdgeBegin(u);
      for (uint32_t i = 0; i < g.OutDegree(u); ++i) {
        EXPECT_EQ(g.EdgeSource(base + i), u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values(50, 200, 1000),
                       ::testing::Values(1u, 17u, 99u)));

}  // namespace
}  // namespace holim

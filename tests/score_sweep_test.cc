// Coverage for the shared score-sweep kernel (algo/score_sweep.h): bitwise
// thread-count determinism of the parallel sweeps, exact equivalence of the
// dirty-frontier incremental rescore against the full-recompute oracle, and
// the lazy O(l n) memory contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "algo/easyim.h"
#include "algo/osim.h"
#include "algo/score_greedy.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/thread_pool.h"

namespace holim {
namespace {

EpochSet MakeExcluded(NodeId n, const std::vector<NodeId>& members) {
  EpochSet excluded(n);
  excluded.Reset(n);
  for (NodeId u : members) excluded.Insert(u);
  return excluded;
}

TEST(ParallelForBlocksTest, FixedPartitionIndependentOfThreadCount) {
  // The block boundaries must depend only on block_size, never the pool.
  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(5);
    std::atomic<std::size_t> covered{0};
    pool.ParallelForBlocks(10, 3, [&](std::size_t lo, std::size_t hi) {
      ranges[lo / 3] = {lo, hi};
      covered += hi - lo;
    });
    EXPECT_EQ(covered.load(), 10u);
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 3}));
    EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{3, 6}));
    EXPECT_EQ(ranges[2], (std::pair<std::size_t, std::size_t>{6, 9}));
    EXPECT_EQ(ranges[3], (std::pair<std::size_t, std::size_t>{9, 10}));
  }
}

TEST(ScoreSweepTest, EasyImBitwiseDeterministicAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(3000, 4, 21).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EpochSet excluded = MakeExcluded(g.num_nodes(), {7, 42, 1000});
  EasyImScorer serial(g, params, 4);
  std::vector<double> reference;
  serial.AssignScores(excluded, &reference);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EasyImScorer scorer(g, params, 4);
    std::vector<double> scores;
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    ASSERT_EQ(scores.size(), reference.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(scores[u], reference[u]) << "node " << u << " threads "
                                         << threads;
    }
  }
}

TEST(ScoreSweepTest, OsimBitwiseDeterministicAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(3000, 4, 22).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 9);
  EpochSet excluded = MakeExcluded(g.num_nodes(), {0, 99, 2500});
  OsimScorer serial(g, influence, opinions, 4);
  std::vector<double> reference;
  serial.AssignScores(excluded, &reference);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    OsimScorer scorer(g, influence, opinions, 4);
    std::vector<double> scores;
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    ASSERT_EQ(scores.size(), reference.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(scores[u], reference[u]) << "node " << u << " threads "
                                         << threads;
    }
  }
}

// Grows an exclusion set node by node; after every step the incremental
// rescore must match a from-scratch full recompute bit for bit.
template <typename Scorer>
void CheckIncrementalMatchesFull(const Graph& g, Scorer& incremental,
                                 Scorer& oracle,
                                 const std::vector<NodeId>& picks,
                                 ThreadPool* pool) {
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> inc_scores, full_scores;
  incremental.AssignScoresIncremental(excluded, nullptr, &inc_scores, pool);
  oracle.AssignScores(excluded, &full_scores);
  ASSERT_EQ(inc_scores, full_scores) << "initial full build diverged";
  std::vector<NodeId> newly;
  for (NodeId pick : picks) {
    newly = {pick};
    excluded.Insert(pick);
    incremental.AssignScoresIncremental(excluded, &newly, &inc_scores, pool);
    oracle.AssignScores(excluded, &full_scores);
    ASSERT_EQ(inc_scores.size(), full_scores.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(inc_scores[u], full_scores[u])
          << "node " << u << " after excluding " << pick;
    }
  }
}

TEST(ScoreSweepTest, EasyImIncrementalMatchesFullRecomputeIcAndWc) {
  Graph g = GenerateBarabasiAlbert(1200, 4, 23).ValueOrDie();
  const std::vector<NodeId> picks = {0, 1, 5, 17, 100, 600, 1199};
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    {
      auto params = MakeUniformIc(g, 0.1);
      EasyImScorer inc(g, params, 3), oracle(g, params, 3);
      CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
    }
    {
      auto params = MakeWeightedCascade(g);
      EasyImScorer inc(g, params, 3), oracle(g, params, 3);
      CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
    }
  }
}

TEST(ScoreSweepTest, OsimIncrementalMatchesFullRecomputeOi) {
  Graph g = GenerateBarabasiAlbert(1200, 4, 24).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 31);
  const std::vector<NodeId> picks = {3, 8, 44, 250, 900};
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    OsimScorer inc(g, influence, opinions, 3),
        oracle(g, influence, opinions, 3);
    CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
  }
}

TEST(ScoreSweepTest, IncrementalBatchExclusionsMatchFull) {
  // Multi-node deltas (what MC-majority activation produces) in one step.
  Graph g = GenerateBarabasiAlbert(800, 3, 25).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EasyImScorer inc(g, params, 3), oracle(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> inc_scores, full_scores;
  inc.AssignScoresIncremental(excluded, nullptr, &inc_scores, nullptr);
  const std::vector<std::vector<NodeId>> batches = {
      {2, 3, 4, 5}, {100, 101, 102, 400, 401}, {700}};
  for (const auto& batch : batches) {
    for (NodeId u : batch) excluded.Insert(u);
    inc.AssignScoresIncremental(excluded, &batch, &inc_scores, nullptr);
    oracle.AssignScores(excluded, &full_scores);
    ASSERT_EQ(inc_scores, full_scores);
  }
}

// Full k-seed greedy runs: the incremental path must reproduce the oracle
// path's seed set, scores, and order exactly.
template <typename MakeSelector>
void CheckGreedyEquivalence(const MakeSelector& make, uint32_t k) {
  ScoreGreedyOptions full_options;
  full_options.incremental_rescore = false;
  ScoreGreedyOptions inc_options;
  inc_options.incremental_rescore = true;
  auto full = make(full_options)->Select(k);
  auto inc = make(inc_options)->Select(k);
  ASSERT_TRUE(full.ok() && inc.ok());
  EXPECT_EQ(full->seeds, inc->seeds);
  ASSERT_EQ(full->seed_scores.size(), inc->seed_scores.size());
  for (std::size_t i = 0; i < full->seed_scores.size(); ++i) {
    EXPECT_EQ(full->seed_scores[i], inc->seed_scores[i]) << "round " << i;
  }
}

TEST(ScoreSweepTest, EasyImGreedyRunEquivalentIc) {
  Graph g = GenerateBarabasiAlbert(500, 3, 26).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<EasyImSelector>(g, params, 3, options);
      },
      15);
}

TEST(ScoreSweepTest, EasyImGreedyRunEquivalentWc) {
  Graph g = GenerateBarabasiAlbert(500, 3, 27).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<EasyImSelector>(g, params, 3, options);
      },
      15);
}

TEST(ScoreSweepTest, OsimGreedyRunEquivalentOi) {
  Graph g = GenerateBarabasiAlbert(500, 3, 28).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 5);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<OsimSelector>(
            g, influence, opinions, OiBase::kIndependentCascade, 3, options);
      },
      12);
}

TEST(ScoreSweepTest, GreedyEquivalentThroughSaturationFallback) {
  // p = 1 chain: the first pick saturates V(a), forcing the driver through
  // the seed_set fallback, which breaks the delta sequence — the
  // incremental assigner must full-rebuild and still match.
  Graph g = GeneratePath(10).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        ScoreGreedyOptions o = options;
        o.activation = ActivationStrategy::kMonteCarloMajority;
        o.mc_rounds = 4;
        return std::make_unique<EasyImSelector>(g, params, 9, o);
      },
      4);
}

TEST(ScoreSweepTest, IncrementalDoesLessNodeWorkThanFull) {
  Graph g = GenerateBarabasiAlbert(20000, 4, 29).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EasyImScorer scorer(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
  const uint64_t full_pass_nodes = scorer.stats().nodes_full;
  std::vector<NodeId> newly = {12345};
  excluded.Insert(12345);
  scorer.AssignScoresIncremental(excluded, &newly, &scores, nullptr);
  EXPECT_EQ(scorer.stats().incremental_sweeps, 1u);
  EXPECT_LT(scorer.stats().nodes_incremental, full_pass_nodes / 2)
      << "dirty-frontier rescore touched most of the graph";
}

TEST(ScoreSweepTest, HubFallbackRebuildsExactlyAndStateStaysConsistent) {
  // Excluding the biggest hub of a scale-free graph dirties a frontier that
  // blows past an aggressive fallback fraction: the rescore must abandon
  // frontier bookkeeping (fallback_sweeps counts it, and it books a full
  // sweep instead of an incremental one) while staying bitwise identical to
  // the full-recompute oracle. The rebuild must also leave the level table
  // consistent: a later exclusion with the fallback disabled has to take
  // the genuine incremental path and still match the oracle exactly.
  Graph g = GenerateBarabasiAlbert(4000, 4, 33).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  NodeId hub = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.InNeighbors(u).size() > g.InNeighbors(hub).size()) hub = u;
  }
  ASSERT_GT(g.InNeighbors(hub).size(), 40u) << "graph grew no hub";

  EasyImScorer falling(g, params, 3), inc_only(g, params, 3),
      oracle(g, params, 3);
  falling.set_incremental_fallback_fraction(0.01);
  inc_only.set_incremental_fallback_fraction(2.0);  // disabled

  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> fall_scores, inc_scores, full_scores;
  falling.AssignScoresIncremental(excluded, nullptr, &fall_scores, nullptr);
  inc_only.AssignScoresIncremental(excluded, nullptr, &inc_scores, nullptr);

  std::vector<NodeId> newly = {hub};
  excluded.Insert(hub);
  falling.AssignScoresIncremental(excluded, &newly, &fall_scores, nullptr);
  inc_only.AssignScoresIncremental(excluded, &newly, &inc_scores, nullptr);
  oracle.AssignScores(excluded, &full_scores);
  EXPECT_EQ(fall_scores, full_scores);
  EXPECT_EQ(inc_scores, full_scores);
  EXPECT_EQ(falling.stats().fallback_sweeps, 1u);
  EXPECT_EQ(falling.stats().incremental_sweeps, 0u);
  EXPECT_EQ(falling.stats().full_sweeps, 2u);  // initial build + fallback
  EXPECT_EQ(inc_only.stats().fallback_sweeps, 0u);
  EXPECT_EQ(inc_only.stats().incremental_sweeps, 1u);

  // Disable the fallback and keep excluding: the pass after a fallback
  // rebuild must run incrementally off the rebuilt levels, bit for bit.
  falling.set_incremental_fallback_fraction(2.0);
  newly = {hub == 0 ? NodeId{1} : NodeId{0}};
  excluded.Insert(newly[0]);
  falling.AssignScoresIncremental(excluded, &newly, &fall_scores, nullptr);
  oracle.AssignScores(excluded, &full_scores);
  EXPECT_EQ(fall_scores, full_scores);
  EXPECT_EQ(falling.stats().fallback_sweeps, 1u);
  EXPECT_EQ(falling.stats().incremental_sweeps, 1u);
}

TEST(ScoreSweepTest, GreedyEquivalentAcrossFallbackFractions) {
  // End-to-end BA-graph regression for the hub-aware fallback: a greedy run
  // that falls back (aggressive fraction), one that never can (>= 1), and
  // the full-recompute oracle must all pick identical seeds and scores.
  Graph g = GenerateBarabasiAlbert(500, 3, 34).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  auto run = [&](bool incremental, double fraction, uint64_t* fallbacks) {
    ScoreGreedyOptions options;
    options.incremental_rescore = incremental;
    options.rescore_fallback_fraction = fraction;
    EasyImSelector selector(g, params, 3, options);
    auto selection = selector.Select(12).ValueOrDie();
    if (fallbacks != nullptr) {
      *fallbacks = selector.scorer().stats().fallback_sweeps;
    }
    return selection;
  };
  uint64_t aggressive_fallbacks = 0, disabled_fallbacks = 0;
  auto full = run(false, 0.25, nullptr);
  auto falling = run(true, 0.01, &aggressive_fallbacks);
  auto inc_only = run(true, 2.0, &disabled_fallbacks);
  EXPECT_EQ(full.seeds, falling.seeds);
  EXPECT_EQ(full.seeds, inc_only.seeds);
  EXPECT_EQ(full.seed_scores, falling.seed_scores);
  EXPECT_EQ(full.seed_scores, inc_only.seed_scores);
  EXPECT_GE(aggressive_fallbacks, 1u)
      << "hub exclusions never tripped the aggressive fallback";
  EXPECT_EQ(disabled_fallbacks, 0u);
}

TEST(ScoreSweepTest, LevelStateAllocatedLazily) {
  Graph g = GenerateBarabasiAlbert(5000, 3, 30).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImScorer scorer(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  // Oracle path keeps the paper's O(n) contract: two rolling buffers only.
  EXPECT_LE(scorer.ScratchBytes(),
            2u * sizeof(double) * (g.num_nodes() + 16));
  EXPECT_EQ(scorer.stats().level_bytes, 0u);
  // First incremental use allocates the (l+1)-level table.
  scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
  EXPECT_GE(scorer.stats().level_bytes,
            4u * sizeof(double) * g.num_nodes());
}

}  // namespace
}  // namespace holim

// Coverage for the shared score-sweep kernel (algo/score_sweep.h): bitwise
// thread-count determinism of the parallel sweeps, exact equivalence of the
// dirty-frontier incremental rescore against the full-recompute oracle, and
// the lazy O(l n) memory contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "algo/easyim.h"
#include "algo/osim.h"
#include "algo/score_greedy.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/thread_pool.h"

namespace holim {
namespace {

EpochSet MakeExcluded(NodeId n, const std::vector<NodeId>& members) {
  EpochSet excluded(n);
  excluded.Reset(n);
  for (NodeId u : members) excluded.Insert(u);
  return excluded;
}

TEST(ParallelForBlocksTest, FixedPartitionIndependentOfThreadCount) {
  // The block boundaries must depend only on block_size, never the pool.
  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(5);
    std::atomic<std::size_t> covered{0};
    pool.ParallelForBlocks(10, 3, [&](std::size_t lo, std::size_t hi) {
      ranges[lo / 3] = {lo, hi};
      covered += hi - lo;
    });
    EXPECT_EQ(covered.load(), 10u);
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 3}));
    EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{3, 6}));
    EXPECT_EQ(ranges[2], (std::pair<std::size_t, std::size_t>{6, 9}));
    EXPECT_EQ(ranges[3], (std::pair<std::size_t, std::size_t>{9, 10}));
  }
}

TEST(ScoreSweepTest, EasyImBitwiseDeterministicAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(3000, 4, 21).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EpochSet excluded = MakeExcluded(g.num_nodes(), {7, 42, 1000});
  EasyImScorer serial(g, params, 4);
  std::vector<double> reference;
  serial.AssignScores(excluded, &reference);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EasyImScorer scorer(g, params, 4);
    std::vector<double> scores;
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    ASSERT_EQ(scores.size(), reference.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(scores[u], reference[u]) << "node " << u << " threads "
                                         << threads;
    }
  }
}

TEST(ScoreSweepTest, OsimBitwiseDeterministicAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(3000, 4, 22).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 9);
  EpochSet excluded = MakeExcluded(g.num_nodes(), {0, 99, 2500});
  OsimScorer serial(g, influence, opinions, 4);
  std::vector<double> reference;
  serial.AssignScores(excluded, &reference);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    OsimScorer scorer(g, influence, opinions, 4);
    std::vector<double> scores;
    scorer.AssignScoresParallel(excluded, &scores, &pool);
    ASSERT_EQ(scores.size(), reference.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(scores[u], reference[u]) << "node " << u << " threads "
                                         << threads;
    }
  }
}

// Grows an exclusion set node by node; after every step the incremental
// rescore must match a from-scratch full recompute bit for bit.
template <typename Scorer>
void CheckIncrementalMatchesFull(const Graph& g, Scorer& incremental,
                                 Scorer& oracle,
                                 const std::vector<NodeId>& picks,
                                 ThreadPool* pool) {
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> inc_scores, full_scores;
  incremental.AssignScoresIncremental(excluded, nullptr, &inc_scores, pool);
  oracle.AssignScores(excluded, &full_scores);
  ASSERT_EQ(inc_scores, full_scores) << "initial full build diverged";
  std::vector<NodeId> newly;
  for (NodeId pick : picks) {
    newly = {pick};
    excluded.Insert(pick);
    incremental.AssignScoresIncremental(excluded, &newly, &inc_scores, pool);
    oracle.AssignScores(excluded, &full_scores);
    ASSERT_EQ(inc_scores.size(), full_scores.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(inc_scores[u], full_scores[u])
          << "node " << u << " after excluding " << pick;
    }
  }
}

TEST(ScoreSweepTest, EasyImIncrementalMatchesFullRecomputeIcAndWc) {
  Graph g = GenerateBarabasiAlbert(1200, 4, 23).ValueOrDie();
  const std::vector<NodeId> picks = {0, 1, 5, 17, 100, 600, 1199};
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    {
      auto params = MakeUniformIc(g, 0.1);
      EasyImScorer inc(g, params, 3), oracle(g, params, 3);
      CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
    }
    {
      auto params = MakeWeightedCascade(g);
      EasyImScorer inc(g, params, 3), oracle(g, params, 3);
      CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
    }
  }
}

TEST(ScoreSweepTest, OsimIncrementalMatchesFullRecomputeOi) {
  Graph g = GenerateBarabasiAlbert(1200, 4, 24).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 31);
  const std::vector<NodeId> picks = {3, 8, 44, 250, 900};
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    OsimScorer inc(g, influence, opinions, 3),
        oracle(g, influence, opinions, 3);
    CheckIncrementalMatchesFull(g, inc, oracle, picks, &pool);
  }
}

TEST(ScoreSweepTest, IncrementalBatchExclusionsMatchFull) {
  // Multi-node deltas (what MC-majority activation produces) in one step.
  Graph g = GenerateBarabasiAlbert(800, 3, 25).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EasyImScorer inc(g, params, 3), oracle(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> inc_scores, full_scores;
  inc.AssignScoresIncremental(excluded, nullptr, &inc_scores, nullptr);
  const std::vector<std::vector<NodeId>> batches = {
      {2, 3, 4, 5}, {100, 101, 102, 400, 401}, {700}};
  for (const auto& batch : batches) {
    for (NodeId u : batch) excluded.Insert(u);
    inc.AssignScoresIncremental(excluded, &batch, &inc_scores, nullptr);
    oracle.AssignScores(excluded, &full_scores);
    ASSERT_EQ(inc_scores, full_scores);
  }
}

// Full k-seed greedy runs: the incremental path must reproduce the oracle
// path's seed set, scores, and order exactly.
template <typename MakeSelector>
void CheckGreedyEquivalence(const MakeSelector& make, uint32_t k) {
  ScoreGreedyOptions full_options;
  full_options.incremental_rescore = false;
  ScoreGreedyOptions inc_options;
  inc_options.incremental_rescore = true;
  auto full = make(full_options)->Select(k);
  auto inc = make(inc_options)->Select(k);
  ASSERT_TRUE(full.ok() && inc.ok());
  EXPECT_EQ(full->seeds, inc->seeds);
  ASSERT_EQ(full->seed_scores.size(), inc->seed_scores.size());
  for (std::size_t i = 0; i < full->seed_scores.size(); ++i) {
    EXPECT_EQ(full->seed_scores[i], inc->seed_scores[i]) << "round " << i;
  }
}

TEST(ScoreSweepTest, EasyImGreedyRunEquivalentIc) {
  Graph g = GenerateBarabasiAlbert(500, 3, 26).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<EasyImSelector>(g, params, 3, options);
      },
      15);
}

TEST(ScoreSweepTest, EasyImGreedyRunEquivalentWc) {
  Graph g = GenerateBarabasiAlbert(500, 3, 27).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<EasyImSelector>(g, params, 3, options);
      },
      15);
}

TEST(ScoreSweepTest, OsimGreedyRunEquivalentOi) {
  Graph g = GenerateBarabasiAlbert(500, 3, 28).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 5);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        return std::make_unique<OsimSelector>(
            g, influence, opinions, OiBase::kIndependentCascade, 3, options);
      },
      12);
}

TEST(ScoreSweepTest, GreedyEquivalentThroughSaturationFallback) {
  // p = 1 chain: the first pick saturates V(a), forcing the driver through
  // the seed_set fallback, which breaks the delta sequence — the
  // incremental assigner must full-rebuild and still match.
  Graph g = GeneratePath(10).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  CheckGreedyEquivalence(
      [&](const ScoreGreedyOptions& options) {
        ScoreGreedyOptions o = options;
        o.activation = ActivationStrategy::kMonteCarloMajority;
        o.mc_rounds = 4;
        return std::make_unique<EasyImSelector>(g, params, 9, o);
      },
      4);
}

TEST(ScoreSweepTest, IncrementalDoesLessNodeWorkThanFull) {
  Graph g = GenerateBarabasiAlbert(20000, 4, 29).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EasyImScorer scorer(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
  const uint64_t full_pass_nodes = scorer.stats().nodes_full;
  std::vector<NodeId> newly = {12345};
  excluded.Insert(12345);
  scorer.AssignScoresIncremental(excluded, &newly, &scores, nullptr);
  EXPECT_EQ(scorer.stats().incremental_sweeps, 1u);
  EXPECT_LT(scorer.stats().nodes_incremental, full_pass_nodes / 2)
      << "dirty-frontier rescore touched most of the graph";
}

TEST(ScoreSweepTest, LevelStateAllocatedLazily) {
  Graph g = GenerateBarabasiAlbert(5000, 3, 30).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImScorer scorer(g, params, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  // Oracle path keeps the paper's O(n) contract: two rolling buffers only.
  EXPECT_LE(scorer.ScratchBytes(),
            2u * sizeof(double) * (g.num_nodes() + 16));
  EXPECT_EQ(scorer.stats().level_bytes, 0u);
  // First incremental use allocates the (l+1)-level table.
  scorer.AssignScoresIncremental(excluded, nullptr, &scores, nullptr);
  EXPECT_GE(scorer.stats().level_bytes,
            4u * sizeof(double) * g.num_nodes());
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "algo/imm.h"
#include "algo/rr_sets.h"
#include "algo/tim_plus.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(RrSetsTest, RootAlwaysMember) {
  Graph g = GenerateErdosRenyi(100, 4.0, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  RrCollection rr(g, params);
  Rng rng(1);
  rr.Generate(200, rng);
  EXPECT_EQ(rr.num_sets(), 200u);
  for (std::size_t i = 0; i < rr.num_sets(); ++i) {
    EXPECT_FALSE(rr.set(i).empty());
  }
}

TEST(RrSetsTest, ZeroProbabilitySingletons) {
  Graph g = GenerateErdosRenyi(50, 3.0, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.0);
  RrCollection rr(g, params);
  Rng rng(2);
  rr.Generate(100, rng);
  for (std::size_t i = 0; i < rr.num_sets(); ++i) {
    EXPECT_EQ(rr.set(i).size(), 1u);  // only the root
  }
}

TEST(RrSetsTest, CoverageEstimatesSpreadUnbiased) {
  // n * E[coverage of {u}] == sigma({u}) (the RIS identity). Check on a
  // small graph against Monte-Carlo spread.
  Graph g = GenerateBarabasiAlbert(80, 2, 3).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  RrCollection rr(g, params);
  Rng rng(3);
  rr.Generate(60000, rng);
  McOptions mc;
  mc.num_simulations = 60000;
  mc.seed = 4;
  for (NodeId u : {NodeId{0}, NodeId{1}, NodeId{10}}) {
    const double ris = g.num_nodes() * rr.CoveredFraction({u});
    // CoveredFraction counts the root too when u is the root; compare with
    // spread + activation-of-self = sigma + P(u activates itself = always
    // when root == u). RIS estimates E[|influenced set|] including u.
    const double sigma = EstimateSpread(g, params, {u}, mc) + 1.0;
    EXPECT_NEAR(ris, sigma, 0.08 * sigma) << "node " << u;
  }
}

TEST(RrSetsTest, MaxCoverageGreedyOnCraftedSets) {
  // Graph with 4 nodes; p = 0 so each RR set is just its root. Coverage
  // greedy then picks the most frequent roots.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.0);
  RrCollection rr(g, params);
  Rng rng(5);
  rr.Generate(4000, rng);
  auto coverage = rr.SelectMaxCoverage(2);
  EXPECT_EQ(coverage.seeds.size(), 2u);
  EXPECT_GT(coverage.covered_fraction, 0.4);  // ~2/4 of uniform roots
  EXPECT_LT(coverage.covered_fraction, 0.65);
}

TEST(RrSetsTest, LtModeWalksSinglePath) {
  // LT live-edge RR sets on a path: reverse walk from root collects the
  // full prefix (each node has exactly one in-edge of weight 1).
  Graph g = GeneratePath(6).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  RrCollection rr(g, params);
  Rng rng(6);
  rr.Generate(500, rng);
  for (std::size_t i = 0; i < rr.num_sets(); ++i) {
    const auto& set = rr.set(i);
    // Set = {root, root-1, ..., 0}: size == root+1.
    EXPECT_EQ(set.size(), static_cast<std::size_t>(set[0]) + 1);
  }
}

TEST(RrSetsTest, MemoryAccounting) {
  Graph g = GenerateErdosRenyi(200, 4.0, 7).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  RrCollection rr(g, params);
  Rng rng(8);
  rr.Generate(1000, rng);
  EXPECT_GT(rr.MemoryBytes(), rr.num_sets() * sizeof(NodeId));
  EXPECT_GT(rr.total_entries(), 1000u);
  rr.Clear();
  EXPECT_EQ(rr.num_sets(), 0u);
}

TEST(TimPlusTest, SelectsQualitySeedsOnStar) {
  GraphBuilder b(20);
  for (NodeId leaf = 1; leaf < 20; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  TimPlusOptions options;
  options.epsilon = 0.2;
  options.max_theta = 100000;
  TimPlusSelector tim(g, params, options);
  auto selection = tim.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
  EXPECT_GT(tim.last_run_stats().theta, 0u);
}

TEST(TimPlusTest, SpreadComparableToGreedyChoice) {
  Graph g = GenerateBarabasiAlbert(300, 3, 9).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  TimPlusOptions options;
  options.epsilon = 0.3;
  options.max_theta = 200000;
  TimPlusSelector tim(g, params, options);
  auto tim_sel = tim.Select(5).ValueOrDie();
  McOptions mc;
  mc.num_simulations = 5000;
  mc.seed = 10;
  const double tim_spread = EstimateSpread(g, params, tim_sel.seeds, mc);
  // Degree-based floor: TIM+'s seeds must beat random picks comfortably.
  const double random_spread =
      EstimateSpread(g, params, {7, 33, 77, 120, 250}, mc);
  EXPECT_GT(tim_spread, random_spread);
}

TEST(TimPlusTest, ThetaCapRecorded) {
  Graph g = GenerateBarabasiAlbert(100, 2, 11).ValueOrDie();
  auto params = MakeUniformIc(g, 0.05);
  TimPlusOptions options;
  options.epsilon = 0.05;  // tiny epsilon -> huge theta -> cap binds
  options.max_theta = 500;
  TimPlusSelector tim(g, params, options);
  auto selection = tim.Select(2).ValueOrDie();
  EXPECT_TRUE(tim.last_run_stats().theta_capped);
  EXPECT_EQ(tim.last_run_stats().theta, 500u);
}

TEST(TimPlusTest, MemoryGrowsWithTheta) {
  Graph g = GenerateBarabasiAlbert(200, 3, 12).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  TimPlusOptions small_opts, large_opts;
  small_opts.max_theta = 200;
  large_opts.max_theta = 20000;
  small_opts.epsilon = large_opts.epsilon = 0.1;
  TimPlusSelector small_tim(g, params, small_opts);
  TimPlusSelector large_tim(g, params, large_opts);
  (void)small_tim.Select(3).ValueOrDie();
  (void)large_tim.Select(3).ValueOrDie();
  EXPECT_GT(large_tim.last_run_stats().rr_memory_bytes,
            small_tim.last_run_stats().rr_memory_bytes);
}

TEST(ImmTest, SelectsHubOnStar) {
  GraphBuilder b(20);
  for (NodeId leaf = 1; leaf < 20; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  ImmOptions options;
  options.epsilon = 0.2;
  options.max_theta = 100000;
  ImmSelector imm(g, params, options);
  auto selection = imm.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(ImmTest, UsesFewerRrSetsThanTimPlus) {
  // IMM's sample reuse should land at a smaller theta than TIM+ for the
  // same epsilon (its headline improvement).
  Graph g = GenerateBarabasiAlbert(400, 3, 13).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  TimPlusOptions tim_opts;
  tim_opts.epsilon = 0.3;
  tim_opts.max_theta = 2000000;
  ImmOptions imm_opts;
  imm_opts.epsilon = 0.3;
  imm_opts.max_theta = 2000000;
  TimPlusSelector tim(g, params, tim_opts);
  ImmSelector imm(g, params, imm_opts);
  (void)tim.Select(5).ValueOrDie();
  (void)imm.Select(5).ValueOrDie();
  EXPECT_LT(imm.last_run_stats().theta, tim.last_run_stats().theta);
}

TEST(LogNChooseKTest, KnownValues) {
  EXPECT_NEAR(LogNChooseK(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogNChooseK(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogNChooseK(10, 10), 0.0, 1e-9);
}

}  // namespace
}  // namespace holim

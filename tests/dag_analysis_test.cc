#include <gtest/gtest.h>

#include <cmath>

#include "algo/easyim.h"
#include "algo/path_union.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "model/influence_params.h"

namespace holim {
namespace {

/// Tests for the paper's Sec. 3.4 analysis on DAGs: EaSyIM is exact under
/// the LT live-edge model on DAGs (Conclusion 3), exact on trees under all
/// models (Conclusion 2), and its IC-model error vs the PathUnion reference
/// comes only from non-disjoint paths (Lemmas 5-6).

std::vector<double> EasyScores(const Graph& g, const InfluenceParams& params,
                               uint32_t l) {
  EasyImScorer scorer(g, params, l);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  return scores;
}

TEST(DagGeneratorTest, IsAcyclic) {
  Graph g = GenerateRandomDag(100, 0.1, 1).ValueOrDie();
  // Topological order = node id order by construction: every edge ascends.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) EXPECT_GT(v, u);
  }
}

TEST(DagGeneratorTest, EdgeDensityTracksProbability) {
  const NodeId n = 200;
  Graph g = GenerateRandomDag(n, 0.05, 2).ValueOrDie();
  const double pairs = 0.5 * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()) / pairs, 0.05, 0.01);
}

TEST(DagGeneratorTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateRandomDag(0, 0.1, 1).ok());
  EXPECT_FALSE(GenerateRandomDag(10, 1.5, 1).ok());
}

TEST(DagAnalysisTest, Conclusion3EasyImExactOnDagUnderLt) {
  // Under LT (live-edge: one incoming live edge per node), every u-v pair
  // has at most one live path, so EaSyIM's sum over paths equals the exact
  // expected spread. Verify score == MC spread on random DAGs.
  for (uint64_t seed : {3u, 4u, 5u}) {
    Graph g = GenerateRandomDag(40, 0.12, seed).ValueOrDie();
    auto lt = MakeLinearThreshold(g);
    // l = longest possible path in a 40-node DAG.
    auto scores = EasyScores(g, lt, 40);
    McOptions mc;
    mc.num_simulations = 40000;
    mc.seed = seed;
    for (NodeId u : {NodeId{0}, NodeId{5}, NodeId{10}}) {
      const double sigma = EstimateSpread(g, lt, {u}, mc);
      EXPECT_NEAR(scores[u], sigma, 0.06 * std::max(1.0, sigma))
          << "seed " << seed << " node " << u;
    }
  }
}

TEST(DagAnalysisTest, Conclusion2EasyImExactOnTreesUnderWc) {
  Graph g = GenerateRandomTree(80, 3, 6).ValueOrDie();
  auto wc = MakeWeightedCascade(g);  // trees: indeg 1 -> p = 1 everywhere
  auto scores = EasyScores(g, wc, 80);
  // With p = 1 on a tree, sigma({u}) = subtree size - 1 exactly.
  McOptions mc;
  mc.num_simulations = 200;
  mc.seed = 7;
  for (NodeId u : {NodeId{0}, NodeId{3}, NodeId{20}}) {
    const double sigma = EstimateSpread(g, wc, {u}, mc);
    EXPECT_NEAR(scores[u], sigma, 1e-9);
  }
}

TEST(DagAnalysisTest, EasyImOvercountsExactlyTheNonDisjointPaths) {
  // Lemma 6: on DAGs, EaSyIM >= PU scores (plain sums vs probabilistic
  // union), with equality iff all u;v path sets are disjoint.
  Graph g = GenerateRandomDag(60, 0.15, 8).ValueOrDie();
  auto ic = MakeUniformIc(g, 0.3);
  const uint32_t l = 6;
  auto easy = EasyScores(g, ic, l);
  PathUnionScorer pu(g, ic, l);
  auto pu_scores = pu.AssignScores().ValueOrDie();
  bool strict_somewhere = false;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(easy[u], pu_scores[u] - 1e-9) << "node " << u;
    if (easy[u] > pu_scores[u] + 1e-9) strict_somewhere = true;
  }
  // A dense-enough DAG must have some non-disjoint path pair.
  EXPECT_TRUE(strict_somewhere);
}

TEST(DagAnalysisTest, RelativeErrorSmallForSparseDags) {
  // Sec. 3.4.2: with eta*p < 1 the EaSyIM-vs-PU gap stays small. Check the
  // mean relative gap on a sparse DAG at p = 0.1.
  Graph g = GenerateRandomDag(80, 0.08, 9).ValueOrDie();
  auto ic = MakeUniformIc(g, 0.1);
  auto easy = EasyScores(g, ic, 8);
  PathUnionScorer pu(g, ic, 8);
  auto pu_scores = pu.AssignScores().ValueOrDie();
  double rel_gap_sum = 0;
  uint32_t counted = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (pu_scores[u] < 1e-6) continue;
    rel_gap_sum += (easy[u] - pu_scores[u]) / pu_scores[u];
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_LT(rel_gap_sum / counted, 0.05);  // < 5% mean relative error
}

TEST(DagAnalysisTest, RankingPreservedDespiteOvercount) {
  // Theorem 2's practical upshot: the EaSyIM and PU rankings agree on the
  // top node for sparse DAGs.
  for (uint64_t seed : {10u, 11u, 12u}) {
    Graph g = GenerateRandomDag(70, 0.1, seed).ValueOrDie();
    auto ic = MakeUniformIc(g, 0.1);
    auto easy = EasyScores(g, ic, 8);
    PathUnionScorer pu(g, ic, 8);
    auto pu_scores = pu.AssignScores().ValueOrDie();
    NodeId easy_best = 0, pu_best = 0;
    for (NodeId u = 1; u < g.num_nodes(); ++u) {
      if (easy[u] > easy[easy_best]) easy_best = u;
      if (pu_scores[u] > pu_scores[pu_best]) pu_best = u;
    }
    EXPECT_EQ(easy_best, pu_best) << "seed " << seed;
  }
}

}  // namespace
}  // namespace holim

// HolimEngine / Workspace / registry tests.
//
// The load-bearing contract: for EVERY registered algorithm, an engine
// solve is bitwise-identical (seeds, per-round scores, stats) to the
// direct selector call its factory performs, and a warm-Workspace
// re-solve is bitwise-identical to a cold solve — at 1 worker thread and
// at 8. Artifact reuse must be invisible except in time and memory.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateBarabasiAlbert(200, 2, 5).ValueOrDie();
    params_ = MakeUniformIc(graph_, 0.1);
    opinions_ = MakeRandomOpinions(graph_,
                                   OpinionDistribution::kStandardNormal, 42);
  }

  /// The base request every parity case starts from: small enough that
  /// the full registry x {1,8} threads sweep stays fast, and with the
  /// heavyweights' knobs turned down.
  SolveRequest BaseRequest(const std::string& algorithm,
                           uint32_t threads) const {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = 3;
    request.params = &params_;
    request.l = 2;
    request.epsilon = 0.3;
    request.max_theta = 20000;
    request.mc = 20;
    request.seed = 11;
    request.threads = threads;
    return request;
  }

  Graph graph_;
  InfluenceParams params_;
  OpinionParams opinions_;
};

TEST_F(EngineTest, RegistryHasEveryAlgorithmAndResolvesAliases) {
  const AlgorithmRegistry& registry = HolimEngine::Registry();
  const char* expected[] = {
      "asim",       "celf",     "celf++",         "degree",
      "degreediscount", "easyim", "greedy",       "imm",
      "imrank",     "irie",     "osim",           "pagerank",
      "path-union", "random",   "simpath",        "singlediscount",
      "static-greedy", "tim+"};
  auto listed = registry.List();
  ASSERT_EQ(listed.size(), sizeof(expected) / sizeof(expected[0]));
  for (std::size_t i = 0; i < listed.size(); ++i) {
    EXPECT_EQ(listed[i]->name, expected[i]) << "registry order/content";
    EXPECT_TRUE(listed[i]->factory != nullptr);
  }
  // Aliases resolve to their canonical entry.
  EXPECT_EQ(registry.Find("tim"), registry.Find("tim+"));
  EXPECT_EQ(registry.Find("celfpp"), registry.Find("celf++"));
  EXPECT_EQ(registry.Find("staticgreedy"), registry.Find("static-greedy"));
  EXPECT_EQ(registry.Find("pathunion"), registry.Find("path-union"));
  EXPECT_EQ(registry.Find("no-such-algo"), nullptr);
}

// Engine solve == direct factory call, warm == cold, and 1-thread ==
// 8-thread, for every registered algorithm.
TEST_F(EngineTest, SolveMatchesDirectCallColdWarmAndAcrossThreads) {
  std::map<std::string, std::vector<NodeId>> seeds_by_threads[2];
  const uint32_t thread_counts[] = {0, 8};
  for (int t = 0; t < 2; ++t) {
    const uint32_t threads = thread_counts[t];
    ThreadPool direct_pool(threads == 0 ? 1 : threads);
    for (const AlgorithmInfo* info : HolimEngine::Registry().List()) {
      SCOPED_TRACE(info->name + " threads=" + std::to_string(threads));
      SolveRequest request = BaseRequest(info->name, threads);
      if (info->needs_opinions) request.opinions = &opinions_;

      // Direct: exactly what the factory builds, selected without any
      // engine or workspace in the loop.
      Workspace scratch_workspace;
      SolveContext ctx{graph_, request, scratch_workspace,
                       threads == 0 ? nullptr : &direct_pool};
      auto built = info->factory(ctx);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      auto direct = (*built)->Select(request.k);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();

      HolimEngine engine(graph_);
      auto cold = engine.Solve(request);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      auto warm = engine.Solve(request);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();

      EXPECT_EQ(cold->seeds, direct->seeds);
      EXPECT_EQ(cold->seed_scores, direct->seed_scores);
      EXPECT_EQ(cold->algorithm, (*built)->name());
      // The engine sorts stats by name once per solve (the Stat() binary-
      // search contract); the direct side is raw selector order.
      SolveResult direct_stats;
      direct_stats.stats = (*built)->LastRunStats();
      direct_stats.SortStats();
      EXPECT_EQ(cold->stats, direct_stats.stats);

      EXPECT_FALSE(cold->warm_selector);
      EXPECT_TRUE(warm->warm_selector);
      EXPECT_EQ(warm->seeds, cold->seeds);
      EXPECT_EQ(warm->seed_scores, cold->seed_scores);
      EXPECT_EQ(warm->spread, cold->spread);
      EXPECT_EQ(warm->stats, cold->stats);

      seeds_by_threads[t][info->name] = cold->seeds;
    }
  }
  // Every parallel path is bitwise thread-count-invariant.
  EXPECT_EQ(seeds_by_threads[0], seeds_by_threads[1]);
}

TEST_F(EngineTest, SketchOracleSolvesAreWarmAfterFirstAndShared) {
  HolimEngine engine(graph_);
  SolveRequest celf = BaseRequest("celf++", 0);
  celf.oracle = SpreadOracle::kSketch;
  celf.num_sketches = 30;

  auto cold = engine.Solve(celf);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->warm_sketch);
  EXPECT_GT(cold->sketch_arena_bytes, 0u);

  // Same worlds (same params/R/seed key) serve a different algorithm.
  SolveRequest greedy = BaseRequest("greedy", 0);
  greedy.oracle = SpreadOracle::kSketch;
  greedy.num_sketches = 30;
  auto warm = engine.Solve(greedy);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm_sketch);
  EXPECT_EQ(warm->sketch_arena_bytes, cold->sketch_arena_bytes);
  // 2 selectors + 1 shared sketch arena.
  EXPECT_EQ(engine.workspace().num_artifacts(), 3u);

  // Warm re-solve of the first request is bitwise identical.
  auto resolve = engine.Solve(celf);
  ASSERT_TRUE(resolve.ok()) << resolve.status().ToString();
  EXPECT_TRUE(resolve->warm_selector);
  EXPECT_TRUE(resolve->warm_sketch);
  EXPECT_EQ(resolve->seeds, cold->seeds);
  EXPECT_EQ(resolve->spread, cold->spread);

  // On the frozen worlds CELF++ == CELF == eager greedy; the sketch parity
  // of interest here is engine-level: greedy and celf++ share one arena
  // and still pick their own (deterministic) seeds.
  EXPECT_EQ(warm->seeds, cold->seeds);
}

TEST_F(EngineTest, ClearedWorkspaceReproducesColdResultsExactly) {
  HolimEngine engine(graph_);
  SolveRequest request = BaseRequest("easyim", 0);
  auto first = engine.Solve(request);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(engine.workspace().num_artifacts(), 0u);
  EXPECT_GT(engine.workspace().MemoryFootprintBytes(), 0u);

  engine.workspace().Clear();
  EXPECT_EQ(engine.workspace().num_artifacts(), 0u);
  EXPECT_EQ(engine.workspace().MemoryFootprintBytes(), 0u);

  auto again = engine.Solve(request);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->warm_selector);
  EXPECT_EQ(again->seeds, first->seeds);
  EXPECT_EQ(again->spread, first->spread);
}

TEST_F(EngineTest, LruEvictionKeepsWorkspaceUnderBudget) {
  EngineOptions options;
  options.max_cache_bytes = 1;  // force eviction down to a single artifact
  HolimEngine engine(graph_, options);

  SolveRequest l2 = BaseRequest("easyim", 0);
  SolveRequest l3 = BaseRequest("easyim", 0);
  l3.l = 3;
  ASSERT_TRUE(engine.Solve(l2).ok());
  ASSERT_TRUE(engine.Solve(l3).ok());
  // Both scorers have positive footprints; the budget admits only the
  // most recent.
  EXPECT_EQ(engine.workspace().num_artifacts(), 1u);
  EXPECT_GT(engine.workspace().evictions(), 0u);

  // The evicted request rebuilds cold and still matches itself.
  auto rebuilt = engine.Solve(l2);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->warm_selector);
}

TEST_F(EngineTest, KSweepReusesOneSelectorArtifact) {
  HolimEngine engine(graph_);
  SolveRequest request = BaseRequest("easyim", 0);
  std::vector<NodeId> prev;
  for (uint32_t k = 1; k <= 4; ++k) {
    request.k = k;
    auto result = engine.Solve(request);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->warm_selector, k > 1) << "k=" << k;
    // ScoreGREEDY prefixes are stable across k (same scorer, same greedy
    // path), which doubles as a reuse-doesn't-leak-state check.
    ASSERT_GE(result->seeds.size(), prev.size());
    for (std::size_t i = 0; i < prev.size(); ++i) {
      EXPECT_EQ(result->seeds[i], prev[i]);
    }
    prev = result->seeds;
  }
  EXPECT_EQ(engine.workspace().num_artifacts(), 1u);
}

TEST_F(EngineTest, InvalidRequestsFailWithInvalidArgument) {
  HolimEngine engine(graph_);
  SolveRequest unknown = BaseRequest("definitely-not-an-algo", 0);
  auto r1 = engine.Solve(unknown);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  // The error names the registry so the caller can self-serve.
  EXPECT_NE(r1.status().message().find("easyim"), std::string::npos);

  SolveRequest osim = BaseRequest("osim", 0);  // no opinions
  auto r2 = engine.Solve(osim);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  SolveRequest zero_k = BaseRequest("degree", 0);
  zero_k.k = 0;
  EXPECT_FALSE(engine.Solve(zero_k).ok());

  SolveRequest no_params = BaseRequest("degree", 0);
  no_params.params = nullptr;
  EXPECT_FALSE(engine.Solve(no_params).ok());

  // Sketch oracle + opinion objective is rejected (greedy/celf only
  // support the plain spread objective on frozen worlds).
  SolveRequest sketch_opinion = BaseRequest("greedy", 0);
  sketch_opinion.opinions = &opinions_;
  sketch_opinion.oracle = SpreadOracle::kSketch;
  EXPECT_FALSE(engine.Solve(sketch_opinion).ok());
}

TEST_F(EngineTest, ParamsFingerprintInvalidatesExactly) {
  HolimEngine engine(graph_);
  SolveRequest request = BaseRequest("degree", 0);
  ASSERT_TRUE(engine.Solve(request).ok());

  // Same content, different object: still a cache hit (content-keyed).
  InfluenceParams same = MakeUniformIc(graph_, 0.1);
  request.params = &same;
  auto hit = engine.Solve(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->warm_selector);

  // One bit of parameter change misses.
  InfluenceParams different = MakeUniformIc(graph_, 0.1000001);
  request.params = &different;
  auto miss = engine.Solve(request);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->warm_selector);

  // Scalar knobs are keyed bit-exactly too: values that agree to 6
  // decimals (std::to_string's precision) must still be distinct keys.
  request.params = &params_;
  request.epsilon = 0.1234567;
  auto eps_a = engine.Solve(request);
  ASSERT_TRUE(eps_a.ok());
  request.epsilon = 0.1234572;
  auto eps_b = engine.Solve(request);
  ASSERT_TRUE(eps_b.ok());
  EXPECT_FALSE(eps_b->warm_selector);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include "data/churn.h"
#include "graph/stats.h"

namespace holim {
namespace {

ChurnOptions SmallChurn() {
  ChurnOptions options;
  options.num_customers = 3000;
  options.target_avg_degree = 20.0;
  options.seed = 5;
  return options;
}

class ChurnTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new ChurnData(BuildChurnData(SmallChurn()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static ChurnData* data_;
};

ChurnData* ChurnTest::data_ = nullptr;

TEST_F(ChurnTest, BalancedLabels) {
  std::size_t churners = 0;
  for (char c : data_->is_churner) churners += c;
  EXPECT_EQ(churners, data_->is_churner.size() / 2);
}

TEST_F(ChurnTest, GraphShapeReasonable) {
  EXPECT_EQ(data_->graph.num_nodes(), 3000u);
  auto stats = ComputeGraphStats(data_->graph, 0);
  EXPECT_GT(stats.avg_out_degree, 2.0);
}

TEST_F(ChurnTest, InfluenceProbabilitiesInRange) {
  ASSERT_EQ(data_->influence.probability.size(), data_->graph.num_edges());
  for (double p : data_->influence.probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.05);
  }
}

TEST_F(ChurnTest, OpinionsInRange) {
  for (double o : data_->opinions.opinion) {
    EXPECT_GE(o, -1.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST_F(ChurnTest, LabelledNodesClamped) {
  for (NodeId u = 0; u < data_->graph.num_nodes(); ++u) {
    if (!data_->is_labelled[u]) continue;
    const double expected = data_->is_churner[u] ? -1.0 : 1.0;
    EXPECT_DOUBLE_EQ(data_->opinions.opinion[u], expected);
  }
}

TEST_F(ChurnTest, LabelPropagationPredictsHoldout) {
  // Attribute similarity correlates with the label, so propagated signs
  // should recover held-out labels far better than chance.
  EXPECT_GT(data_->holdout_sign_accuracy, 0.75);
}

TEST_F(ChurnTest, InteractionsAreUniformRandom) {
  double sum = 0.0;
  for (double phi : data_->opinions.interaction) {
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 1.0);
    sum += phi;
  }
  if (!data_->opinions.interaction.empty()) {
    EXPECT_NEAR(sum / data_->opinions.interaction.size(), 0.5, 0.05);
  }
}

TEST(ChurnOptionsTest, RejectsTinyPopulation) {
  ChurnOptions options;
  options.num_customers = 10;
  EXPECT_FALSE(BuildChurnData(options).ok());
}

TEST(ChurnDeterminismTest, SameSeedSameGraph) {
  auto a = BuildChurnData(SmallChurn()).ValueOrDie();
  auto b = BuildChurnData(SmallChurn()).ValueOrDie();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.holdout_sign_accuracy, b.holdout_sign_accuracy);
}

}  // namespace
}  // namespace holim

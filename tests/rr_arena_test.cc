// Tests for the flat-arena RR engine: equivalence with a legacy
// nested-vector reference sampler, bitwise thread-count independence,
// CELF-vs-eager-greedy agreement, and the O(1) edge-source index.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/imm.h"
#include "algo/rr_sets.h"
#include "algo/tim_plus.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "util/thread_pool.h"

namespace holim {
namespace {

// Independent reference implementation of the legacy nested-vector sampler,
// following the RNG-sharding contract documented in rr_sets.h: block b is
// sampled sequentially with Rng(SplitMix64(seed + salt * (b + 1))).
std::vector<std::vector<NodeId>> ReferenceSample(const Graph& g,
                                                 const InfluenceParams& params,
                                                 std::size_t count,
                                                 uint64_t seed) {
  std::vector<std::vector<NodeId>> sets;
  const bool lt = params.model == DiffusionModel::kLinearThreshold;
  const std::size_t num_blocks =
      (count + RrCollection::kGenerateBlockSize - 1) /
      RrCollection::kGenerateBlockSize;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    uint64_t state = seed + RrCollection::kGenerateSeedSalt * (b + 1);
    Rng rng(Rng::SplitMix64(state));
    const std::size_t lo = b * RrCollection::kGenerateBlockSize;
    const std::size_t n =
        std::min(RrCollection::kGenerateBlockSize, count - lo);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId root = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
      std::vector<char> visited(g.num_nodes(), 0);
      std::vector<NodeId> stack{root};
      std::vector<NodeId> rr{root};
      visited[root] = 1;
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        auto in_neighbors = g.InNeighbors(v);
        auto in_edges = g.InEdgeIds(v);
        if (lt) {
          double r = rng.NextDouble();
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const double w = params.p(in_edges[j]);
            if (r < w) {
              const NodeId u = in_neighbors[j];
              if (!visited[u]) {
                visited[u] = 1;
                stack.push_back(u);
                rr.push_back(u);
              }
              break;
            }
            r -= w;
          }
        } else {
          for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
            const NodeId u = in_neighbors[j];
            if (visited[u]) continue;
            if (rng.NextBernoulli(params.p(in_edges[j]))) {
              visited[u] = 1;
              stack.push_back(u);
              rr.push_back(u);
            }
          }
        }
      }
      sets.push_back(std::move(rr));
    }
  }
  return sets;
}

void ExpectArenaMatchesReference(const Graph& g, const InfluenceParams& params,
                                 std::size_t count, uint64_t seed) {
  ThreadPool pool(4);
  RrCollection rr(g, params, /*track_widths=*/true);
  rr.GenerateParallel(count, seed, &pool);
  const auto reference = ReferenceSample(g, params, count, seed);
  ASSERT_EQ(rr.num_sets(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const auto span = rr.set(i);
    ASSERT_EQ(span.size(), reference[i].size()) << "set " << i;
    for (std::size_t j = 0; j < span.size(); ++j) {
      EXPECT_EQ(span[j], reference[i][j]) << "set " << i << " entry " << j;
    }
    uint64_t width = 0;
    for (NodeId u : reference[i]) width += g.InDegree(u);
    EXPECT_EQ(rr.set_width(i), width) << "set " << i;
  }
}

TEST(RrArenaTest, MatchesLegacyNestedVectorSamplerIc) {
  Graph g = GenerateErdosRenyi(150, 5.0, 21).ValueOrDie();
  auto params = MakeUniformIc(g, 0.15);
  ExpectArenaMatchesReference(g, params, 700, 77);
}

TEST(RrArenaTest, MatchesLegacyNestedVectorSamplerWc) {
  Graph g = GenerateBarabasiAlbert(200, 3, 22).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  ExpectArenaMatchesReference(g, params, 600, 78);
}

TEST(RrArenaTest, MatchesLegacyNestedVectorSamplerLt) {
  Graph g = GenerateBarabasiAlbert(120, 2, 23).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  ExpectArenaMatchesReference(g, params, 600, 79);
}

TEST(RrArenaTest, ParallelOutputIndependentOfThreadCount) {
  Graph g = GenerateErdosRenyi(300, 4.0, 24).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  RrCollection base(g, params);
  {
    ThreadPool one(1);
    base.GenerateParallel(1000, 5, &one);
  }
  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    RrCollection rr(g, params);
    rr.GenerateParallel(1000, 5, &pool);
    ASSERT_EQ(rr.num_sets(), base.num_sets());
    ASSERT_EQ(rr.total_entries(), base.total_entries());
    EXPECT_EQ(rr.total_width(), base.total_width());
    for (std::size_t i = 0; i < rr.num_sets(); ++i) {
      auto a = rr.set(i);
      auto b = base.set(i);
      ASSERT_EQ(a.size(), b.size()) << "set " << i;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "set " << i;
    }
  }
}

TEST(RrArenaTest, IncrementalGenerateParallelAppends) {
  // IMM grows the collection in stages; appended sets must follow the
  // already-stored ones without disturbing them.
  Graph g = GenerateBarabasiAlbert(100, 3, 25).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  ThreadPool pool(3);
  RrCollection rr(g, params);
  rr.GenerateParallel(300, 11, &pool);
  const std::size_t first = rr.num_sets();
  std::vector<std::vector<NodeId>> snapshot;
  for (std::size_t i = 0; i < first; ++i) {
    snapshot.emplace_back(rr.set(i).begin(), rr.set(i).end());
  }
  rr.GenerateParallel(300, 12, &pool);
  EXPECT_EQ(rr.num_sets(), first + 300);
  for (std::size_t i = 0; i < first; ++i) {
    auto span = rr.set(i);
    ASSERT_EQ(span.size(), snapshot[i].size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), snapshot[i].begin()));
  }
}

// Eager reference greedy (the legacy SelectMaxCoverage algorithm): full
// argmax scan per pick with explicit gain decrements.
std::pair<std::vector<NodeId>, double> EagerGreedy(const Graph& g,
                                                   const RrCollection& rr,
                                                   uint32_t k) {
  std::vector<uint32_t> gain(g.num_nodes(), 0);
  for (std::size_t s = 0; s < rr.num_sets(); ++s) {
    for (NodeId u : rr.set(s)) ++gain[u];
  }
  std::vector<char> covered(rr.num_sets(), 0);
  std::vector<NodeId> seeds;
  std::size_t covered_count = 0;
  while (seeds.size() < k) {
    NodeId best = kInvalidNode;
    uint32_t best_gain = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (gain[u] > best_gain) {
        best_gain = gain[u];
        best = u;
      }
    }
    if (best == kInvalidNode) break;
    seeds.push_back(best);
    for (std::size_t s = 0; s < rr.num_sets(); ++s) {
      if (covered[s]) continue;
      bool member = false;
      for (NodeId u : rr.set(s)) {
        if (u == best) {
          member = true;
          break;
        }
      }
      if (!member) continue;
      covered[s] = 1;
      ++covered_count;
      for (NodeId u : rr.set(s)) {
        if (gain[u] > 0) --gain[u];
      }
    }
    gain[best] = 0;
  }
  return {seeds, static_cast<double>(covered_count) / rr.num_sets()};
}

TEST(RrArenaTest, CelfMatchesEagerGreedy) {
  for (uint64_t graph_seed : {31u, 32u, 33u}) {
    Graph g = GenerateBarabasiAlbert(150, 3, graph_seed).ValueOrDie();
    auto params = MakeUniformIc(g, 0.1);
    RrCollection rr(g, params);
    rr.GenerateParallel(2000, graph_seed * 7, nullptr);
    auto coverage = rr.SelectMaxCoverage(8);
    auto [eager_seeds, eager_fraction] = EagerGreedy(g, rr, 8);
    ASSERT_EQ(coverage.seeds.size(), 8u);
    // Lazy and eager greedy agree whenever argmax ties break identically
    // (both prefer the smaller node id); compare the full pick sequence.
    EXPECT_EQ(coverage.seeds, eager_seeds);
    EXPECT_DOUBLE_EQ(coverage.covered_fraction, eager_fraction);
  }
}

TEST(RrArenaTest, IncrementalSelectMatchesFromScratchRebuild) {
  // IMM's usage pattern: append, select, append, select. The incremental
  // index must yield seed sets and covered fractions identical to a
  // from-scratch rebuild, at 1 and 8 threads.
  Graph g = GenerateBarabasiAlbert(300, 3, 26).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  for (std::size_t threads : {1u, 8u}) {
    ThreadPool pool(threads);
    RrCollection rr(g, params);
    rr.GenerateParallel(800, 91, &pool);
    auto incremental1 = rr.Snapshot().SelectMaxCoverage(6);
    auto rebuild1 = rr.SelectMaxCoverageRebuild(6);
    EXPECT_EQ(incremental1.seeds, rebuild1.seeds) << threads << " threads";
    EXPECT_DOUBLE_EQ(incremental1.covered_fraction,
                     rebuild1.covered_fraction);

    rr.GenerateParallel(700, 92, &pool);
    auto incremental2 = rr.Snapshot().SelectMaxCoverage(6);
    auto rebuild2 = rr.SelectMaxCoverageRebuild(6);
    EXPECT_EQ(incremental2.seeds, rebuild2.seeds) << threads << " threads";
    EXPECT_DOUBLE_EQ(incremental2.covered_fraction,
                     rebuild2.covered_fraction);

    // Paranoia: a collection built from scratch with the same two append
    // calls (identical arena by the RNG-sharding contract) must agree too.
    RrCollection scratch(g, params);
    scratch.GenerateParallel(800, 91, &pool);
    scratch.GenerateParallel(700, 92, &pool);
    auto from_scratch = scratch.SelectMaxCoverageRebuild(6);
    EXPECT_EQ(incremental2.seeds, from_scratch.seeds);
    EXPECT_DOUBLE_EQ(incremental2.covered_fraction,
                     from_scratch.covered_fraction);
  }
}

TEST(RrArenaTest, SnapshotPinsPrefixAcrossAppends) {
  // A snapshot taken before an append keeps viewing exactly the sets that
  // existed at creation time (appends never invalidate, Clear does).
  Graph g = GenerateErdosRenyi(200, 4.0, 27).ValueOrDie();
  auto params = MakeUniformIc(g, 0.15);
  ThreadPool pool(4);
  RrCollection rr(g, params);
  rr.GenerateParallel(500, 93, &pool);
  auto snapshot = rr.Snapshot();
  ASSERT_EQ(snapshot.num_sets(), 500u);
  rr.GenerateParallel(500, 94, &pool);
  ASSERT_TRUE(snapshot.valid());
  auto pinned = snapshot.SelectMaxCoverage(5);

  RrCollection prefix_only(g, params);
  prefix_only.GenerateParallel(500, 93, &pool);
  auto expected = prefix_only.Snapshot().SelectMaxCoverage(5);
  EXPECT_EQ(pinned.seeds, expected.seeds);
  EXPECT_DOUBLE_EQ(pinned.covered_fraction, expected.covered_fraction);
}

TEST(RrArenaTest, ManyTinyAppendsCompactSegmentsAndStayCorrect) {
  // Serial Generate in dribbles pushes the segment list past
  // kMaxIndexSegments, forcing compaction merges; selection must keep
  // matching the from-scratch rebuild throughout.
  Graph g = GenerateBarabasiAlbert(150, 2, 28).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  RrCollection rr(g, params);
  Rng rng(95);
  for (int round = 0; round < 3 * static_cast<int>(
                                  RrCollection::kMaxIndexSegments);
       ++round) {
    rr.Generate(7, rng);
    if (round % 10 == 9) {
      auto incremental = rr.SelectMaxCoverage(4);
      auto rebuild = rr.SelectMaxCoverageRebuild(4);
      EXPECT_EQ(incremental.seeds, rebuild.seeds) << "round " << round;
      EXPECT_DOUBLE_EQ(incremental.covered_fraction,
                       rebuild.covered_fraction);
    }
  }
}

TEST(RrArenaDeathTest, StaleSnapshotAfterClearAborts) {
  Graph g = GenerateErdosRenyi(80, 3.0, 29).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  RrCollection rr(g, params);
  rr.GenerateParallel(100, 96, nullptr);
  auto snapshot = rr.Snapshot();
  rr.Clear();
  EXPECT_FALSE(snapshot.valid());
  EXPECT_DEATH(snapshot.SelectMaxCoverage(1), "stale CoverageSnapshot");
}

TEST(RrArenaTest, ArenaMemoryBelowNestedVectorBaseline) {
  Graph g = GenerateErdosRenyi(400, 5.0, 41).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  RrCollection rr(g, params);
  rr.GenerateParallel(5000, 6, nullptr);
  // Nested-vector floor: one std::vector header per set plus tightly-fitted
  // payload (real allocations were at least this big).
  const std::size_t nested_floor =
      rr.num_sets() * sizeof(std::vector<NodeId>) +
      rr.total_entries() * sizeof(NodeId);
  EXPECT_LT(rr.MemoryBytes(), nested_floor);
}

template <typename Selector, typename Options>
std::vector<NodeId> SelectWithThreads(const Graph& g,
                                      const InfluenceParams& params,
                                      Options options, std::size_t threads,
                                      uint32_t k) {
  ThreadPool pool(threads);
  options.pool = &pool;
  Selector selector(g, params, options);
  return selector.Select(k).ValueOrDie().seeds;
}

TEST(RrArenaTest, TimPlusSeedsIdenticalAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(250, 3, 51).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  TimPlusOptions options;
  options.epsilon = 0.3;
  options.max_theta = 50000;
  const auto one =
      SelectWithThreads<TimPlusSelector>(g, params, options, 1, 5);
  const auto two =
      SelectWithThreads<TimPlusSelector>(g, params, options, 2, 5);
  const auto eight =
      SelectWithThreads<TimPlusSelector>(g, params, options, 8, 5);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(RrArenaTest, ImmSeedsIdenticalAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(250, 3, 52).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  ImmOptions options;
  options.epsilon = 0.3;
  options.max_theta = 50000;
  const auto one = SelectWithThreads<ImmSelector>(g, params, options, 1, 5);
  const auto two = SelectWithThreads<ImmSelector>(g, params, options, 2, 5);
  const auto eight =
      SelectWithThreads<ImmSelector>(g, params, options, 8, 5);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(EdgeSourceIndexTest, MatchesBinarySearchAndCountsMemory) {
  Graph g = GenerateErdosRenyi(200, 6.0, 61).ValueOrDie();
  const std::size_t before = g.MemoryFootprintBytes();
  std::vector<NodeId> expected(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) expected[e] = g.EdgeSource(e);
  ASSERT_FALSE(g.has_edge_source_index());
  g.BuildEdgeSourceIndex();
  ASSERT_TRUE(g.has_edge_source_index());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.EdgeSource(e), expected[e]) << "edge " << e;
  }
  EXPECT_GE(g.MemoryFootprintBytes(),
            before + g.num_edges() * sizeof(NodeId));
  g.BuildEdgeSourceIndex();  // idempotent
  EXPECT_TRUE(g.has_edge_source_index());
}

TEST(SpreadEstimatorShardTest, TinySimulationCountsDoNotFault) {
  // Regression guard for the shard-count clamp in RunSharded: shard count
  // must stay >= 1 even when num_simulations is smaller than the pool.
  Graph g = GenerateErdosRenyi(50, 3.0, 71).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  ThreadPool pool(8);
  McOptions options;
  options.pool = &pool;
  for (uint32_t sims : {0u, 1u, 2u, 7u}) {
    options.num_simulations = sims;
    const double spread = EstimateSpread(g, params, {0}, options);
    EXPECT_GE(spread, 0.0);
  }
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "algo/irie.h"
#include "algo/simpath.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(IrieTest, HubWinsOnStar) {
  GraphBuilder b(10);
  for (NodeId leaf = 1; leaf < 10; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  IrieSelector irie(g, params);
  auto selection = irie.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(IrieTest, RankDiscountsCoveredRegion) {
  // Two disjoint stars: after picking hub A, IRIE's AP discount must send
  // the second pick to hub B, not to one of A's leaves.
  GraphBuilder b(10);
  for (NodeId leaf = 2; leaf < 6; ++leaf) b.AddEdge(0, leaf);
  for (NodeId leaf = 6; leaf < 10; ++leaf) b.AddEdge(1, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  IrieSelector irie(g, params);
  auto selection = irie.Select(2).ValueOrDie();
  EXPECT_EQ(selection.seeds.size(), 2u);
  const bool both_hubs = (selection.seeds[0] == 0 && selection.seeds[1] == 1) ||
                         (selection.seeds[0] == 1 && selection.seeds[1] == 0);
  EXPECT_TRUE(both_hubs);
}

TEST(IrieTest, RanksAtLeastOne) {
  // r(u) = (1-AP)(1 + alpha sum p r) >= 0, and >= 1 with no seeds.
  Graph g = GenerateBarabasiAlbert(100, 2, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  IrieSelector irie(g, params);
  auto selection = irie.Select(1).ValueOrDie();
  EXPECT_GE(selection.seed_scores[0], 1.0);
}

TEST(IrieTest, SeedQualityBeatsRandom) {
  Graph g = GenerateBarabasiAlbert(500, 3, 2).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  IrieSelector irie(g, params);
  auto selection = irie.Select(10).ValueOrDie();
  McOptions mc;
  mc.num_simulations = 3000;
  mc.seed = 3;
  const double irie_spread = EstimateSpread(g, params, selection.seeds, mc);
  std::vector<NodeId> random_seeds = {3, 77, 111, 222, 333, 401, 42, 88, 199, 450};
  const double random_spread = EstimateSpread(g, params, random_seeds, mc);
  EXPECT_GT(irie_spread, random_spread);
}

TEST(SimpathTest, SpreadExactOnPath) {
  // LT weights are 1 along a path: sigma({0}) counts every downstream node
  // exactly, sum of path weights = 4 for a 5-node path.
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathOptions options;
  options.eta = 1e-9;
  SimpathSelector simpath(g, params, options);
  std::vector<char> none(5, 0);
  EXPECT_NEAR(simpath.SpreadOfNode(0, none), 4.0, 1e-9);
  EXPECT_NEAR(simpath.SpreadOfNode(3, none), 1.0, 1e-9);
  EXPECT_NEAR(simpath.SpreadOfNode(4, none), 0.0, 1e-9);
}

TEST(SimpathTest, SpreadMatchesMonteCarloOnDag) {
  // Small DAG; with eta -> 0 the enumeration is exact for LT.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathOptions options;
  options.eta = 1e-12;
  SimpathSelector simpath(g, params, options);
  std::vector<char> none(5, 0);
  const double analytic = simpath.SpreadOfNode(0, none);
  McOptions mc;
  mc.num_simulations = 100000;
  mc.seed = 4;
  const double sampled = EstimateSpread(g, params, {0}, mc);
  EXPECT_NEAR(analytic, sampled, 0.03 * std::max(1.0, sampled));
}

TEST(SimpathTest, PruningReducesSpreadEstimate) {
  Graph g = GenerateBarabasiAlbert(100, 3, 5).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathOptions loose, tight;
  loose.eta = 1e-6;
  tight.eta = 0.3;
  SimpathSelector loose_sp(g, params, loose), tight_sp(g, params, tight);
  std::vector<char> none(g.num_nodes(), 0);
  for (NodeId u : {NodeId{0}, NodeId{5}}) {
    EXPECT_GE(loose_sp.SpreadOfNode(u, none),
              tight_sp.SpreadOfNode(u, none) - 1e-12);
  }
}

TEST(SimpathTest, SetSpreadExcludesInternalSeedPaths) {
  // S = {0, 2} on path 0->1->2->3: paths from 0 stop at 2 (it is a seed),
  // so sigma(S) = (node1, node2 excluded...) — enumeration from 0 covers
  // 1 (weight 1) and stops before 2; from 2 covers 3.
  Graph g = GeneratePath(4).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathOptions options;
  options.eta = 1e-9;
  SimpathSelector simpath(g, params, options);
  std::vector<char> none(4, 0);
  EXPECT_NEAR(simpath.SpreadOfSet({0, 2}, none), 2.0, 1e-9);
}

TEST(SimpathTest, SelectsReasonableSeedsOnLt) {
  Graph g = GenerateBarabasiAlbert(200, 2, 6).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathSelector simpath(g, params);
  auto selection = simpath.Select(5).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 5u);
  McOptions mc;
  mc.num_simulations = 3000;
  mc.seed = 7;
  const double sp = EstimateSpread(g, params, selection.seeds, mc);
  const double random_sp = EstimateSpread(g, params, {11, 22, 33, 44, 55}, mc);
  EXPECT_GT(sp, random_sp);
}

TEST(SimpathTest, RejectsBadK) {
  Graph g = GeneratePath(3).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SimpathSelector simpath(g, params);
  EXPECT_FALSE(simpath.Select(0).ok());
  EXPECT_FALSE(simpath.Select(4).ok());
}

}  // namespace
}  // namespace holim

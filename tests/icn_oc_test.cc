#include <gtest/gtest.h>

#include "diffusion/icn_model.h"
#include "diffusion/oc_model.h"
#include "diffusion/oi_model.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(IcnTest, QualityOneNeverTurnsNegative) {
  Graph g = GenerateBarabasiAlbert(200, 2, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  IcnSimulator sim(g, params, /*quality_factor=*/1.0);
  Rng rng(1);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 50; ++i) {
    const IcnCascade& c = sim.Run(seeds, rng);
    for (bool pos : c.positive) EXPECT_TRUE(pos);
    EXPECT_EQ(c.PositiveSpread(), c.cascade->SpreadCount(1));
  }
}

TEST(IcnTest, QualityZeroAllNegative) {
  Graph g = GenerateBarabasiAlbert(200, 2, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  IcnSimulator sim(g, params, 0.0);
  Rng rng(2);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 50; ++i) {
    const IcnCascade& c = sim.Run(seeds, rng);
    for (bool pos : c.positive) EXPECT_FALSE(pos);
    EXPECT_EQ(c.PositiveSpread(), 0u);
  }
}

TEST(IcnTest, NegativityDominatesDownstream) {
  // Chain 0 -> 1 -> 2 with p = 1: once node 1 is negative, node 2 must be.
  Graph g = GeneratePath(3).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcnSimulator sim(g, params, 0.5);
  Rng rng(3);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 200; ++i) {
    const IcnCascade& c = sim.Run(seeds, rng);
    ASSERT_EQ(c.positive.size(), 3u);
    if (!c.positive[1]) EXPECT_FALSE(c.positive[2]);
  }
}

TEST(IcnTest, SignedSpreadConsistent) {
  Graph g = GeneratePath(2).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcnSimulator sim(g, params, 0.7);
  Rng rng(4);
  const NodeId seeds[] = {0};
  double signed_sum = 0;
  const int runs = 20000;
  for (int i = 0; i < runs; ++i) {
    signed_sum += sim.Run(seeds, rng).SignedSpread();
  }
  // Non-seed node positive w.p. P(seed pos) * q = 0.7*0.7 = 0.49.
  // E[signed] = 0.49 - 0.51 = -0.02.
  EXPECT_NEAR(signed_sum / runs, -0.02, 0.015);
}

TEST(IcnTest, RejectsBadQualityFactor) {
  Graph g = GeneratePath(2).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  EXPECT_DEATH(IcnSimulator(g, params, 1.5), "quality factor");
}

TEST(OcTest, MatchesOiLtWithPhiOne) {
  // OC is OI-over-LT with phi == 1; expected opinion spreads must agree.
  Graph g = GenerateBarabasiAlbert(300, 3, 5).ValueOrDie();
  auto influence = MakeLinearThreshold(g);
  OpinionParams opinions =
      MakeRandomOpinions(g, OpinionDistribution::kUniform, 6);
  OpinionParams phi_one = opinions;
  std::fill(phi_one.interaction.begin(), phi_one.interaction.end(), 1.0);

  OcSimulator oc_sim(g, influence, opinions);
  OiSimulator oi_sim(g, influence, phi_one, OiBase::kLinearThreshold);
  Rng rng_a(7), rng_b(8);
  const NodeId seeds[] = {0, 3, 9};
  double oc_spread = 0, oi_spread = 0;
  const int runs = 4000;
  for (int i = 0; i < runs; ++i) {
    oc_spread += oc_sim.Run(seeds, rng_a).OpinionSpread();
    oi_spread += oi_sim.Run(seeds, rng_b).OpinionSpread();
  }
  oc_spread /= runs;
  oi_spread /= runs;
  EXPECT_NEAR(oc_spread, oi_spread, 0.1 * std::max(1.0, std::abs(oc_spread)));
}

TEST(OcTest, DeterministicChainAverages) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto influence = MakeLinearThreshold(g);
  OpinionParams opinions;
  opinions.opinion = {1.0, 0.0, 0.0};
  opinions.interaction = {0.3, 0.7};  // OC ignores phi entirely
  OcSimulator sim(g, influence, opinions);
  Rng rng(9);
  const NodeId seeds[] = {0};
  const auto& c = sim.Run(seeds, rng);
  ASSERT_EQ(c.final_opinion.size(), 3u);
  EXPECT_DOUBLE_EQ(c.final_opinion[1], 0.5);
  EXPECT_DOUBLE_EQ(c.final_opinion[2], 0.25);
}

TEST(OcTest, SeedsKeepOpinions) {
  Graph g = GeneratePath(2).ValueOrDie();
  auto influence = MakeLinearThreshold(g);
  OpinionParams opinions;
  opinions.opinion = {-0.7, 0.2};
  opinions.interaction = {0.5};
  OcSimulator sim(g, influence, opinions);
  Rng rng(10);
  const NodeId seeds[] = {0};
  EXPECT_DOUBLE_EQ(sim.Run(seeds, rng).final_opinion[0], -0.7);
}

}  // namespace
}  // namespace holim

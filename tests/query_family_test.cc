// Query-family tests (QueryKind vocabulary through HolimEngine::Solve).
//
// The load-bearing contracts:
//  * budgeted greedy matches the exhaustive-over-subsets optimum on a
//    crafted graph where the drop-when-over-budget rule must fire;
//  * uniform-cost budgeted selection is bitwise-identical to plain CELF /
//    greedy at budget == k (scalar AND bit-parallel sketch eval);
//  * all-ones targeted selection is bitwise-identical to untargeted
//    (scalar AND bit-parallel), and its weighted spread equals the plain
//    spread bitwise;
//  * explain's per-seed contributions telescope to the evaluate spread
//    (bitwise at a power-of-two snapshot count) and reproduce CELF's
//    per-round seed scores;
//  * the Workspace content fingerprint invalidates on cost / target /
//    given-seed changes;
//  * unsupported (algorithm, kind) pairs fail with a typed Unimplemented
//    error, and SolveResult::stats honors the sorted-lookup contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

// Local gtest glue for Result<T>: assert-ok, then move the value out.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                   \
  auto HOLIM_CONCAT_(_res_, __LINE__) = (rexpr);           \
  ASSERT_TRUE(HOLIM_CONCAT_(_res_, __LINE__).ok())         \
      << HOLIM_CONCAT_(_res_, __LINE__).status().ToString(); \
  lhs = std::move(*HOLIM_CONCAT_(_res_, __LINE__))

class QueryFamilyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateBarabasiAlbert(250, 2, 9).ValueOrDie();
    params_ = MakeUniformIc(graph_, 0.1);
  }

  SolveRequest BaseRequest(const std::string& algorithm, uint32_t k) const {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = k;
    request.params = &params_;
    request.oracle = SpreadOracle::kSketch;
    request.num_sketches = 64;
    request.seed = 17;
    return request;
  }

  Graph graph_;
  InfluenceParams params_;
};

// Three disjoint out-stars with p = 1.0 (every snapshot identical, so the
// sketch spread is the exact spread): center 0 reaches 5 leaves (cost 3),
// center 6 reaches 4 (cost 2), center 11 reaches 3 (cost 2); leaves are
// individually unaffordable. Budget 4: the ratio order pops center 6
// (4/2) first, then center 0 (5/3) — which must be dropped permanently
// (cost 3 > residual 2) — then center 11 fits. That greedy outcome
// {6, 11} with spread 7 is also the exhaustive optimum.
TEST_F(QueryFamilyTest, BudgetedMatchesExhaustiveOptimumOnStars) {
  GraphBuilder b(15);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) b.AddEdge(0, leaf);
  for (NodeId leaf = 7; leaf <= 10; ++leaf) b.AddEdge(6, leaf);
  for (NodeId leaf = 12; leaf <= 14; ++leaf) b.AddEdge(11, leaf);
  Graph stars = std::move(b).Build().ValueOrDie();
  InfluenceParams certain = MakeUniformIc(stars, 1.0);

  std::vector<double> costs(15, 5.0);  // leaves never fit budget 4
  costs[0] = 3.0;
  costs[6] = 2.0;
  costs[11] = 2.0;
  const double budget = 4.0;

  HolimEngine engine(stars);
  for (const char* algorithm : {"greedy", "celf", "celf++"}) {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = 15;
    request.params = &certain;
    request.oracle = SpreadOracle::kSketch;
    request.num_sketches = 16;
    request.query = QueryKind::kBudgeted;
    request.node_costs = costs;
    request.budget = budget;
    ASSERT_OK_AND_ASSIGN(SolveResult result, engine.Solve(request));

    EXPECT_EQ(result.seeds, (std::vector<NodeId>{6, 11})) << algorithm;
    EXPECT_DOUBLE_EQ(result.total_cost, 4.0) << algorithm;
    EXPECT_DOUBLE_EQ(result.spread, 7.0) << algorithm;

    // Exhaustive reference: every subset of the 15 nodes within budget.
    double best = 0.0;
    for (uint32_t mask = 1; mask < (1u << 15); ++mask) {
      double cost = 0.0;
      std::vector<NodeId> subset;
      for (NodeId u = 0; u < 15; ++u) {
        if (mask & (1u << u)) {
          cost += costs[u];
          subset.push_back(u);
        }
      }
      if (cost > budget) continue;
      SolveRequest eval = request;
      eval.query = QueryKind::kEvaluate;
      eval.given_seeds = subset;
      ASSERT_OK_AND_ASSIGN(SolveResult scored, engine.Solve(eval));
      best = std::max(best, scored.spread);
    }
    EXPECT_DOUBLE_EQ(result.spread, best) << algorithm;
  }
}

// With uniform (empty -> 1.0) costs and budget == k, the benefit-per-cost
// ratio IS the gain and the drop rule never fires before the budget is
// spent — selection, per-round scores, and spread must be bitwise equal
// to the plain top-k solve, on both sketch traversals.
TEST_F(QueryFamilyTest, UniformCostBudgetedBitwiseEqualsTopK) {
  constexpr uint32_t kSeeds = 6;
  for (const char* algorithm : {"greedy", "celf", "celf++"}) {
    for (const SketchEval eval :
         {SketchEval::kBitParallel, SketchEval::kScalar}) {
      HolimEngine engine(graph_);
      SolveRequest topk = BaseRequest(algorithm, kSeeds);
      topk.sketch_eval = eval;
      ASSERT_OK_AND_ASSIGN(SolveResult plain, engine.Solve(topk));

      SolveRequest budgeted = topk;
      budgeted.query = QueryKind::kBudgeted;
      budgeted.budget = static_cast<double>(kSeeds);
      ASSERT_OK_AND_ASSIGN(SolveResult capped, engine.Solve(budgeted));

      EXPECT_EQ(capped.seeds, plain.seeds) << algorithm;
      EXPECT_EQ(capped.seed_scores, plain.seed_scores) << algorithm;
      EXPECT_EQ(capped.spread, plain.spread) << algorithm;
      EXPECT_DOUBLE_EQ(capped.total_cost,
                       static_cast<double>(capped.seeds.size()));
    }
  }
}

// All-ones target weights keep every weighted partial sum an exact small
// integer, so the weighted kernels reproduce the integer path bit for bit:
// same seeds, same scores, and targeted_spread == spread bitwise.
TEST_F(QueryFamilyTest, AllOnesTargetedBitwiseEqualsUntargeted) {
  constexpr uint32_t kSeeds = 6;
  for (const char* algorithm : {"greedy", "celf", "celf++"}) {
    for (const SketchEval eval :
         {SketchEval::kBitParallel, SketchEval::kScalar}) {
      HolimEngine engine(graph_);
      SolveRequest topk = BaseRequest(algorithm, kSeeds);
      topk.sketch_eval = eval;
      ASSERT_OK_AND_ASSIGN(SolveResult plain, engine.Solve(topk));

      SolveRequest targeted = topk;
      targeted.query = QueryKind::kTargeted;
      targeted.target_weights.assign(graph_.num_nodes(), 1.0);
      ASSERT_OK_AND_ASSIGN(SolveResult aimed, engine.Solve(targeted));

      EXPECT_EQ(aimed.seeds, plain.seeds) << algorithm;
      EXPECT_EQ(aimed.seed_scores, plain.seed_scores) << algorithm;
      EXPECT_EQ(aimed.spread, plain.spread) << algorithm;
      EXPECT_EQ(aimed.targeted_spread, aimed.spread) << algorithm;
    }
  }
}

// A genuinely non-uniform target set must bias the selection's weighted
// spread: the targeted solve scores at least as high on the weighted
// objective as the untargeted winner evaluated under the same weights.
TEST_F(QueryFamilyTest, TargetedSolveBeatsUntargetedOnWeightedObjective) {
  SolveRequest targeted = BaseRequest("celf", 5);
  targeted.query = QueryKind::kTargeted;
  targeted.target_weights.assign(graph_.num_nodes(), 0.0);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 3) {
    targeted.target_weights[u] = 1.0;
  }
  HolimEngine engine(graph_);
  ASSERT_OK_AND_ASSIGN(SolveResult aimed, engine.Solve(targeted));

  SolveRequest topk = BaseRequest("celf", 5);
  ASSERT_OK_AND_ASSIGN(SolveResult plain, engine.Solve(topk));
  SolveRequest rescored = targeted;
  rescored.query = QueryKind::kEvaluate;
  rescored.given_seeds = plain.seeds;
  ASSERT_OK_AND_ASSIGN(SolveResult baseline, engine.Solve(rescored));

  EXPECT_GE(aimed.targeted_spread, baseline.targeted_spread);
}

// Explain's contributions are the committed session gains, in given_seeds
// order: they telescope to the evaluate spread (bitwise at a power-of-two
// snapshot count, where every per-commit quotient is an exact dyadic) and
// reproduce CELF's per-round seed scores for CELF's own seed order.
TEST_F(QueryFamilyTest, ExplainContributionsSumToEvaluateSpread) {
  for (const SketchEval eval :
       {SketchEval::kBitParallel, SketchEval::kScalar}) {
    HolimEngine engine(graph_);
    SolveRequest topk = BaseRequest("celf", 6);
    topk.num_sketches = 256;  // power of two: exact telescoping
    topk.sketch_eval = eval;
    ASSERT_OK_AND_ASSIGN(SolveResult plain, engine.Solve(topk));

    SolveRequest explain = topk;
    explain.query = QueryKind::kExplain;
    explain.given_seeds = plain.seeds;
    ASSERT_OK_AND_ASSIGN(SolveResult attributed,
                               engine.Solve(explain));
    ASSERT_EQ(attributed.seed_contributions.size(), plain.seeds.size());
    EXPECT_EQ(attributed.seed_contributions, plain.seed_scores);

    SolveRequest evaluate = explain;
    evaluate.query = QueryKind::kEvaluate;
    ASSERT_OK_AND_ASSIGN(SolveResult scored, engine.Solve(evaluate));
    double sum = 0.0;
    for (const double c : attributed.seed_contributions) sum += c;
    EXPECT_EQ(sum, scored.spread);
    EXPECT_EQ(attributed.spread, scored.spread);
  }
}

// Weighted explain telescopes to the weighted evaluate spread the same
// way (0/1 weights keep every partial sum exactly representable).
TEST_F(QueryFamilyTest, WeightedExplainSumsToWeightedEvaluate) {
  SolveRequest explain = BaseRequest("celf", 4);
  explain.num_sketches = 256;
  explain.query = QueryKind::kExplain;
  explain.given_seeds = {3, 11, 42, 99};
  explain.target_weights.assign(graph_.num_nodes(), 0.0);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 2) {
    explain.target_weights[u] = 1.0;
  }
  HolimEngine engine(graph_);
  ASSERT_OK_AND_ASSIGN(SolveResult attributed, engine.Solve(explain));

  SolveRequest evaluate = explain;
  evaluate.query = QueryKind::kEvaluate;
  ASSERT_OK_AND_ASSIGN(SolveResult scored, engine.Solve(evaluate));

  double sum = 0.0;
  for (const double c : attributed.seed_contributions) sum += c;
  EXPECT_EQ(sum, scored.targeted_spread);
  EXPECT_EQ(attributed.targeted_spread, scored.targeted_spread);
  // The unweighted spread is reported alongside, from the same arena.
  EXPECT_EQ(attributed.spread, scored.spread);
}

// The selector cache key folds in the content fingerprints of the query
// vectors: re-solving with identical fields is warm, changing any cost or
// weight bit is a cold rebuild.
TEST_F(QueryFamilyTest, WorkspaceFingerprintInvalidatesOnQueryFields) {
  HolimEngine engine(graph_);
  SolveRequest budgeted = BaseRequest("celf", 5);
  budgeted.query = QueryKind::kBudgeted;
  budgeted.node_costs.assign(graph_.num_nodes(), 2.0);
  budgeted.budget = 10.0;
  ASSERT_OK_AND_ASSIGN(SolveResult cold, engine.Solve(budgeted));
  EXPECT_FALSE(cold.warm_selector);
  ASSERT_OK_AND_ASSIGN(SolveResult warm, engine.Solve(budgeted));
  EXPECT_TRUE(warm.warm_selector);
  EXPECT_EQ(warm.seeds, cold.seeds);
  EXPECT_EQ(warm.seed_scores, cold.seed_scores);

  budgeted.node_costs[7] = 2.5;  // one cost bit changes -> cold
  ASSERT_OK_AND_ASSIGN(SolveResult recost, engine.Solve(budgeted));
  EXPECT_FALSE(recost.warm_selector);

  SolveRequest targeted = BaseRequest("celf", 5);
  targeted.query = QueryKind::kTargeted;
  targeted.target_weights.assign(graph_.num_nodes(), 1.0);
  ASSERT_OK_AND_ASSIGN(SolveResult aimed, engine.Solve(targeted));
  EXPECT_FALSE(aimed.warm_selector);
  targeted.target_weights[0] = 0.5;
  ASSERT_OK_AND_ASSIGN(SolveResult reweighted, engine.Solve(targeted));
  EXPECT_FALSE(reweighted.warm_selector);

  // Evaluate runs no selector; changing the given seeds changes the answer
  // while the sketch arena stays warm.
  SolveRequest evaluate = BaseRequest("celf", 5);
  evaluate.query = QueryKind::kEvaluate;
  evaluate.given_seeds = {1, 2, 3};
  ASSERT_OK_AND_ASSIGN(SolveResult first, engine.Solve(evaluate));
  evaluate.given_seeds = {4, 5, 6};
  ASSERT_OK_AND_ASSIGN(SolveResult second, engine.Solve(evaluate));
  EXPECT_TRUE(second.warm_sketch);
  EXPECT_NE(first.spread, second.spread);
}

// The capability mask is enforced with a typed error — no silent top-k
// fallback — while evaluate/explain are oracle-side and work for every
// algorithm name.
TEST_F(QueryFamilyTest, UnsupportedQueryKindIsTypedError) {
  HolimEngine engine(graph_);
  SolveRequest request = BaseRequest("degree", 5);
  request.query = QueryKind::kBudgeted;
  request.budget = 5.0;
  Result<SolveResult> result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(result.status().message().find("does not support"),
            std::string::npos);

  SolveRequest evaluate = BaseRequest("degree", 5);
  evaluate.query = QueryKind::kEvaluate;
  evaluate.given_seeds = {1, 2};
  ASSERT_OK_AND_ASSIGN(SolveResult scored, engine.Solve(evaluate));
  EXPECT_GT(scored.spread, 0.0);
}

// Malformed query fields fail fast with InvalidArgument.
TEST_F(QueryFamilyTest, QueryFieldValidation) {
  HolimEngine engine(graph_);

  SolveRequest no_budget = BaseRequest("celf", 5);
  no_budget.query = QueryKind::kBudgeted;
  EXPECT_EQ(engine.Solve(no_budget).status().code(),
            StatusCode::kInvalidArgument);

  SolveRequest bad_costs = BaseRequest("celf", 5);
  bad_costs.query = QueryKind::kBudgeted;
  bad_costs.budget = 5.0;
  bad_costs.node_costs = {1.0, 2.0};  // wrong arity
  EXPECT_EQ(engine.Solve(bad_costs).status().code(),
            StatusCode::kInvalidArgument);

  SolveRequest no_weights = BaseRequest("celf", 5);
  no_weights.query = QueryKind::kTargeted;
  EXPECT_EQ(engine.Solve(no_weights).status().code(),
            StatusCode::kInvalidArgument);

  SolveRequest mc_targeted = BaseRequest("celf", 5);
  mc_targeted.query = QueryKind::kTargeted;
  mc_targeted.target_weights.assign(graph_.num_nodes(), 1.0);
  mc_targeted.oracle = SpreadOracle::kMonteCarlo;
  EXPECT_EQ(engine.Solve(mc_targeted).status().code(),
            StatusCode::kInvalidArgument);

  SolveRequest no_seeds = BaseRequest("celf", 5);
  no_seeds.query = QueryKind::kExplain;
  EXPECT_EQ(engine.Solve(no_seeds).status().code(),
            StatusCode::kInvalidArgument);

  SolveRequest bad_seed = BaseRequest("celf", 5);
  bad_seed.query = QueryKind::kEvaluate;
  bad_seed.given_seeds = {graph_.num_nodes()};
  EXPECT_EQ(engine.Solve(bad_seed).status().code(),
            StatusCode::kInvalidArgument);
}

// SolveResult::stats come back sorted by name (the engine sorts once per
// solve), so Stat() can binary-search; hand-filled results restore the
// invariant with SortStats().
TEST_F(QueryFamilyTest, StatsAreSortedAndBinarySearchable) {
  HolimEngine engine(graph_);
  SolveRequest request = BaseRequest("tim+", 5);
  request.oracle = SpreadOracle::kMonteCarlo;
  request.epsilon = 0.3;
  request.max_theta = 20000;
  ASSERT_OK_AND_ASSIGN(SolveResult result, engine.Solve(request));
  ASSERT_FALSE(result.stats.empty());
  EXPECT_TRUE(std::is_sorted(
      result.stats.begin(), result.stats.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  for (const auto& [name, value] : result.stats) {
    EXPECT_EQ(result.Stat(name), value);
  }
  EXPECT_EQ(result.Stat("no-such-stat", -1.0), -1.0);

  SolveResult by_hand;
  by_hand.stats = {{"zeta", 1.0}, {"alpha", 2.0}, {"mu", 3.0}};
  by_hand.SortStats();
  EXPECT_EQ(by_hand.stats.front().first, "alpha");
  EXPECT_EQ(by_hand.Stat("mu"), 3.0);
  EXPECT_EQ(by_hand.Stat("beta", 9.0), 9.0);
}

}  // namespace
}  // namespace holim

// Heat-aware Workspace tests: the exact decay arithmetic, the
// benefit-per-byte victim ordering (and how it diverges from LRU), the
// working-set pin in EnforceBudget, the ghost list feeding pre-warm
// decisions — and the regression test that ApplyGraphDelta re-keying
// re-enforces the byte budget (patched arenas grow; a churn epoch must
// not overshoot until the next solve).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "engine/workspace.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "model/influence_params.h"

namespace holim {
namespace {

/// Minimal cached artifact with a fixed footprint: selector entries use
/// MemoryFootprintBytes as both the byte charge and the rebuild-cost
/// proxy, so their benefit-per-byte is exactly their decayed heat —
/// which makes eviction order a pure function of the heat bookkeeping
/// under test.
class FakeSelector : public SeedSelector {
 public:
  explicit FakeSelector(std::size_t bytes) : bytes_(bytes) {}
  std::string name() const override { return "fake"; }
  Result<SeedSelection> Select(uint32_t k) override {
    SeedSelection selection;
    for (NodeId i = 0; i < k; ++i) selection.seeds.push_back(i);
    return selection;
  }
  std::size_t MemoryFootprintBytes() const override { return bytes_; }

 private:
  std::size_t bytes_;
};

/// Adds (or touches) a fake selector of `bytes` under `key`.
SeedSelector* Add(Workspace& ws, const std::string& key,
                  std::size_t bytes = 1000) {
  return ws
      .GetSelector(key,
                   [bytes]() {
                     return Result<std::unique_ptr<SeedSelector>>(
                         std::make_unique<FakeSelector>(bytes));
                   })
      .ValueOrDie();
}

TEST(HeatDecayTest, IntegerHalvingIsExact) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(2);

  Add(ws, "a");                   // tick 1: heat 1.0 at heat_tick 1
  EXPECT_EQ(ws.HeatOf("a"), 1.0);  // 0 elapsed ticks
  Add(ws, "b");                   // tick 2: (2-1)/2 = 0 halvings
  EXPECT_EQ(ws.HeatOf("a"), 1.0);
  Add(ws, "c");                   // tick 3: (3-1)/2 = 1 halving
  EXPECT_EQ(ws.HeatOf("a"), 0.5);
  Add(ws, "d");                   // tick 4: (4-1)/2 = 1 halving (integer!)
  EXPECT_EQ(ws.HeatOf("a"), 0.5);
  Add(ws, "e");                   // tick 5: (5-1)/2 = 2 halvings
  EXPECT_EQ(ws.HeatOf("a"), 0.25);
}

TEST(HeatDecayTest, TouchAddsOneAfterDecay) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(2);

  Add(ws, "a");  // tick 1, heat 1.0
  Add(ws, "b");  // tick 2
  Add(ws, "c");  // tick 3
  Add(ws, "d");  // tick 4
  Add(ws, "e");  // tick 5: HeatOf("a") = 0.25
  Add(ws, "a");  // touch at tick 6: (6-1)/2 = 2 halvings, then +1
  EXPECT_EQ(ws.HeatOf("a"), std::ldexp(1.0, -2) + 1.0);  // 1.25, bit-exact
}

TEST(HeatDecayTest, HeatOfAbsentKeyIsZero) {
  Workspace ws;
  EXPECT_EQ(ws.HeatOf("missing"), 0.0);
  EXPECT_EQ(ws.BenefitPerByte("missing"), 0.0);
}

TEST(HeatEvictionTest, EqualBenefitTieBreaksTowardSmallestKey) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(1u << 20);  // effectively no decay

  // Same bytes, same heat (inserted once each, never touched) — every
  // benefit-per-byte is identical, so the victim must be the
  // lexicographically smallest key.
  Add(ws, "b");
  Add(ws, "a");
  Add(ws, "c");
  ws.set_max_bytes(2500);  // fits two of the three 1000-byte entries
  EXPECT_EQ(ws.EnforceBudget(), 1u);
  EXPECT_EQ(ws.PeekSelector("a"), nullptr);
  EXPECT_NE(ws.PeekSelector("b"), nullptr);
  EXPECT_NE(ws.PeekSelector("c"), nullptr);
}

TEST(HeatEvictionTest, HeatOutranksRecencyWhereLruWould) {
  // "a" is hot but stale; "b" is cold but most recent. LRU evicts "a";
  // the heat policy evicts "b". Both policies over the same history.
  const auto run = [](Workspace::EvictionPolicy policy) {
    Workspace ws;
    ws.set_eviction_policy(policy);
    ws.set_heat_half_life(1u << 20);
    Add(ws, "a");
    Add(ws, "a");
    Add(ws, "a");  // heat 3.0
    Add(ws, "b");  // heat 1.0, newest
    ws.set_max_bytes(1500);  // fits one entry
    ws.EnforceBudget();
    return ws.PeekSelector("a") != nullptr;  // did "a" survive?
  };
  EXPECT_FALSE(run(Workspace::EvictionPolicy::kLru));
  EXPECT_TRUE(run(Workspace::EvictionPolicy::kHeatBenefit));
}

TEST(HeatEvictionTest, PinProtectsTheInFlightWorkingSet) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(1u << 20);

  for (int i = 0; i < 5; ++i) Add(ws, "hot");  // heat 5.0
  const uint64_t pre_solve = ws.tick();
  Add(ws, "fresh");  // the artifact the in-flight solve just built
  ws.set_max_bytes(1500);

  // A pinned pass must not evict "fresh" even though its benefit is far
  // below "hot"'s — the stale-hot entry goes instead.
  EXPECT_EQ(ws.EnforceBudget(pre_solve), 1u);
  EXPECT_EQ(ws.PeekSelector("hot"), nullptr);
  EXPECT_NE(ws.PeekSelector("fresh"), nullptr);
}

TEST(HeatEvictionTest, PinStopsOverBudgetWhenOnlyPinnedRemain) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  Add(ws, "x");
  Add(ws, "y");
  ws.set_max_bytes(100);  // nothing fits
  // Everything is newer than pin 0: the pass must stop without evicting
  // rather than thrash the working set.
  EXPECT_EQ(ws.EnforceBudget(0), 0u);
  EXPECT_EQ(ws.num_artifacts(), 2u);
}

TEST(GhostListTest, EvictionsGhostUnderHeatPolicyOnly) {
  for (const auto policy : {Workspace::EvictionPolicy::kLru,
                            Workspace::EvictionPolicy::kHeatBenefit}) {
    Workspace ws;
    ws.set_eviction_policy(policy);
    ws.set_heat_half_life(1u << 20);
    Add(ws, "a", 2000);
    Add(ws, "b", 1000);
    ws.set_max_bytes(1500);
    ws.EnforceBudget();
    if (policy == Workspace::EvictionPolicy::kLru) {
      EXPECT_TRUE(ws.ghosts().empty());
    } else {
      ASSERT_EQ(ws.ghosts().size(), 1u);
      const auto& [key, ghost] = *ws.ghosts().begin();
      EXPECT_EQ(key, "a");  // 2000 bytes, same heat: lowest benefit/byte
      EXPECT_EQ(ghost.heat, 1.0);
      EXPECT_EQ(ghost.bytes, 2000u);
      EXPECT_EQ(ws.HottestGhost(), "a");
    }
  }
}

TEST(GhostListTest, HottestGhostTieBreaksSmallestKeyAndForgets) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(1u << 20);
  Add(ws, "b");
  Add(ws, "a");
  Add(ws, "keeper", 10);
  ws.set_max_bytes(500);  // only "keeper" survives
  ws.EnforceBudget();
  ASSERT_EQ(ws.ghosts().size(), 2u);  // "a" and "b", equal heat
  EXPECT_EQ(ws.HottestGhost(), "a");  // tie -> smallest key
  ws.ForgetGhost("a");
  EXPECT_EQ(ws.HottestGhost(), "b");
  ws.ForgetGhost("b");
  EXPECT_EQ(ws.HottestGhost(), "");
  EXPECT_TRUE(ws.ghosts().empty());
}

TEST(GhostListTest, ReadmissionErasesTheGhost) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  Add(ws, "a", 2000);
  Add(ws, "b", 1000);
  ws.set_max_bytes(1500);
  ws.EnforceBudget();
  ASSERT_EQ(ws.ghosts().count("a"), 1u);
  ws.set_max_bytes(0);  // lift the budget so re-admission sticks
  Add(ws, "a", 2000);
  EXPECT_EQ(ws.ghosts().count("a"), 0u);
}

TEST(GhostListTest, CapKeepsAtMost32Ghosts) {
  Workspace ws;
  ws.set_eviction_policy(Workspace::EvictionPolicy::kHeatBenefit);
  ws.set_heat_half_life(1u << 20);
  Add(ws, "keeper", 10);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "g" + std::to_string(100 + i);  // fixed width
    Add(ws, key, 1000);
    ws.set_max_bytes(500);
    ws.EnforceBudget();
    ws.set_max_bytes(0);
  }
  EXPECT_EQ(ws.ghosts().size(), 32u);
}

// ---------------------------------------------------------------------------
// Regression: ApplyGraphDelta re-keying must re-enforce max_cache_bytes.
// ---------------------------------------------------------------------------

TEST(DeltaBudgetTest, ApplyDeltaReEnforcesTheByteBudget) {
  const Graph base = GenerateBarabasiAlbert(120, 2, 7).ValueOrDie();
  const InfluenceParams params = MakeUniformIc(base, 0.1);

  SolveRequest request;
  request.algorithm = "degreediscount";
  request.k = 4;
  request.params = &params;
  request.oracle = SpreadOracle::kSketch;
  request.evaluate_spread = true;
  request.seed = 11;

  // Two sketch arenas under one params fingerprint (different R), so the
  // delta patches BOTH and the grown pair can overshoot the budget.
  HolimEngine sizing(base);
  request.num_sketches = 32;
  ASSERT_TRUE(sizing.Solve(request).ok());
  request.num_sketches = 64;
  auto sized = sizing.Solve(request);
  ASSERT_TRUE(sized.ok());
  const std::size_t both = sizing.workspace().MemoryFootprintBytes();

  // Budget: fits both arenas as built, with almost no headroom. A delta
  // that only INSERTS edges grows every patched splice table.
  EngineOptions options;
  options.max_cache_bytes = both + 256;
  HolimEngine engine(base, options);
  request.num_sketches = 32;
  ASSERT_TRUE(engine.Solve(request).ok());
  request.num_sketches = 64;
  ASSERT_TRUE(engine.Solve(request).ok());
  ASSERT_LE(engine.workspace().MemoryFootprintBytes(),
            engine.workspace().max_bytes());

  GraphDelta delta;
  for (NodeId u = 0; u < 40; ++u) {
    delta.Upsert(u, (u + 57) % base.num_nodes(), 0.2);
  }
  auto report = engine.ApplyDelta(delta, params);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_TRUE(report->effective);

  // The post-delta footprint must respect the budget immediately (not
  // only after the next solve), unless eviction is already down to the
  // keep-one floor.
  EXPECT_TRUE(engine.workspace().MemoryFootprintBytes() <=
                  engine.workspace().max_bytes() ||
              engine.workspace().num_artifacts() <= 1)
      << "footprint " << engine.workspace().MemoryFootprintBytes()
      << " exceeds budget " << engine.workspace().max_bytes() << " with "
      << engine.workspace().num_artifacts() << " artifacts";
  EXPECT_GE(report->evicted_artifacts, 1u);
}

}  // namespace
}  // namespace holim

// Deadline / cancellation / degradation contract tests.
//
// The load-bearing contract: degradation under a *work budget* is
// deterministic. For every algorithm and every budget B, the degraded
// solve's seeds are bitwise equal to the first rounds_completed seeds of
// the untimed run (greedy rounds are prefix-valid), across the scalar and
// bit-parallel sketch evaluators; when no round completed, the engine
// falls to the DegreeDiscountIC heuristic tier instead of failing.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "util/deadline.h"

namespace holim {
namespace {

/// Clock that advances a fixed step on every read: wall-clock expiry then
/// lands after a deterministic number of clock polls (serial solves only).
class SteppingClock : public Clock {
 public:
  explicit SteppingClock(int64_t step_nanos) : step_(step_nanos) {}
  int64_t NowNanos() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_{0};
  int64_t step_;
};

class DeadlineSolveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateBarabasiAlbert(200, 2, 5).ValueOrDie();
    params_ = MakeUniformIc(graph_, 0.1);
  }

  SolveRequest BaseRequest(const std::string& algorithm) const {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = 4;
    request.params = &params_;
    request.l = 2;
    request.epsilon = 0.3;
    request.max_theta = 20000;
    request.mc = 20;
    request.seed = 11;
    return request;
  }

  void ExpectValidSeeds(const std::vector<NodeId>& seeds) {
    std::set<NodeId> unique(seeds.begin(), seeds.end());
    EXPECT_EQ(unique.size(), seeds.size()) << "duplicate seeds";
    for (const NodeId s : seeds) EXPECT_LT(s, graph_.num_nodes());
  }

  Graph graph_;
  InfluenceParams params_;
};

// The pinned determinism contract: per algorithm, per evaluator, for every
// work budget up to completion, the degraded result is either the exact
// seed prefix of the untimed run or the heuristic tier — never anything
// else — and re-running the same budget reproduces it bitwise.
TEST_F(DeadlineSolveTest, WorkBudgetDegradesToExactPrefixPerAlgorithm) {
  struct Case {
    const char* algorithm;
    SpreadOracle oracle;
    SketchEval eval;
  };
  const Case cases[] = {
      {"greedy", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
      {"celf", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
      {"greedy", SpreadOracle::kSketch, SketchEval::kScalar},
      {"greedy", SpreadOracle::kSketch, SketchEval::kBitParallel},
      {"celf", SpreadOracle::kSketch, SketchEval::kScalar},
      {"celf", SpreadOracle::kSketch, SketchEval::kBitParallel},
      {"celf++", SpreadOracle::kSketch, SketchEval::kBitParallel},
      {"easyim", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
      {"static-greedy", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
      {"tim+", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
      {"imm", SpreadOracle::kMonteCarlo, SketchEval::kBitParallel},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.algorithm) +
                 (c.oracle == SpreadOracle::kSketch
                      ? (c.eval == SketchEval::kScalar ? " sketch/scalar"
                                                      : " sketch/bitparallel")
                      : " mc"));
    SolveRequest untimed = BaseRequest(c.algorithm);
    untimed.oracle = c.oracle;
    untimed.sketch_eval = c.eval;
    untimed.num_sketches = 32;

    HolimEngine reference(graph_);
    auto full = reference.Solve(untimed);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_FALSE(full->degraded);
    ASSERT_EQ(full->tier, ResultTier::kFull);

    bool saw_prefix = false, saw_heuristic = false, completed = false;
    for (uint64_t budget = 1; budget <= 400 && !completed; ++budget) {
      SolveRequest bounded = untimed;
      bounded.work_budget = budget;
      HolimEngine engine(graph_);
      auto result = engine.Solve(bounded);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (!result->degraded) {
        // Budget outlived the solve: the result must be the untimed one.
        EXPECT_EQ(result->tier, ResultTier::kFull);
        EXPECT_EQ(result->seeds, full->seeds);
        EXPECT_EQ(result->seed_scores, full->seed_scores);
        completed = true;
        continue;
      }
      EXPECT_FALSE(result->degradation_reason.empty());
      if (result->tier == ResultTier::kHeuristic) {
        saw_heuristic = true;
        EXPECT_EQ(result->rounds_completed, 0u);
        EXPECT_FALSE(result->seeds.empty());
        ExpectValidSeeds(result->seeds);
      } else {
        ASSERT_EQ(result->tier, ResultTier::kPrefix);
        saw_prefix = true;
        ASSERT_EQ(result->rounds_completed, result->seeds.size());
        ASSERT_LE(result->seeds.size(), full->seeds.size());
        const std::vector<NodeId> expected(
            full->seeds.begin(),
            full->seeds.begin() + result->seeds.size());
        EXPECT_EQ(result->seeds, expected)
            << "degraded seeds are not the untimed prefix at budget "
            << budget;
      }
      // Bitwise reproducibility: same budget on a fresh engine, same bits.
      HolimEngine replay(graph_);
      auto again = replay.Solve(bounded);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(again->seeds, result->seeds);
      EXPECT_EQ(again->seed_scores, result->seed_scores);
      EXPECT_EQ(again->tier, result->tier);
      EXPECT_EQ(again->rounds_completed, result->rounds_completed);
      EXPECT_EQ(again->degradation_reason, result->degradation_reason);
    }
    EXPECT_TRUE(completed)
        << c.algorithm << ": no budget up to 400 let the solve finish";
    // Every algorithm must traverse at least one degraded tier on the way
    // up (a case that never degrades is not exercising the ladder).
    EXPECT_TRUE(saw_prefix || saw_heuristic) << c.algorithm;
  }
}

TEST_F(DeadlineSolveTest, ZeroDeadlineRequestIsByteIdenticalToDefault) {
  // deadline_ms = 0 / work_budget = 0 / no token must not perturb results
  // (the request carries no deadline at all).
  SolveRequest plain = BaseRequest("celf");
  plain.oracle = SpreadOracle::kSketch;
  plain.num_sketches = 32;
  SolveRequest zeroed = plain;
  zeroed.deadline_ms = 0.0;
  zeroed.work_budget = 0;
  zeroed.cancel_token = nullptr;
  zeroed.on_deadline = OnDeadline::kDegrade;
  HolimEngine a(graph_), b(graph_);
  auto ra = a.Solve(plain);
  auto rb = b.Solve(zeroed);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->seeds, rb->seeds);
  EXPECT_EQ(ra->seed_scores, rb->seed_scores);
  EXPECT_EQ(ra->spread, rb->spread);
  EXPECT_FALSE(rb->degraded);
}

TEST_F(DeadlineSolveTest, OnDeadlineFailReturnsTypedStatus) {
  SolveRequest request = BaseRequest("greedy");
  request.work_budget = 1;
  request.on_deadline = OnDeadline::kFail;
  HolimEngine engine(graph_);
  auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The engine stays usable: a clean solve afterwards matches a fresh
  // engine's bitwise.
  SolveRequest clean = BaseRequest("greedy");
  auto after = engine.Solve(clean);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  HolimEngine fresh(graph_);
  auto expected = fresh.Solve(clean);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->seeds, expected->seeds);
  EXPECT_EQ(after->seed_scores, expected->seed_scores);
}

TEST_F(DeadlineSolveTest, PreCancelledTokenDegradesWithCancelledReason) {
  CancelToken token;
  token.Cancel();
  SolveRequest request = BaseRequest("greedy");
  request.cancel_token = &token;
  HolimEngine engine(graph_);
  auto result = engine.Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->tier, ResultTier::kHeuristic);
  EXPECT_NE(result->degradation_reason.find("Cancelled"), std::string::npos)
      << result->degradation_reason;
  ExpectValidSeeds(result->seeds);

  request.on_deadline = OnDeadline::kFail;
  auto failed = engine.Solve(request);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);
}

TEST_F(DeadlineSolveTest, WallClockDeadlineDegradesToValidPrefix) {
  SolveRequest untimed = BaseRequest("greedy");
  HolimEngine reference(graph_);
  auto full = reference.Solve(untimed);
  ASSERT_TRUE(full.ok());

  // 1 ms per clock read against a 5 ms deadline: expiry lands after a
  // handful of checkpoints, wherever they fall — the contract is only
  // that the answer is a valid tier, not which one.
  SteppingClock clock(1'000'000);
  SolveRequest bounded = untimed;
  bounded.deadline_ms = 5.0;
  bounded.clock = &clock;
  HolimEngine engine(graph_);
  auto result = engine.Solve(bounded);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded);
  if (result->tier == ResultTier::kPrefix) {
    ASSERT_LE(result->seeds.size(), full->seeds.size());
    const std::vector<NodeId> expected(
        full->seeds.begin(), full->seeds.begin() + result->seeds.size());
    EXPECT_EQ(result->seeds, expected);
  } else {
    EXPECT_EQ(result->tier, ResultTier::kHeuristic);
    EXPECT_FALSE(result->seeds.empty());
  }
  ExpectValidSeeds(result->seeds);
}

TEST_F(DeadlineSolveTest, InvalidDeadlineMsRejected) {
  SolveRequest request = BaseRequest("greedy");
  request.deadline_ms = -1.0;
  HolimEngine engine(graph_);
  EXPECT_EQ(engine.Solve(request).status().code(),
            StatusCode::kInvalidArgument);
  request.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.Solve(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DeadlineSolveTest, DegradedSolveDoesNotPoisonWarmCache) {
  // A degraded run against a warm cached selector must retire the
  // artifact: the next clean solve matches a fresh engine's bitwise.
  SolveRequest request = BaseRequest("celf");
  request.oracle = SpreadOracle::kSketch;
  request.num_sketches = 32;
  HolimEngine engine(graph_);
  auto cold = engine.Solve(request);
  ASSERT_TRUE(cold.ok());

  SolveRequest bounded = request;
  bounded.work_budget = 40;  // enough to pass artifact build, die mid-select
  auto degraded = engine.Solve(bounded);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  auto warm = engine.Solve(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->seeds, cold->seeds);
  EXPECT_EQ(warm->seed_scores, cold->seed_scores);
  EXPECT_EQ(warm->spread, cold->spread);
  EXPECT_FALSE(warm->degraded);
}

TEST_F(DeadlineSolveTest, HardByteBudgetReturnsResourceExhausted) {
  EngineOptions options;
  options.max_cache_bytes = 1024;  // far below any sketch arena
  options.hard_cache_budget = true;
  HolimEngine engine(graph_, options);
  SolveRequest request = BaseRequest("celf");
  request.oracle = SpreadOracle::kSketch;
  request.num_sketches = 64;
  auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The engine survives: an artifact-light solve still succeeds.
  SolveRequest light = BaseRequest("degreediscount");
  auto ok = engine.Solve(light);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok->seeds.empty());
}

}  // namespace
}  // namespace holim

// Randomized churn fuzzing for the streaming-delta layer: a long seeded
// sequence of random batches is applied incrementally while a shadow
// oracle of every artifact is rebuilt from scratch each step; any
// divergence — in the graph, the sketch arenas, or the RR arena — fails
// the step it first appears at. Degenerate batch shapes (empty, duplicate
// edge, delete-then-reinsert, self-loop, remove-absent) get explicit
// cases of their own.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "algo/rr_sets.h"
#include "diffusion/sketch_oracle.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {
namespace {

SketchOptions Opts(uint32_t snapshots, uint64_t seed = 7) {
  SketchOptions options;
  options.num_snapshots = snapshots;
  options.seed = seed;
  return options;
}

// Shadow model of the edited graph: a plain (src, dst) -> p map mutated
// by naive op replay, rebuilt through GraphBuilder each step.
struct ShadowState {
  std::map<std::pair<NodeId, NodeId>, double> edges;

  void Replay(const GraphDelta& delta) {
    for (const GraphDeltaOp& op : delta.ops) {
      if (op.kind == GraphDeltaOp::Kind::kUpsert) {
        edges[{op.src, op.dst}] = op.probability;
      } else {
        edges.erase({op.src, op.dst});
      }
    }
  }

  Graph Rebuild(NodeId min_nodes) const {
    NodeId n = min_nodes;
    for (const auto& [edge, p] : edges) {
      n = std::max(n, std::max(edge.first, edge.second) + 1);
    }
    GraphBuilder builder(n);
    for (const auto& [edge, p] : edges) {
      builder.AddEdge(edge.first, edge.second);
    }
    return std::move(builder).Build().ValueOrDie();
  }
};

void ExpectGraphsEqual(const Graph& a, const Graph& b, int step) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "step " << step;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << "step " << step;
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.OutEdgeBegin(u), b.OutEdgeBegin(u))
        << "step " << step << " node " << u;
    const auto ra = a.OutNeighbors(u);
    const auto rb = b.OutNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(ra.begin(), ra.end()),
              std::vector<NodeId>(rb.begin(), rb.end()))
        << "step " << step << " node " << u;
    const auto ia = a.InEdgeIds(u);
    const auto ib = b.InEdgeIds(u);
    ASSERT_EQ(std::vector<EdgeId>(ia.begin(), ia.end()),
              std::vector<EdgeId>(ib.begin(), ib.end()))
        << "step " << step << " node " << u;
  }
}

void ExpectSketchEqual(const SketchOracle& patched, const SketchOracle& cold,
                       int step) {
  ASSERT_EQ(patched.ArenaBytes(), cold.ArenaBytes()) << "step " << step;
  const NodeId n = cold.graph().num_nodes();
  for (uint32_t s = 0; s < cold.num_snapshots(); ++s) {
    for (NodeId u = 0; u < n; ++u) {
      const auto a = patched.LiveTargets(s, u);
      const auto b = cold.LiveTargets(s, u);
      ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
                std::vector<NodeId>(b.begin(), b.end()))
          << "step " << step << " snapshot " << s << " node " << u;
    }
  }
  Rng probe(step + 1);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<NodeId> seeds;
    for (int i = 0; i < 4; ++i) {
      seeds.push_back(static_cast<NodeId>(probe.NextBounded(n)));
    }
    EXPECT_EQ(patched.Estimate(seeds, SketchEval::kScalar),
              cold.Estimate(seeds, SketchEval::kScalar))
        << "step " << step;
    EXPECT_EQ(patched.Estimate(seeds, SketchEval::kBitParallel),
              cold.Estimate(seeds, SketchEval::kBitParallel))
        << "step " << step;
  }
}

void ExpectRrEqual(const RrCollection& patched, const RrCollection& fresh,
                   int step) {
  ASSERT_EQ(patched.num_sets(), fresh.num_sets()) << "step " << step;
  ASSERT_EQ(patched.total_entries(), fresh.total_entries()) << "step " << step;
  ASSERT_EQ(patched.total_width(), fresh.total_width()) << "step " << step;
  for (std::size_t s = 0; s < fresh.num_sets(); ++s) {
    const auto a = patched.set(s);
    const auto b = fresh.set(s);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()))
        << "step " << step << " set " << s;
  }
  const auto sel_a = patched.SelectMaxCoverage(5);
  const auto sel_b = fresh.SelectMaxCoverage(5);
  EXPECT_EQ(sel_a.seeds, sel_b.seeds) << "step " << step;
  EXPECT_EQ(sel_a.covered_fraction, sel_b.covered_fraction) << "step " << step;
}

class StreamingFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingFuzzTest, RandomChurnMatchesShadowRebuild) {
  const int model_index = GetParam();
  const Graph base = GenerateErdosRenyi(120, 5.0, 17).ValueOrDie();
  InfluenceParams params;
  switch (model_index) {
    case 0: params = MakeUniformIc(base, 0.08); break;
    case 1: params = MakeWeightedCascade(base); break;
    default: params = MakeLinearThreshold(base); break;
  }

  ShadowState shadow;
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    const auto row = base.OutNeighbors(u);
    const EdgeId e = base.OutEdgeBegin(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      shadow.edges[{u, row[i]}] = params.p(e + i);
    }
  }

  StreamingGraph streaming(base);
  SketchOracle patched_sketch(base, params, Opts(64));
  RrCollection patched_rr(base, params, /*track_widths=*/true);
  patched_rr.GenerateParallel(800, 5);

  Rng rng(1000 + model_index);
  constexpr int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    const std::size_t batch = 1 + rng.NextBounded(24);
    const GraphDelta delta = MakeRandomDelta(streaming.graph(), batch, rng);
    auto resolved = streaming.Apply(delta);
    ASSERT_TRUE(resolved.ok()) << "step " << step << ": "
                               << resolved.status().message();
    shadow.Replay(delta);
    if (resolved->Empty()) continue;

    // Graph vs shadow GraphBuilder rebuild.
    const Graph expected = shadow.Rebuild(base.num_nodes());
    ExpectGraphsEqual(streaming.graph(), expected, step);

    auto next_params = ApplyDeltaToParams(streaming.previous(), params,
                                          streaming.graph(), *resolved);
    ASSERT_TRUE(next_params.ok()) << "step " << step;
    params = std::move(*next_params);
    // Params vs the shadow edge map (probabilities travel with edges).
    for (NodeId u = 0; u < streaming.graph().num_nodes(); ++u) {
      const auto row = streaming.graph().OutNeighbors(u);
      const EdgeId e = streaming.graph().OutEdgeBegin(u);
      for (std::size_t i = 0; i < row.size(); ++i) {
        ASSERT_EQ(params.p(e + i), shadow.edges.at({u, row[i]}))
            << "step " << step << " edge " << u << "->" << row[i];
      }
    }

    // Incremental sketch vs cold shadow rebuild.
    const Status sketch_status =
        patched_sketch.ApplyDelta(streaming.graph(), params);
    ASSERT_TRUE(sketch_status.ok()) << "step " << step << ": "
                                    << sketch_status.message();
    const SketchOracle cold_sketch(streaming.graph(), params, Opts(64));
    ExpectSketchEqual(patched_sketch, cold_sketch, step);

    // Incremental RR collection vs cold shadow replay.
    const Status rr_status = patched_rr.ApplyDelta(streaming.graph(), params);
    ASSERT_TRUE(rr_status.ok()) << "step " << step << ": "
                                << rr_status.message();
    RrCollection fresh_rr(streaming.graph(), params, /*track_widths=*/true);
    fresh_rr.GenerateParallel(800, 5);
    ExpectRrEqual(patched_rr, fresh_rr, step);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, StreamingFuzzTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Degenerate batches
// ---------------------------------------------------------------------------

TEST(StreamingDegenerateTest, EmptyDeltaIsNoOp) {
  const Graph base = GenerateErdosRenyi(40, 4.0, 3).ValueOrDie();
  StreamingGraph streaming(base);
  GraphDelta empty;
  auto resolved = streaming.Apply(empty);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->Empty());
  EXPECT_EQ(streaming.epoch(), 0u);
  EXPECT_EQ(&streaming.graph(), &base);
}

TEST(StreamingDegenerateTest, DuplicateEdgeLastOpWins) {
  const Graph base = GenerateErdosRenyi(40, 4.0, 3).ValueOrDie();
  GraphDelta delta;
  delta.Upsert(1, 2, 0.3);
  delta.Upsert(1, 2, 0.7);
  delta.Upsert(1, 2, 0.05);
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->upserts.size(), 1u);
  EXPECT_EQ(resolved->upserts[0].probability, 0.05);
}

TEST(StreamingDegenerateTest, DeleteThenReinsertInOneBatch) {
  const Graph base = GenerateErdosRenyi(60, 4.0, 9).ValueOrDie();
  const NodeId src = base.EdgeSource(0);
  const NodeId dst = base.EdgeTarget(0);
  const auto params = MakeUniformIc(base, 0.1);

  GraphDelta delta;
  delta.Remove(src, dst);
  delta.Upsert(src, dst, 0.42);  // last op wins: this is a reweight
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->removes.empty());
  ASSERT_EQ(resolved->upserts.size(), 1u);
  EXPECT_EQ(resolved->num_reweighted, 1u);

  StreamingGraph streaming(base);
  ASSERT_TRUE(streaming.ApplyResolved(*resolved).ok());
  // Same topology, new probability on the surviving edge.
  ASSERT_EQ(streaming.graph().num_edges(), base.num_edges());
  auto next_params =
      ApplyDeltaToParams(base, params, streaming.graph(), *resolved);
  ASSERT_TRUE(next_params.ok());
  const auto row = streaming.graph().OutNeighbors(src);
  const auto it = std::find(row.begin(), row.end(), dst);
  ASSERT_NE(it, row.end());
  const EdgeId e = streaming.graph().OutEdgeBegin(src) + (it - row.begin());
  EXPECT_EQ(next_params->p(e), 0.42);

  // The reverse order — upsert then remove — deletes the edge.
  GraphDelta reversed;
  reversed.Upsert(src, dst, 0.42);
  reversed.Remove(src, dst);
  auto resolved2 = ResolveDelta(base, reversed);
  ASSERT_TRUE(resolved2.ok());
  EXPECT_TRUE(resolved2->upserts.empty());
  ASSERT_EQ(resolved2->removes.size(), 1u);
}

TEST(StreamingDegenerateTest, SelfLoopRejectedAndStateUnchanged) {
  const Graph base = GenerateErdosRenyi(40, 4.0, 3).ValueOrDie();
  const auto params = MakeUniformIc(base, 0.1);
  StreamingGraph streaming(base);
  SketchOracle sketch(base, params, Opts(32));
  const std::size_t arena_before = sketch.ArenaBytes();

  GraphDelta bad;
  bad.Upsert(0, 1, 0.2);
  bad.Upsert(5, 5, 0.1);  // self-loop poisons the whole batch
  auto resolved = streaming.Apply(bad);
  EXPECT_FALSE(resolved.ok());
  EXPECT_EQ(streaming.epoch(), 0u);
  EXPECT_EQ(&streaming.graph(), &base);
  EXPECT_EQ(sketch.ArenaBytes(), arena_before);
}

TEST(StreamingDegenerateTest, RemoveAbsentEdgeIsDropped) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const Graph base = std::move(b).Build().ValueOrDie();
  GraphDelta delta;
  delta.Remove(2, 3);           // absent
  delta.Remove(1, 0);           // absent (reverse direction exists? no)
  delta.Remove(3, 1);           // absent
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->Empty());
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <set>

#include "diffusion/independent_cascade.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(IcSimulatorTest, ZeroProbabilityActivatesOnlySeeds) {
  Graph g = GenerateErdosRenyi(100, 5.0, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.0);
  IcSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {3, 7};
  const Cascade& cascade = sim.Run(seeds, rng);
  EXPECT_EQ(cascade.order.size(), 2u);
  EXPECT_EQ(cascade.SpreadCount(2), 0u);
}

TEST(IcSimulatorTest, FullProbabilityActivatesReachableSet) {
  Graph g = GenerateBarabasiAlbert(200, 2, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {0};
  const Cascade& cascade = sim.Run(seeds, rng);
  EXPECT_EQ(cascade.order.size(), ForwardReachableCount(g, {0}));
}

TEST(IcSimulatorTest, DuplicateSeedsActivatedOnce) {
  Graph g = GeneratePath(4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.0);
  IcSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {1, 1, 1};
  EXPECT_EQ(sim.Run(seeds, rng).order.size(), 1u);
}

TEST(IcSimulatorTest, StepsIncreaseAlongPath) {
  Graph g = GeneratePath(6).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {0};
  const Cascade& cascade = sim.Run(seeds, rng);
  ASSERT_EQ(cascade.order.size(), 6u);
  for (std::size_t i = 0; i < cascade.order.size(); ++i) {
    EXPECT_EQ(cascade.order[i].step, i);
    EXPECT_EQ(cascade.order[i].node, i);
  }
  EXPECT_EQ(cascade.order[0].via_edge, kSeedActivation);
}

TEST(IcSimulatorTest, ViaEdgeConnectsParentToChild) {
  Graph g = GenerateRandomTree(100, 3, 3).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {0};
  const Cascade& cascade = sim.Run(seeds, rng);
  for (const Activation& a : cascade.order) {
    if (a.via_edge == kSeedActivation) continue;
    EXPECT_EQ(g.EdgeTarget(a.via_edge), a.node);
  }
}

TEST(IcSimulatorTest, BlockedNodesNeverActivate) {
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  IcSimulator sim(g, params);
  EpochSet blocked(5);
  blocked.Reset(5);
  blocked.Insert(2);
  Rng rng(1);
  const NodeId seeds[] = {0};
  const Cascade& cascade = sim.RunWithBlocked(seeds, rng, blocked);
  // Path breaks at the blocked node: only 0, 1 activate.
  EXPECT_EQ(cascade.order.size(), 2u);
}

TEST(IcSimulatorTest, SimulatorReusableAcrossRuns) {
  Graph g = GenerateErdosRenyi(500, 4.0, 4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  IcSimulator sim(g, params);
  Rng rng(5);
  const NodeId seeds[] = {0};
  std::size_t total = 0;
  for (int i = 0; i < 100; ++i) total += sim.Run(seeds, rng).order.size();
  EXPECT_GE(total, 100u);  // at least the seed each run
}

TEST(IcSimulatorTest, DeterministicGivenSameRngState) {
  Graph g = GenerateErdosRenyi(300, 4.0, 6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  IcSimulator sim_a(g, params), sim_b(g, params);
  Rng rng_a(77), rng_b(77);
  const NodeId seeds[] = {5};
  for (int i = 0; i < 10; ++i) {
    const Cascade& ca = sim_a.Run(seeds, rng_a);
    const Cascade& cb = sim_b.Run(seeds, rng_b);
    ASSERT_EQ(ca.order.size(), cb.order.size());
    for (std::size_t j = 0; j < ca.order.size(); ++j) {
      EXPECT_EQ(ca.order[j].node, cb.order[j].node);
    }
  }
}

/// Monotonicity sweep: expected spread grows with p.
class IcMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(IcMonotonicityTest, SpreadGrowsWithProbability) {
  const double p = GetParam();
  Graph g = GenerateBarabasiAlbert(400, 3, 7).ValueOrDie();
  auto low = MakeUniformIc(g, p);
  auto high = MakeUniformIc(g, p + 0.2);
  IcSimulator sim_low(g, low), sim_high(g, high);
  Rng rng(8);
  const NodeId seeds[] = {0};
  double spread_low = 0, spread_high = 0;
  for (int i = 0; i < 400; ++i) {
    spread_low += sim_low.Run(seeds, rng).order.size();
    spread_high += sim_high.Run(seeds, rng).order.size();
  }
  EXPECT_LT(spread_low, spread_high);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, IcMonotonicityTest,
                         ::testing::Values(0.02, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <set>

#include "algo/heuristics.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace holim {
namespace {

TEST(DegreeTest, OrdersByOutDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 0);
  b.AddEdge(2, 1);
  b.AddEdge(2, 3);
  b.AddEdge(3, 0);
  b.AddEdge(3, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  DegreeSelector degree(g);
  auto selection = degree.Select(2).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 2u);  // degree 3
  EXPECT_EQ(selection.seeds[1], 3u);  // degree 2
}

TEST(SingleDiscountTest, DiscountsNeighborsOfSeeds) {
  // Hub 0 with 3 leaves; node 4 -> {1,2} (degree 2, but both are 0's
  // leaves). After picking 0, node 4's discounted degree drops to 0, so an
  // untouched degree-1 node wins next... construct: 5 -> 6.
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(4, 1);
  b.AddEdge(4, 2);
  b.AddEdge(5, 6);
  Graph g = std::move(b).Build().ValueOrDie();
  SingleDiscountSelector sd(g);
  auto selection = sd.Select(2).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
  // SingleDiscount discounts per selected *neighbor* (0's out-neighbors
  // lose degree units); node 4 is NOT 0's neighbor so keeps degree 2.
  EXPECT_EQ(selection.seeds[1], 4u);
}

TEST(DegreeDiscountTest, SpreadsSeedsAcrossRegions) {
  // Two cliques joined weakly; degree discount should not put both seeds
  // in the same clique.
  GraphBuilder b(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) b.AddEdge(u, v);
    }
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = 4; v < 8; ++v) {
      if (u != v) b.AddEdge(u, v);
    }
  }
  Graph g = std::move(b).Build().ValueOrDie();
  DegreeDiscountSelector dd(g, 0.5);
  auto selection = dd.Select(2).ValueOrDie();
  const bool spans = (selection.seeds[0] < 4) != (selection.seeds[1] < 4);
  EXPECT_TRUE(spans);
}

TEST(PageRankTest, RanksSumToOne) {
  Graph g = GenerateBarabasiAlbert(200, 3, 1).ValueOrDie();
  PageRankSelector pr(g);
  auto ranks = pr.ComputeRanks();
  double sum = 0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, InfluencerOutranksFollower) {
  // 0 -> 1, 0 -> 2, 0 -> 3: on the transposed graph mass flows to 0.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  PageRankSelector pr(g);
  auto selection = pr.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(RandomTest, ProducesDistinctValidSeeds) {
  Graph g = GenerateErdosRenyi(50, 2.0, 2).ValueOrDie();
  RandomSelector random(g, 7);
  auto selection = random.Select(20).ValueOrDie();
  std::set<NodeId> unique(selection.seeds.begin(), selection.seeds.end());
  EXPECT_EQ(unique.size(), 20u);
  for (NodeId s : selection.seeds) EXPECT_LT(s, 50u);
}

TEST(RandomTest, DeterministicInSeed) {
  Graph g = GenerateErdosRenyi(50, 2.0, 3).ValueOrDie();
  RandomSelector a(g, 9), b(g, 9), c(g, 10);
  EXPECT_EQ(a.Select(5).ValueOrDie().seeds, b.Select(5).ValueOrDie().seeds);
  EXPECT_NE(a.Select(5).ValueOrDie().seeds, c.Select(5).ValueOrDie().seeds);
}

TEST(HeuristicsTest, AllRejectBadK) {
  Graph g = GenerateErdosRenyi(10, 2.0, 4).ValueOrDie();
  EXPECT_FALSE(DegreeSelector(g).Select(0).ok());
  EXPECT_FALSE(SingleDiscountSelector(g).Select(11).ok());
  EXPECT_FALSE(DegreeDiscountSelector(g, 0.1).Select(0).ok());
  EXPECT_FALSE(PageRankSelector(g).Select(99).ok());
  EXPECT_FALSE(RandomSelector(g, 1).Select(0).ok());
}

TEST(HeuristicsTest, NamesStable) {
  Graph g = GenerateErdosRenyi(10, 2.0, 5).ValueOrDie();
  EXPECT_EQ(DegreeSelector(g).name(), "Degree");
  EXPECT_EQ(SingleDiscountSelector(g).name(), "SingleDiscount");
  EXPECT_EQ(DegreeDiscountSelector(g, 0.1).name(), "DegreeDiscountIC");
  EXPECT_EQ(PageRankSelector(g).name(), "PageRank");
  EXPECT_EQ(RandomSelector(g, 1).name(), "Random");
}

}  // namespace
}  // namespace holim

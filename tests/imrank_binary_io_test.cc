#include <gtest/gtest.h>

#include <cstdio>

#include "algo/imrank.h"
#include "diffusion/spread_estimator.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

// ------------------------------------------------------------- IMRank --

TEST(ImRankTest, HubWinsOnStar) {
  GraphBuilder b(10);
  for (NodeId leaf = 1; leaf < 10; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.4);
  ImRankSelector imrank(g, params);
  auto selection = imrank.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(ImRankTest, MassConservedByLfa) {
  // LFA only moves mass between nodes: the total must stay n.
  Graph g = GenerateBarabasiAlbert(200, 3, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  ImRankSelector imrank(g, params);
  std::vector<double> scores(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) scores[u] = g.OutDegree(u);
  auto mass = imrank.LastToFirstAllocation(scores);
  double total = 0;
  for (double m : mass) total += m;
  EXPECT_NEAR(total, static_cast<double>(g.num_nodes()), 1e-6);
}

TEST(ImRankTest, ConvergesQuickly) {
  Graph g = GenerateBarabasiAlbert(300, 3, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  ImRankSelector imrank(g, params);
  auto selection = imrank.Select(10).ValueOrDie();
  EXPECT_EQ(selection.seeds.size(), 10u);
  EXPECT_LE(imrank.last_iterations(), 20u);
}

TEST(ImRankTest, BeatsRandomOnSpread) {
  Graph g = GenerateBarabasiAlbert(400, 3, 3).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  ImRankSelector imrank(g, params);
  auto selection = imrank.Select(8).ValueOrDie();
  McOptions mc;
  mc.num_simulations = 2000;
  mc.seed = 4;
  const double imrank_spread = EstimateSpread(g, params, selection.seeds, mc);
  const double random_spread =
      EstimateSpread(g, params, {11, 57, 123, 199, 250, 301, 350, 390}, mc);
  EXPECT_GT(imrank_spread, random_spread);
}

TEST(ImRankTest, RejectsBadK) {
  Graph g = GeneratePath(3).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  ImRankSelector imrank(g, params);
  EXPECT_FALSE(imrank.Select(0).ok());
  EXPECT_FALSE(imrank.Select(4).ok());
}

// ---------------------------------------------------------- Binary IO --

TEST(BinaryIoTest, RoundTripGraphOnly) {
  Graph g = GenerateBarabasiAlbert(500, 3, 5).ValueOrDie();
  const std::string path = "/tmp/holim_bundle1.bin";
  ASSERT_TRUE(WriteGraphBundle(path, g).ok());
  auto bundle = ReadGraphBundle(path).ValueOrDie();
  EXPECT_EQ(bundle.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(bundle.graph.num_edges(), g.num_edges());
  // Edge ids preserved bit-for-bit.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(bundle.graph.EdgeSource(e), g.EdgeSource(e));
    EXPECT_EQ(bundle.graph.EdgeTarget(e), g.EdgeTarget(e));
  }
  EXPECT_TRUE(bundle.edge_probability.empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripWithParameters) {
  Graph g = GenerateErdosRenyi(200, 4.0, 6).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 7);
  const std::string path = "/tmp/holim_bundle2.bin";
  ASSERT_TRUE(WriteGraphBundle(path, g, &params.probability,
                               &opinions.opinion, &opinions.interaction)
                  .ok());
  auto bundle = ReadGraphBundle(path).ValueOrDie();
  ASSERT_EQ(bundle.edge_probability.size(), g.num_edges());
  ASSERT_EQ(bundle.node_opinion.size(), g.num_nodes());
  ASSERT_EQ(bundle.edge_interaction.size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(bundle.edge_probability[e], params.probability[e]);
    EXPECT_DOUBLE_EQ(bundle.edge_interaction[e], opinions.interaction[e]);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(bundle.node_opinion[u], opinions.opinion[u]);
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsBadMagic) {
  const std::string path = "/tmp/holim_bundle3.bin";
  {
    FILE* f = fopen(path.c_str(), "wb");
    const char junk[] = "definitely not a holim bundle";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
  }
  auto bundle = ReadGraphBundle(path);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  Graph g = GeneratePath(10).ValueOrDie();
  const std::string path = "/tmp/holim_bundle4.bin";
  ASSERT_TRUE(WriteGraphBundle(path, g).ok());
  // Truncate to half.
  {
    FILE* f = fopen(path.c_str(), "rb");
    fseek(f, 0, SEEK_END);
    const long size = ftell(f);
    fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(ReadGraphBundle(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIoError) {
  auto bundle = ReadGraphBundle("/tmp/definitely_missing_bundle.bin");
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, ParameterSizeMismatchRejectedOnWrite) {
  Graph g = GeneratePath(5).ValueOrDie();
  std::vector<double> wrong_size = {0.1, 0.2};  // graph has 4 edges
  EXPECT_FALSE(
      WriteGraphBundle("/tmp/holim_bundle5.bin", g, &wrong_size).ok());
  std::remove("/tmp/holim_bundle5.bin");
}

}  // namespace
}  // namespace holim

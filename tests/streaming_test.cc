#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "algo/rr_sets.h"
#include "engine/holim_engine.h"
#include "engine/workspace.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {
namespace {

SketchOptions Opts(uint32_t snapshots, uint64_t seed = 7,
                   bool record_edge_offsets = false) {
  SketchOptions options;
  options.num_snapshots = snapshots;
  options.seed = seed;
  options.record_edge_offsets = record_edge_offsets;
  return options;
}

Graph TestGraph(NodeId n = 200, uint64_t seed = 3) {
  return GenerateErdosRenyi(n, 6.0, seed).ValueOrDie();
}

// Naive reference semantics of a delta: replay ops in order (last wins)
// over an explicit (src, dst) -> p edge map.
std::map<std::pair<NodeId, NodeId>, double> EdgeMap(
    const Graph& graph, const InfluenceParams& params) {
  std::map<std::pair<NodeId, NodeId>, double> edges;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto row = graph.OutNeighbors(u);
    const EdgeId base = graph.OutEdgeBegin(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      edges[{u, row[i]}] = params.p(base + i);
    }
  }
  return edges;
}

void ReplayNaive(std::map<std::pair<NodeId, NodeId>, double>& edges,
                 const GraphDelta& delta) {
  for (const GraphDeltaOp& op : delta.ops) {
    if (op.kind == GraphDeltaOp::Kind::kUpsert) {
      edges[{op.src, op.dst}] = op.probability;
    } else {
      edges.erase({op.src, op.dst});
    }
  }
}

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.OutEdgeBegin(u), b.OutEdgeBegin(u)) << "node " << u;
    const auto ra = a.OutNeighbors(u);
    const auto rb = b.OutNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(ra.begin(), ra.end()),
              std::vector<NodeId>(rb.begin(), rb.end()))
        << "node " << u;
    const auto ia = a.InNeighbors(u);
    const auto ib = b.InNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(ia.begin(), ia.end()),
              std::vector<NodeId>(ib.begin(), ib.end()))
        << "node " << u;
    const auto ea = a.InEdgeIds(u);
    const auto eb = b.InEdgeIds(u);
    ASSERT_EQ(std::vector<EdgeId>(ea.begin(), ea.end()),
              std::vector<EdgeId>(eb.begin(), eb.end()))
        << "node " << u;
  }
}

// ---------------------------------------------------------------------------
// GraphDelta materialization
// ---------------------------------------------------------------------------

TEST(GraphDeltaTest, MaterializationMatchesGraphBuilderRebuild) {
  const Graph base = TestGraph();
  auto params = MakeUniformIc(base, 0.1);
  Rng rng(11);
  std::map<std::pair<NodeId, NodeId>, double> edges = EdgeMap(base, params);

  const GraphDelta delta = MakeRandomDelta(base, 80, rng);
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok()) << resolved.status().message();
  auto next = ApplyDeltaToGraph(base, *resolved);
  ASSERT_TRUE(next.ok()) << next.status().message();
  auto next_params = ApplyDeltaToParams(base, params, *next, *resolved);
  ASSERT_TRUE(next_params.ok()) << next_params.status().message();

  // Reference: naive op replay into an edge map, rebuilt via GraphBuilder.
  ReplayNaive(edges, delta);
  NodeId n = base.num_nodes();
  for (const auto& [edge, p] : edges) {
    n = std::max(n, std::max(edge.first, edge.second) + 1);
  }
  GraphBuilder builder(n);
  for (const auto& [edge, p] : edges) {
    builder.AddEdge(edge.first, edge.second);
  }
  Graph expected = std::move(builder).Build().ValueOrDie();
  ExpectGraphsEqual(*next, expected);

  // Params remap: edge (u, v) keeps / takes exactly the map's probability.
  ASSERT_EQ(next_params->probability.size(), next->num_edges());
  for (NodeId u = 0; u < next->num_nodes(); ++u) {
    const auto row = next->OutNeighbors(u);
    const EdgeId base_id = next->OutEdgeBegin(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(next_params->p(base_id + i), edges.at({u, row[i]}))
          << "edge " << u << "->" << row[i];
    }
  }
}

TEST(GraphDeltaTest, ResolveClassifiesAndNormalizes) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = std::move(b).Build().ValueOrDie();

  GraphDelta delta;
  delta.Upsert(0, 1, 0.5);   // reweight
  delta.Upsert(2, 3, 0.2);   // insert
  delta.Remove(1, 2);        // remove existing
  delta.Remove(3, 0);        // remove absent -> dropped
  delta.Upsert(2, 3, 0.3);   // last-wins over the earlier upsert
  auto resolved = ResolveDelta(g, delta);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->num_inserted, 1u);
  EXPECT_EQ(resolved->num_reweighted, 1u);
  ASSERT_EQ(resolved->removes.size(), 1u);
  EXPECT_EQ(resolved->removes[0].src, 1u);
  ASSERT_EQ(resolved->upserts.size(), 2u);
  EXPECT_EQ(resolved->upserts[1].probability, 0.3);
  EXPECT_EQ(resolved->new_num_nodes, 4u);
}

TEST(GraphDeltaTest, RejectsSelfLoopsAndBadProbabilities) {
  const Graph g = TestGraph(10);
  {
    GraphDelta delta;
    delta.Upsert(3, 3, 0.1);
    EXPECT_FALSE(ResolveDelta(g, delta).ok());
  }
  {
    GraphDelta delta;
    delta.Upsert(0, 1, 1.5);
    EXPECT_FALSE(ResolveDelta(g, delta).ok());
  }
  {
    GraphDelta delta;
    delta.Upsert(0, 1, std::numeric_limits<double>::quiet_NaN());
    EXPECT_FALSE(ResolveDelta(g, delta).ok());
  }
}

TEST(GraphDeltaTest, StreamingGraphEpochChain) {
  const Graph base = TestGraph(50, 9);
  StreamingGraph streaming(base);
  EXPECT_EQ(streaming.epoch(), 0u);
  EXPECT_EQ(&streaming.graph(), &base);

  GraphDelta empty;
  ASSERT_TRUE(streaming.Apply(empty).ok());
  EXPECT_EQ(streaming.epoch(), 0u);  // no-op deltas do not bump the epoch

  GraphDelta delta;
  delta.Upsert(0, 49, 0.15);
  auto resolved = streaming.Apply(delta);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(streaming.epoch(), 1u);
  EXPECT_EQ(&streaming.previous(), &base);
  EXPECT_EQ(streaming.base_fingerprint(), FingerprintGraph(base));
  EXPECT_NE(FingerprintGraph(streaming.graph()), FingerprintGraph(base));
}

// ---------------------------------------------------------------------------
// SketchOracle::ApplyDelta — incremental == cold rebuild, bitwise
// ---------------------------------------------------------------------------

enum class BatchShape { kInsertOnly, kDeleteOnly, kMixed };

GraphDelta MakeShapedDelta(const Graph& graph, BatchShape shape, Rng& rng) {
  if (shape == BatchShape::kMixed) return MakeRandomDelta(graph, 40, rng);
  GraphDelta delta;
  const NodeId n = graph.num_nodes();
  for (int i = 0; i < 30; ++i) {
    if (shape == BatchShape::kInsertOnly) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      delta.Upsert(u, v, rng.Uniform(0.05, 0.2));
    } else {
      const EdgeId e = rng.NextBounded(graph.num_edges());
      delta.Remove(graph.EdgeSource(e), graph.EdgeTarget(e));
    }
  }
  return delta;
}

void ExpectOraclesBitwiseEqual(const SketchOracle& patched,
                               const SketchOracle& cold, NodeId n) {
  ASSERT_EQ(patched.num_snapshots(), cold.num_snapshots());
  EXPECT_EQ(patched.ArenaBytes(), cold.ArenaBytes());
  // Per-snapshot live rows (the scalar arena, via the public view).
  for (uint32_t s = 0; s < cold.num_snapshots(); ++s) {
    for (NodeId u = 0; u < n; ++u) {
      const auto a = patched.LiveTargets(s, u);
      const auto b = cold.LiveTargets(s, u);
      ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
                std::vector<NodeId>(b.begin(), b.end()))
          << "snapshot " << s << " node " << u;
    }
  }
  // Estimates through both kernels: scalar reads the scalar arena, the
  // bit-parallel kernel reads the lane arena, so this pins both.
  Rng seed_rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<NodeId> seeds;
    for (int i = 0; i < 5; ++i) {
      seeds.push_back(static_cast<NodeId>(seed_rng.NextBounded(n)));
    }
    EXPECT_EQ(patched.Estimate(seeds, SketchEval::kScalar),
              cold.Estimate(seeds, SketchEval::kScalar));
    EXPECT_EQ(patched.Estimate(seeds, SketchEval::kBitParallel),
              cold.Estimate(seeds, SketchEval::kBitParallel));
    EXPECT_EQ(patched.Estimate(seeds, SketchEval::kScalar),
              cold.Estimate(seeds, SketchEval::kBitParallel));
  }
}

class SketchDeltaTest
    : public ::testing::TestWithParam<std::tuple<int, BatchShape>> {};

TEST_P(SketchDeltaTest, IncrementalEqualsColdRebuild) {
  const auto [model_index, shape] = GetParam();
  const Graph base = TestGraph();
  InfluenceParams params;
  switch (model_index) {
    case 0: params = MakeUniformIc(base, 0.08); break;
    case 1: params = MakeWeightedCascade(base); break;
    default: params = MakeLinearThreshold(base); break;
  }

  StreamingGraph streaming(base);
  SketchOracle patched(streaming.graph(), params, Opts(96));
  Rng rng(123 + model_index);
  for (int step = 0; step < 3; ++step) {
    const GraphDelta delta = MakeShapedDelta(streaming.graph(), shape, rng);
    auto resolved = ResolveDelta(streaming.graph(), delta);
    ASSERT_TRUE(resolved.ok()) << resolved.status().message();
    ASSERT_TRUE(streaming.ApplyResolved(*resolved).ok());
    auto next_params = ApplyDeltaToParams(streaming.previous(), params,
                                          streaming.graph(), *resolved);
    ASSERT_TRUE(next_params.ok()) << next_params.status().message();
    params = std::move(*next_params);

    const Status patched_status = patched.ApplyDelta(streaming.graph(), params);
    ASSERT_TRUE(patched_status.ok()) << patched_status.message();
    const SketchOracle cold(streaming.graph(), params, Opts(96));
    ExpectOraclesBitwiseEqual(patched, cold, streaming.graph().num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllShapes, SketchDeltaTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(BatchShape::kInsertOnly,
                                         BatchShape::kDeleteOnly,
                                         BatchShape::kMixed)));

TEST(SketchDeltaTest, RecordedEdgeOffsetsSurvivePatch) {
  const Graph base = TestGraph(120, 5);
  InfluenceParams params = MakeUniformIc(base, 0.1);
  StreamingGraph streaming(base);
  SketchOracle patched(base, params, Opts(64, 7, /*record_edge_offsets=*/true));
  Rng rng(42);
  const GraphDelta delta = MakeRandomDelta(base, 50, rng);
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok());
  ASSERT_TRUE(streaming.ApplyResolved(*resolved).ok());
  auto next_params = ApplyDeltaToParams(base, params, streaming.graph(),
                                        *resolved);
  ASSERT_TRUE(next_params.ok());
  ASSERT_TRUE(patched.ApplyDelta(streaming.graph(), *next_params).ok());
  const SketchOracle cold(streaming.graph(), *next_params,
                          Opts(64, 7, /*record_edge_offsets=*/true));
  ExpectOraclesBitwiseEqual(patched, cold, streaming.graph().num_nodes());
}

TEST(SketchDeltaTest, RejectsModelChangeAndSizeMismatch) {
  const Graph base = TestGraph(50, 2);
  const auto ic = MakeUniformIc(base, 0.1);
  SketchOracle oracle(base, ic, Opts(32));
  const auto lt = MakeLinearThreshold(base);
  EXPECT_FALSE(oracle.ApplyDelta(base, lt).ok());
  InfluenceParams short_params = ic;
  short_params.probability.pop_back();
  EXPECT_FALSE(oracle.ApplyDelta(base, short_params).ok());
  // The failed calls left the oracle untouched.
  const SketchOracle cold(base, ic, Opts(32));
  ExpectOraclesBitwiseEqual(oracle, cold, base.num_nodes());
}

// ---------------------------------------------------------------------------
// RrCollection::ApplyDelta — block replay == fresh generate, bitwise
// ---------------------------------------------------------------------------

void ExpectRrEqual(const RrCollection& patched, const RrCollection& fresh) {
  ASSERT_EQ(patched.num_sets(), fresh.num_sets());
  EXPECT_EQ(patched.total_entries(), fresh.total_entries());
  EXPECT_EQ(patched.total_width(), fresh.total_width());
  for (std::size_t s = 0; s < fresh.num_sets(); ++s) {
    const auto a = patched.set(s);
    const auto b = fresh.set(s);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()))
        << "set " << s;
  }
  const auto sel_a = patched.SelectMaxCoverage(10);
  const auto sel_b = fresh.SelectMaxCoverage(10);
  EXPECT_EQ(sel_a.seeds, sel_b.seeds);
  EXPECT_EQ(sel_a.covered_fraction, sel_b.covered_fraction);
}

TEST(RrDeltaTest, IncrementalEqualsFreshGenerate) {
  const Graph base = TestGraph();
  InfluenceParams params = MakeWeightedCascade(base);
  StreamingGraph streaming(base);
  RrCollection patched(base, params, /*track_widths=*/true);
  patched.GenerateParallel(1500, 99);
  ASSERT_TRUE(patched.replayable());

  Rng rng(17);
  for (int step = 0; step < 3; ++step) {
    const GraphDelta delta = MakeRandomDelta(streaming.graph(), 40, rng);
    auto resolved = ResolveDelta(streaming.graph(), delta);
    ASSERT_TRUE(resolved.ok());
    ASSERT_TRUE(streaming.ApplyResolved(*resolved).ok());
    auto next_params = ApplyDeltaToParams(streaming.previous(), params,
                                          streaming.graph(), *resolved);
    ASSERT_TRUE(next_params.ok());
    params = std::move(*next_params);

    const Status st = patched.ApplyDelta(streaming.graph(), params);
    ASSERT_TRUE(st.ok()) << st.message();
    RrCollection fresh(streaming.graph(), params, /*track_widths=*/true);
    fresh.GenerateParallel(1500, 99);
    ExpectRrEqual(patched, fresh);
    for (std::size_t s = 0; s < fresh.num_sets(); ++s) {
      ASSERT_EQ(patched.set_width(s), fresh.set_width(s)) << "set " << s;
    }
  }
}

TEST(RrDeltaTest, MultipleGenerateCallsReplay) {
  const Graph base = TestGraph(150, 8);
  InfluenceParams params = MakeUniformIc(base, 0.05);
  StreamingGraph streaming(base);
  RrCollection patched(base, params);
  patched.GenerateParallel(600, 1);
  patched.GenerateParallel(900, 2);  // second record, distinct seed

  Rng rng(5);
  const GraphDelta delta = MakeRandomDelta(base, 60, rng);
  auto resolved = ResolveDelta(base, delta);
  ASSERT_TRUE(resolved.ok());
  ASSERT_TRUE(streaming.ApplyResolved(*resolved).ok());
  auto next_params =
      ApplyDeltaToParams(base, params, streaming.graph(), *resolved);
  ASSERT_TRUE(next_params.ok());
  ASSERT_TRUE(patched.ApplyDelta(streaming.graph(), *next_params).ok());

  RrCollection fresh(streaming.graph(), *next_params);
  fresh.GenerateParallel(600, 1);
  fresh.GenerateParallel(900, 2);
  ExpectRrEqual(patched, fresh);
}

TEST(RrDeltaTest, SerialGenerateBlocksPatching) {
  const Graph base = TestGraph(50, 4);
  const auto params = MakeUniformIc(base, 0.1);
  RrCollection rr(base, params);
  Rng rng(3);
  rr.Generate(10, rng);
  EXPECT_FALSE(rr.replayable());
  EXPECT_FALSE(rr.ApplyDelta(base, params).ok());
  rr.Clear();
  EXPECT_TRUE(rr.replayable());  // Clear restores patchability
}

// ---------------------------------------------------------------------------
// Workspace key property: the (base fingerprint, delta epoch) token
// ---------------------------------------------------------------------------

TEST(WorkspaceDeltaTest, EmptyTokenKeepsLegacyKeyFormat) {
  EXPECT_EQ(SketchOracleKey(1, 2, 3, false),
            SketchOracleKey(1, 2, 3, false, ""));
  EXPECT_NE(SketchOracleKey(1, 2, 3, false),
            SketchOracleKey(1, 2, 3, false, "g=1@1"));
  EXPECT_NE(SketchOracleKey(1, 2, 3, false, "g=1@1"),
            SketchOracleKey(1, 2, 3, false, "g=1@2"));
}

TEST(WorkspaceDeltaTest, ApplyGraphDeltaPatchesMatchingSketchesOnly) {
  const Graph base = TestGraph(80, 6);
  const auto params = MakeUniformIc(base, 0.1);
  const auto other = MakeUniformIc(base, 0.2);
  Workspace workspace;
  workspace.GetSketchOracle(base, params, Opts(32, 1));
  workspace.GetSketchOracle(base, params, Opts(32, 2));  // second seed
  workspace.GetSketchOracle(base, other, Opts(32, 1));   // other fingerprint
  ASSERT_EQ(workspace.num_artifacts(), 3u);

  const uint64_t fp = FingerprintParams(params);
  const auto stats = workspace.ApplyGraphDelta(
      fp, fp, "g=7@1", [&](SketchOracle& sketch) {
        return sketch.ApplyDelta(base, params);  // no-op patch (same graph)
      });
  EXPECT_EQ(stats.patched, 2u);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(workspace.num_artifacts(), 2u);
  // The survivors moved to token-carrying keys: a token-less lookup
  // misses (builds fresh), a token lookup hits.
  bool reused = false;
  workspace.GetSketchOracle(base, params, Opts(32, 1), "g=7@1", &reused);
  EXPECT_TRUE(reused);
  workspace.GetSketchOracle(base, params, Opts(32, 2), "g=7@1", &reused);
  EXPECT_TRUE(reused);
}

// ---------------------------------------------------------------------------
// Engine: warm solve after ApplyDelta == cold engine on the mutated graph
// ---------------------------------------------------------------------------

SolveRequest StreamRequest(const InfluenceParams& params,
                           const std::string& algorithm = "celf") {
  SolveRequest request;
  request.algorithm = algorithm;
  request.k = 8;
  request.params = &params;
  request.oracle = SpreadOracle::kSketch;
  request.mc = 64;
  request.seed = 11;
  request.evaluate_spread = true;
  return request;
}

void ExpectSolvesEqual(const SolveResult& warm, const SolveResult& cold) {
  EXPECT_EQ(warm.seeds, cold.seeds);
  EXPECT_EQ(warm.seed_scores, cold.seed_scores);
  EXPECT_EQ(warm.spread, cold.spread);
  EXPECT_EQ(warm.sketch_arena_bytes, cold.sketch_arena_bytes);
}

TEST(EngineDeltaTest, WarmSolveAfterDeltaEqualsColdEngine) {
  const Graph base = TestGraph();
  InfluenceParams params = MakeWeightedCascade(base);
  HolimEngine engine(base);
  EXPECT_EQ(engine.graph_token(), "");
  auto first = engine.Solve(StreamRequest(params));
  ASSERT_TRUE(first.ok()) << first.status().message();

  Rng rng(31);
  InfluenceParams current = params;
  for (int step = 0; step < 3; ++step) {
    const GraphDelta delta = MakeRandomDelta(engine.graph(), 48, rng);
    auto report = engine.ApplyDelta(delta, current);
    ASSERT_TRUE(report.ok()) << report.status().message();
    ASSERT_TRUE(report->effective);
    EXPECT_EQ(report->epoch, static_cast<uint64_t>(step + 1));
    EXPECT_NE(engine.graph_token(), "");
    current = std::move(report->params);

    auto warm = engine.Solve(StreamRequest(current));
    ASSERT_TRUE(warm.ok()) << warm.status().message();
    HolimEngine cold_engine(engine.graph());
    auto cold = cold_engine.Solve(StreamRequest(current));
    ASSERT_TRUE(cold.ok()) << cold.status().message();
    ExpectSolvesEqual(*warm, *cold);
  }
}

TEST(EngineDeltaTest, SketchArtifactIsPatchedNotRebuilt) {
  const Graph base = TestGraph();
  InfluenceParams params = MakeUniformIc(base, 0.1);
  HolimEngine engine(base);
  auto first = engine.Solve(StreamRequest(params));
  ASSERT_TRUE(first.ok());

  GraphDelta delta;
  delta.Upsert(0, base.num_nodes() - 1, 0.15);
  auto report = engine.ApplyDelta(delta, params);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report->patched_sketches, 1u);  // the celf objective's arena
  // The warm solve reuses the patched arena under the new token.
  auto warm = engine.Solve(StreamRequest(report->params));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_sketch);
}

TEST(EngineDeltaTest, NoOpDeltaLeavesEngineUntouched) {
  const Graph base = TestGraph(60, 12);
  InfluenceParams params = MakeUniformIc(base, 0.1);
  HolimEngine engine(base);
  GraphDelta noop;
  noop.Remove(0, 59);  // absent edge
  auto report = engine.ApplyDelta(noop, params);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->effective);
  EXPECT_EQ(report->epoch, 0u);
  EXPECT_EQ(engine.graph_token(), "");
  EXPECT_EQ(&engine.graph(), &base);
  EXPECT_EQ(report->params.probability, params.probability);
}

// A delta that moves an edge under uniform IC keeps the params fingerprint
// identical (same m, same probabilities) — only the graph token separates
// the epochs. Before the token existed this warm-reused a stale arena.
TEST(EngineDeltaTest, FingerprintCollidingDeltaDoesNotReuseStaleArtifacts) {
  const Graph base = TestGraph();
  InfluenceParams params = MakeUniformIc(base, 0.1);
  HolimEngine engine(base);
  auto first = engine.Solve(StreamRequest(params));
  ASSERT_TRUE(first.ok());

  // Remove one existing edge, insert one absent edge at the same p.
  const EdgeId e = 0;
  const NodeId src = base.EdgeSource(e);
  const NodeId dst = base.EdgeTarget(e);
  NodeId new_dst = (dst + 1) % base.num_nodes();
  const auto row = base.OutNeighbors(src);
  while (new_dst == src ||
         std::find(row.begin(), row.end(), new_dst) != row.end()) {
    new_dst = (new_dst + 1) % base.num_nodes();
  }
  GraphDelta delta;
  delta.Remove(src, dst);
  delta.Upsert(src, new_dst, 0.1);
  auto report = engine.ApplyDelta(delta, params);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_TRUE(report->effective);
  ASSERT_EQ(FingerprintParams(report->params), FingerprintParams(params));

  auto warm = engine.Solve(StreamRequest(report->params));
  ASSERT_TRUE(warm.ok());
  HolimEngine cold_engine(engine.graph());
  auto cold = cold_engine.Solve(StreamRequest(report->params));
  ASSERT_TRUE(cold.ok());
  ExpectSolvesEqual(*warm, *cold);
}

// Latent-assumption audit: selectors that snapshot graph-shaped state at
// construction (StaticGreedy's sample, EaSyIM's sweep tables) must not
// serve a post-delta solve. ApplyDelta evicts them; a warm solve must
// equal a cold engine bitwise.
TEST(EngineDeltaTest, StatefulSelectorsDoNotLeakAcrossEpochs) {
  const Graph base = TestGraph();
  InfluenceParams params = MakeUniformIc(base, 0.1);
  for (const char* algorithm : {"staticgreedy", "easyim", "degreediscount"}) {
    HolimEngine engine(base);
    SolveRequest request = StreamRequest(params, algorithm);
    request.oracle = SpreadOracle::kMonteCarlo;
    request.mc = 32;
    auto first = engine.Solve(request);
    ASSERT_TRUE(first.ok()) << algorithm << ": " << first.status().message();

    Rng rng(71);
    const GraphDelta delta = MakeRandomDelta(base, 48, rng);
    auto report = engine.ApplyDelta(delta, params);
    ASSERT_TRUE(report.ok()) << report.status().message();
    ASSERT_TRUE(report->effective);

    SolveRequest warm_request = StreamRequest(report->params, algorithm);
    warm_request.oracle = SpreadOracle::kMonteCarlo;
    warm_request.mc = 32;
    auto warm = engine.Solve(warm_request);
    ASSERT_TRUE(warm.ok()) << algorithm << ": " << warm.status().message();
    HolimEngine cold_engine(engine.graph());
    auto cold = cold_engine.Solve(warm_request);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(warm->seeds, cold->seeds) << algorithm;
    EXPECT_EQ(warm->spread, cold->spread) << algorithm;
  }
}

}  // namespace
}  // namespace holim

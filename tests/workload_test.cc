// WorkloadGenerator / ZipfianSampler tests: bitwise stream determinism,
// the exactly-three-draws-per-item contract (replicated by hand against
// SplitMix64), sampler edge behavior, and skew sanity — the head tenant
// and head model must dominate a long stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serving/workload.h"
#include "util/rng.h"

namespace holim {
namespace {

WorkloadSpec BaseSpec() {
  WorkloadSpec spec;
  spec.num_tenants = 3;
  spec.tenant_exponent = 1.1;
  spec.model_exponent = 0.9;
  spec.models = {"IC", "WC", "LT"};
  spec.ks = {5, 10};
  spec.seed = 42;
  return spec;
}

TEST(ZipfianSamplerTest, BoundsAndMonotoneCdf) {
  ZipfianSampler sampler(5, 1.0);
  EXPECT_EQ(sampler.size(), 5u);
  EXPECT_EQ(sampler.Sample(0), 0u);  // u = 0 lands on the head rank
  // The largest raw maps to u just under 1.0 -> the tail rank.
  EXPECT_EQ(sampler.Sample(~uint64_t{0}), 4u);
  const auto& cdf = sampler.cdf();
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i], cdf[i - 1]);
  }
  // Zipf(1) head mass: 1 / H_5 = 1 / (1 + 1/2 + 1/3 + 1/4 + 1/5).
  EXPECT_NEAR(cdf[0], 1.0 / 2.283333333333333, 1e-12);
}

TEST(ZipfianSamplerTest, ExponentZeroIsUniform) {
  ZipfianSampler sampler(4, 0.0);
  const auto& cdf = sampler.cdf();
  EXPECT_NEAR(cdf[0], 0.25, 1e-12);
  EXPECT_NEAR(cdf[1], 0.50, 1e-12);
  EXPECT_NEAR(cdf[2], 0.75, 1e-12);
  EXPECT_EQ(cdf[3], 1.0);
}

TEST(WorkloadGeneratorTest, EqualSpecsProduceBitwiseIdenticalStreams) {
  WorkloadGenerator a(BaseSpec());
  WorkloadGenerator b(BaseSpec());
  for (int i = 0; i < 500; ++i) {
    const WorkloadItem x = a.Next();
    const WorkloadItem y = b.Next();
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.k, y.k);
  }
  EXPECT_EQ(a.count(), 500u);
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiverge) {
  WorkloadSpec other = BaseSpec();
  other.seed = 43;
  WorkloadGenerator a(BaseSpec());
  WorkloadGenerator b(other);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    const WorkloadItem x = a.Next();
    const WorkloadItem y = b.Next();
    if (x.tenant != y.tenant || x.model != y.model || x.k != y.k) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50);  // statistically certain at these sizes
}

TEST(WorkloadGeneratorTest, ConsumesExactlyThreeDrawsPerItem) {
  // Replicate the stream by hand: one SplitMix64 state seeded from
  // spec.seed, three draws per item in (tenant, model, k) order. Any
  // extra or reordered draw inside Next() breaks this item-for-item.
  const WorkloadSpec spec = BaseSpec();
  WorkloadGenerator gen(spec);
  uint64_t state = spec.seed;
  const ZipfianSampler tenants(spec.num_tenants, spec.tenant_exponent);
  const ZipfianSampler models(spec.models.size(), spec.model_exponent);
  for (uint64_t i = 0; i < 300; ++i) {
    const WorkloadItem item = gen.Next();
    EXPECT_EQ(item.id, i);
    const uint64_t raw_tenant = Rng::SplitMix64(state);
    const uint64_t raw_model = Rng::SplitMix64(state);
    const uint64_t raw_k = Rng::SplitMix64(state);
    EXPECT_EQ(item.tenant,
              static_cast<uint32_t>(tenants.Sample(raw_tenant)));
    EXPECT_EQ(item.model, spec.models[models.Sample(raw_model)]);
    EXPECT_EQ(item.k, spec.ks[raw_k % spec.ks.size()]);
  }
}

TEST(WorkloadGeneratorTest, SkewPutsTheHeadTenantAndModelOnTop) {
  WorkloadSpec spec = BaseSpec();
  spec.tenant_exponent = 1.4;
  spec.model_exponent = 1.2;
  WorkloadGenerator gen(spec);
  std::map<uint32_t, int> tenant_counts;
  std::map<std::string, int> model_counts;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const WorkloadItem item = gen.Next();
    ASSERT_LT(item.tenant, spec.num_tenants);
    ++tenant_counts[item.tenant];
    ++model_counts[item.model];
  }
  // Rank 0 dominates every other rank, and by a wide margin: Zipf(1.4)
  // over 3 tenants gives the head ~62% of the mass.
  EXPECT_GT(tenant_counts[0], tenant_counts[1]);
  EXPECT_GT(tenant_counts[1], tenant_counts[2]);
  EXPECT_GT(tenant_counts[0], n / 2);
  EXPECT_GT(model_counts["IC"], model_counts["WC"]);
  EXPECT_GT(model_counts["WC"], model_counts["LT"]);
}

}  // namespace
}  // namespace holim

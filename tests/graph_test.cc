#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "graph/edge_list_io.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace holim {
namespace {

Graph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  return std::move(b).Build().ValueOrDie();
}

TEST(GraphBuilderTest, BuildsCsr) {
  Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
}

TEST(GraphBuilderTest, UndirectedAddsBothArcs) {
  GraphBuilder b(2);
  b.AddUndirectedEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdgesAndSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);  // self loop
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, KeepsDuplicatesWhenDisabled) {
  GraphBuilder b(3);
  b.set_deduplicate(false);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  b.AddEdge(0, 5);
  auto result = std::move(b).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(4);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutNeighbors(2).empty());
}

TEST(GraphTest, EdgeIdsAreOutCsrPositions) {
  GraphBuilder b(4);
  b.AddEdge(1, 3);
  b.AddEdge(0, 2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  // Sorted by (src, dst): (0,1)=id0, (0,2)=id1, (1,3)=id2.
  EXPECT_EQ(g.OutEdgeBegin(0), 0u);
  EXPECT_EQ(g.OutEdgeBegin(1), 2u);
  EXPECT_EQ(g.EdgeTarget(0), 1u);
  EXPECT_EQ(g.EdgeTarget(1), 2u);
  EXPECT_EQ(g.EdgeSource(0), 0u);
  EXPECT_EQ(g.EdgeSource(2), 1u);
}

TEST(GraphTest, InEdgeIdsMatchOutEdges) {
  Graph g = Triangle();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto in_neighbors = g.InNeighbors(v);
    auto in_edges = g.InEdgeIds(v);
    ASSERT_EQ(in_neighbors.size(), in_edges.size());
    for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
      EXPECT_EQ(g.EdgeSource(in_edges[i]), in_neighbors[i]);
      EXPECT_EQ(g.EdgeTarget(in_edges[i]), v);
    }
  }
}

TEST(GraphTest, DegreesConsistent) {
  Graph g = Triangle();
  EdgeId out_sum = 0, in_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST(GraphTest, MemoryFootprintPositive) {
  Graph g = Triangle();
  EXPECT_GT(g.MemoryFootprintBytes(), 0u);
}

TEST(EdgeListIoTest, RoundTrip) {
  Graph g = Triangle();
  const std::string path = "/tmp/holim_graph_io_test.txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 3u);
  EXPECT_EQ(loaded->num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, SkipsCommentsAndRenumbers) {
  const std::string path = "/tmp/holim_graph_io_test2.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "# SNAP-style header\n%% another comment\n100 200\n200 300\n");
    fclose(f);
  }
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 3u);  // renumbered to 0..2
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, UndirectedOptionDoublesArcs) {
  const std::string path = "/tmp/holim_graph_io_test3.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "0 1\n");
    fclose(f);
  }
  EdgeListOptions options;
  options.undirected = true;
  auto loaded = ReadEdgeList(path, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, MissingFileIsIoError) {
  auto loaded = ReadEdgeList("/tmp/definitely_missing_holim.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(EdgeListIoTest, MalformedLineIsIoError) {
  const std::string path = "/tmp/holim_graph_io_test4.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "justone\n");
    fclose(f);
  }
  auto loaded = ReadEdgeList(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SubgraphTest, InducedSubgraphKeepsInternalEdges) {
  // 0->1->2->3 plus 0->3; induce on {0,1,3}.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(0, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto sub = ExtractInducedSubgraph(g, {0, 1, 3}).ValueOrDie();
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0->1 and 0->3 survive
  // Mappings are mutually inverse.
  for (NodeId s = 0; s < sub.graph.num_nodes(); ++s) {
    EXPECT_EQ(sub.to_subgraph[sub.to_original[s]], s);
  }
  EXPECT_EQ(sub.to_subgraph[2], kInvalidNode);
}

TEST(SubgraphTest, EdgeMappingPointsAtOriginalEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto sub = ExtractInducedSubgraph(g, {0, 1}).ValueOrDie();
  ASSERT_EQ(sub.graph.num_edges(), 1u);
  const EdgeId orig = sub.edge_to_original[0];
  EXPECT_EQ(g.EdgeSource(orig), 0u);
  EXPECT_EQ(g.EdgeTarget(orig), 1u);
}

TEST(SubgraphTest, ProjectsValues) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto sub = ExtractInducedSubgraph(g, {1, 2}).ValueOrDie();
  std::vector<double> node_vals = {10, 20, 30};
  auto projected = ProjectNodeValues(sub, node_vals);
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected[0], 20);
  EXPECT_EQ(projected[1], 30);
  std::vector<double> edge_vals = {0.5, 0.7};
  auto pe = ProjectEdgeValues(sub, edge_vals);
  ASSERT_EQ(pe.size(), 1u);
  EXPECT_EQ(pe[0], 0.7);  // the 1->2 edge
}

TEST(SubgraphTest, OutOfRangeNodeRejected) {
  Graph g = Triangle();
  auto sub = ExtractInducedSubgraph(g, {0, 9});
  EXPECT_FALSE(sub.ok());
}

TEST(SubgraphTest, DuplicateNodesDeduplicated) {
  Graph g = Triangle();
  auto sub = ExtractInducedSubgraph(g, {0, 0, 1, 1}).ValueOrDie();
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

}  // namespace
}  // namespace holim

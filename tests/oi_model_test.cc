#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/oi_model.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

/// The 4-node network of the paper's Figure 1 / Examples 1-2:
/// edges B->A (p=.1, phi=.7), B->C (p=.1, phi=.8), A->D (p=.8, phi=.9),
/// C->D (p=.9, phi=.1); opinions A=.8, B=0, C=.6, D=-.3.
struct Figure1Network {
  Graph graph;
  InfluenceParams influence;
  OpinionParams opinions;
  NodeId A = 0, B = 1, C = 2, D = 3;
};

Figure1Network MakeFigure1() {
  Figure1Network net;
  GraphBuilder b(4);
  b.AddEdge(1, 0);  // B->A
  b.AddEdge(1, 2);  // B->C
  b.AddEdge(0, 3);  // A->D
  b.AddEdge(2, 3);  // C->D
  net.graph = std::move(b).Build().ValueOrDie();
  net.influence.model = DiffusionModel::kIndependentCascade;
  net.influence.probability.resize(4);
  net.opinions.opinion = {0.8, 0.0, 0.6, -0.3};
  net.opinions.interaction.resize(4);
  // EdgeIds are (src,dst)-sorted: (0,3)=0, (1,0)=1, (1,2)=2, (2,3)=3.
  net.influence.probability[0] = 0.8;  // A->D
  net.influence.probability[1] = 0.1;  // B->A
  net.influence.probability[2] = 0.1;  // B->C
  net.influence.probability[3] = 0.9;  // C->D
  net.opinions.interaction[0] = 0.9;
  net.opinions.interaction[1] = 0.7;
  net.opinions.interaction[2] = 0.8;
  net.opinions.interaction[3] = 0.1;
  return net;
}

McOptions TightMc(uint32_t sims = 400000) {
  McOptions mc;
  mc.num_simulations = sims;
  mc.seed = 4242;
  return mc;
}

TEST(Figure1Test, PlainSpreadMatchesExample2) {
  auto net = MakeFigure1();
  // sigma(A)=0.8, sigma(B)=0.3628, sigma(C)=0.9, sigma(D)=0 (Example 2).
  McOptions mc = TightMc(200000);
  EXPECT_NEAR(EstimateSpread(net.graph, net.influence, {net.A}, mc), 0.8, 0.01);
  EXPECT_NEAR(EstimateSpread(net.graph, net.influence, {net.B}, mc), 0.3628,
              0.01);
  EXPECT_NEAR(EstimateSpread(net.graph, net.influence, {net.C}, mc), 0.9, 0.01);
  EXPECT_NEAR(EstimateSpread(net.graph, net.influence, {net.D}, mc), 0.0, 1e-12);
}

TEST(Figure1Test, OpinionSpreadMatchesExample2) {
  auto net = MakeFigure1();
  // sigma_o(A)=0.136, sigma_o(B)=-0.022564, sigma_o(C)=-0.351, sigma_o(D)=0.
  McOptions mc = TightMc();
  auto eA = EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                                  OiBase::kIndependentCascade, {net.A}, 1.0, mc);
  EXPECT_NEAR(eA.opinion_spread, 0.136, 0.005);
  // For B the paper reports -0.022564, but that value is not derivable from
  // the stated OI dynamics (see EXPERIMENTS.md): exact case analysis gives
  //   0.1*0.4 (A) + 0.1*0.3 (C) + D-terms ~= +0.0484.
  // A, C and D all match the paper exactly, so we assert the analytic value.
  auto eB = EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                                  OiBase::kIndependentCascade, {net.B}, 1.0, mc);
  EXPECT_NEAR(eB.opinion_spread, 0.0484, 0.005);
  auto eC = EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                                  OiBase::kIndependentCascade, {net.C}, 1.0, mc);
  EXPECT_NEAR(eC.opinion_spread, -0.351, 0.005);
  auto eD = EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                                  OiBase::kIndependentCascade, {net.D}, 1.0, mc);
  EXPECT_NEAR(eD.opinion_spread, 0.0, 1e-12);
}

TEST(Figure1Test, IcPicksCButOiPicksA) {
  // The paper's headline example: IC would choose C (max sigma), the OI
  // model chooses A (max sigma_o).
  auto net = MakeFigure1();
  McOptions mc = TightMc(100000);
  double best_sigma = -1e9, best_sigma_o = -1e9;
  NodeId ic_pick = 99, oi_pick = 99;
  for (NodeId u = 0; u < 4; ++u) {
    const double s = EstimateSpread(net.graph, net.influence, {u}, mc);
    if (s > best_sigma) {
      best_sigma = s;
      ic_pick = u;
    }
    const double so =
        EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                              OiBase::kIndependentCascade, {u}, 1.0, mc)
            .opinion_spread;
    if (so > best_sigma_o) {
      best_sigma_o = so;
      oi_pick = u;
    }
  }
  EXPECT_EQ(ic_pick, net.C);
  EXPECT_EQ(oi_pick, net.A);
}

TEST(OiSimulatorTest, SeedKeepsItsOpinion) {
  auto net = MakeFigure1();
  OiSimulator sim(net.graph, net.influence, net.opinions,
                  OiBase::kIndependentCascade);
  Rng rng(1);
  const NodeId seeds[] = {net.A};
  const OpinionCascade& oc = sim.Run(seeds, rng);
  EXPECT_DOUBLE_EQ(oc.final_opinion[0], 0.8);
}

TEST(OiSimulatorTest, PhiOneAveragesOpinions) {
  // Deterministic chain 0 -> 1 with p = 1, phi = 1:
  // o'_1 = (o_1 + o'_0) / 2 exactly, every run.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {0.9, -0.5};
  opinions.interaction = {1.0};
  OiSimulator sim(g, influence, opinions, OiBase::kIndependentCascade);
  Rng rng(2);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 20; ++i) {
    const OpinionCascade& oc = sim.Run(seeds, rng);
    ASSERT_EQ(oc.final_opinion.size(), 2u);
    EXPECT_DOUBLE_EQ(oc.final_opinion[1], (-0.5 + 0.9) / 2.0);
  }
}

TEST(OiSimulatorTest, PhiZeroAlwaysFlipsOrientation) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {0.9, -0.5};
  opinions.interaction = {0.0};
  OiSimulator sim(g, influence, opinions, OiBase::kIndependentCascade);
  Rng rng(3);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 20; ++i) {
    const OpinionCascade& oc = sim.Run(seeds, rng);
    EXPECT_DOUBLE_EQ(oc.final_opinion[1], (-0.5 - 0.9) / 2.0);
  }
}

TEST(OpinionCascadeTest, EffectiveSpreadPenalizesNegatives) {
  OpinionCascade oc;
  oc.num_seeds = 1;
  oc.final_opinion = {0.5, 0.4, -0.2};  // first entry is the seed
  EXPECT_DOUBLE_EQ(oc.OpinionSpread(), 0.2);
  EXPECT_DOUBLE_EQ(oc.EffectiveOpinionSpread(1.0), 0.2);
  EXPECT_DOUBLE_EQ(oc.EffectiveOpinionSpread(0.0), 0.4);
  EXPECT_DOUBLE_EQ(oc.EffectiveOpinionSpread(2.0), 0.0);
}

TEST(OiSimulatorTest, LtBaseRunsAndAverages) {
  // Chain with full LT weights: deterministic activation; each node has a
  // single active in-neighbor so the update matches the IC formula.
  Graph g;
  {
    GraphBuilder b(3);
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    g = std::move(b).Build().ValueOrDie();
  }
  InfluenceParams influence = MakeLinearThreshold(g);
  OpinionParams opinions;
  opinions.opinion = {1.0, 0.0, 0.0};
  opinions.interaction = {1.0, 1.0};
  OiSimulator sim(g, influence, opinions, OiBase::kLinearThreshold);
  Rng rng(4);
  const NodeId seeds[] = {0};
  const OpinionCascade& oc = sim.Run(seeds, rng);
  ASSERT_EQ(oc.final_opinion.size(), 3u);
  EXPECT_DOUBLE_EQ(oc.final_opinion[1], 0.5);   // (0 + 1)/2
  EXPECT_DOUBLE_EQ(oc.final_opinion[2], 0.25);  // (0 + 0.5)/2
}

TEST(OiSimulatorTest, DegenerateParamsReduceToPlainSpread) {
  // Lemma 1's reduction: o = 1, phi = 1 -> every activated node ends with
  // opinion in (0, 1] and opinion spread equals... (o_v + o'_u)/2 with all
  // initial opinions 1 gives o' = 1 for every node inductively.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions = MakeDegenerateOpinions(g);
  OiSimulator sim(g, influence, opinions, OiBase::kIndependentCascade);
  Rng rng(5);
  const NodeId seeds[] = {0};
  const OpinionCascade& oc = sim.Run(seeds, rng);
  EXPECT_DOUBLE_EQ(oc.OpinionSpread(),
                   static_cast<double>(oc.cascade->SpreadCount(1)));
}

TEST(OiSimulatorTest, SignedNetworkVoterModelIsSpecialCase) {
  // Paper Sec. 5 (2): with phi in {0,1} ("friend"/"foe" edges) and strong
  // opinions o in {-1,+1}, OI reproduces signed-network semantics: a friend
  // edge transmits the activator's orientation, a foe edge flips it.
  // Chain: seed(+1) -friend-> v1 -foe-> v2 -foe-> v3, all p = 1.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {1.0, 1.0, 1.0, -1.0};
  opinions.interaction = {1.0, 0.0, 0.0};  // friend, foe, foe
  OiSimulator sim(g, influence, opinions, OiBase::kIndependentCascade);
  Rng rng(21);
  const NodeId seeds[] = {0};
  const OpinionCascade& oc = sim.Run(seeds, rng);
  ASSERT_EQ(oc.final_opinion.size(), 4u);
  // v1: friend of a +1 activator with own +1 -> stays positive (+1).
  EXPECT_GT(oc.final_opinion[1], 0.0);
  EXPECT_DOUBLE_EQ(oc.final_opinion[1], 1.0);
  // v2: foe edge flips the incoming +1 -> (1 - 1)/2 = 0 (neutralized).
  EXPECT_DOUBLE_EQ(oc.final_opinion[2], 0.0);
  // v3: foe edge flips incoming 0, own -1 -> (-1 - 0)/2 < 0.
  EXPECT_LT(oc.final_opinion[3], 0.0);
}

TEST(OiSimulatorTest, StrongOpinionsStayInRange) {
  // |o'| <= 1 is an invariant of the averaging update for any phi.
  Graph g;
  {
    GraphBuilder b(50);
    for (NodeId u = 0; u + 1 < 50; ++u) b.AddEdge(u, u + 1);
    g = std::move(b).Build().ValueOrDie();
  }
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion.assign(50, 0.0);
  for (NodeId u = 0; u < 50; ++u) opinions.opinion[u] = (u % 2) ? 1.0 : -1.0;
  opinions.interaction.assign(g.num_edges(), 0.0);
  OiSimulator sim(g, influence, opinions, OiBase::kIndependentCascade);
  Rng rng(22);
  const NodeId seeds[] = {0};
  const OpinionCascade& oc = sim.Run(seeds, rng);
  for (double o : oc.final_opinion) {
    EXPECT_GE(o, -1.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(SpreadEstimatorTest, EmptySeedsGiveZero) {
  auto net = MakeFigure1();
  McOptions mc;
  mc.num_simulations = 10;
  EXPECT_EQ(EstimateSpread(net.graph, net.influence, {}, mc), 0.0);
  auto e = EstimateOpinionSpread(net.graph, net.influence, net.opinions,
                                 OiBase::kIndependentCascade, {}, 1.0, mc);
  EXPECT_EQ(e.opinion_spread, 0.0);
}

TEST(SpreadEstimatorTest, ResultIndependentOfThreadCount) {
  auto net = MakeFigure1();
  ThreadPool pool1(1), pool4(4);
  McOptions mc1, mc4;
  mc1.num_simulations = mc4.num_simulations = 50000;
  mc1.seed = mc4.seed = 9;
  mc1.pool = &pool1;
  mc4.pool = &pool4;
  const double s1 = EstimateSpread(net.graph, net.influence, {net.B}, mc1);
  const double s4 = EstimateSpread(net.graph, net.influence, {net.B}, mc4);
  // Shard seeds depend only on shard index; shard count differs between
  // pools, so allow statistical (not bitwise) agreement.
  EXPECT_NEAR(s1, s4, 0.02);
}

}  // namespace
}  // namespace holim

// Differential tests pinning the bit-parallel lane-mask kernel to the
// scalar per-snapshot reference: both traversals walk the SAME sampled
// worlds, so every estimator must agree BITWISE (integer reach counts and
// level counts divided once; the opinion replay visits the identical
// (v, e) sequence). Snapshot counts straddle the 64-lane word boundary on
// purpose: R = 1 (single partial word), 63/64/65 (full word +/- one lane),
// and 200 (the bench workload's multi-group shape, 3 full words + partial).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "diffusion/sketch_oracle.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

constexpr uint32_t kWordBoundaryCounts[] = {1, 63, 64, 65, 200};

SketchOptions Opts(uint32_t snapshots, uint64_t seed = 7,
                   bool record_edge_offsets = false) {
  SketchOptions options;
  options.num_snapshots = snapshots;
  options.seed = seed;
  options.record_edge_offsets = record_edge_offsets;
  return options;
}

std::vector<InfluenceParams> AllModels(const Graph& g) {
  return {MakeUniformIc(g, 0.3), MakeWeightedCascade(g),
          MakeLinearThreshold(g)};
}

// One-shot Estimate: every model, every word-boundary snapshot count,
// several seed-set shapes (singleton, spread-out set, duplicates — the
// scalar path dedups seeds via its visited set, the lanes path via
// all-zero fresh masks; both must subtract R * |seeds| identically).
TEST(SketchBitParallelTest, EstimateBitwiseEqualsScalar) {
  Graph g = GenerateBarabasiAlbert(120, 3, 11).ValueOrDie();
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {5, 41, 99}, {7, 7, 23}, {119}};
  for (const auto& params : AllModels(g)) {
    for (uint32_t r : kWordBoundaryCounts) {
      SketchOracle oracle(g, params, Opts(r));
      for (const auto& seeds : seed_sets) {
        EXPECT_EQ(oracle.Estimate(seeds, SketchEval::kBitParallel),
                  oracle.Estimate(seeds, SketchEval::kScalar))
            << "model=" << static_cast<int>(params.model) << " R=" << r;
      }
    }
  }
}

// Persistent sessions: twin sessions (one per eval mode) driven through
// the same probe/commit script must report bitwise-equal marginal gains,
// commit gains, and running spreads — and both must stay bitwise equal to
// one-shot Estimate of the committed prefix in BOTH eval modes (the
// activate-once pruning may never change a value).
TEST(SketchBitParallelTest, SessionBitwiseEqualsScalarSession) {
  Graph g = GenerateBarabasiAlbert(100, 3, 19).ValueOrDie();
  const std::vector<NodeId> commits = {4, 17, 52, 4, 88};  // incl. re-commit
  const std::vector<NodeId> probes = {0, 9, 33, 61, 99};
  for (const auto& params : AllModels(g)) {
    for (uint32_t r : kWordBoundaryCounts) {
      SketchOracle oracle(g, params, Opts(r, 13));
      SketchOracle::Session lanes(oracle, SketchEval::kBitParallel);
      SketchOracle::Session scalar(oracle, SketchEval::kScalar);
      std::vector<NodeId> prefix;
      for (NodeId u : commits) {
        for (NodeId p : probes) {
          EXPECT_EQ(lanes.MarginalGain(p), scalar.MarginalGain(p));
        }
        EXPECT_EQ(lanes.Commit(u), scalar.Commit(u));
        prefix.push_back(u);
        const double spread = lanes.Spread();
        EXPECT_EQ(spread, scalar.Spread());
        EXPECT_EQ(spread, oracle.Estimate(prefix, SketchEval::kBitParallel));
        EXPECT_EQ(spread, oracle.Estimate(prefix, SketchEval::kScalar));
      }
      lanes.Reset();
      scalar.Reset();
      EXPECT_EQ(lanes.MarginalGain(commits[0]),
                scalar.MarginalGain(commits[0]));
    }
  }
}

// IC-N positive spread: both modes accumulate the same integer
// per-distance activation counts and share one q-polynomial fold.
TEST(SketchBitParallelTest, IcnPositiveBitwiseEqualsScalar) {
  Graph g = GenerateBarabasiAlbert(90, 3, 29).ValueOrDie();
  const std::vector<NodeId> seeds = {2, 31, 74};
  for (const auto& params : AllModels(g)) {
    for (uint32_t r : kWordBoundaryCounts) {
      SketchOracle oracle(g, params, Opts(r, 5));
      for (double q : {0.0, 0.37, 0.5, 1.0}) {
        EXPECT_EQ(
            oracle.EstimateIcnPositive(seeds, q, SketchEval::kBitParallel),
            oracle.EstimateIcnPositive(seeds, q, SketchEval::kScalar))
            << "model=" << static_cast<int>(params.model) << " R=" << r
            << " q=" << q;
      }
    }
  }
}

// Opinion replay (IC base): the lane arena stores union entries in the
// same EdgeId-ascending per-source order every scalar snapshot uses, so
// the lane-filtered replay visits the identical (v, e) sequence and all
// three accumulated figures match bitwise.
TEST(SketchBitParallelTest, OpinionReplayBitwiseEqualsScalar) {
  Graph g = GenerateBarabasiAlbert(80, 3, 37).ValueOrDie();
  auto params = MakeUniformIc(g, 0.35);
  OpinionParams opinions = MakeRandomOpinions(
      g, OpinionDistribution::kStandardNormal, /*seed=*/17);
  const std::vector<NodeId> seeds = {1, 40, 66};
  for (uint32_t r : kWordBoundaryCounts) {
    SketchOracle oracle(g, params, Opts(r, 3, /*record_edge_offsets=*/true));
    for (double lambda : {0.5, 1.0}) {
      auto lanes =
          oracle.EstimateOpinion(opinions, OiBase::kIndependentCascade, seeds,
                                 lambda, SketchEval::kBitParallel);
      auto scalar =
          oracle.EstimateOpinion(opinions, OiBase::kIndependentCascade, seeds,
                                 lambda, SketchEval::kScalar);
      EXPECT_EQ(lanes.opinion_spread, scalar.opinion_spread);
      EXPECT_EQ(lanes.effective_opinion_spread,
                scalar.effective_opinion_spread);
      EXPECT_EQ(lanes.plain_spread, scalar.plain_spread);
    }
  }
}

// Session-CELF under the bit-parallel kernel picks exactly the seeds of
// eager frozen greedy (one-shot evaluations, no session) — gains on the
// static sample stay exactly submodular integers, so CELF's lazy bound
// never misranks — and exactly the seeds of the scalar-session CELF.
TEST(SketchBitParallelTest, CelfBitParallelMatchesEagerFrozenGreedy) {
  Graph g = GenerateBarabasiAlbert(70, 2, 15).ValueOrDie();
  auto params = MakeUniformIc(g, 0.25);
  auto oracle = std::make_shared<const SketchOracle>(g, params, Opts(65, 3));

  auto eager_objective = std::make_shared<SketchSpreadObjective>(
      oracle, /*use_session=*/false, SketchEval::kBitParallel);
  GreedySelector eager(g, eager_objective, "eager-frozen");
  auto eager_sel = eager.Select(6).ValueOrDie();

  auto lanes_objective = std::make_shared<SketchSpreadObjective>(
      oracle, /*use_session=*/true, SketchEval::kBitParallel);
  CelfSelector lanes_celf(g, lanes_objective, /*plus_plus=*/false,
                          "CELF-bitparallel");
  auto lanes_sel = lanes_celf.Select(6).ValueOrDie();
  EXPECT_EQ(eager_sel.seeds, lanes_sel.seeds);

  auto scalar_objective = std::make_shared<SketchSpreadObjective>(
      oracle, /*use_session=*/true, SketchEval::kScalar);
  CelfSelector scalar_celf(g, scalar_objective, /*plus_plus=*/false,
                           "CELF-scalar");
  auto scalar_sel = scalar_celf.Select(6).ValueOrDie();
  EXPECT_EQ(scalar_sel.seeds, lanes_sel.seeds);
  EXPECT_EQ(scalar_sel.seed_scores, lanes_sel.seed_scores);
  // Identical gains mean identical lazy-queue behavior, evaluation for
  // evaluation.
  EXPECT_EQ(scalar_celf.last_evaluation_count(),
            lanes_celf.last_evaluation_count());
}

}  // namespace
}  // namespace holim

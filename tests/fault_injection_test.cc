// Fault-injection units and the randomized mid-solve fault fuzz.
//
// The fuzz learns a solve's failure surface with ScopedFaultRecorder,
// then re-runs the scenario failing each recorded site (and each deadline
// checkpoint) in turn, asserting the three survival invariants: the solve
// returns a Status instead of crashing, the engine remains usable, and
// the next clean solve is bitwise equal to a fresh engine's. Run under
// ASan/UBSan in CI, this is also the leak/UB gate for every early-exit
// path the deadline layer added.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace holim {
namespace {

TEST(FaultInjectionUnitTest, UnarmedHitIsOkAndCheap) {
  EXPECT_FALSE(FaultInjection::armed());
  EXPECT_TRUE(FaultInjection::Hit("anything/at/all").ok());
}

TEST(FaultInjectionUnitTest, FailsExactlyTheNthMatchingHit) {
  ScopedFaultInjection plan("alloc/", 2, StatusCode::kResourceExhausted);
  EXPECT_TRUE(FaultInjection::armed());
  EXPECT_TRUE(FaultInjection::Hit("alloc/a").ok());   // 1st: passes
  EXPECT_TRUE(FaultInjection::Hit("other/b").ok());   // prefix mismatch
  const Status second = FaultInjection::Hit("alloc/b");
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(FaultInjection::Hit("alloc/c").ok());   // one-shot plan
  EXPECT_EQ(plan.hits(), 3u);
  EXPECT_TRUE(plan.fired());
}

TEST(FaultInjectionUnitTest, DisarmsAtScopeExit) {
  {
    ScopedFaultInjection plan("x/", 1, StatusCode::kIOError);
    EXPECT_FALSE(FaultInjection::Hit("x/y").ok());
  }
  EXPECT_FALSE(FaultInjection::armed());
  EXPECT_TRUE(FaultInjection::Hit("x/y").ok());
}

TEST(FaultInjectionUnitTest, RecorderCapturesHitOrder) {
  ScopedFaultRecorder recorder;
  EXPECT_TRUE(FaultInjection::Hit("a").ok());  // recording injects nothing
  EXPECT_TRUE(FaultInjection::Hit("b").ok());
  EXPECT_TRUE(FaultInjection::Hit("a").ok());
  const std::vector<std::string> expected = {"a", "b", "a"};
  EXPECT_EQ(recorder.sites(), expected);
}

class FaultFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateBarabasiAlbert(150, 2, 7).ValueOrDie();
    params_ = MakeUniformIc(graph_, 0.1);
  }

  SolveRequest MakeRequest(const std::string& algorithm,
                           SpreadOracle oracle) const {
    SolveRequest request;
    request.algorithm = algorithm;
    request.k = 3;
    request.params = &params_;
    request.l = 2;
    request.epsilon = 0.3;
    request.max_theta = 20000;
    request.mc = 16;
    request.seed = 7;
    request.oracle = oracle;
    request.num_sketches = 32;
    return request;
  }

  /// The three survival invariants after any injected failure.
  void ExpectEngineSurvives(HolimEngine& engine, const SolveRequest& clean) {
    auto after = engine.Solve(clean);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    HolimEngine fresh(graph_);
    auto expected = fresh.Solve(clean);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_EQ(after->seeds, expected->seeds);
    EXPECT_EQ(after->seed_scores, expected->seed_scores);
    EXPECT_EQ(after->spread, expected->spread);
  }

  Graph graph_;
  InfluenceParams params_;
};

// Enumerate each scenario's failure surface, then fail every site in turn.
TEST_F(FaultFuzzTest, EverySiteFailureLeavesEngineUsableAndClean) {
  struct Scenario {
    const char* algorithm;
    SpreadOracle oracle;
  };
  const Scenario scenarios[] = {
      {"celf", SpreadOracle::kSketch},
      {"greedy", SpreadOracle::kSketch},
      {"easyim", SpreadOracle::kMonteCarlo},
      {"tim+", SpreadOracle::kMonteCarlo},
      {"static-greedy", SpreadOracle::kMonteCarlo},
  };
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.algorithm);
    const SolveRequest request = MakeRequest(s.algorithm, s.oracle);

    std::vector<std::string> sites;
    {
      ScopedFaultRecorder recorder;
      HolimEngine probe(graph_);
      auto ok = probe.Solve(request);
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      sites = recorder.sites();
    }

    for (std::size_t i = 0; i < sites.size(); ++i) {
      SCOPED_TRACE("failing hit " + std::to_string(i + 1) + " (" +
                   sites[i] + ")");
      HolimEngine engine(graph_);
      {
        ScopedFaultInjection plan("", i + 1,
                                  StatusCode::kResourceExhausted);
        auto result = engine.Solve(request);
        ASSERT_TRUE(plan.fired());
        // No crash, and the failure surfaces as the injected typed error.
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      }
      ExpectEngineSurvives(engine, request);
    }
  }
}

// Randomized variant: random deadline checkpoints fire mid-solve across
// the registry's deadline-aware algorithms; any outcome is legal except a
// crash, a malformed degraded result, or a poisoned engine.
TEST_F(FaultFuzzTest, RandomDeadlineFaultsMidSolveAcrossRegistry) {
  const char* algorithms[] = {"greedy", "celf",   "celf++",       "easyim",
                              "tim+",   "imm",    "static-greedy"};
  Rng rng(0xFA11FA11ULL);
  for (int trial = 0; trial < 60; ++trial) {
    const char* algorithm =
        algorithms[rng.Next64() % (sizeof(algorithms) / sizeof(*algorithms))];
    const SpreadOracle oracle = (rng.Next64() & 1) != 0
                                    ? SpreadOracle::kSketch
                                    : SpreadOracle::kMonteCarlo;
    SolveRequest request = MakeRequest(algorithm, oracle);
    request.work_budget = 1 + rng.Next64() % 64;
    SCOPED_TRACE(std::string(algorithm) + " budget=" +
                 std::to_string(request.work_budget) +
                 (oracle == SpreadOracle::kSketch ? " sketch" : " mc"));

    HolimEngine engine(graph_);
    auto result = engine.Solve(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->degraded) {
      EXPECT_NE(result->tier, ResultTier::kFull);
      EXPECT_FALSE(result->degradation_reason.empty());
      if (result->tier == ResultTier::kHeuristic) {
        EXPECT_EQ(result->rounds_completed, 0u);
      } else {
        EXPECT_EQ(result->rounds_completed, result->seeds.size());
      }
      for (const NodeId seed : result->seeds) {
        EXPECT_LT(seed, graph_.num_nodes());
      }
    }

    SolveRequest clean = MakeRequest(algorithm, oracle);
    ExpectEngineSurvives(engine, clean);
  }
}

}  // namespace
}  // namespace holim

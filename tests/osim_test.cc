#include <gtest/gtest.h>

#include <cmath>

#include "algo/easyim.h"
#include "algo/osim.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

std::vector<double> OsimScores(const Graph& g, const InfluenceParams& influence,
                               const OpinionParams& opinions, uint32_t l) {
  OsimScorer scorer(g, influence, opinions, l);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  return scores;
}

/// Closed-form expected opinion spread of seeding u0 on a directed path,
/// derived from Lemma 8: expected final opinion of u_i given activation is
///   E[o'_{u_i}] = o_{u_i}/2 + psi_{i-1} E[o'_{u_{i-1}}],   E[o'_{u_0}] = o_0,
/// with psi_e = (2 phi_e - 1)/2; activation of u_i happens w.p. prod p_j.
double PathOpinionSpreadClosedForm(const std::vector<double>& o,
                                   const std::vector<double>& p,
                                   const std::vector<double>& phi) {
  const std::size_t len = p.size();
  double expected_opinion = o[0];
  double reach_prob = 1.0;
  double total = 0.0;
  for (std::size_t i = 1; i <= len; ++i) {
    const double psi = (2.0 * phi[i - 1] - 1.0) / 2.0;
    expected_opinion = o[i] / 2.0 + psi * expected_opinion;
    reach_prob *= p[i - 1];
    total += reach_prob * expected_opinion;
  }
  return total;
}

TEST(OsimTest, Lemma9PathScoreEqualsClosedForm) {
  // Lemma 9: Delta_l(u0) == sigma_o({u0}) for a path, lambda = 1.
  const std::vector<double> o = {0.8, -0.3, 0.5, 0.1};
  const std::vector<double> p = {0.7, 0.4, 0.9};
  const std::vector<double> phi = {0.9, 0.2, 0.6};
  GraphBuilder b(4);
  for (NodeId u = 0; u < 3; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence;
  influence.model = DiffusionModel::kIndependentCascade;
  influence.probability = p;
  OpinionParams opinions;
  opinions.opinion = o;
  opinions.interaction = phi;

  auto scores = OsimScores(g, influence, opinions, 3);
  EXPECT_NEAR(scores[0], PathOpinionSpreadClosedForm(o, p, phi), 1e-12);
  // Suffix paths too.
  EXPECT_NEAR(scores[1],
              PathOpinionSpreadClosedForm({o[1], o[2], o[3]}, {p[1], p[2]},
                                          {phi[1], phi[2]}),
              1e-12);
  EXPECT_NEAR(scores[3], 0.0, 1e-12);
}

TEST(OsimTest, PathScoreMatchesMonteCarlo) {
  const std::vector<double> o = {0.6, -0.8, 0.9};
  const std::vector<double> p = {0.5, 0.7};
  const std::vector<double> phi = {0.3, 0.85};
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence;
  influence.model = DiffusionModel::kIndependentCascade;
  influence.probability = p;
  OpinionParams opinions;
  opinions.opinion = o;
  opinions.interaction = phi;
  auto scores = OsimScores(g, influence, opinions, 2);
  McOptions mc;
  mc.num_simulations = 400000;
  mc.seed = 11;
  auto estimate = EstimateOpinionSpread(
      g, influence, opinions, OiBase::kIndependentCascade, {0}, 1.0, mc);
  EXPECT_NEAR(scores[0], estimate.opinion_spread, 0.01);
}

TEST(OsimTest, DegenerateOpinionsRankLikeEasyIm) {
  // With o = 1, phi = 1 the MEO instance reduces to IM (Lemma 1); OSIM's
  // ranking should match EaSyIM's on any graph.
  Graph g = GenerateBarabasiAlbert(400, 3, 12).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeDegenerateOpinions(g);
  auto osim = OsimScores(g, influence, opinions, 3);

  EasyImScorer easy(g, influence, 3);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> easy_scores;
  easy.AssignScores(excluded, &easy_scores);

  // Same argmax and strong rank correlation on the top nodes.
  NodeId best_osim = 0, best_easy = 0;
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    if (osim[u] > osim[best_osim]) best_osim = u;
    if (easy_scores[u] > easy_scores[best_easy]) best_easy = u;
  }
  EXPECT_EQ(best_osim, best_easy);
}

TEST(OsimTest, Figure1RanksAFirst) {
  // On the paper's Figure 1 network, OSIM must rank A above B, C, D
  // (Example 2: sigma_o(A) = 0.136 is the unique positive value).
  GraphBuilder b(4);
  b.AddEdge(1, 0);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence;
  influence.model = DiffusionModel::kIndependentCascade;
  influence.probability = {0.8, 0.1, 0.1, 0.9};  // (0,3),(1,0),(1,2),(2,3)
  OpinionParams opinions;
  opinions.opinion = {0.8, 0.0, 0.6, -0.3};
  opinions.interaction = {0.9, 0.7, 0.8, 0.1};
  auto scores = OsimScores(g, influence, opinions, 3);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[0], scores[3]);
  // And the exact single-hop score for A: p*(o_D/2 + o_A*psi) with
  // psi = (2*0.9-1)/2 = 0.4: 0.8*(-0.15 + 0.32) = 0.136 (Example 2!).
  EXPECT_NEAR(scores[0], 0.136, 1e-12);
}

TEST(OsimTest, ExcludedNodesCutPaths) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {0.0, 1.0, 1.0};
  opinions.interaction = {1.0, 1.0};
  OsimScorer scorer(g, influence, opinions, 3);
  EpochSet excluded(3);
  excluded.Reset(3);
  excluded.Insert(1);
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  EXPECT_EQ(scores[0], 0.0);  // only path runs through excluded node
  EXPECT_TRUE(std::isinf(scores[1]) && scores[1] < 0);
}

TEST(OsimTest, NegativeDownstreamOpinionLowersScore) {
  // Identical chains except for the sign of the last node's opinion.
  auto build = [](double last_opinion) {
    GraphBuilder b(2);
    b.AddEdge(0, 1);
    Graph g = std::move(b).Build().ValueOrDie();
    InfluenceParams influence = MakeUniformIc(g, 0.9);
    OpinionParams opinions;
    opinions.opinion = {0.5, last_opinion};
    opinions.interaction = {0.8};
    return OsimScores(g, influence, opinions, 1)[0];
  };
  EXPECT_GT(build(0.9), build(-0.9));
}

TEST(OsimTest, LinearSpaceContract) {
  Graph g = GenerateBarabasiAlbert(10000, 3, 13).ValueOrDie();
  auto influence = MakeUniformIc(g, 0.1);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 14);
  OsimScorer scorer(g, influence, opinions, 3);
  // Seven O(n) buffers.
  EXPECT_LE(scorer.ScratchBytes(), 7u * sizeof(double) * (g.num_nodes() + 16));
}

/// Property sweep over random paths: Lemma 9 equality holds for arbitrary
/// parameters.
class OsimPathPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OsimPathPropertyTest, ClosedFormAgreesOnRandomPaths) {
  Rng rng(GetParam());
  const std::size_t len = 2 + rng.NextBounded(6);  // path length 2..7 edges
  std::vector<double> o(len + 1), p(len), phi(len);
  for (auto& x : o) x = rng.Uniform(-1.0, 1.0);
  for (auto& x : p) x = rng.Uniform(0.05, 1.0);
  for (auto& x : phi) x = rng.NextDouble();
  GraphBuilder b(static_cast<NodeId>(len + 1));
  for (NodeId u = 0; u < len; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  InfluenceParams influence;
  influence.model = DiffusionModel::kIndependentCascade;
  influence.probability = p;
  OpinionParams opinions;
  opinions.opinion = o;
  opinions.interaction = phi;
  auto scores = OsimScores(g, influence, opinions,
                           static_cast<uint32_t>(len));
  EXPECT_NEAR(scores[0], PathOpinionSpreadClosedForm(o, p, phi), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomPaths, OsimPathPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "graph/stats.h"

namespace holim {
namespace {

TEST(DatasetsTest, RegistryHasAllTableTwoRows) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "NetHEPT");
  EXPECT_EQ(specs[7].name, "Friendster");
}

TEST(DatasetsTest, FindByName) {
  auto spec = FindDatasetSpec("DBLP").ValueOrDie();
  EXPECT_EQ(spec.paper_nodes, 317'000u);
  EXPECT_FALSE(spec.directed);
  EXPECT_FALSE(FindDatasetSpec("NoSuchDataset").ok());
}

TEST(DatasetsTest, MediumAndLargeGroups) {
  EXPECT_EQ(MediumDatasetNames().size(), 4u);
  EXPECT_EQ(LargeDatasetNames().size(), 4u);
}

TEST(DatasetsTest, SyntheticNetHeptShape) {
  Graph g = LoadSyntheticDataset("NetHEPT", 0.2).ValueOrDie();
  // Scaled to ~3000 nodes; undirected edges doubled into arcs.
  EXPECT_NEAR(static_cast<double>(g.num_nodes()), 3000.0, 300.0);
  auto stats = ComputeGraphStats(g, 16, 1);
  // NetHEPT's paper avg degree is 4.1 (arcs per node ~8.2); the BA stand-in
  // should be in that band.
  EXPECT_GT(stats.avg_out_degree, 2.0);
  EXPECT_LT(stats.avg_out_degree, 20.0);
}

TEST(DatasetsTest, DirectedDatasetIsDirected) {
  Graph g = LoadSyntheticDataset("SocLiveJournal", 0.002).ValueOrDie();
  // RMAT digraph: in-degree and out-degree distributions differ; verify at
  // least that some node has out-degree != in-degree.
  bool asymmetric = false;
  for (NodeId u = 0; u < g.num_nodes() && !asymmetric; ++u) {
    asymmetric = g.OutDegree(u) != g.InDegree(u);
  }
  EXPECT_TRUE(asymmetric);
}

TEST(DatasetsTest, DeterministicInNameAndScale) {
  Graph a = LoadSyntheticDataset("HepPh", 0.1).ValueOrDie();
  Graph b = LoadSyntheticDataset("HepPh", 0.1).ValueOrDie();
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(DatasetsTest, ScaleGuards) {
  EXPECT_FALSE(LoadSyntheticDataset("NetHEPT", 0.0).ok());
  EXPECT_FALSE(LoadSyntheticDataset("NetHEPT", 1.5).ok());
  EXPECT_FALSE(LoadSyntheticDataset("Unknown", 0.5).ok());
}

TEST(DatasetsTest, HeavyTailPresent) {
  Graph g = LoadSyntheticDataset("HepPh", 0.2).ValueOrDie();
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u));
  }
  auto stats = ComputeGraphStats(g, 0);
  EXPECT_GT(max_deg, 5 * stats.avg_out_degree);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/heuristics.h"
#include "algo/imm.h"
#include "algo/irie.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "algo/tim_plus.h"
#include "data/churn.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

/// End-to-end checks that mirror the paper's headline quantitative claims
/// at test scale: EaSyIM stays within a few percent of the greedy gold
/// standard's spread while every algorithm interoperates on the same graph.

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(GenerateBarabasiAlbert(400, 3, 42).ValueOrDie());
    ic_ = new InfluenceParams(MakeUniformIc(*graph_, 0.1));
    wc_ = new InfluenceParams(MakeWeightedCascade(*graph_));
    lt_ = new InfluenceParams(MakeLinearThreshold(*graph_));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete ic_;
    delete wc_;
    delete lt_;
  }

  static double Spread(const InfluenceParams& params,
                       const std::vector<NodeId>& seeds) {
    McOptions mc;
    mc.num_simulations = 3000;
    mc.seed = 7;
    return EstimateSpread(*graph_, params, seeds, mc);
  }

  static Graph* graph_;
  static InfluenceParams* ic_;
  static InfluenceParams* wc_;
  static InfluenceParams* lt_;
};

Graph* PipelineTest::graph_ = nullptr;
InfluenceParams* PipelineTest::ic_ = nullptr;
InfluenceParams* PipelineTest::wc_ = nullptr;
InfluenceParams* PipelineTest::lt_ = nullptr;

TEST_F(PipelineTest, EasyImWithinFivePercentOfCelf) {
  // The paper's abstract claims spread deviation within ~5% of the best
  // known methods; verify at this scale with a small slack for MC noise.
  const uint32_t k = 10;
  EasyImSelector easyim(*graph_, *ic_, 3);
  auto easy_sel = easyim.Select(k).ValueOrDie();

  McOptions mc;
  mc.num_simulations = 300;
  mc.seed = 11;
  auto objective = std::make_shared<SpreadObjective>(*graph_, *ic_, mc);
  CelfSelector celf(*graph_, objective, false, "CELF");
  auto celf_sel = celf.Select(k).ValueOrDie();

  const double easy_spread = Spread(*ic_, easy_sel.seeds);
  const double celf_spread = Spread(*ic_, celf_sel.seeds);
  EXPECT_GT(easy_spread, 0.90 * celf_spread);
}

TEST_F(PipelineTest, AllSelectorsBeatRandomOnIc) {
  const uint32_t k = 8;
  RandomSelector random(*graph_, 99);
  const double random_spread =
      Spread(*ic_, random.Select(k).ValueOrDie().seeds);

  std::vector<std::unique_ptr<SeedSelector>> selectors;
  selectors.push_back(std::make_unique<EasyImSelector>(*graph_, *ic_, 3));
  selectors.push_back(std::make_unique<DegreeSelector>(*graph_));
  selectors.push_back(
      std::make_unique<DegreeDiscountSelector>(*graph_, 0.1));
  selectors.push_back(std::make_unique<IrieSelector>(*graph_, *ic_));
  TimPlusOptions tim_opts;
  tim_opts.epsilon = 0.3;
  tim_opts.max_theta = 100000;
  selectors.push_back(
      std::make_unique<TimPlusSelector>(*graph_, *ic_, tim_opts));
  ImmOptions imm_opts;
  imm_opts.epsilon = 0.3;
  imm_opts.max_theta = 100000;
  selectors.push_back(std::make_unique<ImmSelector>(*graph_, *ic_, imm_opts));

  for (auto& selector : selectors) {
    auto selection = selector->Select(k).ValueOrDie();
    const double spread = Spread(*ic_, selection.seeds);
    EXPECT_GT(spread, random_spread) << selector->name();
  }
}

TEST_F(PipelineTest, LtSelectorsInteroperate) {
  const uint32_t k = 5;
  EasyImSelector easyim(*graph_, *lt_, 3);
  SimpathSelector simpath(*graph_, *lt_);
  auto easy_sel = easyim.Select(k).ValueOrDie();
  auto sp_sel = simpath.Select(k).ValueOrDie();
  RandomSelector random(*graph_, 5);
  const double random_spread =
      Spread(*lt_, random.Select(k).ValueOrDie().seeds);
  EXPECT_GT(Spread(*lt_, easy_sel.seeds), random_spread);
  EXPECT_GT(Spread(*lt_, sp_sel.seeds), random_spread);
}

TEST_F(PipelineTest, WcSupportedEverywhere) {
  const uint32_t k = 5;
  EasyImSelector easyim(*graph_, *wc_, 3);
  IrieSelector irie(*graph_, *wc_);
  EXPECT_EQ(easyim.Select(k).ValueOrDie().seeds.size(), k);
  EXPECT_EQ(irie.Select(k).ValueOrDie().seeds.size(), k);
}

TEST_F(PipelineTest, OsimBeatsEasyImOnEffectiveOpinion) {
  // On an opinion-annotated graph, OSIM's seeds must achieve higher
  // effective opinion spread than opinion-oblivious EaSyIM's (Fig. 2's
  // message at test scale).
  auto opinions =
      MakeRandomOpinions(*graph_, OpinionDistribution::kStandardNormal, 21);
  const uint32_t k = 10;
  OsimSelector osim(*graph_, *ic_, opinions, OiBase::kIndependentCascade, 3);
  EasyImSelector easyim(*graph_, *ic_, 3);
  auto osim_sel = osim.Select(k).ValueOrDie();
  auto easy_sel = easyim.Select(k).ValueOrDie();
  McOptions mc;
  mc.num_simulations = 4000;
  mc.seed = 22;
  const double osim_value =
      EstimateOpinionSpread(*graph_, *ic_, opinions,
                            OiBase::kIndependentCascade, osim_sel.seeds, 1.0,
                            mc)
          .effective_opinion_spread;
  const double easy_value =
      EstimateOpinionSpread(*graph_, *ic_, opinions,
                            OiBase::kIndependentCascade, easy_sel.seeds, 1.0,
                            mc)
          .effective_opinion_spread;
  EXPECT_GT(osim_value, easy_value);
}

TEST(ChurnPipelineTest, MeoOnChurnGraphEndToEnd) {
  ChurnOptions options;
  options.num_customers = 1500;
  options.target_avg_degree = 16;
  options.seed = 31;
  auto data = BuildChurnData(options).ValueOrDie();
  OsimSelector osim(data.graph, data.influence, data.opinions,
                    OiBase::kIndependentCascade, 3);
  auto selection = osim.Select(5).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 5u);
  McOptions mc;
  mc.num_simulations = 1000;
  mc.seed = 32;
  auto estimate = EstimateOpinionSpread(
      data.graph, data.influence, data.opinions, OiBase::kIndependentCascade,
      selection.seeds, 1.0, mc);
  RandomSelector random(data.graph, 33);
  auto random_estimate = EstimateOpinionSpread(
      data.graph, data.influence, data.opinions, OiBase::kIndependentCascade,
      random.Select(5).ValueOrDie().seeds, 1.0, mc);
  EXPECT_GE(estimate.effective_opinion_spread,
            random_estimate.effective_opinion_spread);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "diffusion/sketch_oracle.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

SketchOptions Opts(uint32_t snapshots, uint64_t seed = 7,
                   ThreadPool* pool = nullptr) {
  SketchOptions options;
  options.num_snapshots = snapshots;
  options.seed = seed;
  options.pool = pool;
  return options;
}

// Reference reachability count over one snapshot's live adjacency.
int64_t BruteForceReach(const SketchOracle& oracle, uint32_t s,
                        const std::vector<NodeId>& seeds, NodeId n) {
  std::vector<char> seen(n, 0);
  std::vector<NodeId> stack;
  int64_t reached = 0;
  for (NodeId seed : seeds) {
    if (seen[seed]) continue;
    seen[seed] = 1;
    stack.push_back(seed);
    ++reached;
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId t : oracle.LiveTargets(s, v)) {
      if (seen[t]) continue;
      seen[t] = 1;
      stack.push_back(t);
      ++reached;
    }
  }
  return reached;
}

double BruteForceSigma(const SketchOracle& oracle,
                       const std::vector<NodeId>& seeds, NodeId n) {
  int64_t total = 0;
  for (uint32_t s = 0; s < oracle.num_snapshots(); ++s) {
    total += BruteForceReach(oracle, s, seeds, n);
  }
  const int64_t spread =
      total - static_cast<int64_t>(oracle.num_snapshots()) *
                  static_cast<int64_t>(seeds.size());
  return static_cast<double>(spread) / oracle.num_snapshots();
}

// Hand-built 5-node world, IC with p = 1: every snapshot is the full graph,
// so the sketch estimate equals exact reachability.
TEST(SketchOracleTest, MatchesReachabilityOnDeterministicIcWorld) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  SketchOracle oracle(g, params, Opts(7));
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{0}), 3.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{1}), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{4}), 0.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{0, 1}), 2.0);

  auto zero = MakeUniformIc(g, 0.0);
  SketchOracle empty_oracle(g, zero, Opts(7));
  EXPECT_DOUBLE_EQ(empty_oracle.Estimate(std::vector<NodeId>{0}), 0.0);
}

// WC on a chain: every node has in-degree 1, so every edge is live with
// probability 1 and the sketch equals chain reachability.
TEST(SketchOracleTest, MatchesReachabilityOnDeterministicWcWorld) {
  GraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeWeightedCascade(g);
  SketchOracle oracle(g, params, Opts(5));
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{0}), 4.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{3}), 1.0);
}

// LT on a chain: the single in-edge has weight 1 and is always picked.
TEST(SketchOracleTest, MatchesReachabilityOnDeterministicLtWorld) {
  GraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  SketchOracle oracle(g, params, Opts(5));
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{0}), 4.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(std::vector<NodeId>{2}), 2.0);
}

// On a random graph the packed-arena BFS must agree with a naive
// reachability sweep over the same snapshots, for every model.
TEST(SketchOracleTest, EstimateMatchesBruteForceOnRandomGraph) {
  Graph g = GenerateBarabasiAlbert(80, 3, 11).ValueOrDie();
  const std::vector<NodeId> seeds = {0, 7, 33};
  for (auto params : {MakeUniformIc(g, 0.3), MakeWeightedCascade(g),
                      MakeLinearThreshold(g)}) {
    SketchOracle oracle(g, params, Opts(13));
    EXPECT_DOUBLE_EQ(oracle.Estimate(seeds),
                     BruteForceSigma(oracle, seeds, g.num_nodes()));
  }
}

// The arena is bitwise identical for any sampling thread count (the same
// contract as the RR engine's GenerateParallel).
TEST(SketchOracleTest, ArenaDeterministicAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(200, 3, 5).ValueOrDie();
  for (auto params : {MakeWeightedCascade(g), MakeLinearThreshold(g)}) {
    ThreadPool pool1(1), pool8(8);
    SketchOracle serial(g, params, Opts(10, 21, nullptr));
    SketchOracle one(g, params, Opts(10, 21, &pool1));
    SketchOracle eight(g, params, Opts(10, 21, &pool8));
    ASSERT_EQ(serial.ArenaBytes(), eight.ArenaBytes());
    ASSERT_EQ(one.ArenaBytes(), eight.ArenaBytes());
    for (uint32_t s = 0; s < serial.num_snapshots(); ++s) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        auto a = serial.LiveTargets(s, u);
        auto b1 = one.LiveTargets(s, u);
        auto c = eight.LiveTargets(s, u);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b1.begin(), b1.end()));
        ASSERT_TRUE(std::equal(a.begin(), a.end(), c.begin(), c.end()));
      }
    }
  }
}

// Incremental session spread is bitwise equal to one-shot Estimate on the
// same prefix across a full k=8 CELF run (R a power of two so every value
// is exactly representable — but the contract holds for any R because both
// sides divide the same integer once).
TEST(SketchOracleTest, SessionBitwiseEqualsOneShotAcrossCelfRun) {
  Graph g = GenerateBarabasiAlbert(64, 2, 9).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  auto oracle = std::make_shared<const SketchOracle>(g, params, Opts(8));
  auto objective = std::make_shared<SketchSpreadObjective>(oracle);
  CelfSelector celf(g, objective, /*plus_plus=*/true, "CELF-sketch");
  auto selection = celf.Select(8).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 8u);

  SketchOracle::Session session(*oracle);
  std::vector<NodeId> prefix;
  for (std::size_t i = 0; i < selection.seeds.size(); ++i) {
    const NodeId u = selection.seeds[i];
    const double gain = session.MarginalGain(u);
    EXPECT_EQ(gain, session.Commit(u));
    EXPECT_EQ(gain, selection.seed_scores[i]);
    prefix.push_back(u);
    EXPECT_EQ(session.Spread(), oracle->Estimate(prefix));
  }
}

// CELF over the frozen snapshots picks exactly the seeds of eager greedy
// over the same snapshots: gains on a static sample are exactly
// submodular, and both paths break ties toward the smaller node id.
TEST(SketchOracleTest, CelfSketchMatchesEagerFrozenGreedy) {
  Graph g = GenerateBarabasiAlbert(70, 2, 15).ValueOrDie();
  auto params = MakeUniformIc(g, 0.25);
  auto oracle = std::make_shared<const SketchOracle>(g, params, Opts(8, 3));

  // Eager reference: legacy GreedySelector over one-shot evaluations of
  // the same frozen snapshot set (no session).
  auto eager_objective =
      std::make_shared<SketchSpreadObjective>(oracle, /*use_session=*/false);
  GreedySelector eager(g, eager_objective, "eager-frozen");
  auto eager_sel = eager.Select(6).ValueOrDie();

  auto session_objective = std::make_shared<SketchSpreadObjective>(oracle);
  CelfSelector celf(g, session_objective, /*plus_plus=*/false, "CELF-sketch");
  auto celf_sel = celf.Select(6).ValueOrDie();
  EXPECT_EQ(eager_sel.seeds, celf_sel.seeds);

  // The session-driven greedy walks the same hill.
  auto greedy_objective = std::make_shared<SketchSpreadObjective>(oracle);
  GreedySelector greedy(g, greedy_objective, "greedy-sketch");
  auto greedy_sel = greedy.Select(6).ValueOrDie();
  EXPECT_EQ(eager_sel.seeds, greedy_sel.seeds);
  EXPECT_EQ(eager_sel.seed_scores, greedy_sel.seed_scores);

  // Laziness still skips work: far fewer evaluations than eager's k * n.
  EXPECT_LT(celf.last_evaluation_count(), 6u * g.num_nodes() / 2);
  EXPECT_GE(celf.last_evaluation_count(), g.num_nodes());
}

// IC-N over deterministic worlds: chain 0 -> 1 -> 2 with p = 1 and
// q = 0.5 gives positive spread q^2 + q^3 = 0.375 exactly.
TEST(SketchOracleTest, IcnPositiveMatchesHandComputedWorld) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  SketchOracle oracle(g, params, Opts(6));
  EXPECT_DOUBLE_EQ(oracle.EstimateIcnPositive(std::vector<NodeId>{0}, 0.5),
                   0.375);
  EXPECT_DOUBLE_EQ(oracle.EstimateIcnPositive(std::vector<NodeId>{0}, 0.0),
                   0.0);
  EXPECT_DOUBLE_EQ(oracle.EstimateIcnPositive(std::vector<NodeId>{0}, 1.0),
                   2.0);
}

// OI opinion replay over deterministic worlds (p = 1): expected opinions
// follow the paper's recurrence exactly; with phi = 1 the MC estimator is
// deterministic too, so both agree to rounding.
TEST(SketchOracleTest, OpinionReplayMatchesDeterministicOi) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {0.8, 0.6, -1.0};
  opinions.interaction = {1.0, 1.0};
  SketchOptions options = Opts(4);
  options.record_edge_offsets = true;
  SketchOracle oracle(g, params, options);

  // o'_1 = (0.6 + 0.8)/2 = 0.7; o'_2 = (-1.0 + 0.7)/2 = -0.15.
  auto estimate = oracle.EstimateOpinion(opinions, OiBase::kIndependentCascade,
                                         std::vector<NodeId>{0}, 1.0);
  EXPECT_NEAR(estimate.opinion_spread, 0.55, 1e-12);
  EXPECT_NEAR(estimate.effective_opinion_spread, 0.55, 1e-12);
  EXPECT_NEAR(estimate.plain_spread, 2.0, 1e-12);

  McOptions mc;
  mc.num_simulations = 50;
  auto reference = EstimateOpinionSpread(g, params, opinions,
                                         OiBase::kIndependentCascade,
                                         std::vector<NodeId>{0}, 1.0, mc);
  EXPECT_NEAR(estimate.opinion_spread, reference.opinion_spread, 1e-9);

  // phi = 0.5: the signed-parent term vanishes in expectation, so
  // o'_1 = 0.3 and o'_2 = -0.5.
  OpinionParams half = opinions;
  half.interaction = {0.5, 0.5};
  auto mixed = oracle.EstimateOpinion(half, OiBase::kIndependentCascade,
                                      std::vector<NodeId>{0}, 1.0);
  EXPECT_NEAR(mixed.opinion_spread, -0.2, 1e-12);
}

// The sketch estimate converges to the MC estimate (both are unbiased
// estimators of sigma).
TEST(SketchOracleTest, AgreesWithMonteCarloWithinTolerance) {
  Graph g = GenerateBarabasiAlbert(150, 3, 23).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  const std::vector<NodeId> seeds = {0, 1, 2};
  SketchOracle oracle(g, params, Opts(4000));
  McOptions mc;
  mc.num_simulations = 4000;
  mc.seed = 12;
  const double mc_value = EstimateSpread(g, params, seeds, mc);
  EXPECT_NEAR(oracle.Estimate(seeds), mc_value, 0.15 * mc_value + 0.5);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include "diffusion/linear_threshold.h"
#include "diffusion/live_edge.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(LtSimulatorTest, SingleInEdgeWithFullWeightAlwaysFires) {
  // 0 -> 1: w = 1/indeg(1) = 1 >= theta always (theta < 1 a.s.).
  Graph g = GeneratePath(3).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LtSimulator sim(g, params);
  Rng rng(1);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.Run(seeds, rng).order.size(), 3u);
  }
}

TEST(LtSimulatorTest, HalfWeightFiresHalfTheTime) {
  // Two in-edges into node 2, only one active seed -> weight 0.5 -> fires
  // iff theta <= 0.5, i.e. with probability ~0.5.
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LtSimulator sim(g, params);
  Rng rng(2);
  const NodeId seeds[] = {0};
  int fired = 0;
  const int runs = 20000;
  for (int i = 0; i < runs; ++i) {
    fired += sim.Run(seeds, rng).order.size() == 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fired) / runs, 0.5, 0.02);
}

TEST(LtSimulatorTest, BothSeedsGuaranteeActivation) {
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LtSimulator sim(g, params);
  Rng rng(3);
  const NodeId seeds[] = {0, 1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.Run(seeds, rng).order.size(), 3u);
  }
}

TEST(LtSimulatorTest, BlockedNodeBreaksChain) {
  Graph g = GeneratePath(4).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LtSimulator sim(g, params);
  EpochSet blocked(4);
  blocked.Reset(4);
  blocked.Insert(1);
  Rng rng(4);
  const NodeId seeds[] = {0};
  EXPECT_EQ(sim.RunWithBlocked(seeds, rng, blocked).order.size(), 1u);
}

TEST(LiveEdgeTest, PathAlwaysFullyLive) {
  // Each node has exactly one in-edge with weight 1 -> always live.
  Graph g = GeneratePath(5).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LiveEdgeSimulator sim(g, params);
  Rng rng(5);
  const NodeId seeds[] = {0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sim.Run(seeds, rng).order.size(), 5u);
  }
}

TEST(LiveEdgeTest, SampleLiveInEdgeRespectsDistribution) {
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);  // each in-edge w = 0.5
  LiveEdgeSimulator sim(g, params);
  Rng rng(6);
  int counts[2] = {0, 0};
  const int runs = 20000;
  for (int i = 0; i < runs; ++i) {
    const int64_t pick = sim.SampleLiveInEdge(2, rng);
    ASSERT_GE(pick, 0);  // weights sum to 1: always picks one
    ++counts[pick];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / runs, 0.5, 0.02);
}

TEST(LiveEdgeTest, KempeEquivalenceWithThresholdForm) {
  // The live-edge and threshold forms of LT induce the same activation
  // distribution (Kempe et al. 2003). Compare expected spreads by MC.
  Graph g = GenerateBarabasiAlbert(300, 3, 7).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  LtSimulator threshold_sim(g, params);
  LiveEdgeSimulator live_sim(g, params);
  Rng rng_a(8), rng_b(9);
  const NodeId seeds[] = {0, 5, 10};
  double spread_threshold = 0, spread_live = 0;
  const int runs = 4000;
  for (int i = 0; i < runs; ++i) {
    spread_threshold += threshold_sim.Run(seeds, rng_a).order.size();
    spread_live += live_sim.Run(seeds, rng_b).order.size();
  }
  spread_threshold /= runs;
  spread_live /= runs;
  EXPECT_NEAR(spread_threshold, spread_live,
              0.06 * std::max(spread_threshold, 1.0));
}

TEST(LtSimulatorTest, WeightsNeverExceedThresholdRange) {
  // Sanity: with 1/indeg weights, total incoming weight == 1, so the
  // threshold-form simulator can activate any node when all parents fire.
  Graph g = GenerateErdosRenyi(200, 4.0, 10).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double sum = 0;
    for (EdgeId e : g.InEdgeIds(v)) sum += params.p(e);
    EXPECT_LE(sum, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace holim

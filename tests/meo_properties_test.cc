#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/oi_model.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

/// Section 2.4 of the paper proves MEO is neither monotone nor submodular
/// (Lemma 2) and not constant-factor approximable (Theorem 1) via explicit
/// graph constructions. These tests instantiate both constructions and
/// verify the claimed spread values mechanically.

McOptions DeterministicMc() {
  // All the gadget edges have p = 1 and phi in {0, 1}: cascades are
  // deterministic, so a handful of simulations suffice.
  McOptions mc;
  mc.num_simulations = 8;
  mc.seed = 1;
  return mc;
}

TEST(SubmodularityGadgetTest, SpreadSequenceOneZeroOne) {
  // Fig. 3a with nx = 3: seeding x_0 gives spread +1; adding x_{nx-1}
  // (whose phi edges are 0) drops it to 0; adding x_1 restores +1.
  const NodeId nx = 3;
  Graph g = GenerateSubmodularityGadget(nx).ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion.assign(g.num_nodes(), 0.0);
  for (NodeId i = 0; i < nx; ++i) opinions.opinion[i] = 1.0;  // X layer
  opinions.interaction.assign(g.num_edges(), 1.0);
  // The last X node's two edges carry phi = 0 (always flip).
  const NodeId last = nx - 1;
  const EdgeId base = g.OutEdgeBegin(last);
  opinions.interaction[base] = 0.0;
  opinions.interaction[base + 1] = 0.0;

  auto spread = [&](const std::vector<NodeId>& seeds) {
    return EstimateOpinionSpread(g, influence, opinions,
                                 OiBase::kIndependentCascade, seeds, 1.0,
                                 DeterministicMc())
        .opinion_spread;
  };
  // Activated y nodes get o' = (0 + 1)/2 = +1/2 (or -1/2 via phi = 0).
  EXPECT_NEAR(spread({0}), 1.0, 1e-9);               // 2 * (1/2)
  EXPECT_NEAR(spread({0, last}), 0.0, 1e-9);         // 1 - 1
  EXPECT_NEAR(spread({0, last, 1}), 1.0, 1e-9);      // 0 + 1
  // 1 -> 0 -> 1 over growing sets: monotonicity AND submodularity both fail.
  const double g1 = spread({0});
  const double g2 = spread({0, last}) - g1;
  const double g3 = spread({0, last, 1}) - spread({0, last});
  EXPECT_LT(g2, 0.0);       // not monotone
  EXPECT_GT(g3, g2);        // marginal gain increased: not submodular
}

TEST(SetCoverGadgetTest, CoverExistsImpliesPositiveSpread) {
  // Universe {0,1,2}; R0={0,1}, R1={2}: cover of size 2 exists.
  const NodeId q = 3;
  auto gadget = GenerateSetCoverGadget({{0, 1}, {2}}, q).ValueOrDie();
  const Graph& g = gadget.graph;
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion.assign(g.num_nodes(), 0.0);
  const double n = q;
  for (NodeId j = 0; j < q; ++j) {
    opinions.opinion[gadget.first_element_node + j] = 1.0 / n;
  }
  const NodeId z_count = 2 + q - 2;
  for (NodeId l = 0; l < z_count; ++l) {
    opinions.opinion[gadget.first_z_node + l] = -1.0 / (2.0 * n);
  }
  opinions.opinion[gadget.sink] = -1.0 + 1.0 / n;
  opinions.interaction.assign(g.num_edges(), 1.0);

  // Theorem 1: choosing a full cover {x_0, x_1} gives spread 1/(2n) > 0.
  auto estimate = EstimateOpinionSpread(
      g, influence, opinions, OiBase::kIndependentCascade,
      {gadget.first_set_node, gadget.first_set_node + 1}, 1.0,
      DeterministicMc());
  EXPECT_NEAR(estimate.opinion_spread, 1.0 / (2.0 * n), 1e-9);
}

TEST(SetCoverGadgetTest, NoCoverImpliesNonPositiveSpread) {
  // Universe {0,1,2}; R0={0}, R1={1}: k=1 cannot cover; best k=1 spread <= 0.
  const NodeId q = 3;
  auto gadget = GenerateSetCoverGadget({{0}, {1}}, q).ValueOrDie();
  const Graph& g = gadget.graph;
  InfluenceParams influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion.assign(g.num_nodes(), 0.0);
  const double n = q;
  for (NodeId j = 0; j < q; ++j) {
    opinions.opinion[gadget.first_element_node + j] = 1.0 / n;
  }
  const NodeId z_count = 2 + q - 2;
  for (NodeId l = 0; l < z_count; ++l) {
    opinions.opinion[gadget.first_z_node + l] = -1.0 / (2.0 * n);
  }
  opinions.opinion[gadget.sink] = -1.0 + 1.0 / n;
  opinions.interaction.assign(g.num_edges(), 1.0);

  for (NodeId x = 0; x < 2; ++x) {
    auto estimate = EstimateOpinionSpread(
        g, influence, opinions, OiBase::kIndependentCascade,
        {gadget.first_set_node + x}, 1.0, DeterministicMc());
    EXPECT_LE(estimate.opinion_spread, 1e-9);
  }
}

TEST(NpHardnessReductionTest, DegenerateMeoEqualsIm) {
  // Lemma 1: with o = 1 and phi = 1, opinion spread == plain spread for
  // every seed set, i.e. MEO contains IM.
  Graph g = GenerateBarabasiAlbert(150, 2, 3).ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 0.2);
  OpinionParams opinions = MakeDegenerateOpinions(g);
  McOptions mc;
  mc.num_simulations = 2000;
  mc.seed = 5;
  for (auto seeds : {std::vector<NodeId>{0}, std::vector<NodeId>{1, 5, 9}}) {
    auto estimate = EstimateOpinionSpread(
        g, influence, opinions, OiBase::kIndependentCascade, seeds, 1.0, mc);
    EXPECT_NEAR(estimate.opinion_spread, estimate.plain_spread, 1e-9);
    EXPECT_NEAR(estimate.effective_opinion_spread, estimate.plain_spread,
                1e-9);
  }
}

TEST(EffectiveSpreadTest, LambdaInterpolatesPenalty) {
  // On any instance, Γoλ is non-increasing in lambda.
  Graph g = GenerateBarabasiAlbert(120, 2, 7).ValueOrDie();
  InfluenceParams influence = MakeUniformIc(g, 0.3);
  OpinionParams opinions =
      MakeRandomOpinions(g, OpinionDistribution::kUniform, 8);
  McOptions mc;
  mc.num_simulations = 2000;
  mc.seed = 9;
  double prev = std::numeric_limits<double>::infinity();
  for (double lambda : {0.0, 0.5, 1.0, 2.0}) {
    auto estimate = EstimateOpinionSpread(
        g, influence, opinions, OiBase::kIndependentCascade, {0, 3}, lambda,
        mc);
    EXPECT_LE(estimate.effective_opinion_spread, prev + 1e-9);
    prev = estimate.effective_opinion_spread;
  }
}

}  // namespace
}  // namespace holim

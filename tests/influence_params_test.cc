#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

TEST(InfluenceParamsTest, UniformIc) {
  Graph g = GenerateErdosRenyi(100, 4.0, 1).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EXPECT_EQ(params.model, DiffusionModel::kIndependentCascade);
  ASSERT_EQ(params.probability.size(), g.num_edges());
  for (double p : params.probability) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(InfluenceParamsTest, WeightedCascadeIsInverseInDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeWeightedCascade(g);
  EXPECT_EQ(params.model, DiffusionModel::kWeightedCascade);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (EdgeId e : g.InEdgeIds(v)) {
      EXPECT_DOUBLE_EQ(params.p(e), 1.0 / g.InDegree(v));
    }
  }
}

TEST(InfluenceParamsTest, LtWeightsSumToOne) {
  Graph g = GenerateErdosRenyi(200, 5.0, 2).ValueOrDie();
  auto params = MakeLinearThreshold(g);
  EXPECT_EQ(params.model, DiffusionModel::kLinearThreshold);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    double sum = 0.0;
    for (EdgeId e : g.InEdgeIds(v)) sum += params.p(e);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(InfluenceParamsTest, TrivalencyDrawsFromChoices) {
  Graph g = GenerateErdosRenyi(300, 4.0, 3).ValueOrDie();
  auto params = MakeTrivalency(g, 7);
  std::set<double> seen(params.probability.begin(), params.probability.end());
  for (double p : seen) {
    EXPECT_TRUE(p == 0.1 || p == 0.01 || p == 0.001);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three appear on a graph this size
}

TEST(OpinionParamsTest, UniformOpinionsInRange) {
  Graph g = GenerateErdosRenyi(500, 4.0, 4).ValueOrDie();
  auto opinions =
      MakeRandomOpinions(g, OpinionDistribution::kUniform, 11);
  ASSERT_EQ(opinions.opinion.size(), g.num_nodes());
  ASSERT_EQ(opinions.interaction.size(), g.num_edges());
  double sum = 0.0;
  for (double o : opinions.opinion) {
    EXPECT_GE(o, -1.0);
    EXPECT_LE(o, 1.0);
    sum += o;
  }
  EXPECT_NEAR(sum / opinions.opinion.size(), 0.0, 0.1);
  for (double phi : opinions.interaction) {
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 1.0);
  }
}

TEST(OpinionParamsTest, NormalOpinionsClamped) {
  Graph g = GenerateErdosRenyi(500, 4.0, 5).ValueOrDie();
  auto opinions =
      MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 13);
  int clamped = 0;
  for (double o : opinions.opinion) {
    EXPECT_GE(o, -1.0);
    EXPECT_LE(o, 1.0);
    if (o == 1.0 || o == -1.0) ++clamped;
  }
  // N(0,1) has ~32% mass beyond +/-1, so clamping must be visible.
  EXPECT_GT(clamped, 50);
}

TEST(OpinionParamsTest, DegenerateReducesToClassicalIm) {
  Graph g = GenerateErdosRenyi(50, 3.0, 6).ValueOrDie();
  auto opinions = MakeDegenerateOpinions(g);
  for (double o : opinions.opinion) EXPECT_DOUBLE_EQ(o, 1.0);
  for (double phi : opinions.interaction) EXPECT_DOUBLE_EQ(phi, 1.0);
}

TEST(OpinionParamsTest, ClampOpinion) {
  EXPECT_DOUBLE_EQ(ClampOpinion(2.5), 1.0);
  EXPECT_DOUBLE_EQ(ClampOpinion(-3.0), -1.0);
  EXPECT_DOUBLE_EQ(ClampOpinion(0.4), 0.4);
}

TEST(InfluenceParamsTest, ModelNames) {
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kIndependentCascade), "IC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kWeightedCascade), "WC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kLinearThreshold), "LT");
}

}  // namespace
}  // namespace holim

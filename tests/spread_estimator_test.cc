#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

TEST(SpreadEstimatorTest, ExactOnTwoNodeGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.35);
  McOptions mc;
  mc.num_simulations = 200000;
  mc.seed = 1;
  EXPECT_NEAR(EstimateSpread(g, params, {0}, mc), 0.35, 0.005);
}

TEST(SpreadEstimatorTest, ExactOnDiamond) {
  // 0 -> {1,2} -> 3, all p = 0.5.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  // E = P(1) + P(2) + P(3). P(1)=P(2)=.5.
  // P(3) = 1 - (1 - .5*.5)^2 = 1 - .75^2 = .4375.
  McOptions mc;
  mc.num_simulations = 200000;
  mc.seed = 2;
  EXPECT_NEAR(EstimateSpread(g, params, {0}, mc), 0.5 + 0.5 + 0.4375, 0.01);
}

TEST(SpreadEstimatorTest, SeedsExcludedFromSpread) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  McOptions mc;
  mc.num_simulations = 100;
  EXPECT_DOUBLE_EQ(EstimateSpread(g, params, {0, 1}, mc), 0.0);
}

TEST(SpreadEstimatorTest, DeterministicInSeed) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  ThreadPool pool(1);
  McOptions mc;
  mc.num_simulations = 1000;
  mc.seed = 77;
  mc.pool = &pool;
  const double a = EstimateSpread(g, params, {0}, mc);
  const double b2 = EstimateSpread(g, params, {0}, mc);
  EXPECT_DOUBLE_EQ(a, b2);
}

// Simulation i draws from its own (seed, i)-derived stream and blocks are
// reduced in fixed order, so estimates are bitwise identical for any pool
// size — 1 vs 8 threads, for both first-layer models.
TEST(SpreadEstimatorTest, SpreadBitwiseEqualAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(300, 2, 19).ValueOrDie();
  const std::vector<NodeId> seeds = {0, 5, 17};
  for (auto params : {MakeWeightedCascade(g), MakeLinearThreshold(g)}) {
    ThreadPool pool1(1), pool8(8);
    McOptions mc;
    mc.num_simulations = 1000;  // several kMcBlockSize blocks
    mc.seed = 4;
    mc.pool = &pool1;
    const double one = EstimateSpread(g, params, seeds, mc);
    mc.pool = &pool8;
    const double eight = EstimateSpread(g, params, seeds, mc);
    EXPECT_EQ(one, eight);
  }
}

TEST(SpreadEstimatorTest, OpinionSpreadBitwiseEqualAcrossThreadCounts) {
  Graph g = GenerateBarabasiAlbert(200, 2, 29).ValueOrDie();
  g.BuildEdgeSourceIndex();
  auto params = MakeUniformIc(g, 0.2);
  OpinionParams opinions =
      MakeRandomOpinions(g, OpinionDistribution::kStandardNormal, 3);
  const std::vector<NodeId> seeds = {1, 2, 3};
  ThreadPool pool1(1), pool8(8);
  McOptions mc;
  mc.num_simulations = 700;
  mc.seed = 11;
  mc.pool = &pool1;
  const auto one = EstimateOpinionSpread(g, params, opinions,
                                         OiBase::kIndependentCascade, seeds,
                                         0.7, mc);
  mc.pool = &pool8;
  const auto eight = EstimateOpinionSpread(g, params, opinions,
                                           OiBase::kIndependentCascade, seeds,
                                           0.7, mc);
  EXPECT_EQ(one.opinion_spread, eight.opinion_spread);
  EXPECT_EQ(one.effective_opinion_spread, eight.effective_opinion_spread);
  EXPECT_EQ(one.plain_spread, eight.plain_spread);
}

TEST(SpreadEstimatorTest, MonotoneInSeedSetSize) {
  GraphBuilder b(6);
  for (NodeId u = 0; u < 5; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  McOptions mc;
  mc.num_simulations = 20000;
  mc.seed = 3;
  const double one = EstimateSpread(g, params, {0}, mc);
  const double two = EstimateSpread(g, params, {0, 3}, mc);
  EXPECT_GT(two, one);
}

TEST(SpreadEstimatorTest, OpinionEstimateBundlesAllThreeMetrics) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {1.0, -0.5};
  opinions.interaction = {1.0};
  McOptions mc;
  mc.num_simulations = 1000;
  auto e = EstimateOpinionSpread(g, params, opinions,
                                 OiBase::kIndependentCascade, {0}, 1.0, mc);
  // o'_1 = (-0.5 + 1)/2 = 0.25 deterministically.
  EXPECT_NEAR(e.opinion_spread, 0.25, 1e-9);
  EXPECT_NEAR(e.effective_opinion_spread, 0.25, 1e-9);
  EXPECT_NEAR(e.plain_spread, 1.0, 1e-9);
}

TEST(SpreadEstimatorTest, LambdaZeroIgnoresNegativeMass) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {-1.0, -0.8};
  opinions.interaction = {1.0};
  McOptions mc;
  mc.num_simulations = 1000;
  auto lambda1 = EstimateOpinionSpread(g, params, opinions,
                                       OiBase::kIndependentCascade, {0}, 1.0, mc);
  auto lambda0 = EstimateOpinionSpread(g, params, opinions,
                                       OiBase::kIndependentCascade, {0}, 0.0, mc);
  EXPECT_LT(lambda1.effective_opinion_spread, 0.0);
  EXPECT_DOUBLE_EQ(lambda0.effective_opinion_spread, 0.0);
}

TEST(SpreadEstimatorTest, OcEstimatorRuns) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  OpinionParams opinions;
  opinions.opinion = {1.0, 0.0};
  opinions.interaction = {0.5};
  McOptions mc;
  mc.num_simulations = 1000;
  EXPECT_NEAR(EstimateOcOpinionSpread(g, params, opinions, {0}, mc), 0.5, 1e-9);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/spread_estimator.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TEST(SpreadEstimatorTest, ExactOnTwoNodeGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.35);
  McOptions mc;
  mc.num_simulations = 200000;
  mc.seed = 1;
  EXPECT_NEAR(EstimateSpread(g, params, {0}, mc), 0.35, 0.005);
}

TEST(SpreadEstimatorTest, ExactOnDiamond) {
  // 0 -> {1,2} -> 3, all p = 0.5.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  // E = P(1) + P(2) + P(3). P(1)=P(2)=.5.
  // P(3) = 1 - (1 - .5*.5)^2 = 1 - .75^2 = .4375.
  McOptions mc;
  mc.num_simulations = 200000;
  mc.seed = 2;
  EXPECT_NEAR(EstimateSpread(g, params, {0}, mc), 0.5 + 0.5 + 0.4375, 0.01);
}

TEST(SpreadEstimatorTest, SeedsExcludedFromSpread) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  McOptions mc;
  mc.num_simulations = 100;
  EXPECT_DOUBLE_EQ(EstimateSpread(g, params, {0, 1}, mc), 0.0);
}

TEST(SpreadEstimatorTest, DeterministicInSeed) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  ThreadPool pool(1);
  McOptions mc;
  mc.num_simulations = 1000;
  mc.seed = 77;
  mc.pool = &pool;
  const double a = EstimateSpread(g, params, {0}, mc);
  const double b2 = EstimateSpread(g, params, {0}, mc);
  EXPECT_DOUBLE_EQ(a, b2);
}

TEST(SpreadEstimatorTest, MonotoneInSeedSetSize) {
  GraphBuilder b(6);
  for (NodeId u = 0; u < 5; ++u) b.AddEdge(u, u + 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  McOptions mc;
  mc.num_simulations = 20000;
  mc.seed = 3;
  const double one = EstimateSpread(g, params, {0}, mc);
  const double two = EstimateSpread(g, params, {0, 3}, mc);
  EXPECT_GT(two, one);
}

TEST(SpreadEstimatorTest, OpinionEstimateBundlesAllThreeMetrics) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {1.0, -0.5};
  opinions.interaction = {1.0};
  McOptions mc;
  mc.num_simulations = 1000;
  auto e = EstimateOpinionSpread(g, params, opinions,
                                 OiBase::kIndependentCascade, {0}, 1.0, mc);
  // o'_1 = (-0.5 + 1)/2 = 0.25 deterministically.
  EXPECT_NEAR(e.opinion_spread, 0.25, 1e-9);
  EXPECT_NEAR(e.effective_opinion_spread, 0.25, 1e-9);
  EXPECT_NEAR(e.plain_spread, 1.0, 1e-9);
}

TEST(SpreadEstimatorTest, LambdaZeroIgnoresNegativeMass) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {-1.0, -0.8};
  opinions.interaction = {1.0};
  McOptions mc;
  mc.num_simulations = 1000;
  auto lambda1 = EstimateOpinionSpread(g, params, opinions,
                                       OiBase::kIndependentCascade, {0}, 1.0, mc);
  auto lambda0 = EstimateOpinionSpread(g, params, opinions,
                                       OiBase::kIndependentCascade, {0}, 0.0, mc);
  EXPECT_LT(lambda1.effective_opinion_spread, 0.0);
  EXPECT_DOUBLE_EQ(lambda0.effective_opinion_spread, 0.0);
}

TEST(SpreadEstimatorTest, OcEstimatorRuns) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeLinearThreshold(g);
  OpinionParams opinions;
  opinions.opinion = {1.0, 0.0};
  opinions.interaction = {0.5};
  McOptions mc;
  mc.num_simulations = 1000;
  EXPECT_NEAR(EstimateOcOpinionSpread(g, params, opinions, {0}, mc), 0.5, 1e-9);
}

}  // namespace
}  // namespace holim

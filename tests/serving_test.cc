// HolimServer tests: protocol parsing, bounded-queue admission control,
// artifact-affinity dispatch order, exact coalesced-build counting,
// queue-wait deadline charging on an injected clock, ghost pre-warm, the
// byte-determinism of pipe mode, and the scheduling-never-changes-results
// contract (heat+affinity vs FIFO+LRU per-id seed parity).

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "serving/holim_server.h"
#include "serving/protocol.h"
#include "util/deadline.h"

namespace holim {
namespace {

/// Small, fast server: one or two 150-node tenants, R=32 arenas, a cheap
/// selector — every test below runs in milliseconds.
ServerOptions FastOptions() {
  ServerOptions options;
  options.queue_depth = 8;
  options.affinity = true;
  options.cache_policy = Workspace::EvictionPolicy::kHeatBenefit;
  options.max_cache_bytes = 0;
  options.prewarm = false;  // tests enable it explicitly
  options.num_sketches = 32;
  options.seed = 7;
  return options;
}

ProtocolRequest Solve(uint64_t id, uint32_t tenant, const std::string& model,
                      uint32_t k = 4) {
  ProtocolRequest request;
  request.verb = RequestVerb::kSolve;
  request.id = id;
  request.tenant = tenant;
  request.model = model;
  request.algo = "degreediscount";
  request.k = k;
  return request;
}

void AddTenants(HolimServer& server, int count) {
  for (int t = 0; t < count; ++t) {
    ASSERT_TRUE(
        server.AddTenant(GenerateSocialGraph(150, 5.0, 100 + t).ValueOrDie())
            .ok());
  }
}

TEST(ProtocolTest, ParsesTheFullSolveGrammar) {
  auto parsed = ParseRequestLine(
      "solve id=7 tenant=1 model=WC k=6 algo=degreediscount deadline_ms=2.5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->verb, RequestVerb::kSolve);
  EXPECT_EQ(parsed->id, 7u);
  EXPECT_EQ(parsed->tenant, 1u);
  EXPECT_EQ(parsed->model, "WC");
  EXPECT_EQ(parsed->k, 6u);
  EXPECT_EQ(parsed->algo, "degreediscount");
  EXPECT_EQ(parsed->deadline_ms, 2.5);

  // Field order is free; omitted fields keep their defaults.
  auto sparse = ParseRequestLine("solve k=3 id=9");
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->model, "IC");
  EXPECT_EQ(sparse->tenant, 0u);

  EXPECT_EQ(ParseRequestLine("ping").ValueOrDie().verb, RequestVerb::kPing);
  EXPECT_EQ(ParseRequestLine("stats").ValueOrDie().verb, RequestVerb::kStats);
  EXPECT_EQ(ParseRequestLine("quit").ValueOrDie().verb, RequestVerb::kQuit);
}

TEST(ProtocolTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("frobnicate").ok());
  EXPECT_FALSE(ParseRequestLine("solve id=abc").ok());
  EXPECT_FALSE(ParseRequestLine("solve bogus=1").ok());
  EXPECT_FALSE(ParseRequestLine("solve id").ok());
  EXPECT_FALSE(ParseRequestLine("solve model=XX").ok());
  EXPECT_FALSE(ParseRequestLine("solve k=0").ok());
  EXPECT_FALSE(ParseRequestLine("solve deadline_ms=-1").ok());
  EXPECT_FALSE(ParseRequestLine("ping id=1").ok());  // verb takes no fields
}

TEST(ServerTest, AdmissionControlRejectsWhenFull) {
  ServerOptions options = FastOptions();
  options.queue_depth = 2;
  HolimServer server(options);
  AddTenants(server, 1);

  EXPECT_TRUE(server.Submit(Solve(1, 0, "IC")).ok());
  EXPECT_TRUE(server.Submit(Solve(2, 0, "IC")).ok());
  EXPECT_TRUE(server.queue_full());
  const Status third = server.Submit(Solve(3, 0, "IC"));
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().admitted, 2u);
  EXPECT_EQ(server.queue_size(), 2u);

  // Non-solve verbs and unknown tenants never enter the queue.
  ProtocolRequest ping;
  ping.verb = RequestVerb::kPing;
  EXPECT_EQ(server.Submit(ping).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Submit(Solve(4, 9, "IC")).code(),
            StatusCode::kInvalidArgument);

  // Draining frees the slot again.
  ASSERT_TRUE(server.DispatchNext().ok());
  EXPECT_FALSE(server.queue_full());
  EXPECT_TRUE(server.Submit(Solve(5, 0, "IC")).ok());
}

TEST(ServerTest, AffinityRunsSameKeyGroupsBackToBack) {
  // Queue [IC, WC, IC]: affinity dispatches IC, IC, WC (one IC build for
  // the group); FIFO dispatches in order and pays the same build anyway —
  // but the second IC is no longer adjacent, which the coalescing test
  // below turns into a counted difference under a byte budget.
  const auto dispatch_order = [](bool affinity) {
    ServerOptions options = FastOptions();
    options.affinity = affinity;
    HolimServer server(options);
    AddTenants(server, 1);
    EXPECT_TRUE(server.Submit(Solve(1, 0, "IC")).ok());
    EXPECT_TRUE(server.Submit(Solve(2, 0, "WC")).ok());
    EXPECT_TRUE(server.Submit(Solve(3, 0, "IC")).ok());
    std::vector<uint64_t> ids;
    while (server.queue_size() > 0) {
      ids.push_back(server.DispatchNext().ValueOrDie().id);
    }
    return ids;
  };
  EXPECT_EQ(dispatch_order(true), (std::vector<uint64_t>{1, 3, 2}));
  EXPECT_EQ(dispatch_order(false), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(ServerTest, CoalescedCountsQueuedMissesServedWarm) {
  HolimServer server(FastOptions());
  AddTenants(server, 1);

  // Both IC requests are admitted while the arena is cold; dispatching
  // the first builds it, so the second is a coalesced miss — one build
  // for two queued misses, counted exactly.
  EXPECT_TRUE(server.Submit(Solve(1, 0, "IC")).ok());
  EXPECT_TRUE(server.Submit(Solve(2, 0, "IC")).ok());
  auto first = server.DispatchNext();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->warm_sketch);
  EXPECT_FALSE(first->coalesced);
  auto second = server.DispatchNext();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->warm_sketch);
  EXPECT_TRUE(second->coalesced);
  EXPECT_EQ(second->seeds_csv, first->seeds_csv);  // reuse is invisible

  // A request admitted AFTER the arena exists is warm but not coalesced —
  // no build was saved by scheduling; it was simply a cache hit.
  EXPECT_TRUE(server.Submit(Solve(3, 0, "IC")).ok());
  auto third = server.DispatchNext();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->warm_sketch);
  EXPECT_FALSE(third->coalesced);

  EXPECT_EQ(server.stats().sketch_builds, 1u);
  EXPECT_EQ(server.stats().warm_sketch_hits, 2u);
  EXPECT_EQ(server.stats().coalesced, 1u);
  EXPECT_EQ(server.stats().served, 3u);
}

TEST(ServerTest, QueueWaitChargesAgainstTheDeadline) {
  ManualClock clock;
  ServerOptions options = FastOptions();
  options.clock = &clock;
  HolimServer server(options);
  AddTenants(server, 1);

  // celf (not the checkpoint-free degreediscount heuristic) so the
  // work_budget=1 expiry actually fires the degradation ladder.
  ProtocolRequest expired = Solve(1, 0, "IC");
  expired.algo = "celf";
  expired.deadline_ms = 10.0;
  EXPECT_TRUE(server.Submit(expired).ok());
  clock.Advance(20 * 1'000'000LL);  // 20 ms in the queue: overstayed

  auto reply = server.DispatchNext();
  ASSERT_TRUE(reply.ok());
  // The overload response is the degradation ladder, not an error: the
  // overstayed request lands deterministically in the heuristic tier and
  // builds no arena.
  EXPECT_TRUE(reply->degraded);
  EXPECT_EQ(reply->tier, ResultTier::kHeuristic);
  EXPECT_FALSE(reply->warm_sketch);
  EXPECT_EQ(server.stats().expired_in_queue, 1u);
  EXPECT_EQ(server.stats().sketch_builds, 0u);
  EXPECT_EQ(server.stats().served, 1u);

  // A request with deadline headroom left runs at full tier.
  ProtocolRequest fresh = Solve(2, 0, "IC");
  fresh.algo = "celf";
  fresh.deadline_ms = 1e6;
  EXPECT_TRUE(server.Submit(fresh).ok());
  auto full = server.DispatchNext();
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->degraded);
  EXPECT_EQ(full->tier, ResultTier::kFull);
  EXPECT_EQ(server.stats().expired_in_queue, 1u);
  EXPECT_EQ(server.stats().sketch_builds, 1u);
}

TEST(ServerTest, SchedulingNeverChangesResults) {
  // The same request stream through heat+affinity and through FIFO+LRU
  // must produce identical per-id seed sets and spreads — scheduling and
  // cache policy may only change WHEN work happens, never its output.
  const std::vector<ProtocolRequest> stream = {
      Solve(0, 0, "IC"), Solve(1, 1, "WC"), Solve(2, 0, "IC", 6),
      Solve(3, 0, "LT"), Solve(4, 1, "WC"), Solve(5, 0, "IC"),
      Solve(6, 1, "LT"), Solve(7, 0, "WC"), Solve(8, 0, "IC", 6),
  };
  const auto run = [&stream](bool optimized) {
    ServerOptions options = FastOptions();
    options.affinity = optimized;
    options.cache_policy = optimized ? Workspace::EvictionPolicy::kHeatBenefit
                                     : Workspace::EvictionPolicy::kLru;
    options.prewarm = optimized;
    HolimServer server(options);
    AddTenants(server, 2);
    std::map<uint64_t, std::pair<std::string, double>> by_id;
    for (const ProtocolRequest& request : stream) {
      if (server.queue_full()) {
        const auto reply = server.DispatchNext().ValueOrDie();
        by_id[reply.id] = {reply.seeds_csv, reply.spread};
      }
      EXPECT_TRUE(server.Submit(request).ok());
    }
    while (server.queue_size() > 0) {
      const auto reply = server.DispatchNext().ValueOrDie();
      by_id[reply.id] = {reply.seeds_csv, reply.spread};
    }
    return by_id;
  };
  const auto optimized = run(true);
  const auto baseline = run(false);
  ASSERT_EQ(optimized.size(), stream.size());
  EXPECT_EQ(optimized, baseline);
}

TEST(ServerTest, PrewarmRebuildsTheHottestGhost) {
  // Tight per-tenant budget: the WC solve evicts the IC arena (ghosting
  // it), then a budget raise plus further dispatches lets MaybePrewarm
  // rebuild IC ahead of demand — so the next IC request is warm without
  // a counted build.
  Graph sizing_graph = GenerateSocialGraph(150, 5.0, 100).ValueOrDie();
  const InfluenceParams sizing_params = MakeUniformIc(sizing_graph);
  SketchOptions sizing_options;
  sizing_options.num_snapshots = 32;
  sizing_options.seed = 7;
  const SketchOracle probe(sizing_graph, sizing_params, sizing_options);

  ServerOptions options = FastOptions();
  options.prewarm = true;
  options.max_cache_bytes = probe.ArenaBytes() + probe.ArenaBytes() / 2;
  HolimServer server(options);
  AddTenants(server, 1);

  EXPECT_TRUE(server.Submit(Solve(1, 0, "IC")).ok());
  ASSERT_TRUE(server.DispatchNext().ok());
  EXPECT_TRUE(server.Submit(Solve(2, 0, "WC")).ok());
  ASSERT_TRUE(server.DispatchNext().ok());
  Workspace& workspace = server.tenant_engine(0).workspace();
  ASSERT_FALSE(workspace.ghosts().empty()) << "budget never forced a ghost";
  EXPECT_EQ(server.stats().prewarms, 0u);  // no headroom while tight

  // Budget freed: the next dispatches pre-warm the ghosted IC arena (the
  // first MaybePrewarm may spend its turn forgetting an unbuildable
  // selector ghost, so allow a couple of dispatches).
  workspace.set_max_bytes(0);
  for (uint64_t id = 3; id < 6 && server.stats().prewarms == 0; ++id) {
    EXPECT_TRUE(server.Submit(Solve(id, 0, "WC")).ok());
    ASSERT_TRUE(server.DispatchNext().ok());
  }
  EXPECT_GE(server.stats().prewarms, 1u);

  const uint64_t builds_before = server.stats().sketch_builds;
  EXPECT_TRUE(server.Submit(Solve(9, 0, "IC")).ok());
  auto warmed = server.DispatchNext();
  ASSERT_TRUE(warmed.ok());
  EXPECT_TRUE(warmed->warm_sketch);
  EXPECT_EQ(server.stats().sketch_builds, builds_before);
}

TEST(ServerTest, PipeModeIsByteDeterministic) {
  // Closed-loop script: more solves than queue slots, so HandleLine must
  // interleave dispatches — the full output (including that interleaving)
  // has to be a pure function of the script.
  const std::string script =
      "ping\n"
      "# comment lines and blanks are ignored\n"
      "\n"
      "solve id=1 tenant=0 model=IC k=4 algo=degreediscount\n"
      "solve id=2 tenant=0 model=WC k=4 algo=degreediscount\n"
      "solve id=3 tenant=0 model=IC k=4 algo=degreediscount\n"
      "solve id=4 tenant=1 model=LT k=4 algo=degreediscount\n"
      "solve id=5 tenant=0 model=IC k=4 algo=degreediscount\n"
      "stats\n"
      "quit\n";
  const auto run = [&script]() {
    ServerOptions options = FastOptions();
    options.queue_depth = 2;  // force closed-loop interleaving
    HolimServer server(options);
    AddTenants(server, 2);
    std::istringstream in(script);
    std::ostringstream out;
    EXPECT_TRUE(server.RunPipe(in, out).ok());
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("pong\n"), std::string::npos);
  EXPECT_NE(first.find("bye\n"), std::string::npos);
  EXPECT_NE(first.find("stats tenants=2 admitted=5"), std::string::npos);
  EXPECT_EQ(first.find("err"), std::string::npos) << first;
  // One ok-line per solve, each echoing its id exactly once.
  for (int id = 1; id <= 5; ++id) {
    const std::string tag = "ok id=" + std::to_string(id) + " ";
    const std::size_t at = first.find(tag);
    ASSERT_NE(at, std::string::npos) << tag;
    EXPECT_EQ(first.find(tag, at + 1), std::string::npos) << tag;
  }

  // EOF without quit still answers everything queued.
  ServerOptions options = FastOptions();
  HolimServer server(options);
  AddTenants(server, 1);
  std::istringstream in("solve id=8 tenant=0 model=IC k=4\n");
  std::ostringstream out;
  EXPECT_TRUE(server.RunPipe(in, out).ok());
  EXPECT_NE(out.str().find("ok id=8 "), std::string::npos);
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

McOptions FastMc(uint32_t sims = 2000, uint64_t seed = 3) {
  McOptions mc;
  mc.num_simulations = sims;
  mc.seed = seed;
  return mc;
}

TEST(GreedyTest, PicksObviousBestSeed) {
  // Star hub clearly dominates.
  GraphBuilder b(8);
  for (NodeId leaf = 1; leaf < 8; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  auto objective = std::make_shared<SpreadObjective>(g, params, FastMc());
  GreedySelector greedy(g, objective);
  auto selection = greedy.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(GreedyTest, MarginalGainsDecreaseForSubmodularObjective) {
  Graph g = GenerateBarabasiAlbert(60, 2, 4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  auto objective =
      std::make_shared<SpreadObjective>(g, params, FastMc(4000, 5));
  GreedySelector greedy(g, objective);
  auto selection = greedy.Select(5).ValueOrDie();
  for (std::size_t i = 1; i < selection.seed_scores.size(); ++i) {
    // Allow small MC noise around the submodular decrease.
    EXPECT_LE(selection.seed_scores[i], selection.seed_scores[i - 1] + 0.5);
  }
}

TEST(CelfTest, MatchesGreedySeedsOnSmallGraph) {
  Graph g = GenerateBarabasiAlbert(40, 2, 6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.2);
  auto obj_a = std::make_shared<SpreadObjective>(g, params, FastMc(3000, 7));
  auto obj_b = std::make_shared<SpreadObjective>(g, params, FastMc(3000, 7));
  GreedySelector greedy(g, obj_a);
  CelfSelector celf(g, obj_b, /*plus_plus=*/false, "CELF");
  auto gs = greedy.Select(3).ValueOrDie();
  auto cs = celf.Select(3).ValueOrDie();
  EXPECT_EQ(gs.seeds, cs.seeds);
}

TEST(CelfTest, LazyEvaluationSkipsWork) {
  Graph g = GenerateBarabasiAlbert(120, 2, 8).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  auto objective = std::make_shared<SpreadObjective>(g, params, FastMc(500, 9));
  CelfSelector celf(g, objective, /*plus_plus=*/false, "CELF");
  auto selection = celf.Select(5).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 5u);
  // Plain greedy would need ~ 5 * 120 = 600 evaluations; CELF's lazy bound
  // must do far fewer (n initial + a handful per round).
  EXPECT_LT(celf.last_evaluation_count(), 300u);
  EXPECT_GE(celf.last_evaluation_count(), 120u);
}

TEST(CelfTest, PlusPlusProducesSameSeedsAsCelf) {
  Graph g = GenerateBarabasiAlbert(50, 2, 10).ValueOrDie();
  auto params = MakeUniformIc(g, 0.15);
  auto obj_a = std::make_shared<SpreadObjective>(g, params, FastMc(2000, 11));
  auto obj_b = std::make_shared<SpreadObjective>(g, params, FastMc(2000, 11));
  CelfSelector celf(g, obj_a, false, "CELF");
  CelfSelector celfpp(g, obj_b, true, "CELF++");
  auto a = celf.Select(4).ValueOrDie();
  auto b = celfpp.Select(4).ValueOrDie();
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(ModifiedGreedyTest, MaximizesEffectiveOpinion) {
  // Positive-opinion hub must beat negative-opinion hub.
  GraphBuilder b(6);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 4);
  b.AddEdge(1, 5);
  Graph g = std::move(b).Build().ValueOrDie();
  auto influence = MakeUniformIc(g, 0.9);
  OpinionParams opinions;
  opinions.opinion = {0.1, 0.1, -0.9, -0.9, 0.9, 0.9};
  opinions.interaction.assign(g.num_edges(), 1.0);
  auto objective = std::make_shared<EffectiveOpinionObjective>(
      g, influence, opinions, OiBase::kIndependentCascade, 1.0, FastMc());
  GreedySelector modified_greedy(g, objective, "Modified-GREEDY");
  auto selection = modified_greedy.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 1u);
}

TEST(ModifiedGreedyTest, LambdaChangesSelection) {
  // Node 0 reaches {+1, -0.8} (high gross, risky); node 1 reaches {+0.4}.
  // With lambda=1 total for 0 is (1 - 0.8 + small) vs 0.4... craft so that
  // lambda=0 favors 0 and lambda=1 favors 1.
  GraphBuilder b(5);
  b.AddEdge(0, 2);  // +0.6 reachable
  b.AddEdge(0, 3);  // -1.0 reachable
  b.AddEdge(1, 4);  // +0.5 reachable
  Graph g = std::move(b).Build().ValueOrDie();
  auto influence = MakeUniformIc(g, 1.0);
  OpinionParams opinions;
  opinions.opinion = {0.8, 0.8, 0.6, -1.0, 0.5};
  opinions.interaction.assign(g.num_edges(), 1.0);
  // Final opinions from 0: node2 (0.6+0.8)/2=0.7, node3 (-1+0.8)/2=-0.1.
  // lambda=0: 0 yields 0.7 > 1's 0.65... wait node4: (0.5+0.8)/2=0.65.
  // lambda=1: 0 yields 0.6 < 0.65 -> picks 1.
  auto mk = [&](double lambda) {
    auto objective = std::make_shared<EffectiveOpinionObjective>(
        g, influence, opinions, OiBase::kIndependentCascade, lambda,
        FastMc(500, 13));
    GreedySelector sel(g, objective, "MG");
    return sel.Select(1).ValueOrDie().seeds[0];
  };
  EXPECT_EQ(mk(0.0), 0u);
  EXPECT_EQ(mk(1.0), 1u);
}

TEST(GreedyTest, RejectsBadK) {
  Graph g = GenerateErdosRenyi(10, 2.0, 14).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  auto objective = std::make_shared<SpreadObjective>(g, params, FastMc(10));
  GreedySelector greedy(g, objective);
  EXPECT_FALSE(greedy.Select(0).ok());
  EXPECT_FALSE(greedy.Select(999).ok());
  CelfSelector celf(g, objective);
  EXPECT_FALSE(celf.Select(0).ok());
}

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "algo/easyim.h"
#include "diffusion/spread_estimator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"

namespace holim {
namespace {

std::vector<double> Scores(const Graph& g, const InfluenceParams& params,
                           uint32_t l) {
  EasyImScorer scorer(g, params, l);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  return scores;
}

TEST(EasyImTest, PathClosedForm) {
  // On a directed path with uniform p, Delta_l(u) = sum_{i=1..min(l,len)} p^i.
  Graph g = GeneratePath(6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.5);
  for (uint32_t l = 1; l <= 5; ++l) {
    auto scores = Scores(g, params, l);
    for (NodeId u = 0; u < 6; ++u) {
      const uint32_t reach = std::min<uint32_t>(l, 5 - u);
      double expected = 0;
      for (uint32_t i = 1; i <= reach; ++i) expected += std::pow(0.5, i);
      EXPECT_NEAR(scores[u], expected, 1e-12)
          << "node " << u << " l=" << l;
    }
  }
}

TEST(EasyImTest, StarGraphScore) {
  // Hub -> 4 leaves with p = 0.1: Delta_1(hub) = 0.4, leaves 0.
  GraphBuilder b(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) b.AddEdge(0, leaf);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  auto scores = Scores(g, params, 3);
  EXPECT_NEAR(scores[0], 0.4, 1e-12);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(scores[leaf], 0.0);
}

TEST(EasyImTest, TreeScoreEqualsExpectedSpread) {
  // Conclusion 2: on trees EaSyIM captures the expected spread exactly
  // (with l >= depth). Verify against Monte Carlo.
  Graph g = GenerateRandomTree(60, 3, 4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.3);
  auto scores = Scores(g, params, 30);
  McOptions mc;
  mc.num_simulations = 60000;
  mc.seed = 5;
  for (NodeId u : {NodeId{0}, NodeId{1}, NodeId{5}, NodeId{20}}) {
    const double sigma = EstimateSpread(g, params, {u}, mc);
    EXPECT_NEAR(scores[u], sigma, 0.05 * std::max(1.0, sigma))
        << "node " << u;
  }
}

TEST(EasyImTest, ScoreMonotoneInL) {
  Graph g = GenerateBarabasiAlbert(300, 3, 6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  auto s1 = Scores(g, params, 1);
  auto s3 = Scores(g, params, 3);
  auto s5 = Scores(g, params, 5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(s1[u], s3[u] + 1e-12);
    EXPECT_LE(s3[u], s5[u] + 1e-12);
  }
}

TEST(EasyImTest, ExcludedNodesRemovedFromGraph) {
  Graph g = GeneratePath(4).ValueOrDie();  // 0->1->2->3
  auto params = MakeUniformIc(g, 0.5);
  EasyImScorer scorer(g, params, 3);
  EpochSet excluded(4);
  excluded.Reset(4);
  excluded.Insert(1);
  std::vector<double> scores;
  scorer.AssignScores(excluded, &scores);
  // Node 0's only path goes through excluded node 1 -> score 0.
  EXPECT_EQ(scores[0], 0.0);
  EXPECT_TRUE(std::isinf(scores[1]) && scores[1] < 0);
  EXPECT_NEAR(scores[2], 0.5, 1e-12);
}

TEST(EasyImTest, LinearSpaceContract) {
  Graph g = GenerateBarabasiAlbert(10000, 3, 7).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImScorer scorer(g, params, 3);
  // O(n) scratch: two doubles per node.
  EXPECT_LE(scorer.ScratchBytes(), 2u * sizeof(double) * (g.num_nodes() + 16));
}

TEST(EasyImTest, HigherDegreeNodesScoreHigher) {
  // With uniform p, Delta_1 is p * outdeg: ordering must follow degree.
  Graph g = GenerateBarabasiAlbert(500, 3, 8).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  auto scores = Scores(g, params, 1);
  for (NodeId u = 0; u + 1 < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > g.OutDegree(u + 1)) {
      EXPECT_GT(scores[u], scores[u + 1]);
    }
  }
}

TEST(EasyImTest, WcParamsSupported) {
  Graph g = GenerateBarabasiAlbert(200, 3, 9).ValueOrDie();
  auto params = MakeWeightedCascade(g);
  auto scores = Scores(g, params, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(scores[u], 0.0);
    EXPECT_TRUE(std::isfinite(scores[u]));
  }
}

TEST(EasyImTest, ParallelScoresBitwiseIdenticalToSerial) {
  Graph g = GenerateBarabasiAlbert(2000, 3, 11).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImScorer serial(g, params, 4), parallel(g, params, 4);
  EpochSet excluded(g.num_nodes());
  excluded.Reset(g.num_nodes());
  excluded.Insert(5);
  excluded.Insert(500);
  std::vector<double> serial_scores, parallel_scores;
  serial.AssignScores(excluded, &serial_scores);
  ThreadPool pool(4);
  parallel.AssignScoresParallel(excluded, &parallel_scores, &pool);
  ASSERT_EQ(serial_scores.size(), parallel_scores.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(serial_scores[u], parallel_scores[u]) << "node " << u;
  }
}

/// Parameterized sweep: scores are finite, nonnegative, and bounded by the
/// reachable-set size for every (l, p) combination.
class EasyImPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(EasyImPropertyTest, ScoresBoundedByReachability) {
  const auto [l, p] = GetParam();
  Graph g = GenerateErdosRenyi(300, 4.0, 10).ValueOrDie();
  auto params = MakeUniformIc(g, p);
  auto scores = Scores(g, params, l);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(scores[u], 0.0);
    EXPECT_TRUE(std::isfinite(scores[u]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EasyImPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 10u),
                       ::testing::Values(0.01, 0.1, 0.5)));

}  // namespace
}  // namespace holim

#include <gtest/gtest.h>

#include <cmath>

#include "data/twitter.h"
#include "diffusion/spread_estimator.h"
#include "model/influence_params.h"

namespace holim {
namespace {

TwitterCorpusOptions SmallCorpus() {
  TwitterCorpusOptions options;
  options.num_users = 3000;
  options.follower_edges_per_user = 5;
  options.num_topics = 8;
  options.originators_per_topic = 8;
  options.seed = 77;
  return options;
}

class TwitterCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new TwitterCorpus(
        BuildTwitterCorpus(SmallCorpus()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static TwitterCorpus* corpus_;
};

TwitterCorpus* TwitterCorpusTest::corpus_ = nullptr;

TEST_F(TwitterCorpusTest, BackgroundGraphBuilt) {
  EXPECT_EQ(corpus_->background.num_nodes(), 3000u);
  EXPECT_GT(corpus_->background.num_edges(), 3000u);
}

TEST_F(TwitterCorpusTest, AllTopicsMaterialized) {
  EXPECT_EQ(corpus_->topics.size(), 8u);
  for (const auto& topic : corpus_->topics) {
    EXPECT_GT(topic.subgraph.graph.num_nodes(), 0u);
  }
}

TEST_F(TwitterCorpusTest, OriginatorsHaveZeroInDegree) {
  for (const auto& topic : corpus_->topics) {
    for (NodeId o : topic.originators) {
      EXPECT_EQ(topic.subgraph.graph.InDegree(o), 0u)
          << topic.hashtag;
    }
  }
}

TEST_F(TwitterCorpusTest, GroundTruthOpinionsInRange) {
  for (const auto& topic : corpus_->topics) {
    for (double o : topic.ground_truth_opinion) {
      if (std::isnan(o)) continue;
      EXPECT_GE(o, -1.0);
      EXPECT_LE(o, 1.0);
    }
  }
}

TEST_F(TwitterCorpusTest, EstimatedParamsWellFormed) {
  ASSERT_EQ(corpus_->estimated.opinion.size(),
            corpus_->background.num_nodes());
  ASSERT_EQ(corpus_->estimated.interaction.size(),
            corpus_->background.num_edges());
  for (double o : corpus_->estimated.opinion) {
    EXPECT_GE(o, -1.0);
    EXPECT_LE(o, 1.0);
  }
  for (double phi : corpus_->estimated.interaction) {
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 1.0);
  }
}

TEST_F(TwitterCorpusTest, OpinionEstimationErrorBandsMatchPaper) {
  // Paper Sec. 4.1.1: seeds ~3.43% error, non-seeds ~8.57% (the classifier
  // sees personal opinion for seeds but influence-mixed opinion otherwise).
  EXPECT_GT(corpus_->seed_opinion_error, 0.0);
  EXPECT_LT(corpus_->seed_opinion_error, 0.15);
  EXPECT_GT(corpus_->nonseed_opinion_error, corpus_->seed_opinion_error);
  EXPECT_LT(corpus_->nonseed_opinion_error, 0.5);
}

TEST_F(TwitterCorpusTest, SubgraphMappingsConsistent) {
  for (const auto& topic : corpus_->topics) {
    const auto& sub = topic.subgraph;
    for (NodeId s = 0; s < sub.graph.num_nodes(); ++s) {
      const NodeId original = sub.to_original[s];
      ASSERT_LT(original, corpus_->background.num_nodes());
      EXPECT_EQ(sub.to_subgraph[original], s);
    }
  }
}

TEST_F(TwitterCorpusTest, Deterministic) {
  auto again = BuildTwitterCorpus(SmallCorpus()).ValueOrDie();
  EXPECT_EQ(again.background.num_edges(), corpus_->background.num_edges());
  ASSERT_EQ(again.topics.size(), corpus_->topics.size());
  for (std::size_t t = 0; t < again.topics.size(); ++t) {
    EXPECT_EQ(again.topics[t].subgraph.graph.num_nodes(),
              corpus_->topics[t].subgraph.graph.num_nodes());
    EXPECT_NEAR(again.topics[t].ground_truth_spread,
                corpus_->topics[t].ground_truth_spread, 1e-12);
  }
}

TEST(TwitterCorpusOptionsTest, Rejected) {
  TwitterCorpusOptions options;
  options.num_users = 10;
  EXPECT_FALSE(BuildTwitterCorpus(options).ok());
  options = TwitterCorpusOptions{};
  options.num_topics = 0;
  EXPECT_FALSE(BuildTwitterCorpus(options).ok());
}

}  // namespace
}  // namespace holim

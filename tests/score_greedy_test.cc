#include <gtest/gtest.h>

#include <set>

#include "algo/score_greedy.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {
namespace {

TEST(ScoreGreedyTest, PicksArgmaxEachRound) {
  // Custom score function: node id as score, excluding picked ones.
  Graph g = GenerateErdosRenyi(10, 2.0, 1).ValueOrDie();
  ScoreGreedyOptions options;
  options.activation = ActivationStrategy::kSeedsOnly;
  ScoreGreedy driver(
      g,
      [](const EpochSet& excluded, std::vector<double>* scores) {
        scores->resize(10);
        for (NodeId u = 0; u < 10; ++u) {
          (*scores)[u] = excluded.Contains(u) ? -1e30 : u;
        }
      },
      options);
  auto selection = driver.Select(3).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 3u);
  EXPECT_EQ(selection.seeds[0], 9u);
  EXPECT_EQ(selection.seeds[1], 8u);
  EXPECT_EQ(selection.seeds[2], 7u);
}

TEST(ScoreGreedyTest, SeedsAreDistinct) {
  Graph g = GenerateBarabasiAlbert(200, 3, 2).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImSelector selector(g, params, 3);
  auto selection = selector.Select(20).ValueOrDie();
  std::set<NodeId> unique(selection.seeds.begin(), selection.seeds.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(ScoreGreedyTest, RejectsBadK) {
  Graph g = GenerateErdosRenyi(10, 2.0, 3).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImSelector selector(g, params, 2);
  EXPECT_FALSE(selector.Select(0).ok());
  EXPECT_FALSE(selector.Select(11).ok());
}

TEST(ScoreGreedyTest, ActivationStrategiesAllProduceValidSeeds) {
  Graph g = GenerateBarabasiAlbert(300, 3, 4).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  for (auto strategy :
       {ActivationStrategy::kSeedsOnly, ActivationStrategy::kMonteCarloMajority,
        ActivationStrategy::kExpectedReach}) {
    ScoreGreedyOptions options;
    options.activation = strategy;
    EasyImSelector selector(g, params, 3, options);
    auto selection = selector.Select(5).ValueOrDie();
    EXPECT_EQ(selection.seeds.size(), 5u)
        << ActivationStrategyName(strategy);
    std::set<NodeId> unique(selection.seeds.begin(), selection.seeds.end());
    EXPECT_EQ(unique.size(), 5u);
  }
}

TEST(ScoreGreedyTest, McMajorityBlocksSaturatedRegions) {
  // Chain with p=1: first seed deterministically activates everything to
  // its right; MC-majority must mark all of them activated, so the second
  // seed comes from outside the chain suffix.
  Graph g = GeneratePath(10).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  ScoreGreedyOptions options;
  options.activation = ActivationStrategy::kMonteCarloMajority;
  options.mc_rounds = 8;
  EasyImSelector selector(g, params, 9, options);
  auto selection = selector.Select(2).ValueOrDie();
  // First pick: node 0 (longest chain). Everything downstream activated ->
  // second pick is forced to have score 0, but it must not be an activated
  // chain member... all non-0 nodes are activated, so selection stops at 1.
  EXPECT_EQ(selection.seeds[0], 0u);
  EXPECT_LE(selection.seeds.size(), 2u);
}

TEST(ScoreGreedyTest, SelectionDeterministicInSeed) {
  Graph g = GenerateBarabasiAlbert(200, 3, 5).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  ScoreGreedyOptions options;
  options.seed = 1234;
  EasyImSelector a(g, params, 3, options), b(g, params, 3, options);
  auto sa = a.Select(10).ValueOrDie();
  auto sb = b.Select(10).ValueOrDie();
  EXPECT_EQ(sa.seeds, sb.seeds);
}

TEST(ScoreGreedyTest, TimingRecorded) {
  Graph g = GenerateBarabasiAlbert(500, 3, 6).ValueOrDie();
  auto params = MakeUniformIc(g, 0.1);
  EasyImSelector selector(g, params, 3);
  auto selection = selector.Select(5).ValueOrDie();
  EXPECT_GE(selection.elapsed_seconds, 0.0);
  EXPECT_EQ(selection.seed_scores.size(), selection.seeds.size());
}

TEST(OsimSelectorTest, SelectsOpinionAwareSeeds) {
  // One hub spreads negative opinion, the other positive; OSIM must prefer
  // the positive hub even though degrees are equal.
  GraphBuilder b(6);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 4);
  b.AddEdge(1, 5);
  Graph g = std::move(b).Build().ValueOrDie();
  auto influence = MakeUniformIc(g, 0.5);
  OpinionParams opinions;
  opinions.opinion = {0.5, 0.5, -0.9, -0.9, 0.9, 0.9};
  opinions.interaction.assign(g.num_edges(), 1.0);
  OsimSelector selector(g, influence, opinions, OiBase::kIndependentCascade, 2);
  auto selection = selector.Select(1).ValueOrDie();
  EXPECT_EQ(selection.seeds[0], 1u);
}

TEST(OsimSelectorTest, LtBaseWorks) {
  Graph g = GenerateBarabasiAlbert(100, 2, 7).ValueOrDie();
  auto influence = MakeLinearThreshold(g);
  auto opinions = MakeRandomOpinions(g, OpinionDistribution::kUniform, 8);
  OsimSelector selector(g, influence, opinions, OiBase::kLinearThreshold, 3);
  auto selection = selector.Select(4).ValueOrDie();
  EXPECT_EQ(selection.seeds.size(), 4u);
}

TEST(ScoreGreedyTest, McMajorityActuallyGrowsActivatedSet) {
  // Regression: the MC rounds used to run with the new seed itself in the
  // blocked set, producing empty cascades and never growing V(a). On a
  // deterministic chain, the second pick must therefore differ from the
  // naive score order.
  // Chain A: 0->1->...->4 (p=1). Chain B: 5->6 (p=1), disconnected.
  GraphBuilder b(7);
  for (NodeId u = 0; u < 4; ++u) b.AddEdge(u, u + 1);
  b.AddEdge(5, 6);
  Graph g = std::move(b).Build().ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  ScoreGreedyOptions options;
  options.activation = ActivationStrategy::kMonteCarloMajority;
  options.mc_rounds = 4;
  EasyImSelector selector(g, params, 6, options);
  auto selection = selector.Select(2).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 2u);
  EXPECT_EQ(selection.seeds[0], 0u);
  // With V(a) = {0..4} after the first pick, the only productive second
  // seed is 5 (node 1 would score higher if blocking were broken).
  EXPECT_EQ(selection.seeds[1], 5u);
}

TEST(ScoreGreedyTest, SaturationFallbackStillReturnsKSeeds) {
  // When the first seed's cascade covers the graph, the fallback must pad
  // the selection to k distinct seeds instead of stopping early.
  Graph g = GeneratePath(10).ValueOrDie();
  auto params = MakeUniformIc(g, 1.0);
  ScoreGreedyOptions options;
  options.activation = ActivationStrategy::kMonteCarloMajority;
  options.mc_rounds = 4;
  EasyImSelector selector(g, params, 9, options);
  auto selection = selector.Select(4).ValueOrDie();
  ASSERT_EQ(selection.seeds.size(), 4u);
  std::set<NodeId> unique(selection.seeds.begin(), selection.seeds.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(selection.seeds[0], 0u);
}

TEST(ScoreGreedyTest, StrategyNames) {
  EXPECT_STREQ(ActivationStrategyName(ActivationStrategy::kSeedsOnly),
               "seeds-only");
  EXPECT_STREQ(ActivationStrategyName(ActivationStrategy::kMonteCarloMajority),
               "mc-majority");
  EXPECT_STREQ(ActivationStrategyName(ActivationStrategy::kExpectedReach),
               "expected-reach");
}

}  // namespace
}  // namespace holim

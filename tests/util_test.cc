#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include <memory>

#include "diffusion/cascade.h"
#include "util/csv_writer.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace holim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),   Status::OutOfRange("").code(),
      Status::NotFound("").code(),          Status::IOError("").code(),
      Status::AlreadyExists("").code(),     Status::Unimplemented("").code(),
      Status::Internal("").code(),          Status::DeadlineExceeded("").code(),
      Status::Cancelled("").code(),         Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 10u);
}

TEST(StatusTest, EveryCodeRendersItsName) {
  EXPECT_EQ(Status::InvalidArgument("m").ToString(), "InvalidArgument: m");
  EXPECT_EQ(Status::OutOfRange("m").ToString(), "OutOfRange: m");
  EXPECT_EQ(Status::NotFound("m").ToString(), "NotFound: m");
  EXPECT_EQ(Status::IOError("m").ToString(), "IOError: m");
  EXPECT_EQ(Status::AlreadyExists("m").ToString(), "AlreadyExists: m");
  EXPECT_EQ(Status::Unimplemented("m").ToString(), "Unimplemented: m");
  EXPECT_EQ(Status::Internal("m").ToString(), "Internal: m");
  EXPECT_EQ(Status::DeadlineExceeded("m").ToString(), "DeadlineExceeded: m");
  EXPECT_EQ(Status::Cancelled("m").ToString(), "Cancelled: m");
  EXPECT_EQ(Status::ResourceExhausted("m").ToString(),
            "ResourceExhausted: m");
}

TEST(StatusTest, RobustnessCodesCarryCodeAndMessage) {
  const Status deadline = Status::DeadlineExceeded("work budget exhausted");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.message(), "work budget exhausted");
  const Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  const Status exhausted = Status::ResourceExhausted("cache full");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(std::move(r).ValueOrDie(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  HOLIM_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(ResultTest, HoldsMoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
  std::unique_ptr<int> owned = std::move(r).ValueOrDie();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, MoveConstructionTransfersValueAndStatus) {
  Result<std::unique_ptr<int>> src(std::make_unique<int>(9));
  Result<std::unique_ptr<int>> dst(std::move(src));
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(**dst, 9);

  Result<std::unique_ptr<int>> err(Status::DeadlineExceeded("late"));
  Result<std::unique_ptr<int>> err_moved(std::move(err));
  ASSERT_FALSE(err_moved.ok());
  EXPECT_EQ(err_moved.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(err_moved.status().message(), "late");
}

TEST(DeadlineTest, InactiveNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.active());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(deadline.Check().ok());
  EXPECT_FALSE(deadline.StopRequested());
  EXPECT_TRUE(deadline.status().ok());
}

TEST(DeadlineTest, WorkBudgetFailsExactlyOnBthCheck) {
  Deadline deadline = Deadline::WorkBudget(3);
  EXPECT_TRUE(deadline.active());
  EXPECT_TRUE(deadline.Check().ok());
  EXPECT_TRUE(deadline.Check().ok());
  EXPECT_FALSE(deadline.StopRequested());  // still alive before the 3rd
  const Status third = deadline.Check();
  EXPECT_EQ(third.code(), StatusCode::kDeadlineExceeded);
  // Sticky: every later poll reports expired.
  EXPECT_TRUE(deadline.StopRequested());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, CheckNChargesBlockCounts) {
  // CheckN(n) must land expiry at the same cumulative tick as n Check()
  // calls — that equivalence is what makes wave-dispatch tick charging
  // invariant to thread count.
  Deadline a = Deadline::WorkBudget(10);
  EXPECT_TRUE(a.CheckN(4).ok());
  EXPECT_TRUE(a.CheckN(5).ok());
  EXPECT_FALSE(a.CheckN(1).ok());  // cumulative 10th tick
  Deadline b = Deadline::WorkBudget(10);
  EXPECT_FALSE(b.CheckN(12).ok());  // overshoot in one wave also trips
}

TEST(DeadlineTest, WallClockExpiresOnManualClock) {
  ManualClock clock;
  Deadline deadline = Deadline::AfterMillis(5.0, &clock);
  EXPECT_TRUE(deadline.Check().ok());
  clock.Advance(4'000'000);  // 4 ms: still alive
  EXPECT_TRUE(deadline.Check().ok());
  EXPECT_FALSE(deadline.StopRequested());
  clock.Advance(1'000'000);  // exactly 5 ms: expired
  EXPECT_TRUE(deadline.StopRequested());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
  // A clock jump backwards does not resurrect a tripped deadline.
  clock.Set(0);
  EXPECT_TRUE(deadline.StopRequested());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, CancelTokenTripsEitherMode) {
  CancelToken token;
  Deadline ticks = Deadline::WorkBudget(1'000'000, &token);
  EXPECT_TRUE(ticks.Check().ok());
  token.Cancel();
  EXPECT_TRUE(ticks.StopRequested());
  EXPECT_EQ(ticks.Check().code(), StatusCode::kCancelled);

  ManualClock clock;
  CancelToken token2;
  Deadline wall = Deadline::AfterMillis(1e9, &clock, &token2);
  EXPECT_TRUE(wall.Check().ok());
  token2.Cancel();
  EXPECT_TRUE(wall.StopRequested());
  EXPECT_EQ(wall.Check().code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, CancelTokenCopiesShareOneFlag) {
  CancelToken original;
  CancelToken copy = original;
  copy.Cancel();
  EXPECT_TRUE(original.cancelled());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / n, 0.0, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng base(17);
  Rng split = base.Split(1);
  Rng base2(17);
  Rng split2 = base2.Split(1);
  // Same lineage -> same stream.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(split.Next64(), split2.Next64());
  // Different salt -> different stream.
  Rng base3(17);
  Rng split3 = base3.Split(2);
  int same = 0;
  Rng base4(17);
  Rng split4 = base4.Split(1);
  for (int i = 0; i < 64; ++i) {
    if (split3.Next64() == split4.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(EpochSetTest, InsertAndReset) {
  EpochSet set(10);
  set.Reset(10);
  EXPECT_FALSE(set.Contains(3));
  set.Insert(3);
  EXPECT_TRUE(set.Contains(3));
  set.Reset(10);
  EXPECT_FALSE(set.Contains(3));  // O(1) clear
}

TEST(EpochSetTest, ResizeOnReset) {
  EpochSet set(4);
  set.Reset(4);
  set.Insert(1);
  set.Reset(8);
  EXPECT_FALSE(set.Contains(1));
  set.Insert(7);
  EXPECT_TRUE(set.Contains(7));
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, InlineModeWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int sum = 0;
  pool.ParallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST(StringUtilTest, SplitTokens) {
  auto tokens = SplitTokens("  a\tbb  c\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \r\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0005), "500 us");
  EXPECT_EQ(HumanSeconds(0.25), "250.0 ms");
  EXPECT_EQ(HumanSeconds(3.0), "3.00 s");
  EXPECT_EQ(HumanSeconds(600.0), "10.0 min");
}

TEST(CsvWriterTest, WritesEscapedRows) {
  const std::string path = "/tmp/holim_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.status().ok());
    w.WriteHeader({"a", "b"});
    w.WriteRow({"1,2", "say \"hi\""});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "\"1,2\",\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathReportsIoError) {
  CsvWriter w("/nonexistent_dir_zz/x.csv");
  EXPECT_EQ(w.status().code(), StatusCode::kIOError);
}

TEST(MemoryTest, RssIsPositiveAndGrowsWithAllocation) {
  const std::size_t before = CurrentRssBytes();
  EXPECT_GT(before, 0u);
  MemoryMeter meter;
  std::vector<char> block(64 * 1024 * 1024, 1);
  // Touch to force residency.
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 2;
  EXPECT_GT(meter.OverheadBytes(), 32u * 1024 * 1024);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedMillis(), 15.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

}  // namespace
}  // namespace holim

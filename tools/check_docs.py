#!/usr/bin/env python3
"""CI docs gate: broken intra-repo links and a stale figure-binary table.

Checks, relative to the repo root (the script's parent directory):

  1. Every relative markdown link in README.md and docs/*.md points at a
     file or directory that exists. External links (http/https/mailto) and
     pure fragments (#...) are skipped; a fragment on a relative link is
     stripped before the existence check.

  2. README.md's bench table stays in sync with bench/: every bench/*.cc
     translation unit must be mentioned as its binary name (bench_<stem>),
     and every `bench_...` name mentioned in README.md must still have a
     source file. This keeps the figure-to-binary map trustworthy as bench
     binaries are added or renamed.

Exit 1 with a per-finding message on any violation.

Usage: python3 tools/check_docs.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — excluding images' inner parens handled well enough for
# repo docs; fenced code blocks are stripped first so example links and
# shell snippets don't count.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
BENCH_NAME_RE = re.compile(r"\bbench_[A-Za-z0-9_]+\b")
# `src/bench_support/` is the harness directory, not a binary.
NOT_BINARIES = {"bench_support"}


def doc_files():
    files = []
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    docs = REPO / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_links(path, text, failures):
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            try:
                shown = resolved.relative_to(REPO)
            except ValueError:  # link escapes the repo root
                shown = resolved
            failures.append(f"{path.relative_to(REPO)}: broken link "
                            f"'{target}' (no {shown})")


def check_bench_table(readme_text, failures):
    bench_dir = REPO / "bench"
    sources = {f"bench_{src.stem}" for src in bench_dir.glob("*.cc")
               if src.stem != "common"}
    mentioned = set(BENCH_NAME_RE.findall(readme_text)) - NOT_BINARIES
    for missing in sorted(sources - mentioned):
        failures.append(f"README.md: bench binary '{missing}' "
                        "(from bench/) is not documented in the bench table")
    for stale in sorted(mentioned - sources):
        failures.append(f"README.md: mentions '{stale}' but bench/ has no "
                        "such source — remove or rename the table row")


def main():
    failures = []
    files = doc_files()
    if not files:
        failures.append("README.md missing at repo root")
    readme_text = None
    for path in files:
        raw = path.read_text(encoding="utf-8")
        check_links(path, FENCE_RE.sub("", raw), failures)
        if path.name == "README.md":
            readme_text = raw  # bench names inside code fences count
    if readme_text is not None:
        check_bench_table(readme_text, failures)

    if failures:
        print("docs-gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"docs-gate passed ({len(files)} files checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI docs gate: broken intra-repo links and a stale figure-binary table.

Checks, relative to the repo root (the script's parent directory):

  1. Every relative markdown link in README.md and docs/*.md points at a
     file or directory that exists. External links (http/https/mailto) and
     pure fragments (#...) are skipped; a fragment on a relative link is
     stripped before the existence check.

  2. README.md's bench table stays in sync with bench/: every bench/*.cc
     translation unit must be mentioned as its binary name (bench_<stem>),
     and every `bench_...` name mentioned in README.md must still have a
     source file. This keeps the figure-to-binary map trustworthy as bench
     binaries are added or renamed.

  3. README.md's "Algorithm registry" table stays in sync with the engine
     registry: every canonical name registered in
     src/engine/algorithms.cc (the `info.name = "..."` lines — the
     registrations follow that fixed shape for exactly this check) must
     appear as a `name` row in the table, and every row must still be
     registered. Aliases are checked the same way against the row's alias
     column.

  4. README.md's "Query family" table stays in sync with the engine's
     query vocabulary: every QueryKind spelling returned by
     QueryKindName() in src/engine/solve_request.h (the
     `case QueryKind::...: return "...";` lines) must appear as a
     `name` row under the "## Query family" heading, and every row must
     still be a QueryKind. Adding a kind without documenting it — or
     documenting a kind that no longer exists — fails CI.

  5. README.md's "Serving" flag table stays in sync with holimd_cli:
     every flag declared via `args->Declare("...")` in
     tools/holimd_cli.cc must appear as a `--flag` row under the
     "## Serving" heading, and every row must still be declared.

Exit 1 with a per-finding message on any violation.

Usage: python3 tools/check_docs.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — excluding images' inner parens handled well enough for
# repo docs; fenced code blocks are stripped first so example links and
# shell snippets don't count.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
BENCH_NAME_RE = re.compile(r"\bbench_[A-Za-z0-9_]+\b")
# `src/bench_support/` is the harness directory, not a binary.
NOT_BINARIES = {"bench_support"}


def doc_files():
    files = []
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    docs = REPO / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_links(path, text, failures):
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            try:
                shown = resolved.relative_to(REPO)
            except ValueError:  # link escapes the repo root
                shown = resolved
            failures.append(f"{path.relative_to(REPO)}: broken link "
                            f"'{target}' (no {shown})")


def check_bench_table(readme_text, failures):
    bench_dir = REPO / "bench"
    sources = {f"bench_{src.stem}" for src in bench_dir.glob("*.cc")
               if src.stem != "common"}
    mentioned = set(BENCH_NAME_RE.findall(readme_text)) - NOT_BINARIES
    for missing in sorted(sources - mentioned):
        failures.append(f"README.md: bench binary '{missing}' "
                        "(from bench/) is not documented in the bench table")
    for stale in sorted(mentioned - sources):
        failures.append(f"README.md: mentions '{stale}' but bench/ has no "
                        "such source — remove or rename the table row")


REGISTRY_SOURCE = REPO / "src" / "engine" / "algorithms.cc"
REG_NAME_RE = re.compile(r'info\.name = "([^"]+)"')
REG_ALIASES_RE = re.compile(r'info\.aliases = \{([^}]*)\}')
REGISTRY_HEADING = "## Algorithm registry"


def registered_algorithms():
    """{canonical name: frozenset(aliases)} registered in
    engine/algorithms.cc. Aliases are attributed to the name whose
    `info.name` line precedes them (each registration block sets name
    first, aliases second)."""
    text = "\n".join(
        line for line in
        REGISTRY_SOURCE.read_text(encoding="utf-8").splitlines()
        if not line.lstrip().startswith("//"))
    registered = {}
    current = None
    combined = re.compile(
        f"{REG_NAME_RE.pattern}|{REG_ALIASES_RE.pattern}")
    for m in combined.finditer(text):
        if m.group(1) is not None:
            current = m.group(1)
            registered[current] = set()
        elif current is not None:
            registered[current].update(re.findall(r'"([^"]+)"', m.group(2)))
    return registered


def check_registry_table(readme_text, failures):
    if not REGISTRY_SOURCE.exists():
        failures.append(f"{REGISTRY_SOURCE.relative_to(REPO)} missing — the "
                        "registry/README sync check has nothing to parse")
        return
    registered = registered_algorithms()
    if not registered:
        failures.append("src/engine/algorithms.cc: no `info.name = \"...\"` "
                        "registrations found — registration shape changed?")
        return
    # The table rows under the "## Algorithm registry" heading: first cell
    # is `name`, second is the alias list (backticked, or "—"). Aliases
    # are checked per row, so an alias filed under the wrong algorithm
    # fails too.
    section = readme_text.split(REGISTRY_HEADING, 1)
    if len(section) < 2:
        failures.append(f"README.md: no '{REGISTRY_HEADING}' section — the "
                        "registry table must document every registered "
                        "algorithm")
        return
    body = section[1].split("\n## ", 1)[0]
    documented = {}
    for line in body.splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|([^|]*)\|", line)
        if not m:
            continue
        documented[m.group(1)] = set(re.findall(r"`([^`]+)`", m.group(2)))
    for missing in sorted(registered.keys() - documented.keys()):
        failures.append(f"README.md: registered algorithm '{missing}' is "
                        "not documented in the Algorithm registry table")
    for stale in sorted(documented.keys() - registered.keys()):
        failures.append(f"README.md: Algorithm registry table row "
                        f"'{stale}' is not registered in "
                        "src/engine/algorithms.cc")
    for name in sorted(registered.keys() & documented.keys()):
        if registered[name] != documented[name]:
            failures.append(
                f"README.md: Algorithm registry row '{name}' documents "
                f"aliases {sorted(documented[name])} but "
                f"src/engine/algorithms.cc registers "
                f"{sorted(registered[name])}")


QUERY_SOURCE = REPO / "src" / "engine" / "solve_request.h"
QUERY_NAME_RE = re.compile(r'case QueryKind::k\w+:\s*return "([^"]+)";')
QUERY_HEADING = "## Query family"


def check_query_table(readme_text, failures):
    if not QUERY_SOURCE.exists():
        failures.append(f"{QUERY_SOURCE.relative_to(REPO)} missing — the "
                        "query-vocabulary/README sync check has nothing to "
                        "parse")
        return
    declared = set(QUERY_NAME_RE.findall(
        QUERY_SOURCE.read_text(encoding="utf-8")))
    if not declared:
        failures.append("src/engine/solve_request.h: no QueryKindName "
                        "`case ...: return \"...\";` spellings found — "
                        "the naming shape changed?")
        return
    section = readme_text.split(QUERY_HEADING, 1)
    if len(section) < 2:
        failures.append(f"README.md: no '{QUERY_HEADING}' section — the "
                        "query table must document every QueryKind")
        return
    body = section[1].split("\n## ", 1)[0]
    documented = set()
    for line in body.splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if m:
            documented.add(m.group(1))
    for missing in sorted(declared - documented):
        failures.append(f"README.md: query kind '{missing}' "
                        "(QueryKindName in src/engine/solve_request.h) is "
                        "not documented in the Query family table")
    for stale in sorted(documented - declared):
        failures.append(f"README.md: Query family table row '{stale}' is "
                        "not a QueryKind in src/engine/solve_request.h")


SERVING_SOURCE = REPO / "tools" / "holimd_cli.cc"
SERVING_FLAG_RE = re.compile(r'args->Declare\("([^"]+)"')
SERVING_HEADING = "## Serving"


def check_serving_table(readme_text, failures):
    """README's Serving flag table vs the flags holimd_cli declares, both
    directions — same contract as the registry/query tables: a flag added
    without a row, or a row whose flag is gone, fails CI."""
    if not SERVING_SOURCE.exists():
        failures.append(f"{SERVING_SOURCE.relative_to(REPO)} missing — the "
                        "serving flag-table sync check has nothing to parse")
        return
    declared = set(SERVING_FLAG_RE.findall(
        SERVING_SOURCE.read_text(encoding="utf-8")))
    if not declared:
        failures.append("tools/holimd_cli.cc: no `args->Declare(\"...\")` "
                        "flags found — the declaration shape changed?")
        return
    section = readme_text.split(SERVING_HEADING, 1)
    if len(section) < 2:
        failures.append(f"README.md: no '{SERVING_HEADING}' section — the "
                        "serving flag table must document every holimd_cli "
                        "flag")
        return
    body = section[1].split("\n## ", 1)[0]
    documented = set()
    for line in body.splitlines():
        m = re.match(r"\|\s*`--([^`]+)`\s*\|", line)
        if m:
            documented.add(m.group(1))
    for missing in sorted(declared - documented):
        failures.append(f"README.md: holimd_cli flag '--{missing}' is not "
                        "documented in the Serving flag table")
    for stale in sorted(documented - declared):
        failures.append(f"README.md: Serving flag table row '--{stale}' is "
                        "not declared in tools/holimd_cli.cc")


def main():
    failures = []
    files = doc_files()
    if not files:
        failures.append("README.md missing at repo root")
    readme_text = None
    for path in files:
        raw = path.read_text(encoding="utf-8")
        check_links(path, FENCE_RE.sub("", raw), failures)
        if path.name == "README.md":
            readme_text = raw  # bench names inside code fences count
    if readme_text is not None:
        check_bench_table(readme_text, failures)
        check_registry_table(readme_text, failures)
        check_query_table(readme_text, failures)
        check_serving_table(readme_text, failures)

    if failures:
        print("docs-gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"docs-gate passed ({len(files)} files checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main())

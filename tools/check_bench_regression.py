#!/usr/bin/env python3
"""CI bench-regression gate for BENCH_rr_engine.json.

Compares one or more fresh runs of bench_micro_rr_engine against the
committed baseline and fails (exit 1) when a tracked metric regresses more
than the allowed threshold:

  * bytes_per_set, per engine row — deterministic given the build (same
    seeds, same growth policy), so every run must stay within threshold of
    the baseline, and runs must agree with each other almost exactly.
  * incremental_select.select_speedup — a timing *ratio* (rebuild path vs
    incremental index on the same machine), so it transfers across runner
    hardware where raw seconds would not. The gate takes the best value
    across the supplied runs: CI runs the bench twice and a regression is
    only real if neither run reaches the bar.

Run-to-run jitter of the speedup is reported; if it exceeds --jitter-limit
the environment is too noisy for the timing gate to mean anything, and the
gate fails with a distinct message (rerun the job) rather than letting a
lucky pair of runs mask a real regression.

Usage:
  tools/check_bench_regression.py --baseline BENCH_rr_engine.json \
      --run run1.json --run run2.json [--threshold 0.15] [--jitter-limit 0.5]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_rr_engine.json")
    parser.add_argument("--run", action="append", required=True,
                        dest="runs", help="fresh bench JSON (repeatable)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--jitter-limit", type=float, default=0.5,
                        help="max run-to-run speedup spread before the "
                             "timing gate is declared unusable (default 0.5)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    runs = [(path, load(path)) for path in args.runs]
    failures = []

    # The comparison only makes sense on identical workload geometry.
    for key in ("nodes", "sets"):
        for path, run in runs:
            if run.get(key) != baseline.get(key):
                sys.exit(f"error: {path} ran with {key}={run.get(key)} but "
                         f"baseline has {key}={baseline.get(key)}; "
                         "regenerate the baseline or fix the CI invocation")

    # --- deterministic gate: bytes_per_set per engine row -----------------
    base_rows = {row["engine"]: row for row in baseline.get("results", [])}
    for engine, base_row in sorted(base_rows.items()):
        base_bytes = base_row["bytes_per_set"]
        limit = base_bytes * (1.0 + args.threshold)
        values = []
        for path, run in runs:
            row = next((r for r in run.get("results", [])
                        if r["engine"] == engine), None)
            if row is None:
                failures.append(f"{path}: engine row '{engine}' missing")
                continue
            values.append(row["bytes_per_set"])
            if row["bytes_per_set"] > limit:
                failures.append(
                    f"{path}: {engine} bytes_per_set {row['bytes_per_set']:.1f} "
                    f"> {limit:.1f} (baseline {base_bytes:.1f} +{args.threshold:.0%})")
        if values and max(values) - min(values) > 0.001 * max(values):
            failures.append(
                f"{engine}: bytes_per_set differs across runs {values} — "
                "it is deterministic; the binary or growth policy changed "
                "between runs")
        status = "ok" if not any(engine in f for f in failures) else "FAIL"
        print(f"bytes_per_set  {engine:<22} baseline {base_bytes:7.1f}  "
              f"runs {values}  [{status}]")

    # --- timing gate: incremental_select.select_speedup -------------------
    base_inc = baseline.get("incremental_select")
    if base_inc is None:
        sys.exit("error: baseline has no incremental_select section; "
                 "regenerate it with the current bench binary")
    base_speedup = base_inc["select_speedup"]
    speedups = []
    for path, run in runs:
        inc = run.get("incremental_select")
        if inc is None:
            failures.append(f"{path}: incremental_select section missing")
            continue
        speedups.append(inc["select_speedup"])
    if speedups:
        best = max(speedups)
        floor = base_speedup * (1.0 - args.threshold)
        jitter = (max(speedups) - min(speedups)) / max(speedups)
        print(f"select_speedup {'incremental_select':<22} baseline "
              f"{base_speedup:7.2f}  runs {speedups}  "
              f"jitter {jitter:.0%}  floor {floor:.2f}")
        if jitter > args.jitter_limit:
            failures.append(
                f"select_speedup jitter {jitter:.0%} exceeds "
                f"{args.jitter_limit:.0%}: runs too noisy to gate on; rerun")
        elif best < floor:
            failures.append(
                f"incremental_select.select_speedup best-of-{len(speedups)} "
                f"{best:.2f} < {floor:.2f} "
                f"(baseline {base_speedup:.2f} -{args.threshold:.0%})")

    if failures:
        print("\nbench-gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench-gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

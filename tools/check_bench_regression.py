#!/usr/bin/env python3
"""CI bench-regression gate for the committed BENCH_*.json baselines.

Dispatches on the baseline's "bench" field:

  * "rr_engine" (BENCH_rr_engine.json, from bench_micro_rr_engine):
      - bytes_per_set, per engine row — deterministic given the build (same
        seeds, same growth policy), so every run must stay within threshold
        of the baseline, and runs must agree with each other almost exactly.
      - incremental_select.select_speedup — a timing *ratio* (rebuild path
        vs incremental index on the same machine), so it transfers across
        runner hardware where raw seconds would not.

  * "scoring" (BENCH_scoring.json, from bench_micro_scoring):
      - incremental_rescore.<scorer>.work_ratio — node-level Delta
        evaluations full-path / incremental-path. Deterministic given the
        graph seed and config: every run must stay within threshold and
        runs must agree exactly.
      - incremental_rescore.<scorer>.rescore_speedup — a timing ratio,
        gated like select_speedup.

  * "engine" (BENCH_engine.json, from bench_micro_engine):
      - warm.workspace_bytes — capacity-based footprint of the warm
        Workspace after the batch (arena + selector state); deterministic
        given the fixed sampling seeds, gated like bytes_per_set.
      - batch.batch_speedup — warm-vs-cold wall time of the 8-query
        algorithm-comparison batch (the N-query amortization the engine
        exists for); a timing ratio, gated like select_speedup.
      - batch.cold_sketch_builds / warm_sketch_builds — exact artifact
        build counts (8 vs 1); any drift means the Workspace keying broke.

  * "spread_oracle" (BENCH_spread.json, from bench_micro_spread_oracle):
      - arena.bytes_per_snapshot — deterministic (fixed sampling seeds and
        exact capacity accounting): gated like bytes_per_set.
      - session.session_work_ratio — nodes touched evaluating the growing
        seed prefixes one-shot vs the activate-once incremental session;
        derived from integer reach counts, so deterministic.
      - celf.spread_parity_vs_mc — MC-estimated spread of the
        sketch-selected seeds over that of the MC-selected seeds, both
        under the same fixed-seed estimator; deterministic, and ~1.0 means
        the sketch oracle picks seeds as good as MC-driven greedy.
      - celf.celf_speedup_vs_mc and celf.incremental_vs_oneshot_speedup —
        timing ratios (single-thread CELF runs on the same machine), gated
        like select_speedup.
      - bitparallel.speedup_vs_scalar_session — scalar-session CELF seconds
        over bit-parallel-session CELF seconds (64 live-edge worlds per
        machine word, bitwise-identical seeds and spreads); a timing ratio,
        gated like select_speedup.

  * "query_family" (BENCH_query.json, from bench_micro_query_family):
      - budgeted.uniform_parity / budgeted.lazy_eager_seed_match /
        targeted.allones_parity / explain.contribution_sum_parity — the
        query-vocabulary contracts (uniform-cost budgeted == top-k,
        lazy == eager budgeted seeds, all-ones targeted == untargeted,
        explain contributions telescope to the evaluate spread). All are
        exactly 1.0 by construction; any drift means a weighted kernel or
        the budget heap discipline broke.
      - targeted.topic_gain_ratio — weighted spread of the targeted solve
        over the untargeted winner rescored on the same Twitter-topic
        weights; deterministic (fixed sampling seeds), must not fall.
      - budgeted.lazy_speedup and explain.explain_speedup_vs_solve —
        timing ratios (eager-vs-lazy budgeted selection; solve-vs-explain
        attribution), gated like select_speedup.

  * "streaming" (BENCH_streaming.json, from bench_micro_streaming):
      - solve.parity and rr.arena_match — booleans the bench itself
        HOLIM_CHECKs per churn step (warm post-delta solve bitwise equal
        to a cold rebuild; patched RR arena equal to a fresh replay). The
        binary aborts on violation, so a written JSON always carries
        true; the gate re-asserts them as exact contracts anyway.
      - solve.speedup — incremental (ApplyDelta + warm re-solve) vs
        full-rebuild wall time over the churn sequence; a timing ratio,
        gated like select_speedup PLUS an absolute floor of 3.0x (the
        streaming layer's reason to exist; below that, rebuilding wins
        once noise is accounted for).
      - rr.speedup — RR block-replay vs fresh GenerateParallel under
        single-edge churn; a timing ratio, gated like select_speedup
        (no absolute floor: hub-touching updates legitimately degrade
        toward full resample on a BA graph).
      - artifacts.patched / artifacts.evicted — exact per-sequence
        artifact migration counts; any drift means Workspace delta
        patching or the engine's eviction protocol changed.

Timing ratios take the best value across the supplied runs: CI runs each
bench twice and a regression is only real if neither run reaches the bar.
Run-to-run jitter of a timing ratio is reported; if it exceeds
--jitter-limit the environment is too noisy for the timing gate to mean
anything, and the gate fails with a distinct message (rerun the job) rather
than letting a lucky pair of runs mask a real regression.

Usage:
  tools/check_bench_regression.py --baseline BENCH_rr_engine.json \
      --run run1.json --run run2.json [--threshold 0.15] [--jitter-limit 0.5]
  tools/check_bench_regression.py --baseline BENCH_scoring.json \
      --run run1.json --run run2.json
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"error: {path}: top level is {type(data).__name__}, "
                 "expected a JSON object (corrupt bench JSON)")
    return data


def field(obj, key, context):
    """obj[key], but a missing/mis-typed field dies with the field and file
    named instead of a bare KeyError traceback."""
    if not isinstance(obj, dict):
        sys.exit(f"error: {context}: expected a JSON object holding "
                 f"'{key}', got {type(obj).__name__} (corrupt bench JSON)")
    if key not in obj:
        sys.exit(f"error: {context}: required field '{key}' is missing "
                 "(corrupt or outdated bench JSON; regenerate it with the "
                 "current bench binary)")
    return obj[key]


def check_geometry(baseline, runs, keys):
    """The comparison only makes sense on identical workload geometry."""
    for key in keys:
        for path, run in runs:
            if run.get(key) != baseline.get(key):
                sys.exit(f"error: {path} ran with {key}={run.get(key)} but "
                         f"baseline has {key}={baseline.get(key)}; "
                         "regenerate the baseline or fix the CI invocation")


def gate_deterministic(name, base_value, values, threshold, failures,
                       larger_is_better):
    """Every run must be within threshold of the baseline AND runs must
    agree with each other (the metric is deterministic by construction)."""
    if larger_is_better:
        limit = base_value * (1.0 - threshold)
        bad = [v for v in values if v < limit]
        direction = "<"
    else:
        limit = base_value * (1.0 + threshold)
        bad = [v for v in values if v > limit]
        direction = ">"
    for v in bad:
        failures.append(f"{name}: {v:.2f} {direction} {limit:.2f} "
                        f"(baseline {base_value:.2f} ±{threshold:.0%})")
    if values and max(values) - min(values) > 0.001 * max(abs(v) for v in values):
        failures.append(
            f"{name}: differs across runs {values} — it is deterministic; "
            "the binary or config changed between runs")
    status = "ok" if not any(name in f for f in failures) else "FAIL"
    print(f"{name:<40} baseline {base_value:9.2f}  runs {values}  [{status}]")


def gate_timing_ratio(name, base_value, values, threshold, jitter_limit,
                      failures):
    """Best-of-runs must reach baseline * (1 - threshold); excessive
    run-to-run jitter fails distinctly (environment too noisy to gate)."""
    if not values:
        return
    best = max(values)
    floor = base_value * (1.0 - threshold)
    jitter = (max(values) - min(values)) / max(values)
    print(f"{name:<40} baseline {base_value:9.2f}  runs {values}  "
          f"jitter {jitter:.0%}  floor {floor:.2f}")
    if jitter > jitter_limit:
        failures.append(f"{name} jitter {jitter:.0%} exceeds "
                        f"{jitter_limit:.0%}: runs too noisy to gate on; "
                        "rerun")
    elif best < floor:
        failures.append(f"{name} best-of-{len(values)} {best:.2f} < "
                        f"{floor:.2f} (baseline {base_value:.2f} "
                        f"-{threshold:.0%})")


def gate_rr_engine(baseline, runs, args, failures):
    check_geometry(baseline, runs, ("nodes", "sets"))

    # --- deterministic gate: bytes_per_set per engine row -----------------
    base_rows = {field(row, "engine", f"{args.baseline} results row"): row
                 for row in baseline.get("results", [])}
    for engine, base_row in sorted(base_rows.items()):
        values = []
        for path, run in runs:
            row = next((r for r in run.get("results", [])
                        if r.get("engine") == engine), None)
            if row is None:
                # Metric name included so the per-metric [ok]/FAIL status
                # line (which greps failures for it) reflects the miss.
                failures.append(
                    f"{path}: bytes_per_set {engine}: engine row missing")
                continue
            values.append(field(row, "bytes_per_set",
                                f"{path} results[{engine}]"))
        gate_deterministic(f"bytes_per_set {engine}",
                           field(base_row, "bytes_per_set",
                                 f"{args.baseline} results[{engine}]"),
                           values, args.threshold, failures,
                           larger_is_better=False)

    # --- timing gate: incremental_select.select_speedup -------------------
    base_inc = baseline.get("incremental_select")
    if base_inc is None:
        sys.exit("error: baseline has no incremental_select section; "
                 "regenerate it with the current bench binary")
    speedups = []
    for path, run in runs:
        inc = run.get("incremental_select")
        if inc is None:
            failures.append(f"{path}: incremental_select section missing")
            continue
        speedups.append(field(inc, "select_speedup",
                              f"{path} incremental_select"))
    gate_timing_ratio("incremental_select.select_speedup",
                      field(base_inc, "select_speedup",
                            f"{args.baseline} incremental_select"),
                      speedups, args.threshold, args.jitter_limit, failures)


def gate_scoring(baseline, runs, args, failures):
    # seed included: work_ratio is only deterministic for identical seeds.
    check_geometry(baseline, runs, ("graph", "nodes", "l", "k", "seed"))

    base_section = baseline.get("incremental_rescore")
    if base_section is None:
        sys.exit("error: baseline has no incremental_rescore section; "
                 "regenerate it with the current bench binary")
    scorers = sorted(key for key, value in base_section.items()
                     if isinstance(value, dict))
    if not scorers:
        sys.exit("error: baseline incremental_rescore has no scorer rows")
    for scorer in scorers:
        base_row = base_section[scorer]
        work_ratios, speedups = [], []
        for path, run in runs:
            row = (run.get("incremental_rescore") or {}).get(scorer)
            if row is None:
                failures.append(f"{path}: {scorer}.work_ratio / "
                                f"{scorer}.rescore_speedup: "
                                "incremental_rescore row missing")
                continue
            ctx = f"{path} incremental_rescore.{scorer}"
            work_ratios.append(field(row, "work_ratio", ctx))
            speedups.append(field(row, "rescore_speedup", ctx))
        base_ctx = f"{args.baseline} incremental_rescore.{scorer}"
        # work_ratio is deterministic (node-eval counts, not seconds).
        gate_deterministic(f"{scorer}.work_ratio",
                           field(base_row, "work_ratio", base_ctx),
                           work_ratios, args.threshold, failures,
                           larger_is_better=True)
        gate_timing_ratio(f"{scorer}.rescore_speedup",
                          field(base_row, "rescore_speedup", base_ctx),
                          speedups, args.threshold, args.jitter_limit,
                          failures)


def gate_spread_oracle(baseline, runs, args, failures):
    check_geometry(baseline, runs,
                   ("nodes", "snapshots", "mc", "k", "candidates", "seed"))

    def section_values(section, key):
        values = []
        for path, run in runs:
            row = run.get(section)
            if row is None or key not in row:
                failures.append(f"{path}: {section}.{key}: missing")
                continue
            values.append(row[key])
        return values

    base_arena = baseline.get("arena")
    base_session = baseline.get("session")
    base_celf = baseline.get("celf")
    base_bp = baseline.get("bitparallel")
    if (base_arena is None or base_session is None or base_celf is None
            or base_bp is None):
        sys.exit("error: baseline lacks arena/session/celf/bitparallel "
                 "sections; regenerate it with the current bench binary")

    def base(section_obj, section, key):
        return field(section_obj, key, f"{args.baseline} {section}")

    gate_deterministic("arena.bytes_per_snapshot",
                       base(base_arena, "arena", "bytes_per_snapshot"),
                       section_values("arena", "bytes_per_snapshot"),
                       args.threshold, failures, larger_is_better=False)
    gate_deterministic("session.session_work_ratio",
                       base(base_session, "session", "session_work_ratio"),
                       section_values("session", "session_work_ratio"),
                       args.threshold, failures, larger_is_better=True)
    gate_deterministic("celf.spread_parity_vs_mc",
                       base(base_celf, "celf", "spread_parity_vs_mc"),
                       section_values("celf", "spread_parity_vs_mc"),
                       args.threshold, failures, larger_is_better=True)
    gate_timing_ratio("celf.celf_speedup_vs_mc",
                      base(base_celf, "celf", "celf_speedup_vs_mc"),
                      section_values("celf", "celf_speedup_vs_mc"),
                      args.threshold, args.jitter_limit, failures)
    gate_timing_ratio("celf.incremental_vs_oneshot_speedup",
                      base(base_celf, "celf",
                           "incremental_vs_oneshot_speedup"),
                      section_values("celf", "incremental_vs_oneshot_speedup"),
                      args.threshold, args.jitter_limit, failures)
    gate_timing_ratio("bitparallel.speedup_vs_scalar_session",
                      base(base_bp, "bitparallel",
                           "speedup_vs_scalar_session"),
                      section_values("bitparallel",
                                     "speedup_vs_scalar_session"),
                      args.threshold, args.jitter_limit, failures)


def gate_engine(baseline, runs, args, failures):
    check_geometry(baseline, runs, ("nodes", "queries", "k", "snapshots",
                                    "seed", "algorithms"))

    base_batch = baseline.get("batch")
    base_warm = baseline.get("warm")
    if base_batch is None or base_warm is None:
        sys.exit("error: baseline lacks batch/warm sections; regenerate it "
                 "with the current bench binary")

    def section_values(section, key):
        values = []
        for path, run in runs:
            row = run.get(section)
            if row is None or key not in row:
                failures.append(f"{path}: {section}.{key}: missing")
                continue
            values.append(row[key])
        return values

    # Artifact build counts are exact integers: 8 cold builds vs 1 warm
    # build. Any other value means Workspace keying or the cold/warm
    # protocol changed — fail regardless of threshold.
    for key in ("cold_sketch_builds", "warm_sketch_builds"):
        expected = field(base_batch, key, f"{args.baseline} batch")
        for value in section_values("batch", key):
            if value != expected:
                failures.append(f"batch.{key}: {value} != {expected} "
                                "(exact artifact-count contract)")
    gate_deterministic("warm.workspace_bytes",
                       field(base_warm, "workspace_bytes",
                             f"{args.baseline} warm"),
                       section_values("warm", "workspace_bytes"),
                       args.threshold, failures, larger_is_better=False)
    gate_timing_ratio("batch.batch_speedup",
                      field(base_batch, "batch_speedup",
                            f"{args.baseline} batch"),
                      section_values("batch", "batch_speedup"),
                      args.threshold, args.jitter_limit, failures)


def gate_query_family(baseline, runs, args, failures):
    check_geometry(baseline, runs, ("nodes", "k", "snapshots", "seed",
                                    "model"))

    base_budgeted = baseline.get("budgeted")
    base_targeted = baseline.get("targeted")
    base_explain = baseline.get("explain")
    if base_budgeted is None or base_targeted is None or base_explain is None:
        sys.exit("error: baseline lacks budgeted/targeted/explain sections; "
                 "regenerate it with the current bench binary")

    def section_values(section, key):
        values = []
        for path, run in runs:
            row = run.get(section)
            if row is None or key not in row:
                failures.append(f"{path}: {section}.{key}: missing")
                continue
            values.append(row[key])
        return values

    # Parity contracts are exactly 1.0 by construction (bitwise-equality
    # booleans and an exact dyadic-rational telescoping sum at the
    # power-of-two snapshot count); any other value is a broken kernel,
    # not a regression — fail regardless of threshold.
    for section, key in (("budgeted", "uniform_parity"),
                         ("budgeted", "lazy_eager_seed_match"),
                         ("targeted", "allones_parity"),
                         ("explain", "contribution_sum_parity")):
        expected = field(baseline.get(section), key,
                         f"{args.baseline} {section}")
        for value in section_values(section, key):
            if value != expected:
                failures.append(f"{section}.{key}: {value} != {expected} "
                                "(exact parity contract)")
    gate_deterministic("targeted.topic_gain_ratio",
                       field(base_targeted, "topic_gain_ratio",
                             f"{args.baseline} targeted"),
                       section_values("targeted", "topic_gain_ratio"),
                       args.threshold, failures, larger_is_better=True)
    gate_timing_ratio("budgeted.lazy_speedup",
                      field(base_budgeted, "lazy_speedup",
                            f"{args.baseline} budgeted"),
                      section_values("budgeted", "lazy_speedup"),
                      args.threshold, args.jitter_limit, failures)
    gate_timing_ratio("explain.explain_speedup_vs_solve",
                      field(base_explain, "explain_speedup_vs_solve",
                            f"{args.baseline} explain"),
                      section_values("explain", "explain_speedup_vs_solve"),
                      args.threshold, args.jitter_limit, failures)


def gate_streaming(baseline, runs, args, failures):
    check_geometry(baseline, runs, ("nodes", "snapshots", "k", "batches",
                                    "ops_per_batch", "rr_ops_per_batch",
                                    "theta", "seed", "p"))

    base_solve = baseline.get("solve")
    base_rr = baseline.get("rr")
    base_artifacts = baseline.get("artifacts")
    if base_solve is None or base_rr is None or base_artifacts is None:
        sys.exit("error: baseline lacks solve/rr/artifacts sections; "
                 "regenerate it with the current bench binary")

    def section_values(section, key):
        values = []
        for path, run in runs:
            row = run.get(section)
            if row is None or key not in row:
                failures.append(f"{path}: {section}.{key}: missing")
                continue
            values.append(row[key])
        return values

    # Exact contracts: the parity booleans and the artifact migration
    # counts — fail regardless of threshold.
    for section, key in (("solve", "parity"), ("rr", "arena_match")):
        for value in section_values(section, key):
            if value is not True:
                failures.append(f"{section}.{key}: {value} != true "
                                "(exact parity contract)")
    for key in ("patched", "evicted"):
        expected = field(base_artifacts, key, f"{args.baseline} artifacts")
        for value in section_values("artifacts", key):
            if value != expected:
                failures.append(f"artifacts.{key}: {value} != {expected} "
                                "(exact artifact-migration contract)")

    # Timing gates: baseline-relative plus the absolute 3x floor on the
    # headline incremental-solve speedup.
    solve_speedups = section_values("solve", "speedup")
    gate_timing_ratio("solve.speedup",
                      field(base_solve, "speedup", f"{args.baseline} solve"),
                      solve_speedups, args.threshold, args.jitter_limit,
                      failures)
    if solve_speedups and max(solve_speedups) < 3.0:
        failures.append(f"solve.speedup best-of-{len(solve_speedups)} "
                        f"{max(solve_speedups):.2f} < 3.00 (absolute "
                        "incremental-vs-rebuild floor)")
    gate_timing_ratio("rr.speedup",
                      field(base_rr, "speedup", f"{args.baseline} rr"),
                      section_values("rr", "speedup"), args.threshold,
                      args.jitter_limit, failures)


def gate_serving(baseline, runs, args, failures):
    check_geometry(baseline, runs, ("tenants", "tenant_nodes", "snapshots",
                                    "requests", "queue_depth",
                                    "budget_factor", "algo", "seed"))

    base_speedup = baseline.get("speedup")
    if base_speedup is None:
        sys.exit("error: baseline lacks a speedup section; regenerate it "
                 "with the current bench binary")

    def leg_values(leg, key):
        values = []
        for path, run in runs:
            row = run.get(leg)
            if row is None or key not in row:
                failures.append(f"{path}: {leg}.{key}: missing")
                continue
            values.append(row[key])
        return values

    # Exact contracts. The per-leg serving counters are a pure function of
    # the workload (closed-loop dispatch, deterministic workload stream,
    # bit-exact heat decay), so any drift means the scheduler, the
    # eviction policy, or the coalescing accounting changed behavior —
    # fail regardless of threshold.
    for leg in ("baseline", "heat"):
        base_leg = baseline.get(leg)
        if base_leg is None:
            sys.exit(f"error: baseline lacks a {leg} section; regenerate "
                     "it with the current bench binary")
        for key in ("served", "builds", "warm_sketch_hits", "coalesced",
                    "prewarms", "expired_in_queue"):
            expected = field(base_leg, key, f"{args.baseline} {leg}")
            for value in leg_values(leg, key):
                if value != expected:
                    failures.append(f"{leg}.{key}: {value} != {expected} "
                                    "(exact serving-counter contract)")
    # Scheduling must never change answers.
    for path, run in runs:
        speedup = run.get("speedup")
        value = None if speedup is None else \
            speedup.get("seeds_match_baseline")
        if value is not True:
            failures.append(f"{path}: speedup.seeds_match_baseline: "
                            f"{value} != true (exact parity contract)")

    # Timing gates: the headline QPS ratio (heat+affinity vs FIFO+LRU on
    # the same binary) carries an absolute 2x floor on top of the
    # baseline-relative gate; the p99 ratio is baseline-relative only.
    def speedup_values(key):
        values = []
        for path, run in runs:
            speedup = run.get("speedup")
            if speedup is None or key not in speedup:
                failures.append(f"{path}: speedup.{key}: missing")
                continue
            values.append(speedup[key])
        return values

    qps_ratios = speedup_values("qps_ratio")
    gate_timing_ratio("speedup.qps_ratio",
                      field(base_speedup, "qps_ratio",
                            f"{args.baseline} speedup"),
                      qps_ratios, args.threshold, args.jitter_limit,
                      failures)
    if qps_ratios and max(qps_ratios) < 2.0:
        failures.append(f"speedup.qps_ratio best-of-{len(qps_ratios)} "
                        f"{max(qps_ratios):.2f} < 2.00 (absolute "
                        "heat-vs-baseline serving floor)")
    gate_timing_ratio("speedup.p99_ratio",
                      field(base_speedup, "p99_ratio",
                            f"{args.baseline} speedup"),
                      speedup_values("p99_ratio"), args.threshold,
                      args.jitter_limit, failures)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--run", action="append", required=True,
                        dest="runs", help="fresh bench JSON (repeatable)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--jitter-limit", type=float, default=0.5,
                        help="max run-to-run timing-ratio spread before the "
                             "timing gate is declared unusable (default 0.5)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    runs = [(path, load(path)) for path in args.runs]
    failures = []

    kind = baseline.get("bench")
    for path, run in runs:
        if run.get("bench") != kind:
            sys.exit(f"error: {path} is a '{run.get('bench')}' bench but the "
                     f"baseline is '{kind}'")
    if kind == "rr_engine":
        gate_rr_engine(baseline, runs, args, failures)
    elif kind == "scoring":
        gate_scoring(baseline, runs, args, failures)
    elif kind == "spread_oracle":
        gate_spread_oracle(baseline, runs, args, failures)
    elif kind == "engine":
        gate_engine(baseline, runs, args, failures)
    elif kind == "query_family":
        gate_query_family(baseline, runs, args, failures)
    elif kind == "streaming":
        gate_streaming(baseline, runs, args, failures)
    elif kind == "serving":
        gate_serving(baseline, runs, args, failures)
    else:
        sys.exit(f"error: unknown bench kind '{kind}' in {args.baseline}")

    if failures:
        print("\nbench-gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench-gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

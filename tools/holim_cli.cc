// holim_cli — run any registered seed-selection algorithm on any dataset
// (synthetic stand-in or a real SNAP edge list) and report seeds, spread,
// time, memory. All dispatch goes through HolimEngine: `--algo` accepts
// any registry name or alias, and `--list-algorithms` prints the registry.
//
// Examples:
//   holim_cli --list-algorithms
//   holim_cli --algo=easyim --dataset=NetHEPT --scale=0.2 --model=IC --k=50
//   holim_cli --algo=osim --dataset=HepPh --opinions=normal --lambda=1 --k=25
//   holim_cli --algo=tim+ --edge_list=/data/soc-LiveJournal1.txt --k=100
//   holim_cli --algo=celf++ --dataset=NetHEPT --scale=0.01 --mc=100 --k=10
//
// Query family (--query; default topk is byte-identical to the old CLI):
//   holim_cli --algo=celf --oracle=sketch --query=budgeted --budget=12 \
//             --costs=degree --k=20
//   holim_cli --algo=celf --oracle=sketch --query=targeted \
//             --targets=twitter-topic:2 --k=10
//   holim_cli --algo=celf --oracle=sketch --query=evaluate --seeds=3,17,42
//   holim_cli --algo=celf --oracle=sketch --query=explain --seeds=3,17,42

#include <cstdio>
#include <limits>

#include "bench_support/bench_main.h"
#include "bench_support/engine_support.h"
#include "bench_support/query_support.h"
#include "data/datasets.h"
#include "diffusion/spread_estimator.h"
#include "engine/holim_engine.h"
#include "graph/edge_list_io.h"
#include "graph/stats.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/string_util.h"

namespace holim {
namespace {

Result<InfluenceParams> MakeParams(const Graph& graph,
                                   const std::string& model, double p) {
  if (model == "IC") return MakeUniformIc(graph, p);
  if (model == "WC") return MakeWeightedCascade(graph);
  if (model == "LT") return MakeLinearThreshold(graph);
  return Status::InvalidArgument("unknown --model (IC|WC|LT): " + model);
}

void PrintRegistry() {
  std::printf("%-16s %-13s %-36s %-38s %s\n", "name", "aliases", "models",
              "queries", "cached artifacts");
  for (const AlgorithmInfo* info : HolimEngine::Registry().List()) {
    std::string aliases;
    for (const std::string& alias : info->aliases) {
      if (!aliases.empty()) aliases += ",";
      aliases += alias;
    }
    if (aliases.empty()) aliases = "-";
    std::printf("%-16s %-13s %-36s %-38s %s\n", info->name.c_str(),
                aliases.c_str(), info->models.c_str(),
                QueryMaskNames(info->supported_queries).c_str(),
                info->artifacts.c_str());
  }
}

Status Run(const BenchArgs& args) {
  if (args.GetBool("list-algorithms", false)) {
    PrintRegistry();
    return Status::OK();
  }
  auto config = ReadCommonConfig(args);
  const CommonOptionsSpec spec{/*oracle=*/true,
                               /*rescore_default=*/"incremental",
                               /*threads=*/true, /*query=*/true};
  HOLIM_ASSIGN_OR_RETURN(CommonOptions common,
                         ParseCommonOptions(args, spec));
  const std::string algo = args.GetString("algo", "easyim");
  const std::string model_name = args.GetString("model", "IC");
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 50));
  const double lambda = args.GetDouble("lambda", 1.0);

  // Load the graph: real edge list beats synthetic stand-in when given.
  Graph graph;
  const std::string edge_list = args.GetString("edge_list", "");
  if (!edge_list.empty()) {
    EdgeListOptions io;
    io.undirected = args.GetBool("undirected", false);
    HOLIM_ASSIGN_OR_RETURN(graph, ReadEdgeList(edge_list, io));
  } else {
    HOLIM_ASSIGN_OR_RETURN(
        graph, LoadSyntheticDataset(args.GetString("dataset", "NetHEPT"),
                                    config.scale));
  }
  HOLIM_ASSIGN_OR_RETURN(InfluenceParams params,
                         MakeParams(graph, model_name,
                                    args.GetDouble("p", 0.1)));
  auto stats = ComputeGraphStats(graph, 8, config.seed);
  std::printf("graph: n=%u m=%llu avg_deg=%.2f eff_diam90=%.1f model=%s\n",
              stats.num_nodes,
              static_cast<unsigned long long>(stats.num_edges),
              stats.avg_out_degree, stats.effective_diameter_90,
              model_name.c_str());

  // Optional opinion layer.
  const std::string opinions_kind = args.GetString("opinions", "");
  OpinionParams opinions;
  const bool opinion_aware = !opinions_kind.empty();
  if (opinion_aware) {
    if (opinions_kind == "uniform") {
      opinions = MakeRandomOpinions(graph, OpinionDistribution::kUniform,
                                    config.seed);
    } else if (opinions_kind == "normal") {
      opinions = MakeRandomOpinions(
          graph, OpinionDistribution::kStandardNormal, config.seed);
    } else {
      return Status::InvalidArgument(
          "unknown --opinions (uniform|normal): " + opinions_kind);
    }
  }

  const int64_t sketches = args.GetInt("sketches", 0);
  if (sketches < 0 || sketches > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "--sketches must be a positive snapshot count, got: " +
        std::to_string(sketches));
  }
  const double cache_mib = args.GetDouble("max-cache-mib", 0.0);
  if (cache_mib < 0) {
    return Status::InvalidArgument("--max-cache-mib must be >= 0");
  }

  // Deadline knobs. With none of them set the request carries no deadline
  // and the solve path (and output) is byte-identical to the old CLI.
  const double deadline_ms = args.GetDouble("deadline-ms", 0.0);
  const int64_t work_budget = args.GetInt("work-budget", 0);
  if (work_budget < 0) {
    return Status::InvalidArgument("--work-budget must be >= 0");
  }
  const std::string on_deadline = args.GetString("on-deadline", "degrade");
  OnDeadline deadline_policy;
  if (on_deadline == "degrade") {
    deadline_policy = OnDeadline::kDegrade;
  } else if (on_deadline == "fail") {
    deadline_policy = OnDeadline::kFail;
  } else {
    return Status::InvalidArgument(
        "unknown --on-deadline (fail|degrade): " + on_deadline);
  }

  EngineOptions engine_options;
  engine_options.max_cache_bytes =
      static_cast<std::size_t>(cache_mib * 1024.0 * 1024.0);
  HolimEngine engine(graph, engine_options);

  SolveRequest request = MakeSolveRequest(algo, k, params, config, common);
  request.opinions = opinion_aware ? &opinions : nullptr;
  request.oi_base = model_name == "LT" ? OiBase::kLinearThreshold
                                       : OiBase::kIndependentCascade;
  request.lambda = lambda;
  request.l = static_cast<uint32_t>(args.GetInt("l", 3));
  request.epsilon = args.GetDouble("epsilon", 0.1);
  request.max_theta =
      static_cast<std::size_t>(args.GetInt("max_theta", 2'000'000));
  request.p = args.GetDouble("p", 0.1);
  request.num_sketches = static_cast<uint32_t>(sketches);
  request.evaluate_spread = request.oracle == SpreadOracle::kSketch;
  request.deadline_ms = deadline_ms;
  request.work_budget = static_cast<uint64_t>(work_budget);
  request.on_deadline = deadline_policy;

  // Query-family materialization: graph-dependent vectors from the raw
  // --costs/--targets/--seeds specs.
  HOLIM_ASSIGN_OR_RETURN(request.node_costs,
                         MaterializeCosts(common.costs_spec, graph));
  HOLIM_ASSIGN_OR_RETURN(
      request.target_weights,
      MaterializeTargets(common.targets_spec, graph, config.seed));
  if (!common.seeds_spec.empty()) {
    HOLIM_ASSIGN_OR_RETURN(request.given_seeds,
                           ParseSeedList(common.seeds_spec, graph));
  }

  HOLIM_ASSIGN_OR_RETURN(SolveResult result, engine.Solve(request));
  if (args.GetBool("stats-json", false)) {
    // One machine-readable line, then exit: harnesses and CI smokes parse
    // this instead of sed-normalizing the human report. Keys with
    // nondeterministic values (the *_seconds timings) are grouped last so
    // a determinism check can split on "artifact_seconds".
    std::string seeds;
    for (std::size_t i = 0; i < result.seeds.size(); ++i) {
      if (i) seeds += ",";
      seeds += std::to_string(result.seeds[i]);
    }
    std::printf(
        "{\"algorithm\":\"%s\",\"query\":\"%s\",\"k\":%u,"
        "\"seeds\":[%s],\"spread\":%.6f,\"tier\":\"%s\","
        "\"degraded\":%s,\"rounds_completed\":%u,"
        "\"warm_sketch\":%s,\"warm_selector\":%s,"
        "\"sketch_arena_bytes\":%zu,\"workspace_bytes\":%zu,"
        "\"artifact_seconds\":%.6f,\"select_seconds\":%.6f,"
        "\"spread_seconds\":%.6f,\"total_seconds\":%.6f}\n",
        result.algorithm.c_str(), QueryKindName(result.query), request.k,
        seeds.c_str(), result.spread, ResultTierName(result.tier),
        result.degraded ? "true" : "false", result.rounds_completed,
        result.warm_sketch ? "true" : "false",
        result.warm_selector ? "true" : "false", result.sketch_arena_bytes,
        result.workspace_bytes, result.artifact_seconds,
        result.select_seconds, result.spread_seconds, result.total_seconds);
    return Status::OK();
  }
  if (deadline_ms > 0.0 || work_budget > 0) {
    // One machine-greppable line whenever a deadline was requested (its
    // absence keeps the default output byte-identical).
    std::printf("deadline: degraded=%s tier=%s rounds_completed=%u%s%s\n",
                result.degraded ? "true" : "false",
                ResultTierName(result.tier), result.rounds_completed,
                result.degraded ? " reason=" : "",
                result.degraded ? result.degradation_reason.c_str() : "");
  }
  if (result.sketch_arena_bytes != 0) {
    std::printf("sketch oracle: %u live-edge snapshots, arena %s "
                "(capacity-based)\n",
                request.EffectiveSketchCount(),
                HumanBytes(result.sketch_arena_bytes).c_str());
  }

  if (request.query == QueryKind::kEvaluate ||
      request.query == QueryKind::kExplain) {
    std::printf("\n%s: scored %zu given seeds in %s\n",
                result.algorithm.c_str(), result.seeds.size(),
                HumanSeconds(result.spread_seconds).c_str());
  } else {
    std::printf("\n%s selected %zu seeds in %s (exec memory %s, scorer "
                "scratch %s)\n",
                result.algorithm.c_str(), result.seeds.size(),
                HumanSeconds(result.select_seconds).c_str(),
                HumanBytes(result.overhead_bytes).c_str(),
                HumanBytes(result.scratch_bytes).c_str());
  }
  std::printf("seeds:");
  for (std::size_t i = 0; i < result.seeds.size() && i < 20; ++i) {
    std::printf(" %u", result.seeds[i]);
  }
  if (result.seeds.size() > 20) std::printf(" ...");
  std::printf("\n");
  if (request.query == QueryKind::kBudgeted) {
    std::printf("budget: spent %.4g of %.4g (%s costs)\n",
                result.total_cost, request.budget,
                common.costs_spec.empty() ? "uniform"
                                          : common.costs_spec.c_str());
  }
  std::printf("\n");

  McOptions mc;
  mc.num_simulations = config.mc;
  mc.seed = config.seed;
  const double spread = EstimateSpread(graph, params, result.seeds, mc);
  std::printf("expected spread sigma(S): %.2f (%u MC simulations)\n", spread,
              mc.num_simulations);
  if (result.sketch_arena_bytes != 0) {
    std::printf("sketch spread estimate:   %.2f (%u snapshots)\n",
                result.spread, request.EffectiveSketchCount());
  }
  const bool weighted_query =
      !request.target_weights.empty() &&
      (request.query == QueryKind::kTargeted ||
       request.query == QueryKind::kEvaluate ||
       request.query == QueryKind::kExplain);
  if (weighted_query) {
    std::size_t members = 0;
    for (const double w : request.target_weights) {
      if (w != 0.0) ++members;
    }
    std::printf("targeted spread sigma_w(S): %.2f (%zu weighted targets)\n",
                result.targeted_spread, members);
  }
  if (request.query == QueryKind::kExplain) {
    std::printf("per-seed marginal contributions (given preceding seeds):\n");
    for (std::size_t i = 0; i < result.seeds.size(); ++i) {
      std::printf("  seed %-8u %+.4f\n", result.seeds[i],
                  result.seed_contributions[i]);
    }
  }
  if (opinion_aware) {
    const OiBase base = request.oi_base;
    auto estimate = EstimateOpinionSpread(graph, params, opinions, base,
                                          result.seeds, lambda, mc);
    std::printf("opinion spread:            %.2f\n",
                estimate.opinion_spread);
    std::printf("effective opinion spread:  %.2f (lambda=%.2f)\n",
                estimate.effective_opinion_spread, lambda);
  }
  std::printf("\nworkspace: %zu artifact(s), %s held (capacity-based)\n",
              engine.workspace().num_artifacts(),
              HumanBytes(engine.workspace().MemoryFootprintBytes()).c_str());

  // Streaming churn replay: N seeded random delta batches, re-solving the
  // same request warm after each. Deterministic for a fixed flag set — the
  // batches come from MakeRandomDelta under a seed-derived stream, and a
  // warm post-delta solve is pinned bitwise to a cold rebuild.
  const int64_t churn = args.GetInt("churn", 0);
  if (churn > 0) {
    if (opinion_aware) {
      return Status::InvalidArgument(
          "--churn replays the first-layer params only; drop --opinions");
    }
    constexpr std::size_t kOpsPerBatch = 64;
    std::printf("\nchurn replay: %lld batches x %zu ops\n",
                static_cast<long long>(churn), kOpsPerBatch);
    Rng churn_rng(config.seed + 0x5EEDC0DEULL);
    InfluenceParams current = std::move(params);
    for (int64_t step = 0; step < churn; ++step) {
      const GraphDelta delta =
          MakeRandomDelta(engine.graph(), kOpsPerBatch, churn_rng);
      HOLIM_ASSIGN_OR_RETURN(HolimEngine::DeltaReport report,
                             engine.ApplyDelta(delta, current));
      current = std::move(report.params);
      request.params = &current;
      HOLIM_ASSIGN_OR_RETURN(SolveResult step_result, engine.Solve(request));
      std::printf(
          "churn[%lld]: epoch=%llu +%zu/-%zu/~%zu patched=%zu evicted=%zu "
          "n=%u m=%llu seed0=%u spread=%.4f\n",
          static_cast<long long>(step),
          static_cast<unsigned long long>(report.epoch), report.inserted,
          report.removed, report.reweighted, report.patched_sketches,
          report.evicted_artifacts, engine.graph().num_nodes(),
          static_cast<unsigned long long>(engine.graph().num_edges()),
          step_result.seeds.empty() ? kInvalidNode : step_result.seeds[0],
          step_result.spread);
    }
    std::printf("post-churn workspace: %zu artifact(s), %s held\n",
                engine.workspace().num_artifacts(),
                HumanBytes(engine.workspace().MemoryFootprintBytes()).c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace holim

int main(int argc, char** argv) {
  return holim::BenchMain(
      argc, argv, "holim_cli — influence maximization toolbox", holim::Run,
      [](holim::BenchArgs* args) {
        args->Declare("algo",
                      "registered algorithm name or alias (default easyim; "
                      "see --list-algorithms)");
        args->Declare("list-algorithms",
                      "print the algorithm registry (name, aliases, models, "
                      "supported queries, cached artifacts) and exit");
        args->Declare("dataset",
                      "synthetic stand-in name (Table 2; default NetHEPT)");
        args->Declare("edge_list",
                      "path to a SNAP edge-list file (overrides --dataset)");
        args->Declare("undirected", "treat edge list rows as undirected");
        args->Declare("model", "diffusion model: IC | WC | LT (default IC)");
        args->Declare("p",
                      "uniform IC probability, also DegreeDiscount's p "
                      "(default 0.1)");
        args->Declare("k", "number of seeds (default 50)");
        args->Declare("l",
                      "EaSyIM/OSIM/ASIM/path-union path-length horizon "
                      "(default 3)");
        args->Declare("opinions",
                      "opinion layer: uniform | normal (required for osim; "
                      "switches greedy/celf to the opinion objective)");
        args->Declare("lambda", "negative-opinion penalty (default 1)");
        args->Declare("epsilon",
                      "TIM+/IMM approximation slack (default 0.1)");
        args->Declare("max_theta", "TIM+/IMM RR-set cap (default 2000000)");
        args->Declare("sketches",
                      "sketch-oracle snapshot count R (default: the --mc "
                      "value; only used with --oracle=sketch)");
        args->Declare("churn",
                      "after the initial solve, apply N random 64-op delta "
                      "batches (seeded from --seed) and re-solve warm after "
                      "each, printing one deterministic line per step");
        args->Declare("max-cache-mib",
                      "engine Workspace artifact budget in MiB; LRU "
                      "eviction above it (default 0 = unlimited)");
        args->Declare("stats-json",
                      "after the solve, print ONE machine-readable JSON "
                      "result line (seeds, spread, tier, warm flags, "
                      "timings) and exit — for harnesses/CI instead of "
                      "scraping the human output");
        args->Declare("deadline-ms",
                      "wall-clock solve deadline in milliseconds (default 0 "
                      "= none); see --on-deadline for what expiry does");
        args->Declare("work-budget",
                      "deterministic deadline in checkpoint ticks (default 0 "
                      "= none; overrides --deadline-ms): the solve stops at "
                      "the Nth cooperative checkpoint, reproducibly");
        args->Declare("on-deadline",
                      "deadline expiry policy: degrade (default; return "
                      "best-so-far prefix seeds or a heuristic tier, exit 0) "
                      "| fail (typed error, exit 9/10)");
        holim::DeclareCommonOptions(
            args, {/*oracle=*/true, /*rescore_default=*/"incremental",
                   /*threads=*/true, /*query=*/true});
      });
}

// holim_cli — run any seed-selection algorithm on any dataset (synthetic
// stand-in or a real SNAP edge list) and report seeds, spread, time, memory.
//
// Examples:
//   holim_cli --algo=easyim --dataset=NetHEPT --scale=0.2 --model=IC --k=50
//   holim_cli --algo=osim --dataset=HepPh --opinions=normal --lambda=1 --k=25
//   holim_cli --algo=tim --edge_list=/data/soc-LiveJournal1.txt --k=100
//   holim_cli --algo=celf --dataset=NetHEPT --scale=0.01 --mc=100 --k=10

#include <cstdio>
#include <limits>
#include <memory>

#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/heuristics.h"
#include "algo/imm.h"
#include "algo/irie.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "algo/tim_plus.h"
#include "bench_support/bench_main.h"
#include "data/datasets.h"
#include "diffusion/sketch_oracle.h"
#include "diffusion/spread_estimator.h"
#include "graph/edge_list_io.h"
#include "graph/stats.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace holim {
namespace {

Result<InfluenceParams> MakeParams(const Graph& graph,
                                   const std::string& model, double p) {
  if (model == "IC") return MakeUniformIc(graph, p);
  if (model == "WC") return MakeWeightedCascade(graph);
  if (model == "LT") return MakeLinearThreshold(graph);
  return Status::InvalidArgument("unknown --model (IC|WC|LT): " + model);
}

Status Run(const BenchArgs& args) {
  auto config = ReadCommonConfig(args);
  const std::string algo = args.GetString("algo", "easyim");
  const std::string model_name = args.GetString("model", "IC");
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 50));
  const uint32_t l = static_cast<uint32_t>(args.GetInt("l", 3));
  const double lambda = args.GetDouble("lambda", 1.0);

  // Load the graph: real edge list beats synthetic stand-in when given.
  Graph graph;
  const std::string edge_list = args.GetString("edge_list", "");
  if (!edge_list.empty()) {
    EdgeListOptions io;
    io.undirected = args.GetBool("undirected", false);
    HOLIM_ASSIGN_OR_RETURN(graph, ReadEdgeList(edge_list, io));
  } else {
    HOLIM_ASSIGN_OR_RETURN(
        graph, LoadSyntheticDataset(args.GetString("dataset", "NetHEPT"),
                                    config.scale));
  }
  HOLIM_ASSIGN_OR_RETURN(InfluenceParams params,
                         MakeParams(graph, model_name,
                                    args.GetDouble("p", 0.1)));
  auto stats = ComputeGraphStats(graph, 8, config.seed);
  std::printf("graph: n=%u m=%llu avg_deg=%.2f eff_diam90=%.1f model=%s\n",
              stats.num_nodes,
              static_cast<unsigned long long>(stats.num_edges),
              stats.avg_out_degree, stats.effective_diameter_90,
              model_name.c_str());

  // Optional opinion layer.
  const std::string opinions_kind = args.GetString("opinions", "");
  OpinionParams opinions;
  const bool opinion_aware = !opinions_kind.empty();
  if (opinion_aware) {
    if (opinions_kind == "uniform") {
      opinions = MakeRandomOpinions(graph, OpinionDistribution::kUniform,
                                    config.seed);
    } else if (opinions_kind == "normal") {
      opinions = MakeRandomOpinions(
          graph, OpinionDistribution::kStandardNormal, config.seed);
    } else {
      return Status::InvalidArgument(
          "unknown --opinions (uniform|normal): " + opinions_kind);
    }
  }
  const OiBase base = model_name == "LT" ? OiBase::kLinearThreshold
                                         : OiBase::kIndependentCascade;

  McOptions mc;
  mc.num_simulations = config.mc;
  mc.seed = config.seed;

  // Spread oracle: "mc" (default, the paper's methodology) or "sketch"
  // (presampled live-edge snapshots, reused across every greedy/CELF
  // evaluation and the final spread report).
  HOLIM_ASSIGN_OR_RETURN(SpreadOracle oracle, ParseOracleFlag(args));
  std::shared_ptr<const SketchOracle> sketch;
  if (oracle == SpreadOracle::kSketch) {
    if (opinion_aware) {
      return Status::InvalidArgument(
          "--oracle=sketch supports the plain spread objective only; drop "
          "--opinions or use --oracle=mc");
    }
    const int64_t snapshots = args.GetInt("sketches", config.mc);
    if (snapshots <= 0 || snapshots > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("--sketches must be a positive snapshot "
                                     "count, got: " +
                                     std::to_string(snapshots));
    }
    SketchOptions sketch_options;
    sketch_options.num_snapshots = static_cast<uint32_t>(snapshots);
    sketch_options.seed = config.seed;
    sketch = std::make_shared<const SketchOracle>(graph, params,
                                                  sketch_options);
    std::printf("sketch oracle: %u live-edge snapshots, arena %s "
                "(capacity-based)\n",
                sketch->num_snapshots(),
                HumanBytes(sketch->ArenaBytes()).c_str());
  }

  // EaSyIM/OSIM knobs: incremental vs full per-round rescoring and the
  // sweep-sharding pool. Scores are bitwise identical either way.
  ScoreGreedyOptions sg_options;
  HOLIM_ASSIGN_OR_RETURN(sg_options.incremental_rescore,
                         ParseRescoreFlag(args, "incremental"));
  const int64_t threads = args.GetInt("threads", 0);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    sg_options.pool = pool.get();
  }

  // Build the selector.
  std::unique_ptr<SeedSelector> selector;
  if (algo == "easyim") {
    selector = std::make_unique<EasyImSelector>(graph, params, l, sg_options);
  } else if (algo == "osim") {
    if (!opinion_aware) {
      return Status::InvalidArgument("--algo=osim needs --opinions=...");
    }
    selector = std::make_unique<OsimSelector>(graph, params, opinions, base, l,
                                              sg_options);
  } else if (algo == "greedy" || algo == "celf") {
    std::shared_ptr<McObjective> objective;
    if (sketch) {
      objective = std::make_shared<SketchSpreadObjective>(sketch);
    } else if (opinion_aware) {
      objective = std::make_shared<EffectiveOpinionObjective>(
          graph, params, opinions, base, lambda, mc);
    } else {
      objective = std::make_shared<SpreadObjective>(graph, params, mc);
    }
    if (algo == "greedy") {
      selector = std::make_unique<GreedySelector>(graph, objective);
    } else {
      selector = std::make_unique<CelfSelector>(graph, objective);
    }
  } else if (algo == "tim") {
    TimPlusOptions options;
    options.epsilon = args.GetDouble("epsilon", 0.1);
    options.max_theta =
        static_cast<std::size_t>(args.GetInt("max_theta", 2'000'000));
    selector = std::make_unique<TimPlusSelector>(graph, params, options);
  } else if (algo == "imm") {
    ImmOptions options;
    options.epsilon = args.GetDouble("epsilon", 0.1);
    options.max_theta =
        static_cast<std::size_t>(args.GetInt("max_theta", 2'000'000));
    selector = std::make_unique<ImmSelector>(graph, params, options);
  } else if (algo == "irie") {
    selector = std::make_unique<IrieSelector>(graph, params);
  } else if (algo == "simpath") {
    selector = std::make_unique<SimpathSelector>(graph, params);
  } else if (algo == "degree") {
    selector = std::make_unique<DegreeSelector>(graph);
  } else if (algo == "degreediscount") {
    selector = std::make_unique<DegreeDiscountSelector>(
        graph, args.GetDouble("p", 0.1));
  } else if (algo == "pagerank") {
    selector = std::make_unique<PageRankSelector>(graph);
  } else if (algo == "random") {
    selector = std::make_unique<RandomSelector>(graph, config.seed);
  } else {
    return Status::InvalidArgument(
        "unknown --algo (easyim|osim|greedy|celf|tim|imm|irie|simpath|"
        "degree|degreediscount|pagerank|random): " + algo);
  }

  HOLIM_ASSIGN_OR_RETURN(SeedSelection selection, selector->Select(k));
  std::printf("\n%s selected %zu seeds in %s (exec memory %s, scorer "
              "scratch %s)\n",
              selector->name().c_str(), selection.seeds.size(),
              HumanSeconds(selection.elapsed_seconds).c_str(),
              HumanBytes(selection.overhead_bytes).c_str(),
              HumanBytes(selection.scratch_bytes).c_str());
  std::printf("seeds:");
  for (std::size_t i = 0; i < selection.seeds.size() && i < 20; ++i) {
    std::printf(" %u", selection.seeds[i]);
  }
  if (selection.seeds.size() > 20) std::printf(" ...");
  std::printf("\n\n");

  const double spread = EstimateSpread(graph, params, selection.seeds, mc);
  std::printf("expected spread sigma(S): %.2f (%u MC simulations)\n", spread,
              mc.num_simulations);
  if (sketch) {
    std::printf("sketch spread estimate:   %.2f (%u snapshots)\n",
                sketch->Estimate(selection.seeds), sketch->num_snapshots());
  }
  if (opinion_aware) {
    auto estimate = EstimateOpinionSpread(graph, params, opinions, base,
                                          selection.seeds, lambda, mc);
    std::printf("opinion spread:            %.2f\n",
                estimate.opinion_spread);
    std::printf("effective opinion spread:  %.2f (lambda=%.2f)\n",
                estimate.effective_opinion_spread, lambda);
  }
  return Status::OK();
}

}  // namespace
}  // namespace holim

int main(int argc, char** argv) {
  return holim::BenchMain(
      argc, argv, "holim_cli — influence maximization toolbox", holim::Run,
      [](holim::BenchArgs* args) {
        args->Declare("algo",
                      "selection algorithm: easyim | osim | greedy | celf | "
                      "tim | imm | irie | simpath | degree | degreediscount | "
                      "pagerank | random (default easyim)");
        args->Declare("dataset",
                      "synthetic stand-in name (Table 2; default NetHEPT)");
        args->Declare("edge_list",
                      "path to a SNAP edge-list file (overrides --dataset)");
        args->Declare("undirected", "treat edge list rows as undirected");
        args->Declare("model", "diffusion model: IC | WC | LT (default IC)");
        args->Declare("p",
                      "uniform IC probability, also DegreeDiscount's p "
                      "(default 0.1)");
        args->Declare("k", "number of seeds (default 50)");
        args->Declare("l", "EaSyIM/OSIM path-length horizon (default 3)");
        args->Declare("opinions",
                      "opinion layer: uniform | normal (required for osim; "
                      "switches greedy/celf to the opinion objective)");
        args->Declare("lambda", "negative-opinion penalty (default 1)");
        args->Declare("epsilon",
                      "TIM+/IMM approximation slack (default 0.1)");
        args->Declare("max_theta", "TIM+/IMM RR-set cap (default 2000000)");
        holim::DeclareRescoreFlag(args, "incremental");
        args->Declare("threads",
                      "EaSyIM/OSIM sweep pool size (0 = serial sweeps)");
        holim::DeclareOracleFlag(args);
        args->Declare("sketches",
                      "sketch-oracle snapshot count R (default: the --mc "
                      "value; only used with --oracle=sketch)");
      });
}

// holimd_cli — the `holimd` serving daemon (and its client) in one
// binary: a long-lived serving loop in front of per-tenant HolimEngines,
// speaking the line-delimited protocol of serving/protocol.h.
//
// Modes (--mode):
//   pipe    read requests from stdin, write responses to stdout — the
//           deterministic-testing transport (default)
//   serve   bind an AF_UNIX socket (--socket) and serve clients one
//           connection at a time until a client sends "quit"
//   client  connect to --socket, forward stdin lines, print responses
//
// Examples:
//   holimd_cli --tenants=3 --tenant-nodes=400 < requests.txt
//   holimd_cli --mode=serve --socket=/tmp/holimd.sock &
//   echo "solve id=1 tenant=0 model=IC k=5" | \
//     holimd_cli --mode=client --socket=/tmp/holimd.sock
//
// The perf mechanisms are switchable so the same binary is its own
// baseline: --affinity=false --cache-policy=lru --prewarm=false is the
// FIFO + plain-LRU configuration the serving bench compares against.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "bench_support/bench_main.h"
#include "graph/generators.h"
#include "serving/holim_server.h"

namespace holim {
namespace {

/// client mode: forward stdin lines to the socket, echo response lines.
///
/// Responses are not 1:1 with request lines — a solve below a full queue
/// is answered later, at dispatch or drain — so the loop polls both
/// directions instead of alternating write/read (which would deadlock
/// waiting for a response the server is still holding). On stdin EOF the
/// write side is half-closed so the server drains its queue; the client
/// exits once the server closes the connection.
Status RunClient(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("bad --socket path: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect failed: " + path);
  }
  std::string in_buffer;   // stdin bytes not yet forwarded as full lines
  std::string out_buffer;  // socket bytes not yet printed as full lines
  char chunk[4096];
  bool stdin_open = true;
  while (true) {
    pollfd fds[2] = {{fd, POLLIN, 0},
                     {stdin_open ? STDIN_FILENO : -1, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      ::close(fd);
      return Status::IOError("poll failed: " + path);
    }
    if (fds[0].revents != 0) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;  // server answered quit (or our EOF) and closed
      out_buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while ((newline = out_buffer.find('\n')) != std::string::npos) {
        std::cout << out_buffer.substr(0, newline) << '\n';
        out_buffer.erase(0, newline + 1);
      }
      std::cout.flush();
    }
    if (stdin_open && fds[1].revents != 0) {
      const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
      if (n <= 0) {
        stdin_open = false;
        ::shutdown(fd, SHUT_WR);  // tells the server to drain and close
        continue;
      }
      in_buffer.append(chunk, static_cast<std::size_t>(n));
      // Forward only complete lines; the protocol is line-delimited and
      // a trailing fragment without '\n' is never a request.
      const std::size_t last = in_buffer.rfind('\n');
      if (last == std::string::npos) continue;
      const std::string ready = in_buffer.substr(0, last + 1);
      in_buffer.erase(0, last + 1);
      std::size_t sent = 0;
      while (sent < ready.size()) {
        const ssize_t wrote =
            ::write(fd, ready.data() + sent, ready.size() - sent);
        if (wrote <= 0) {
          ::close(fd);
          return Status::IOError("write failed: " + path);
        }
        sent += static_cast<std::size_t>(wrote);
      }
    }
  }
  ::close(fd);
  return Status::OK();
}

Status Run(const BenchArgs& args) {
  const auto config = ReadCommonConfig(args);
  const std::string mode = args.GetString("mode", "pipe");
  const std::string socket_path = args.GetString("socket", "/tmp/holimd.sock");
  if (mode == "client") return RunClient(socket_path);
  if (mode != "pipe" && mode != "serve") {
    return Status::InvalidArgument(
        "unknown --mode (pipe|serve|client): " + mode);
  }

  ServerOptions options;
  options.queue_depth =
      static_cast<std::size_t>(args.GetInt("queue-depth", 32));
  options.affinity = args.GetBool("affinity", true);
  const std::string policy = args.GetString("cache-policy", "heat");
  if (policy == "heat") {
    options.cache_policy = Workspace::EvictionPolicy::kHeatBenefit;
  } else if (policy == "lru") {
    options.cache_policy = Workspace::EvictionPolicy::kLru;
  } else {
    return Status::InvalidArgument(
        "unknown --cache-policy (heat|lru): " + policy);
  }
  const double cache_mib = args.GetDouble("max-cache-mib", 0.0);
  if (cache_mib < 0) {
    return Status::InvalidArgument("--max-cache-mib must be >= 0");
  }
  options.max_cache_bytes =
      static_cast<std::size_t>(cache_mib * 1024.0 * 1024.0);
  options.prewarm = args.GetBool("prewarm", true);
  options.num_sketches = static_cast<uint32_t>(args.GetInt("sketches", 64));
  options.seed = config.seed;
  options.echo_timings = args.GetBool("echo-timings", false);

  HolimServer server(options);
  const int64_t tenants = args.GetInt("tenants", 3);
  const int64_t tenant_nodes = args.GetInt("tenant-nodes", 400);
  if (tenants < 1 || tenant_nodes < 2) {
    return Status::InvalidArgument("--tenants >= 1 and --tenant-nodes >= 2");
  }
  for (int64_t t = 0; t < tenants; ++t) {
    // Per-tenant social-shaped stand-in graph, independently seeded so
    // tenants differ in topology (and thus in artifact bytes/costs).
    HOLIM_ASSIGN_OR_RETURN(
        Graph graph,
        GenerateSocialGraph(static_cast<NodeId>(tenant_nodes), 6.0,
                            config.seed + static_cast<uint64_t>(t)));
    HOLIM_RETURN_NOT_OK(server.AddTenant(std::move(graph)));
  }

  if (mode == "serve") {
    std::printf("holimd: serving %lld tenant(s) on %s\n",
                static_cast<long long>(tenants), socket_path.c_str());
    return server.ServeUnixSocket(socket_path);
  }
  return server.RunPipe(std::cin, std::cout);
}

}  // namespace
}  // namespace holim

int main(int argc, char** argv) {
  return holim::BenchMain(
      argc, argv, "holimd_cli — heat-aware influence serving daemon",
      holim::Run, [](holim::BenchArgs* args) {
        args->Declare("mode",
                      "pipe (stdin/stdout, default) | serve (AF_UNIX "
                      "socket) | client (connect to --socket)");
        args->Declare("socket",
                      "AF_UNIX socket path for serve/client modes "
                      "(default /tmp/holimd.sock)");
        args->Declare("tenants",
                      "number of tenant graphs to host (default 3)");
        args->Declare("tenant-nodes",
                      "nodes per synthetic tenant graph (default 400)");
        args->Declare("queue-depth",
                      "bounded admission queue depth; full = reject with "
                      "err code 11 (default 32)");
        args->Declare("affinity",
                      "artifact-affinity scheduling: group queued requests "
                      "sharing a sketch arena (default true; false = FIFO)");
        args->Declare("cache-policy",
                      "workspace eviction: heat (benefit-per-byte, "
                      "default) | lru (plain)");
        args->Declare("max-cache-mib",
                      "per-tenant workspace artifact budget in MiB "
                      "(default 0 = unlimited)");
        args->Declare("prewarm",
                      "rebuild the hottest evicted arena when budget "
                      "frees up (heat policy only; default true)");
        args->Declare("sketches",
                      "sketch-arena snapshot count R per tenant model "
                      "(default 64)");
        args->Declare("echo-timings",
                      "append wait_ms/solve_ms to ok-responses (default "
                      "false; off keeps responses deterministic)");
      });
}

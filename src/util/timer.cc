#include "util/timer.h"

// Timer is header-only; this TU anchors the header in the build so that
// include hygiene is checked by the compiler.

#ifndef HOLIM_UTIL_TIMER_H_
#define HOLIM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace holim {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace holim

#endif  // HOLIM_UTIL_TIMER_H_

#ifndef HOLIM_UTIL_RNG_H_
#define HOLIM_UTIL_RNG_H_

#include <cstdint>

namespace holim {

/// \brief Fast, reproducible 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// All stochastic components in holim take an explicit seed and derive
/// per-task streams with `Split()`, so results are reproducible regardless
/// of thread count or scheduling.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal via Box–Muller (stateless variant; discards the pair).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent stream; deterministic in (this stream, salt).
  Rng Split(uint64_t salt);

  /// SplitMix64 hash step; exposed for seed derivation elsewhere.
  static uint64_t SplitMix64(uint64_t& state);

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace holim

#endif  // HOLIM_UTIL_RNG_H_

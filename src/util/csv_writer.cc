#include "util/csv_writer.h"

#include <cstdio>

namespace holim {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
  }
}

std::string CsvWriter::Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!status_.ok()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace holim

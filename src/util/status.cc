#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace holim {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace holim

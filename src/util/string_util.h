#ifndef HOLIM_UTIL_STRING_UTIL_H_
#define HOLIM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace holim {

/// Splits on any character in `delims`, dropping empty tokens.
std::vector<std::string_view> SplitTokens(std::string_view s,
                                          std::string_view delims = " \t\r\n");

/// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Human-readable byte count, e.g. "1.5 GiB".
std::string HumanBytes(std::size_t bytes);

/// Human-readable duration from seconds, e.g. "3.2 s", "45 ms", "2.1 min".
std::string HumanSeconds(double seconds);

}  // namespace holim

#endif  // HOLIM_UTIL_STRING_UTIL_H_

#include "util/deadline.h"

#include <chrono>
#include <cmath>

namespace holim {

namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock* Clock::Real() {
  static const SteadyClock clock;
  return &clock;
}

Deadline Deadline::AfterMillis(double millis, const Clock* clock,
                               const CancelToken* token) {
  Deadline d;
  d.mode_ = Mode::kWall;
  d.clock_ = clock ? clock : Clock::Real();
  d.token_ = token;
  d.deadline_nanos_ =
      d.clock_->NowNanos() + static_cast<int64_t>(millis * 1e6);
  return d;
}

Deadline Deadline::WorkBudget(uint64_t ticks, const CancelToken* token) {
  Deadline d;
  d.mode_ = Mode::kTicks;
  d.token_ = token;
  d.ticks_left_ = ticks;
  return d;
}

Status Deadline::Trip(Status status) {
  expired_ = true;
  status_ = std::move(status);
  return status_;
}

Status Deadline::CheckN(uint64_t n) {
  if (mode_ == Mode::kInactive) return Status::OK();
  if (expired_) return status_;
  if (token_ && token_->cancelled()) {
    return Trip(Status::Cancelled("solve cancelled by caller"));
  }
  if (mode_ == Mode::kTicks) {
    if (ticks_left_ <= n) {
      ticks_left_ = 0;
      return Trip(Status::DeadlineExceeded("work budget exhausted"));
    }
    ticks_left_ -= n;
    return Status::OK();
  }
  if (clock_->NowNanos() >= deadline_nanos_) {
    return Trip(Status::DeadlineExceeded("deadline exceeded"));
  }
  return Status::OK();
}

bool Deadline::StopRequested() const {
  if (mode_ == Mode::kInactive) return false;
  if (expired_) return true;
  if (token_ && token_->cancelled()) return true;
  // In tick mode expiry only happens at serial checkpoints, so workers see
  // the sticky flag; in wall mode they may observe the clock directly.
  return mode_ == Mode::kWall && clock_->NowNanos() >= deadline_nanos_;
}

}  // namespace holim

#include "util/rng.h"

#include <cmath>

namespace holim {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  // Box–Muller on two uniforms; cache the second variate.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

Rng Rng::Split(uint64_t salt) {
  uint64_t state = Next64() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(SplitMix64(state));
}

}  // namespace holim

#ifndef HOLIM_UTIL_DEADLINE_H_
#define HOLIM_UTIL_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace holim {

/// \brief Time source behind wall-clock deadlines. Pluggable so tests can
/// fire a deadline (or jump the clock) deterministically; production code
/// uses the monotonic Real() clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;

  /// Process-wide monotonic clock (steady_clock).
  static const Clock* Real();
};

/// \brief Test clock: time advances only when told to. Atomic so parallel
/// workers may poll it while a test thread jumps it forward.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t now_nanos = 0) : now_(now_nanos) {}
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

/// \brief Caller-side cancellation handle. The requester keeps the token
/// and calls Cancel() (from any thread); the solve path polls it through
/// the Deadline it was folded into. Copyable — copies share one flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Cooperative deadline checked at kernel checkpoints (block/round
/// boundaries — never per edge).
///
/// Three modes:
///  * inactive (default) — every Check() is OK and costs one predictable
///    branch; the zero-deadline solve path stays byte-identical.
///  * wall clock — AfterMillis(ms, clock): Check() fails once the clock
///    passes the deadline (or the cancel token fires).
///  * work budget — WorkBudget(ticks): Check() consumes one tick and fails
///    when the budget is exhausted, independent of machine speed. The
///    B-th Check() on a budget of B is the one that fails, so degradation
///    under a work budget is bitwise-reproducible anywhere.
///
/// Expiry is sticky: once a Check fails, every later Check/StopRequested
/// reports expired. Ticks are only consumed by Check/CheckN, which must be
/// called from the serial driver thread; parallel workers poll the
/// read-only StopRequested() instead. Not copyable (one expiry state per
/// solve); the object lives on the caller's stack for the solve duration.
class Deadline {
 public:
  /// Inactive deadline: never expires.
  Deadline() = default;

  /// Wall-clock deadline `millis` from now on `clock` (Real() if null),
  /// optionally also observing `token` (borrowed; may be null).
  static Deadline AfterMillis(double millis, const Clock* clock = nullptr,
                              const CancelToken* token = nullptr);

  /// Deterministic work-budget deadline: the `ticks`-th Check() fails
  /// (ticks >= 1; the first `ticks - 1` checkpoints pass).
  static Deadline WorkBudget(uint64_t ticks,
                             const CancelToken* token = nullptr);

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;
  Deadline(Deadline&&) = default;
  Deadline& operator=(Deadline&&) = default;

  bool active() const { return mode_ != Mode::kInactive; }

  /// One checkpoint: consumes one tick in work-budget mode, reads the
  /// clock in wall mode, polls the cancel token in both. OK, or the
  /// sticky DeadlineExceeded/Cancelled status that first tripped.
  Status Check() { return CheckN(1); }

  /// Checkpoint consuming `n` ticks at once — for wave dispatch where the
  /// wave groups a thread-count-dependent number of blocks: charging the
  /// block count keeps tick consumption (and thus the degradation point)
  /// invariant to thread count.
  Status CheckN(uint64_t n);

  /// Read-only expiry poll for parallel workers: true once a serial
  /// Check tripped, the token fired, or (wall mode) the clock passed the
  /// deadline. Never consumes ticks.
  bool StopRequested() const;

  /// The sticky status of the first failed Check ("OK" while alive).
  const Status& status() const { return status_; }

 private:
  enum class Mode { kInactive, kWall, kTicks };

  Status Trip(Status status);

  Mode mode_ = Mode::kInactive;
  const Clock* clock_ = nullptr;
  const CancelToken* token_ = nullptr;  // borrowed, may be null
  int64_t deadline_nanos_ = 0;
  uint64_t ticks_left_ = 0;
  bool expired_ = false;
  Status status_;
};

}  // namespace holim

#endif  // HOLIM_UTIL_DEADLINE_H_

#include "util/memory.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace holim {

std::size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long total = 0, resident = 0;
  int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

std::size_t PeakRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t peak_kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &peak_kb);
      break;
    }
  }
  std::fclose(f);
  return peak_kb * 1024;
}

}  // namespace holim

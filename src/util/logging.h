#ifndef HOLIM_UTIL_LOGGING_H_
#define HOLIM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace holim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity emitted to stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
/// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace holim

#define HOLIM_LOG(level)                                              \
  ::holim::internal::LogMessage(::holim::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check: always on (release included), aborts with location.
#define HOLIM_CHECK(cond)                                   \
  if (!(cond))                                              \
  HOLIM_LOG(Fatal) << "Check failed: " #cond " "

#define HOLIM_CHECK_OK(expr)                                  \
  do {                                                        \
    ::holim::Status _st = (expr);                             \
    if (!_st.ok()) HOLIM_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (0)

#define HOLIM_DCHECK(cond) HOLIM_CHECK(cond)

#endif  // HOLIM_UTIL_LOGGING_H_

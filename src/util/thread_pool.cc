#include "util/thread_pool.h"

#include <algorithm>

namespace holim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (num_threads == 1) return;  // inline mode
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads() * 4);
  ParallelForBlocks(count, (count + chunks - 1) / chunks,
                    [&fn](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) fn(i);
                    });
}

void ThreadPool::ParallelForBlocks(
    std::size_t count, std::size_t block_size,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (block_size == 0) block_size = 1;
  // Fixed before any task is submitted: workers compare `done` against it,
  // so it must not mutate while tasks are already running.
  const std::size_t launched = (count + block_size - 1) / block_size;
  if (num_threads() == 1 || launched == 1) {
    for (std::size_t lo = 0; lo < count; lo += block_size) {
      fn(lo, std::min(count, lo + block_size));
    }
    return;
  }
  std::size_t done = 0;  // guarded by done_mu
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (std::size_t c = 0; c < launched; ++c) {
    const std::size_t lo = c * block_size;
    const std::size_t hi = std::min(count, lo + block_size);
    Submit([&, lo, hi] {
      fn(lo, hi);
      // Update and notify under the lock: the caller cannot observe
      // done == launched and destroy these stack objects until the worker
      // has released the mutex and is done touching them.
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      if (done == launched) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == launched; });
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace holim

#include "util/string_util.h"

#include <cstdio>

namespace holim {

std::vector<std::string_view> SplitTokens(std::string_view s,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace holim

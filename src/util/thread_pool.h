#ifndef HOLIM_UTIL_THREAD_POOL_H_
#define HOLIM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace holim {

/// \brief Minimal fixed-size worker pool used by the Monte-Carlo engines.
///
/// Tasks are plain std::function<void()>; `ParallelFor` blocks until all
/// chunks complete. With `num_threads == 1` work runs inline on the calling
/// thread, which keeps single-core runs free of synchronization overhead.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Runs fn(i) for i in [0, count), partitioned into contiguous chunks.
  /// Blocks until all iterations finish.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Runs fn(lo, hi) over [0, count) split into fixed `block_size` ranges:
  /// [0, b), [b, 2b), ... The partition depends only on `block_size` — never
  /// on the thread count — so per-block work (and any per-block accumulation
  /// order) is identical for every pool size. This is the barrier-per-level
  /// primitive of the score-sweep kernel (see algo/score_sweep.h).
  /// Blocks until all ranges finish.
  void ParallelForBlocks(
      std::size_t count, std::size_t block_size,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// Process-wide default pool (lazily constructed, never destroyed — trivially
/// safe at exit per the style guide's static-storage rules).
ThreadPool& DefaultThreadPool();

}  // namespace holim

#endif  // HOLIM_UTIL_THREAD_POOL_H_

#ifndef HOLIM_UTIL_STATUS_H_
#define HOLIM_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace holim {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of status-based error handling: no exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// \brief Lightweight success/error carrier returned by fallible operations.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Modeled after arrow::Result. `ValueOrDie()` aborts on error and is meant
/// for tests and examples; library code should check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() { return std::get<T>(repr_); }
  const T& value() const { return std::get<T>(repr_); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, aborting the process if this Result holds an error.
  T ValueOrDie() &&;

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(status());
  return std::move(std::get<T>(repr_));
}

/// Propagates a non-OK Status out of the enclosing function.
#define HOLIM_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::holim::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result to `lhs`, propagating errors.
#define HOLIM_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto HOLIM_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!HOLIM_CONCAT_(_res_, __LINE__).ok())      \
    return HOLIM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(*HOLIM_CONCAT_(_res_, __LINE__))

#define HOLIM_CONCAT_INNER_(a, b) a##b
#define HOLIM_CONCAT_(a, b) HOLIM_CONCAT_INNER_(a, b)

}  // namespace holim

#endif  // HOLIM_UTIL_STATUS_H_

#include "util/fault_injection.h"

#include <mutex>
#include <string_view>
#include <utility>

namespace holim {

std::atomic<int> FaultInjection::armed_count_{0};

namespace {

struct Plan {
  std::string prefix;
  uint64_t nth = 0;
  StatusCode code = StatusCode::kResourceExhausted;
  uint64_t hits = 0;
  bool fired = false;
};

struct Registry {
  std::mutex mu;
  std::vector<Plan*> plans;          // innermost (latest armed) last
  std::vector<std::string>* record = nullptr;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool Matches(const std::string& prefix, const char* site) {
  return std::string_view(site).substr(0, prefix.size()) == prefix;
}

}  // namespace

Status FaultInjection::Hit(const char* site) {
  if (!armed()) return Status::OK();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.record) reg.record->push_back(site);
  for (auto it = reg.plans.rbegin(); it != reg.plans.rend(); ++it) {
    Plan* plan = *it;
    if (!Matches(plan->prefix, site)) continue;
    ++plan->hits;
    if (!plan->fired && plan->hits == plan->nth) {
      plan->fired = true;
      return Status(plan->code, std::string("injected fault at ") + site);
    }
    break;  // innermost matching plan owns this site
  }
  return Status::OK();
}

namespace {
// Side table mapping scoped objects to their plans/records; sized for the
// handful of concurrently armed scopes a test uses.
std::mutex side_mu;
std::vector<std::pair<const void*, Plan*>> plan_of;
std::vector<std::pair<const void*, std::vector<std::string>*>> record_of;

Plan* FindPlan(const void* owner) {
  std::lock_guard<std::mutex> lock(side_mu);
  for (auto& [o, p] : plan_of) {
    if (o == owner) return p;
  }
  return nullptr;
}
}  // namespace

ScopedFaultInjection::ScopedFaultInjection(std::string site_prefix,
                                           uint64_t nth, StatusCode code) {
  auto* plan = new Plan{std::move(site_prefix), nth, code, 0, false};
  {
    std::lock_guard<std::mutex> lock(side_mu);
    plan_of.emplace_back(this, plan);
  }
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.plans.push_back(plan);
  FaultInjection::armed_count_.fetch_add(1, std::memory_order_relaxed);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  Plan* plan = FindPlan(this);
  Registry& reg = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (auto it = reg.plans.begin(); it != reg.plans.end(); ++it) {
      if (*it == plan) {
        reg.plans.erase(it);
        break;
      }
    }
    FaultInjection::armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(side_mu);
    for (auto it = plan_of.begin(); it != plan_of.end(); ++it) {
      if (it->first == this) {
        plan_of.erase(it);
        break;
      }
    }
  }
  delete plan;
}

uint64_t ScopedFaultInjection::hits() const {
  Plan* plan = FindPlan(this);
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return plan ? plan->hits : 0;
}

bool ScopedFaultInjection::fired() const {
  Plan* plan = FindPlan(this);
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return plan && plan->fired;
}

ScopedFaultRecorder::ScopedFaultRecorder() {
  auto* record = new std::vector<std::string>();
  {
    std::lock_guard<std::mutex> lock(side_mu);
    record_of.emplace_back(this, record);
  }
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.record = record;
  FaultInjection::armed_count_.fetch_add(1, std::memory_order_relaxed);
}

ScopedFaultRecorder::~ScopedFaultRecorder() {
  std::vector<std::string>* record = nullptr;
  {
    std::lock_guard<std::mutex> lock(side_mu);
    for (auto it = record_of.begin(); it != record_of.end(); ++it) {
      if (it->first == this) {
        record = it->second;
        record_of.erase(it);
        break;
      }
    }
  }
  Registry& reg = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    if (reg.record == record) reg.record = nullptr;
    FaultInjection::armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  delete record;
}

std::vector<std::string> ScopedFaultRecorder::sites() const {
  std::vector<std::string>* record = nullptr;
  {
    std::lock_guard<std::mutex> lock(side_mu);
    for (auto& [o, r] : record_of) {
      if (o == this) record = r;
    }
  }
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return record ? *record : std::vector<std::string>{};
}

}  // namespace holim

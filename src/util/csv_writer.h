#ifndef HOLIM_UTIL_CSV_WRITER_H_
#define HOLIM_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace holim {

/// \brief Tiny CSV emitter used by the benchmark harness to persist series.
///
/// Values containing commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `status()` before use.
  explicit CsvWriter(const std::string& path);

  const Status& status() const { return status_; }

  /// Writes one row; strings are escaped, numbers formatted with %.6g.
  void WriteRow(const std::vector<std::string>& cells);
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  /// Convenience: formats a double with enough precision for plotting.
  static std::string Num(double v);

 private:
  static std::string Escape(const std::string& cell);

  std::ofstream out_;
  Status status_;
};

}  // namespace holim

#endif  // HOLIM_UTIL_CSV_WRITER_H_

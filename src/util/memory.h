#ifndef HOLIM_UTIL_MEMORY_H_
#define HOLIM_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace holim {

/// Current resident set size of this process in bytes (0 if unavailable).
/// Reads /proc/self/statm on Linux.
std::size_t CurrentRssBytes();

/// Peak resident set size (VmHWM) in bytes (0 if unavailable).
std::size_t PeakRssBytes();

/// \brief Tracks the additional memory an algorithm allocates beyond the
/// loaded graph, mirroring the paper's "execution memory" vs "graph loading"
/// split in Figs. 5h/6j.
class MemoryMeter {
 public:
  MemoryMeter() : baseline_(CurrentRssBytes()) {}

  void Rebase() { baseline_ = CurrentRssBytes(); }

  std::size_t baseline_bytes() const { return baseline_; }

  /// RSS growth since construction/Rebase (clamped at 0).
  std::size_t OverheadBytes() const {
    std::size_t now = CurrentRssBytes();
    return now > baseline_ ? now - baseline_ : 0;
  }

  static double ToMiB(std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }

 private:
  std::size_t baseline_;
};

}  // namespace holim

#endif  // HOLIM_UTIL_MEMORY_H_

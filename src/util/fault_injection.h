#ifndef HOLIM_UTIL_FAULT_INJECTION_H_
#define HOLIM_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace holim {

/// \brief Test-only fault injection at named failure sites.
///
/// Fallible production code marks its failure-capable sites with
/// `HOLIM_RETURN_NOT_OK(FaultInjection::Hit("workspace/sketch"))` — a
/// relaxed atomic load and branch when nothing is armed, so the
/// production cost is one predictable branch per artifact build (sites
/// sit at allocation/build granularity, never in kernels).
///
/// Tests arm a ScopedFaultInjection with a plan: "the Nth hit of any site
/// whose name starts with `site_prefix` fails with `code`". Recording
/// mode instead captures the sequence of site hits a scenario performs, so
/// a randomized fuzzer can enumerate the failure surface of a solve and
/// then re-run it failing each site in turn.
///
/// Process-global and not thread-safe against concurrent arming (tests
/// arm before running the scenario); Hit() itself is safe to call from
/// worker threads while a plan is armed.
class FaultInjection {
 public:
  /// The probe production code calls. OK unless an armed plan matches.
  static Status Hit(const char* site);

  /// True when any plan or recorder is armed (tests may use this to skip
  /// expensive bookkeeping).
  static bool armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  friend class ScopedFaultInjection;
  friend class ScopedFaultRecorder;
  static std::atomic<int> armed_count_;
};

/// Arms "fail the `nth` (1-based) hit of sites matching `site_prefix`
/// with `code`" for this scope. Nesting is allowed; the innermost
/// matching plan wins.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string site_prefix, uint64_t nth,
                       StatusCode code = StatusCode::kResourceExhausted);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  /// How many times a matching site fired (fault injected or not).
  uint64_t hits() const;
  /// True once the planned fault was actually injected.
  bool fired() const;
};

/// Records every site hit in this scope (no faults injected) so a fuzzer
/// can learn the failure surface of a scenario.
class ScopedFaultRecorder {
 public:
  ScopedFaultRecorder();
  ~ScopedFaultRecorder();

  ScopedFaultRecorder(const ScopedFaultRecorder&) = delete;
  ScopedFaultRecorder& operator=(const ScopedFaultRecorder&) = delete;

  /// Site names in hit order (duplicates kept).
  std::vector<std::string> sites() const;
};

}  // namespace holim

#endif  // HOLIM_UTIL_FAULT_INJECTION_H_

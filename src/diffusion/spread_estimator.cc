#include "diffusion/spread_estimator.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "diffusion/independent_cascade.h"
#include "diffusion/linear_threshold.h"
#include "diffusion/oc_model.h"
#include "util/rng.h"

namespace holim {

namespace {

/// Splits `total` simulations across the pool; each shard gets an
/// independent RNG stream derived from (seed, shard) so results do not
/// depend on thread count. `shard_fn(shard_rng, count)` returns the sum of
/// its per-run metric(s).
template <typename ShardFn>
std::vector<double> RunSharded(const McOptions& options, std::size_t num_metrics,
                               ShardFn shard_fn) {
  ThreadPool& pool = options.pool ? *options.pool : DefaultThreadPool();
  // Clamp to >= 1 so the per-shard division below can never fault, even if
  // a pool ever reports zero threads.
  const std::size_t shards = std::max<std::size_t>(
      1, std::min<std::size_t>(pool.num_threads() * 2,
                               options.num_simulations));
  std::vector<std::vector<double>> partial(
      shards, std::vector<double>(num_metrics, 0.0));
  if (options.num_simulations == 0) return partial[0];
  const uint32_t per = options.num_simulations / shards;
  const uint32_t rem = options.num_simulations % shards;
  pool.ParallelFor(shards, [&](std::size_t s) {
    const uint32_t count = per + (s < rem ? 1 : 0);
    uint64_t state = options.seed + 0x1234567ULL * (s + 1);
    Rng rng(Rng::SplitMix64(state));
    partial[s] = shard_fn(rng, count);
  });
  std::vector<double> total(num_metrics, 0.0);
  for (const auto& p : partial) {
    for (std::size_t i = 0; i < num_metrics; ++i) total[i] += p[i];
  }
  for (double& t : total) t /= options.num_simulations;
  return total;
}

}  // namespace

double EstimateSpread(const Graph& graph, const InfluenceParams& params,
                      const std::vector<NodeId>& seeds,
                      const McOptions& options) {
  if (seeds.empty()) return 0.0;
  auto result = RunSharded(options, 1, [&](Rng& rng, uint32_t count) {
    std::vector<double> acc(1, 0.0);
    if (params.model == DiffusionModel::kLinearThreshold) {
      LtSimulator sim(graph, params);
      for (uint32_t i = 0; i < count; ++i) {
        acc[0] += static_cast<double>(sim.Run(seeds, rng).SpreadCount(seeds.size()));
      }
    } else {
      IcSimulator sim(graph, params);
      for (uint32_t i = 0; i < count; ++i) {
        acc[0] += static_cast<double>(sim.Run(seeds, rng).SpreadCount(seeds.size()));
      }
    }
    return acc;
  });
  return result[0];
}

OpinionSpreadEstimate EstimateOpinionSpread(
    const Graph& graph, const InfluenceParams& influence,
    const OpinionParams& opinions, OiBase base,
    const std::vector<NodeId>& seeds, double lambda, const McOptions& options) {
  OpinionSpreadEstimate estimate;
  if (seeds.empty()) return estimate;
  auto result = RunSharded(options, 3, [&](Rng& rng, uint32_t count) {
    std::vector<double> acc(3, 0.0);
    OiSimulator sim(graph, influence, opinions, base);
    for (uint32_t i = 0; i < count; ++i) {
      const OpinionCascade& oc = sim.Run(seeds, rng);
      acc[0] += oc.OpinionSpread();
      acc[1] += oc.EffectiveOpinionSpread(lambda);
      acc[2] += static_cast<double>(oc.cascade->SpreadCount(oc.num_seeds));
    }
    return acc;
  });
  estimate.opinion_spread = result[0];
  estimate.effective_opinion_spread = result[1];
  estimate.plain_spread = result[2];
  return estimate;
}

double EstimateOcOpinionSpread(const Graph& graph,
                               const InfluenceParams& influence,
                               const OpinionParams& opinions,
                               const std::vector<NodeId>& seeds,
                               const McOptions& options) {
  if (seeds.empty()) return 0.0;
  auto result = RunSharded(options, 1, [&](Rng& rng, uint32_t count) {
    std::vector<double> acc(1, 0.0);
    OcSimulator sim(graph, influence, opinions);
    for (uint32_t i = 0; i < count; ++i) {
      acc[0] += sim.Run(seeds, rng).OpinionSpread();
    }
    return acc;
  });
  return result[0];
}

}  // namespace holim

#include "diffusion/spread_estimator.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "diffusion/independent_cascade.h"
#include "diffusion/linear_threshold.h"
#include "diffusion/oc_model.h"
#include "util/rng.h"

namespace holim {

namespace {

/// Simulations are partitioned into fixed blocks of this many; the block
/// decomposition depends only on num_simulations, never the pool.
constexpr std::size_t kMcBlockSize = 128;
/// Salt for deriving per-simulation streams (kept distinct from the RR
/// engine's and the sketch oracle's salts; the streams must stay
/// unrelated).
constexpr uint64_t kMcSeedSalt = 0x1234567ULL;

/// Independent RNG stream for simulation `sim_index`, derived from
/// McOptions::seed alone — the determinism contract of the estimators:
/// simulation i draws the same randomness no matter which thread (or how
/// many threads) runs it.
Rng McSimulationRng(uint64_t seed, uint32_t sim_index) {
  uint64_t state = seed + kMcSeedSalt * (sim_index + 1);
  return Rng(Rng::SplitMix64(state));
}

/// Runs `options.num_simulations` simulations in fixed kMcBlockSize blocks
/// over the pool. `block_fn(sim_begin, sim_end, acc)` must construct its
/// simulator once, then loop simulations deriving each stream via
/// McSimulationRng(seed, i), summing metrics into acc[0..num_metrics).
/// Block partials are reduced in block-index order, so together with the
/// per-simulation streams the result is bitwise identical for any thread
/// count (verified by the ThreadCountInvariant tests).
template <typename BlockFn>
std::vector<double> RunSharded(const McOptions& options,
                               std::size_t num_metrics, BlockFn block_fn) {
  std::vector<double> total(num_metrics, 0.0);
  const uint32_t sims = options.num_simulations;
  if (sims == 0) return total;
  ThreadPool& pool = options.pool ? *options.pool : DefaultThreadPool();
  const std::size_t num_blocks = (sims + kMcBlockSize - 1) / kMcBlockSize;
  std::vector<double> partial(num_blocks * num_metrics, 0.0);
  pool.ParallelForBlocks(
      sims, kMcBlockSize, [&](std::size_t lo, std::size_t hi) {
        if (options.deadline && options.deadline->StopRequested()) return;
        block_fn(static_cast<uint32_t>(lo), static_cast<uint32_t>(hi),
                 partial.data() + (lo / kMcBlockSize) * num_metrics);
      });
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (std::size_t i = 0; i < num_metrics; ++i) {
      total[i] += partial[b * num_metrics + i];
    }
  }
  for (double& t : total) t /= sims;
  return total;
}

}  // namespace

double EstimateSpread(const Graph& graph, const InfluenceParams& params,
                      const std::vector<NodeId>& seeds,
                      const McOptions& options) {
  if (seeds.empty()) return 0.0;
  auto result = RunSharded(options, 1, [&](uint32_t lo, uint32_t hi,
                                           double* acc) {
    if (params.model == DiffusionModel::kLinearThreshold) {
      LtSimulator sim(graph, params);
      for (uint32_t i = lo; i < hi; ++i) {
        Rng rng = McSimulationRng(options.seed, i);
        acc[0] +=
            static_cast<double>(sim.Run(seeds, rng).SpreadCount(seeds.size()));
      }
    } else {
      IcSimulator sim(graph, params);
      for (uint32_t i = lo; i < hi; ++i) {
        Rng rng = McSimulationRng(options.seed, i);
        acc[0] +=
            static_cast<double>(sim.Run(seeds, rng).SpreadCount(seeds.size()));
      }
    }
  });
  return result[0];
}

OpinionSpreadEstimate EstimateOpinionSpread(
    const Graph& graph, const InfluenceParams& influence,
    const OpinionParams& opinions, OiBase base,
    const std::vector<NodeId>& seeds, double lambda, const McOptions& options) {
  OpinionSpreadEstimate estimate;
  if (seeds.empty()) return estimate;
  auto result = RunSharded(options, 3, [&](uint32_t lo, uint32_t hi,
                                           double* acc) {
    OiSimulator sim(graph, influence, opinions, base);
    for (uint32_t i = lo; i < hi; ++i) {
      Rng rng = McSimulationRng(options.seed, i);
      const OpinionCascade& oc = sim.Run(seeds, rng);
      acc[0] += oc.OpinionSpread();
      acc[1] += oc.EffectiveOpinionSpread(lambda);
      acc[2] += static_cast<double>(oc.cascade->SpreadCount(oc.num_seeds));
    }
  });
  estimate.opinion_spread = result[0];
  estimate.effective_opinion_spread = result[1];
  estimate.plain_spread = result[2];
  return estimate;
}

double EstimateOcOpinionSpread(const Graph& graph,
                               const InfluenceParams& influence,
                               const OpinionParams& opinions,
                               const std::vector<NodeId>& seeds,
                               const McOptions& options) {
  if (seeds.empty()) return 0.0;
  auto result = RunSharded(options, 1, [&](uint32_t lo, uint32_t hi,
                                           double* acc) {
    OcSimulator sim(graph, influence, opinions);
    for (uint32_t i = lo; i < hi; ++i) {
      Rng rng = McSimulationRng(options.seed, i);
      acc[0] += sim.Run(seeds, rng).OpinionSpread();
    }
  });
  return result[0];
}

}  // namespace holim

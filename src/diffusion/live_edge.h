#ifndef HOLIM_DIFFUSION_LIVE_EDGE_H_
#define HOLIM_DIFFUSION_LIVE_EDGE_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

/// \brief Live-edge instantiation of the LT model (Kempe's equivalence,
/// paper Sec. 3.3).
///
/// Each node independently selects at most one live in-edge: edge e = (u, v)
/// with probability w(u,v), none with probability 1 - sum_u w(u,v). A node
/// activates iff it is forward-reachable from a seed over live edges.
class LiveEdgeSimulator {
 public:
  LiveEdgeSimulator(const Graph& graph, const InfluenceParams& params);

  /// Samples one live-edge graph, then BFS from seeds over live arcs.
  const Cascade& Run(std::span<const NodeId> seeds, Rng& rng);

  /// Samples the live in-edge choice for a single node: returns the chosen
  /// in-CSR position or -1 if the node selects no live edge. Exposed for
  /// the reverse-reachable (RIS) samplers.
  int64_t SampleLiveInEdge(NodeId v, Rng& rng) const;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  Cascade cascade_;
  EpochSet active_;
  // live_choice_[v]: in-CSR position of v's live edge this run, or -1.
  std::vector<int64_t> live_choice_;
  EpochSet live_sampled_;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_LIVE_EDGE_H_

#include "diffusion/icn_model.h"

#include "util/logging.h"

namespace holim {

std::size_t IcnCascade::PositiveSpread() const {
  std::size_t count = 0;
  for (std::size_t i = num_seeds; i < positive.size(); ++i) {
    if (positive[i]) ++count;
  }
  return count;
}

double IcnCascade::SignedSpread() const {
  double sum = 0.0;
  for (std::size_t i = num_seeds; i < positive.size(); ++i) {
    sum += positive[i] ? 1.0 : -1.0;
  }
  return sum;
}

IcnSimulator::IcnSimulator(const Graph& graph, const InfluenceParams& params,
                           double quality_factor)
    : graph_(graph),
      params_(params),
      quality_factor_(quality_factor),
      active_(graph.num_nodes()),
      node_positive_(graph.num_nodes(), 0) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
  HOLIM_CHECK(quality_factor >= 0.0 && quality_factor <= 1.0)
      << "quality factor out of [0,1]";
}

const IcnCascade& IcnSimulator::Run(std::span<const NodeId> seeds, Rng& rng) {
  active_.Reset(graph_.num_nodes());
  cascade_.order.clear();
  result_.positive.clear();
  result_.num_seeds = 0;
  for (NodeId s : seeds) {
    if (active_.Contains(s)) continue;
    active_.Insert(s);
    cascade_.order.push_back({s, kSeedActivation, 0});
    // Seeds turn negative w.p. 1-q (product quality disappoints).
    const bool pos = rng.NextBernoulli(quality_factor_);
    node_positive_[s] = pos;
    result_.positive.push_back(pos);
    ++result_.num_seeds;
  }
  std::size_t head = 0;
  while (head < cascade_.order.size()) {
    const Activation current = cascade_.order[head++];
    const NodeId u = current.node;
    const bool u_positive = node_positive_[u];
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId v = neighbors[i];
      if (active_.Contains(v)) continue;
      const EdgeId e = base + i;
      if (!rng.NextBernoulli(params_.p(e))) continue;
      active_.Insert(v);
      cascade_.order.push_back({v, e, current.step + 1});
      // Negative activators always propagate negative; positive ones are
      // degraded by the quality factor.
      const bool pos = u_positive && rng.NextBernoulli(quality_factor_);
      node_positive_[v] = pos;
      result_.positive.push_back(pos);
    }
  }
  result_.cascade = &cascade_;
  return result_;
}

}  // namespace holim

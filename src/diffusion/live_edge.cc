#include "diffusion/live_edge.h"

#include "util/logging.h"

namespace holim {

LiveEdgeSimulator::LiveEdgeSimulator(const Graph& graph,
                                     const InfluenceParams& params)
    : graph_(graph),
      params_(params),
      active_(graph.num_nodes()),
      live_choice_(graph.num_nodes(), -1),
      live_sampled_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
}

int64_t LiveEdgeSimulator::SampleLiveInEdge(NodeId v, Rng& rng) const {
  auto edge_ids = graph_.InEdgeIds(v);
  if (edge_ids.empty()) return -1;
  double r = rng.NextDouble();
  for (std::size_t i = 0; i < edge_ids.size(); ++i) {
    const double w = params_.p(edge_ids[i]);
    if (r < w) return static_cast<int64_t>(i);
    r -= w;
  }
  return -1;  // "no live edge" with residual probability
}

const Cascade& LiveEdgeSimulator::Run(std::span<const NodeId> seeds, Rng& rng) {
  active_.Reset(graph_.num_nodes());
  live_sampled_.Reset(graph_.num_nodes());
  cascade_.order.clear();
  for (NodeId s : seeds) {
    if (active_.Contains(s)) continue;
    active_.Insert(s);
    cascade_.order.push_back({s, kSeedActivation, 0});
  }
  // Forward traversal: v activates if its (lazily sampled) live in-edge
  // points to an active node. We expand frontier by scanning out-neighbors
  // and checking whether their live edge is the one from u.
  std::size_t head = 0;
  while (head < cascade_.order.size()) {
    const Activation current = cascade_.order[head++];
    const NodeId u = current.node;
    auto neighbors = graph_.OutNeighbors(u);
    const EdgeId base = graph_.OutEdgeBegin(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId v = neighbors[i];
      if (active_.Contains(v)) continue;
      if (!live_sampled_.Contains(v)) {
        live_sampled_.Insert(v);
        live_choice_[v] = SampleLiveInEdge(v, rng);
      }
      if (live_choice_[v] < 0) continue;
      const EdgeId live_edge =
          graph_.InEdgeIds(v)[static_cast<std::size_t>(live_choice_[v])];
      if (live_edge == base + i) {
        active_.Insert(v);
        cascade_.order.push_back({v, live_edge, current.step + 1});
      }
    }
  }
  return cascade_;
}

}  // namespace holim

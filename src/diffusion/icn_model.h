#ifndef HOLIM_DIFFUSION_ICN_MODEL_H_
#define HOLIM_DIFFUSION_ICN_MODEL_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

/// Result of one IC-N run: per-activation orientation.
struct IcnCascade {
  const Cascade* cascade = nullptr;
  std::vector<bool> positive;  // parallel to cascade->order
  std::size_t num_seeds = 0;

  /// Positive spread: activated non-seed nodes that ended up positive.
  std::size_t PositiveSpread() const;
  /// Signed spread: (+1 per positive) - (1 per negative), non-seeds only.
  double SignedSpread() const;
};

/// \brief IC-N (Chen et al., SDM'11): IC where negativity may emerge.
///
/// A uniform quality factor q governs transitions: a node activated by a
/// positive neighbor turns positive w.p. q and negative w.p. 1-q; a node
/// activated by a negative neighbor is always negative ("negativity bias").
/// Seeds start positive but may flip with the same quality factor, matching
/// the original model. This is the paper's first opinion-aware competitor
/// (Sec. 1, limitation (1)-(2)).
class IcnSimulator {
 public:
  IcnSimulator(const Graph& graph, const InfluenceParams& params,
               double quality_factor);

  const IcnCascade& Run(std::span<const NodeId> seeds, Rng& rng);

  double quality_factor() const { return quality_factor_; }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  double quality_factor_;
  Cascade cascade_;
  IcnCascade result_;
  EpochSet active_;
  std::vector<char> node_positive_;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_ICN_MODEL_H_

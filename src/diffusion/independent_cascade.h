#ifndef HOLIM_DIFFUSION_INDEPENDENT_CASCADE_H_
#define HOLIM_DIFFUSION_INDEPENDENT_CASCADE_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

/// \brief Independent Cascade simulator (Kempe et al., Sec. 2.1).
///
/// At step i every node activated at step i-1 gets one independent attempt
/// to activate each out-neighbor v with probability p(u,v). WC is IC with
/// p(u,v) = 1/indeg(v), so this simulator covers both.
///
/// The simulator owns reusable scratch; Run() is O(activated edges) and the
/// returned Cascade is valid until the next Run().
class IcSimulator {
 public:
  IcSimulator(const Graph& graph, const InfluenceParams& params);

  /// Runs one cascade from `seeds`. Duplicate seeds are activated once.
  const Cascade& Run(std::span<const NodeId> seeds, Rng& rng);

  /// Like Run but never activates nodes in `blocked` (used by the
  /// ScoreGREEDY activated-set bookkeeping and by competitive scenarios).
  const Cascade& RunWithBlocked(std::span<const NodeId> seeds, Rng& rng,
                                const EpochSet& blocked);

  std::size_t ScratchBytes() const { return active_.size_bytes(); }

 private:
  const Cascade& RunImpl(std::span<const NodeId> seeds, Rng& rng,
                         const EpochSet* blocked);

  const Graph& graph_;
  const InfluenceParams& params_;
  Cascade cascade_;
  EpochSet active_;
  // Activation count of the previous run; seeds Run's reserve.
  std::size_t last_activation_count_ = 0;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_INDEPENDENT_CASCADE_H_

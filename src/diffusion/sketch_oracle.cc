#include "diffusion/sketch_oracle.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"

namespace holim {

/// Per-shard sampling buffer: one block's snapshots back to back. The
/// snapshot boundaries inside `entries` are recovered from each snapshot's
/// final local offset (node_offsets holds n+1 values per snapshot).
struct SketchOracle::SnapshotBuffer {
  std::vector<NodeId> entries;
  std::vector<uint32_t> edge_offsets;
  std::vector<uint32_t> node_offsets;
  uint32_t num_snapshots = 0;
  // LT scratch: live picks arrive target-major, the arena is source-major.
  std::vector<NodeId> lt_source;
  std::vector<NodeId> lt_target;
  std::vector<uint32_t> lt_edge_offset;
  std::vector<uint32_t> counts;  // counting-sort offsets, n + 1
};

SketchOracle::SketchOracle(const Graph& graph, const InfluenceParams& params,
                           const SketchOptions& options)
    : graph_(&graph),
      params_(params),
      num_snapshots_(options.num_snapshots),
      num_lane_groups_((options.num_snapshots + kLanesPerGroup - 1) /
                       kLanesPerGroup),
      seed_(options.seed),
      record_edge_offsets_(options.record_edge_offsets),
      visited_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
  HOLIM_CHECK(num_snapshots_ > 0) << "need at least one snapshot";
  SampleAll(options.pool, options.deadline);
  if (!build_status_.ok()) return;  // aborted build: arenas unusable
  BuildLaneArena();
  if (!record_edge_offsets_) {
    // Edge offsets were recorded transiently to key the lane transpose
    // (they disambiguate parallel edges and fix the per-source emit
    // order); nobody reads them past this point unless requested.
    edge_offsets_.clear();
    edge_offsets_.shrink_to_fit();
  }
}

void SketchOracle::SampleOne(uint32_t snapshot, SnapshotBuffer& buffer) const {
  const NodeId n = graph_->num_nodes();
  const std::size_t entry_base = buffer.entries.size();
  if (params_.model == DiffusionModel::kLinearThreshold) {
    // Live-edge LT: each node keeps at most one live in-edge, chosen with
    // one uniform draw from its (snapshot, node) stream and the
    // residual-probability scan (LiveEdgeSimulator's distribution). Nodes
    // without in-edges draw nothing — the row-stream contract.
    buffer.lt_source.clear();
    buffer.lt_target.clear();
    buffer.lt_edge_offset.clear();
    for (NodeId v = 0; v < n; ++v) {
      const auto in_edges = graph_->InEdgeIds(v);
      if (in_edges.empty()) continue;
      uint64_t state = NodeStreamState(snapshot, v);
      double r = UnitDouble(Rng::SplitMix64(state));
      std::size_t pick = in_edges.size();
      for (std::size_t i = 0; i < in_edges.size(); ++i) {
        const double w = params_.p(in_edges[i]);
        if (r < w) {
          pick = i;
          break;
        }
        r -= w;
      }
      if (pick == in_edges.size()) continue;  // residual mass: no live edge
      const NodeId u = graph_->InNeighbors(v)[pick];
      const EdgeId e = in_edges[pick];
      buffer.lt_source.push_back(u);
      buffer.lt_target.push_back(v);
      buffer.lt_edge_offset.push_back(
          static_cast<uint32_t>(e - graph_->OutEdgeBegin(u)));
    }
    // Counting sort by source into the snapshot-local CSR. Scatter order
    // is target-ascending within each source (the discovery order above).
    buffer.counts.assign(n + 1, 0);
    for (NodeId u : buffer.lt_source) ++buffer.counts[u + 1];
    for (NodeId u = 0; u < n; ++u) buffer.counts[u + 1] += buffer.counts[u];
    buffer.node_offsets.insert(buffer.node_offsets.end(),
                               buffer.counts.begin(), buffer.counts.end());
    buffer.entries.resize(entry_base + buffer.lt_source.size());
    buffer.edge_offsets.resize(buffer.entries.size());
    for (std::size_t i = 0; i < buffer.lt_source.size(); ++i) {
      const NodeId u = buffer.lt_source[i];
      const std::size_t slot = entry_base + buffer.counts[u]++;
      buffer.entries[slot] = buffer.lt_target[i];
      buffer.edge_offsets[slot] = buffer.lt_edge_offset[i];
    }
    return;
  }
  // IC/WC: every edge flips independently, in EdgeId order, each source
  // row drawing from its own (snapshot, node) stream.
  for (NodeId u = 0; u < n; ++u) {
    buffer.node_offsets.push_back(
        static_cast<uint32_t>(buffer.entries.size() - entry_base));
    const EdgeId base = graph_->OutEdgeBegin(u);
    auto neighbors = graph_->OutNeighbors(u);
    if (neighbors.empty()) continue;
    uint64_t state = NodeStreamState(snapshot, u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (UnitDouble(Rng::SplitMix64(state)) < params_.p(base + i)) {
        buffer.entries.push_back(neighbors[i]);
        buffer.edge_offsets.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  buffer.node_offsets.push_back(
      static_cast<uint32_t>(buffer.entries.size() - entry_base));
}

void SketchOracle::SampleAll(ThreadPool* pool, Deadline* deadline) {
  const NodeId n = graph_->num_nodes();
  const std::size_t num_blocks =
      (num_snapshots_ + kSnapshotBlockSize - 1) / kSnapshotBlockSize;
  node_offsets_.reserve(static_cast<std::size_t>(num_snapshots_) * (n + 1));
  entry_base_.reserve(num_snapshots_ + 1);
  entry_base_.push_back(0);

  // Waves of one block per shard, merged in block order (same shape as
  // RrCollection::GenerateParallel). The per-(snapshot, node) streams are
  // keyed by global snapshot index, so the merged arena is independent of
  // the pool size and block decomposition; peak transient memory is one
  // wave of shard buffers.
  const std::size_t shards =
      pool ? std::max<std::size_t>(
                 1, std::min<std::size_t>(pool->num_threads() * 2, num_blocks))
           : 1;
  std::vector<SnapshotBuffer> buffers(shards);
  for (std::size_t wave_start = 0; wave_start < num_blocks;
       wave_start += shards) {
    const std::size_t wave_blocks = std::min(shards, num_blocks - wave_start);
    if (deadline) {
      // One tick per sampling block, charged at the wave boundary (wave
      // width is thread-count-dependent; the block count is not).
      Status st = deadline->CheckN(wave_blocks);
      if (!st.ok()) {
        build_status_ = std::move(st);
        return;
      }
    }
    auto sample_block = [&](std::size_t w) {
      SnapshotBuffer& buffer = buffers[w];
      buffer.entries.clear();
      buffer.edge_offsets.clear();
      buffer.node_offsets.clear();
      buffer.num_snapshots = 0;
      const std::size_t b = wave_start + w;
      const std::size_t lo = b * kSnapshotBlockSize;
      const std::size_t count =
          std::min(kSnapshotBlockSize,
                   static_cast<std::size_t>(num_snapshots_) - lo);
      for (std::size_t i = 0; i < count; ++i) {
        SampleOne(static_cast<uint32_t>(lo + i), buffer);
        ++buffer.num_snapshots;
      }
    };
    if (pool) {
      pool->ParallelFor(wave_blocks, sample_block);
    } else {
      for (std::size_t w = 0; w < wave_blocks; ++w) sample_block(w);
    }
    for (std::size_t w = 0; w < wave_blocks; ++w) {
      const SnapshotBuffer& buffer = buffers[w];
      std::size_t entry_cursor = 0;
      for (uint32_t j = 0; j < buffer.num_snapshots; ++j) {
        const std::size_t size =
            buffer.node_offsets[static_cast<std::size_t>(j) * (n + 1) + n];
        entries_.insert(entries_.end(),
                        buffer.entries.begin() + entry_cursor,
                        buffer.entries.begin() + entry_cursor + size);
        edge_offsets_.insert(edge_offsets_.end(),
                             buffer.edge_offsets.begin() + entry_cursor,
                             buffer.edge_offsets.begin() + entry_cursor +
                                 size);
        entry_cursor += size;
        entry_base_.push_back(entries_.size());
      }
      node_offsets_.insert(node_offsets_.end(), buffer.node_offsets.begin(),
                           buffer.node_offsets.end());
    }
  }
  // The arena is immutable from here on: trim growth slack so ArenaBytes()
  // is exact and deterministic.
  entries_.shrink_to_fit();
  edge_offsets_.shrink_to_fit();
  node_offsets_.shrink_to_fit();
  entry_base_.shrink_to_fit();
}

void SketchOracle::BuildLaneArena() {
  const NodeId n = graph_->num_nodes();
  lane_node_offsets_.assign(
      static_cast<std::size_t>(num_lane_groups_) * (n + 1), 0);
  lane_entry_base_.assign(num_lane_groups_ + 1, 0);
  // One lane word per global edge: bit b marks "live in snapshot
  // group_lo + b". m words of transient scratch, reused across groups —
  // the scatter stays within an L2/L3-sized array while the scalar arena
  // is streamed front to back.
  std::vector<uint64_t> edge_mask(graph_->num_edges(), 0);
  for (uint32_t g = 0; g < num_lane_groups_; ++g) {
    const uint32_t s_lo = g * kLanesPerGroup;
    const uint32_t s_hi =
        std::min<uint32_t>(num_snapshots_, s_lo + kLanesPerGroup);
    for (uint32_t s = s_lo; s < s_hi; ++s) {
      const uint32_t* offsets =
          node_offsets_.data() + static_cast<std::size_t>(s) * (n + 1);
      const uint32_t* edge_offs = edge_offsets_.data() + entry_base_[s];
      const uint64_t bit = uint64_t{1} << (s - s_lo);
      for (NodeId u = 0; u < n; ++u) {
        const EdgeId base = graph_->OutEdgeBegin(u);
        for (uint32_t j = offsets[u]; j < offsets[u + 1]; ++j) {
          edge_mask[base + edge_offs[j]] |= bit;
        }
      }
    }
    // Emit the union adjacency EdgeId-ascending per source — the same
    // per-source order every scalar snapshot stores its IC/WC entries in,
    // so lane-filtering the union reproduces the scalar walk exactly.
    // The emit scan doubles as the scratch clear.
    uint32_t* offsets = lane_node_offsets_.data() +
                        static_cast<std::size_t>(g) * (n + 1);
    const std::size_t group_base = lane_targets_.size();
    for (NodeId u = 0; u < n; ++u) {
      offsets[u] = static_cast<uint32_t>(lane_targets_.size() - group_base);
      const EdgeId base = graph_->OutEdgeBegin(u);
      auto neighbors = graph_->OutNeighbors(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const uint64_t mask = edge_mask[base + i];
        if (mask == 0) continue;
        edge_mask[base + i] = 0;
        lane_targets_.push_back(neighbors[i]);
        lane_masks_.push_back(mask);
        if (record_edge_offsets_) {
          lane_edge_offsets_.push_back(static_cast<uint32_t>(i));
        }
      }
    }
    offsets[n] = static_cast<uint32_t>(lane_targets_.size() - group_base);
    HOLIM_CHECK(lane_targets_.size() - group_base <=
                std::numeric_limits<uint32_t>::max())
        << "lane group overflows 32-bit CSR offsets";
    lane_entry_base_[g + 1] = lane_targets_.size();
  }
  lane_targets_.shrink_to_fit();
  lane_masks_.shrink_to_fit();
  lane_edge_offsets_.shrink_to_fit();
  lane_node_offsets_.shrink_to_fit();
  lane_entry_base_.shrink_to_fit();
}

double SketchOracle::Estimate(std::span<const NodeId> seeds,
                              SketchEval eval) const {
  if (seeds.empty()) return 0.0;
  const int64_t total_reached = eval == SketchEval::kScalar
                                    ? EstimateScalar(seeds)
                                    : EstimateLanes(seeds);
  const int64_t spread =
      total_reached - static_cast<int64_t>(num_snapshots_) *
                          static_cast<int64_t>(seeds.size());
  return static_cast<double>(spread) / num_snapshots_;
}

double SketchOracle::EstimateWeighted(std::span<const NodeId> seeds,
                                      std::span<const double> node_weights,
                                      SketchEval eval) const {
  if (seeds.empty()) return 0.0;
  HOLIM_CHECK(node_weights.size() == graph_->num_nodes())
      << "weight/node count mismatch";
  const double total_weight = eval == SketchEval::kScalar
                                  ? EstimateScalarWeighted(seeds, node_weights)
                                  : EstimateLanesWeighted(seeds, node_weights);
  // Mirror Estimate's |S| exclusion: each seed entry contributes its
  // weight R times (duplicates included, like R * seeds.size()). The
  // subtraction and single division reproduce Estimate's arithmetic
  // bit-for-bit when every weight is 1.0.
  double seed_weight = 0.0;
  for (const NodeId seed : seeds) seed_weight += node_weights[seed];
  return (total_weight - static_cast<double>(num_snapshots_) * seed_weight) /
         num_snapshots_;
}

double SketchOracle::EstimateScalarWeighted(
    std::span<const NodeId> seeds, std::span<const double> weights) const {
  const NodeId n = graph_->num_nodes();
  double total_weight = 0.0;
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      queue_.push_back(seed);
      total_weight += weights[seed];
    }
    while (!queue_.empty()) {
      const NodeId v = queue_.back();
      queue_.pop_back();
      for (NodeId t : LiveTargets(s, v)) {
        if (visited_.Contains(t)) continue;
        visited_.Insert(t);
        queue_.push_back(t);
        total_weight += weights[t];
      }
    }
  }
  return total_weight;
}

int64_t SketchOracle::EstimateScalar(std::span<const NodeId> seeds) const {
  const NodeId n = graph_->num_nodes();
  int64_t total_reached = 0;
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    int64_t reached = 0;
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      queue_.push_back(seed);
      ++reached;
    }
    while (!queue_.empty()) {
      const NodeId v = queue_.back();
      queue_.pop_back();
      for (NodeId t : LiveTargets(s, v)) {
        if (visited_.Contains(t)) continue;
        visited_.Insert(t);
        queue_.push_back(t);
        ++reached;
      }
    }
    total_reached += reached;
  }
  return total_reached;
}

/// Distance (in edges) the lane walks prefetch target state ahead of the
/// probe. The row scan's latency is dominated by the random per-target
/// state loads; the target IDs are sequentially readable from the row, so
/// a short lookahead hides most of the miss latency.
constexpr uint32_t kLanePrefetchDistance = 8;

int64_t SketchOracle::EstimateLanes(std::span<const NodeId> seeds) const {
  const NodeId n = graph_->num_nodes();
  if (lane_state_.size() != n) {
    lane_state_.assign(n, 0);
    lane_pending_.assign(n, 0);
  }
  int64_t total_reached = 0;
  for (uint32_t g = 0; g < num_lane_groups_; ++g) {
    const uint64_t full = LaneMaskAll(g);
    queue_.clear();     // worklist (pending_ words are the real frontier)
    frontier_.clear();  // nodes whose state word must be re-zeroed
    for (NodeId seed : seeds) {
      const uint64_t fresh = full & ~lane_state_[seed];
      if (fresh == 0) continue;  // duplicate seed
      total_reached += std::popcount(fresh);
      if (lane_state_[seed] == 0) frontier_.push_back(seed);
      lane_state_[seed] |= fresh;
      if (lane_pending_[seed] == 0) queue_.push_back(seed);
      lane_pending_[seed] |= fresh;
    }
    // FIFO walk: lanes arriving while a level drains aggregate in the
    // pending word and cost ONE rescan of v's union row, where LIFO would
    // chase single lanes down long paths and rescan rows per wave.
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId v = queue_[head];
      const uint64_t active = lane_pending_[v];
      if (active == 0) continue;  // drained by an earlier duplicate entry
      lane_pending_[v] = 0;  // self-clearing: processing zeroes the word
      if (head + 1 < queue_.size()) PrefetchLaneRow(g, queue_[head + 1]);
      if (head + 2 < queue_.size()) PrefetchLaneOffsets(g, queue_[head + 2]);
      const LaneAdjacency adj = LaneTargets(g, v);
      for (uint32_t j = 0; j < adj.size; ++j) {
        if (j + kLanePrefetchDistance < adj.size) {
          __builtin_prefetch(
              &lane_state_[adj.targets[j + kLanePrefetchDistance]]);
        }
        const NodeId t = adj.targets[j];
        const uint64_t fresh = adj.masks[j] & active & ~lane_state_[t];
        if (fresh == 0) continue;
        total_reached += std::popcount(fresh);
        if (lane_state_[t] == 0) frontier_.push_back(t);
        lane_state_[t] |= fresh;
        if (lane_pending_[t] == 0) queue_.push_back(t);
        lane_pending_[t] |= fresh;
      }
    }
    for (NodeId t : frontier_) lane_state_[t] = 0;
  }
  return total_reached;
}

double SketchOracle::EstimateLanesWeighted(
    std::span<const NodeId> seeds, std::span<const double> weights) const {
  const NodeId n = graph_->num_nodes();
  if (lane_state_.size() != n) {
    lane_state_.assign(n, 0);
    lane_pending_.assign(n, 0);
  }
  double total_weight = 0.0;
  for (uint32_t g = 0; g < num_lane_groups_; ++g) {
    const uint64_t full = LaneMaskAll(g);
    queue_.clear();
    frontier_.clear();
    for (NodeId seed : seeds) {
      const uint64_t fresh = full & ~lane_state_[seed];
      if (fresh == 0) continue;  // duplicate seed
      total_weight += std::popcount(fresh) * weights[seed];
      if (lane_state_[seed] == 0) frontier_.push_back(seed);
      lane_state_[seed] |= fresh;
      if (lane_pending_[seed] == 0) queue_.push_back(seed);
      lane_pending_[seed] |= fresh;
    }
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId v = queue_[head];
      const uint64_t active = lane_pending_[v];
      if (active == 0) continue;
      lane_pending_[v] = 0;
      if (head + 1 < queue_.size()) PrefetchLaneRow(g, queue_[head + 1]);
      if (head + 2 < queue_.size()) PrefetchLaneOffsets(g, queue_[head + 2]);
      const LaneAdjacency adj = LaneTargets(g, v);
      for (uint32_t j = 0; j < adj.size; ++j) {
        if (j + kLanePrefetchDistance < adj.size) {
          __builtin_prefetch(
              &lane_state_[adj.targets[j + kLanePrefetchDistance]]);
        }
        const NodeId t = adj.targets[j];
        const uint64_t fresh = adj.masks[j] & active & ~lane_state_[t];
        if (fresh == 0) continue;
        total_weight += std::popcount(fresh) * weights[t];
        if (lane_state_[t] == 0) frontier_.push_back(t);
        lane_state_[t] |= fresh;
        if (lane_pending_[t] == 0) queue_.push_back(t);
        lane_pending_[t] |= fresh;
      }
    }
    for (NodeId t : frontier_) lane_state_[t] = 0;
  }
  return total_weight;
}

double SketchOracle::EstimateIcnPositive(std::span<const NodeId> seeds,
                                         double quality_factor,
                                         SketchEval eval) const {
  if (seeds.empty()) return 0.0;
  HOLIM_CHECK(quality_factor >= 0.0 && quality_factor <= 1.0)
      << "quality factor out of [0,1]";
  icn_level_counts_.clear();
  if (eval == SketchEval::kScalar) {
    AccumulateIcnLevelCountsScalar(seeds);
  } else {
    AccumulateIcnLevelCountsLanes(seeds);
  }
  // Shared fold: both traversals produce the same integer per-distance
  // activation counts (summed over snapshots), so the estimate is bitwise
  // identical across eval modes. Nodes at live-edge distance d are
  // positive w.p. q^(d+1).
  double total = 0.0;
  double factor = quality_factor * quality_factor;  // d == 1
  for (const int64_t count : icn_level_counts_) {
    total += static_cast<double>(count) * factor;
    factor *= quality_factor;
  }
  return total / num_snapshots_;
}

void SketchOracle::AccumulateIcnLevelCountsScalar(
    std::span<const NodeId> seeds) const {
  const NodeId n = graph_->num_nodes();
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      queue_.push_back(seed);
    }
    std::size_t lo = 0;
    std::size_t hi = queue_.size();
    std::size_t depth = 0;  // depth d counts discoveries at distance d + 1
    while (lo < hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (NodeId t : LiveTargets(s, queue_[i])) {
          if (visited_.Contains(t)) continue;
          visited_.Insert(t);
          queue_.push_back(t);
        }
      }
      const std::size_t discovered = queue_.size() - hi;
      if (discovered != 0) {
        if (icn_level_counts_.size() <= depth) {
          icn_level_counts_.resize(depth + 1, 0);
        }
        icn_level_counts_[depth] += static_cast<int64_t>(discovered);
      }
      lo = hi;
      hi = queue_.size();
      ++depth;
    }
  }
}

void SketchOracle::AccumulateIcnLevelCountsLanes(
    std::span<const NodeId> seeds) const {
  const NodeId n = graph_->num_nodes();
  if (lane_state_.size() != n) {
    lane_state_.assign(n, 0);
    lane_pending_.assign(n, 0);
  }
  if (lane_next_.size() != n) lane_next_.assign(n, 0);
  for (uint32_t g = 0; g < num_lane_groups_; ++g) {
    const uint64_t full = LaneMaskAll(g);
    queue_.clear();     // level-ordered node list (lo/hi windows)
    frontier_.clear();  // nodes whose state word must be re-zeroed
    for (NodeId seed : seeds) {
      const uint64_t fresh = full & ~lane_state_[seed];
      if (fresh == 0) continue;  // duplicate seed
      if (lane_state_[seed] == 0) frontier_.push_back(seed);
      lane_state_[seed] |= fresh;
      if (lane_pending_[seed] == 0) queue_.push_back(seed);
      lane_pending_[seed] |= fresh;
    }
    // Level-synchronous so popcounts land on the right distance: current
    // lanes live in lane_pending_, next-level lanes accumulate in
    // lane_next_ (a node can sit in both), swapped per level.
    std::size_t lo = 0;
    std::size_t hi = queue_.size();
    std::size_t depth = 0;
    while (lo < hi) {
      int64_t discovered = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId v = queue_[i];
        const uint64_t active = lane_pending_[v];
        lane_pending_[v] = 0;
        if (i + 1 < hi) PrefetchLaneRow(g, queue_[i + 1]);
        if (i + 2 < hi) PrefetchLaneOffsets(g, queue_[i + 2]);
        const LaneAdjacency adj = LaneTargets(g, v);
        for (uint32_t j = 0; j < adj.size; ++j) {
          const NodeId t = adj.targets[j];
          const uint64_t fresh = adj.masks[j] & active & ~lane_state_[t];
          if (fresh == 0) continue;
          discovered += std::popcount(fresh);
          if (lane_state_[t] == 0) frontier_.push_back(t);
          lane_state_[t] |= fresh;
          if (lane_next_[t] == 0) queue_.push_back(t);
          lane_next_[t] |= fresh;
        }
      }
      if (discovered != 0) {
        if (icn_level_counts_.size() <= depth) {
          icn_level_counts_.resize(depth + 1, 0);
        }
        icn_level_counts_[depth] += discovered;
      }
      lo = hi;
      hi = queue_.size();
      ++depth;
      // All processed pending words are zero; the swap promotes the next
      // level and hands back an all-zero next array.
      std::swap(lane_pending_, lane_next_);
    }
    for (NodeId t : frontier_) lane_state_[t] = 0;
  }
}

OpinionSpreadEstimate SketchOracle::EstimateOpinion(
    const OpinionParams& opinions, OiBase base, std::span<const NodeId> seeds,
    double lambda, SketchEval eval) const {
  OpinionSpreadEstimate estimate;
  if (seeds.empty()) return estimate;
  HOLIM_CHECK(base == OiBase::kIndependentCascade)
      << "sketch opinion replay supports the IC base only";
  HOLIM_CHECK(record_edge_offsets_)
      << "EstimateOpinion needs SketchOptions::record_edge_offsets";
  HOLIM_CHECK(opinions.opinion.size() == graph_->num_nodes())
      << "opinion/node count mismatch";
  HOLIM_CHECK(opinions.interaction.size() == graph_->num_edges())
      << "interaction/edge count mismatch";
  const NodeId n = graph_->num_nodes();
  if (node_value_.size() != n) node_value_.assign(n, 0.0);
  double opinion_sum = 0.0, positive_sum = 0.0, negative_sum = 0.0;
  int64_t plain = 0;
  // Opinion values are per-(snapshot, node) doubles, so the replay is
  // inherently per-snapshot; the eval modes differ only in which arena
  // serves the snapshot's adjacency. The lane arena stores each source's
  // union entries EdgeId-ascending — the same order every scalar IC/WC
  // snapshot stores its entries — so filtering by the snapshot's lane bit
  // visits the identical (v, e) sequence and the replay is bitwise
  // identical (this unifies the arenas; it is not a speedup).
  auto replay = [&](auto&& for_each_live) {
    for (uint32_t s = 0; s < num_snapshots_; ++s) {
      visited_.Reset(n);
      queue_.clear();
      for (NodeId seed : seeds) {
        if (visited_.Contains(seed)) continue;
        visited_.Insert(seed);
        node_value_[seed] = opinions.o(seed);  // o'_s = o_s, excluded below
        queue_.push_back(seed);
      }
      // BFS in activation order: the activator's expected opinion is
      // settled before any node it activates (first live arrival wins,
      // matching the IC simulator's queue semantics).
      std::size_t head = 0;
      while (head < queue_.size()) {
        const NodeId u = queue_[head++];
        const double value_u = node_value_[u];
        const EdgeId out_begin = graph_->OutEdgeBegin(u);
        for_each_live(s, u, [&](NodeId v, uint32_t edge_off) {
          if (visited_.Contains(v)) return;
          visited_.Insert(v);
          const EdgeId e = out_begin + edge_off;
          // E[(-1)^alpha o'_u] with alpha = 0 w.p. phi(e).
          const double value =
              (opinions.o(v) + (2.0 * opinions.phi(e) - 1.0) * value_u) / 2.0;
          node_value_[v] = value;
          opinion_sum += value;
          if (value > 0) {
            positive_sum += value;
          } else {
            negative_sum += -value;
          }
          ++plain;
          queue_.push_back(v);
        });
      }
    }
  };
  if (eval == SketchEval::kScalar) {
    replay([&](uint32_t s, NodeId u, auto&& emit) {
      const uint32_t* offsets =
          node_offsets_.data() + static_cast<std::size_t>(s) * (n + 1);
      const NodeId* targets = entries_.data() + entry_base_[s];
      const uint32_t* edge_offs = edge_offsets_.data() + entry_base_[s];
      for (uint32_t j = offsets[u]; j < offsets[u + 1]; ++j) {
        emit(targets[j], edge_offs[j]);
      }
    });
  } else {
    replay([&](uint32_t s, NodeId u, auto&& emit) {
      const uint32_t g = s / kLanesPerGroup;
      const uint64_t bit = uint64_t{1} << (s % kLanesPerGroup);
      const std::size_t group_base = lane_entry_base_[g];
      const uint32_t* offsets =
          lane_node_offsets_.data() + static_cast<std::size_t>(g) * (n + 1);
      const NodeId* targets = lane_targets_.data() + group_base;
      const uint64_t* masks = lane_masks_.data() + group_base;
      const uint32_t* edge_offs = lane_edge_offsets_.data() + group_base;
      for (uint32_t j = offsets[u]; j < offsets[u + 1]; ++j) {
        if (masks[j] & bit) emit(targets[j], edge_offs[j]);
      }
    });
  }
  estimate.opinion_spread = opinion_sum / num_snapshots_;
  estimate.effective_opinion_spread =
      (positive_sum - lambda * negative_sum) / num_snapshots_;
  estimate.plain_spread = static_cast<double>(plain) / num_snapshots_;
  return estimate;
}

std::size_t SketchOracle::ArenaBytes() const {
  return entries_.capacity() * sizeof(NodeId) +
         edge_offsets_.capacity() * sizeof(uint32_t) +
         node_offsets_.capacity() * sizeof(uint32_t) +
         entry_base_.capacity() * sizeof(std::size_t) +
         lane_targets_.capacity() * sizeof(NodeId) +
         lane_masks_.capacity() * sizeof(uint64_t) +
         lane_edge_offsets_.capacity() * sizeof(uint32_t) +
         lane_node_offsets_.capacity() * sizeof(uint32_t) +
         lane_entry_base_.capacity() * sizeof(std::size_t);
}

Status SketchOracle::ApplyDelta(const Graph& new_graph,
                                const InfluenceParams& new_params) {
  if (new_params.probability.size() != new_graph.num_edges()) {
    return Status::InvalidArgument(
        "params/graph edge count mismatch: " +
        std::to_string(new_params.probability.size()) + " probabilities vs " +
        std::to_string(new_graph.num_edges()) + " edges");
  }
  if (new_params.model != params_.model) {
    return Status::InvalidArgument(
        "diffusion model changed across the delta; rebuild the oracle");
  }
  if (new_graph.num_nodes() < graph_->num_nodes()) {
    return Status::InvalidArgument(
        "graph shrank across the delta; deltas never drop nodes");
  }
  if (params_.model == DiffusionModel::kLinearThreshold) {
    return ApplyDeltaLinearThreshold(new_graph, new_params);
  }
  return ApplyDeltaCascade(new_graph, new_params);
}

Status SketchOracle::ApplyDeltaCascade(const Graph& new_graph,
                                       const InfluenceParams& new_params) {
  const Graph& old_graph = *graph_;
  const NodeId n_old = old_graph.num_nodes();
  const NodeId n_new = new_graph.num_nodes();

  // Dirty = source rows whose (targets, p) contents changed positionally;
  // only their (snapshot, node) streams replay differently. Comparing p
  // (not just topology) is what makes this model-agnostic: a WC delta
  // shifts 1/indeg(v) on every in-edge of a touched target, and each such
  // edge's source row goes dirty via the p mismatch.
  std::vector<uint8_t> dirty(n_new, 0);
  std::vector<NodeId> dirty_rows;
  std::vector<uint32_t> dirty_index(n_new, 0);
  for (NodeId u = 0; u < n_new; ++u) {
    bool is_dirty = u >= n_old;
    if (!is_dirty) {
      const auto old_row = old_graph.OutNeighbors(u);
      const auto new_row = new_graph.OutNeighbors(u);
      if (old_row.size() != new_row.size()) {
        is_dirty = true;
      } else {
        const EdgeId old_base = old_graph.OutEdgeBegin(u);
        const EdgeId new_base = new_graph.OutEdgeBegin(u);
        for (std::size_t i = 0; i < old_row.size(); ++i) {
          if (old_row[i] != new_row[i] ||
              params_.p(old_base + i) != new_params.p(new_base + i)) {
            is_dirty = true;
            break;
          }
        }
      }
    }
    if (is_dirty) {
      dirty[u] = 1;
      dirty_index[u] = static_cast<uint32_t>(dirty_rows.size());
      dirty_rows.push_back(u);
    }
  }
  if (dirty_rows.empty()) {  // identical CSR + params: rebind only
    graph_ = &new_graph;
    params_ = new_params;
    return Status::OK();
  }

  // Resample ONLY the dirty rows, per snapshot, into side buffers — the
  // entire RNG cost of the patch.
  const std::size_t num_dirty = dirty_rows.size();
  std::vector<NodeId> side_entries;
  std::vector<uint32_t> side_offsets;
  std::vector<std::size_t> side_base(
      static_cast<std::size_t>(num_snapshots_) * num_dirty + 1, 0);
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    for (std::size_t d = 0; d < num_dirty; ++d) {
      const NodeId u = dirty_rows[d];
      const auto row = new_graph.OutNeighbors(u);
      if (!row.empty()) {
        const EdgeId base = new_graph.OutEdgeBegin(u);
        uint64_t state = NodeStreamState(s, u);
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (UnitDouble(Rng::SplitMix64(state)) < new_params.p(base + i)) {
            side_entries.push_back(row[i]);
            side_offsets.push_back(static_cast<uint32_t>(i));
          }
        }
      }
      side_base[static_cast<std::size_t>(s) * num_dirty + d + 1] =
          side_entries.size();
    }
  }

  // Splice the scalar arena: clean rows byte-copied from the old arena,
  // dirty rows from the side buffers; snapshot-local offsets and bases
  // rebuilt outright (n may have grown). Content and — after the trailing
  // shrink_to_fit — capacities match a cold build exactly.
  std::vector<NodeId> new_entries;
  std::vector<uint32_t> new_edge_offsets;
  std::vector<uint32_t> new_node_offsets;
  std::vector<std::size_t> new_entry_base;
  new_node_offsets.reserve(static_cast<std::size_t>(num_snapshots_) *
                           (n_new + 1));
  new_entry_base.reserve(num_snapshots_ + 1);
  new_entry_base.push_back(0);
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    const uint32_t* old_offsets =
        node_offsets_.data() + static_cast<std::size_t>(s) * (n_old + 1);
    const NodeId* old_entries = entries_.data() + entry_base_[s];
    const uint32_t* old_eoffs =
        record_edge_offsets_ ? edge_offsets_.data() + entry_base_[s] : nullptr;
    const std::size_t snapshot_base = new_entry_base.back();
    for (NodeId u = 0; u < n_new; ++u) {
      new_node_offsets.push_back(
          static_cast<uint32_t>(new_entries.size() - snapshot_base));
      if (dirty[u]) {
        const std::size_t base_index =
            static_cast<std::size_t>(s) * num_dirty + dirty_index[u];
        const std::size_t lo = side_base[base_index];
        const std::size_t hi = side_base[base_index + 1];
        new_entries.insert(new_entries.end(), side_entries.begin() + lo,
                           side_entries.begin() + hi);
        if (record_edge_offsets_) {
          new_edge_offsets.insert(new_edge_offsets.end(),
                                  side_offsets.begin() + lo,
                                  side_offsets.begin() + hi);
        }
      } else {
        new_entries.insert(new_entries.end(), old_entries + old_offsets[u],
                           old_entries + old_offsets[u + 1]);
        if (record_edge_offsets_) {
          new_edge_offsets.insert(new_edge_offsets.end(),
                                  old_eoffs + old_offsets[u],
                                  old_eoffs + old_offsets[u + 1]);
        }
      }
    }
    new_node_offsets.push_back(
        static_cast<uint32_t>(new_entries.size() - snapshot_base));
    new_entry_base.push_back(new_entries.size());
  }

  // Splice the lane arena the same way: clean source rows keep identical
  // per-snapshot entries, so their union rows (and masks) copy verbatim;
  // dirty rows re-transpose from the side buffers, emitted EdgeId-ascending
  // exactly like BuildLaneArena.
  std::vector<NodeId> new_lane_targets;
  std::vector<uint64_t> new_lane_masks;
  std::vector<uint32_t> new_lane_edge_offsets;
  std::vector<uint32_t> new_lane_node_offsets(
      static_cast<std::size_t>(num_lane_groups_) * (n_new + 1), 0);
  std::vector<std::size_t> new_lane_entry_base(num_lane_groups_ + 1, 0);
  std::vector<uint64_t> row_mask;
  for (uint32_t g = 0; g < num_lane_groups_; ++g) {
    const uint32_t s_lo = g * kLanesPerGroup;
    const uint32_t s_hi =
        std::min<uint32_t>(num_snapshots_, s_lo + kLanesPerGroup);
    uint32_t* offsets = new_lane_node_offsets.data() +
                        static_cast<std::size_t>(g) * (n_new + 1);
    const std::size_t group_base = new_lane_targets.size();
    const uint32_t* old_loffs =
        lane_node_offsets_.data() + static_cast<std::size_t>(g) * (n_old + 1);
    const std::size_t old_gbase = lane_entry_base_[g];
    for (NodeId u = 0; u < n_new; ++u) {
      offsets[u] = static_cast<uint32_t>(new_lane_targets.size() - group_base);
      if (!dirty[u]) {
        const std::size_t lo = old_gbase + old_loffs[u];
        const std::size_t hi = old_gbase + old_loffs[u + 1];
        new_lane_targets.insert(new_lane_targets.end(),
                                lane_targets_.begin() + lo,
                                lane_targets_.begin() + hi);
        new_lane_masks.insert(new_lane_masks.end(), lane_masks_.begin() + lo,
                              lane_masks_.begin() + hi);
        if (record_edge_offsets_) {
          new_lane_edge_offsets.insert(new_lane_edge_offsets.end(),
                                       lane_edge_offsets_.begin() + lo,
                                       lane_edge_offsets_.begin() + hi);
        }
      } else {
        const auto row = new_graph.OutNeighbors(u);
        row_mask.assign(row.size(), 0);
        for (uint32_t s = s_lo; s < s_hi; ++s) {
          const std::size_t base_index =
              static_cast<std::size_t>(s) * num_dirty + dirty_index[u];
          const uint64_t bit = uint64_t{1} << (s - s_lo);
          for (std::size_t k = side_base[base_index];
               k < side_base[base_index + 1]; ++k) {
            row_mask[side_offsets[k]] |= bit;
          }
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (row_mask[i] == 0) continue;
          new_lane_targets.push_back(row[i]);
          new_lane_masks.push_back(row_mask[i]);
          if (record_edge_offsets_) {
            new_lane_edge_offsets.push_back(static_cast<uint32_t>(i));
          }
        }
      }
    }
    offsets[n_new] =
        static_cast<uint32_t>(new_lane_targets.size() - group_base);
    HOLIM_CHECK(new_lane_targets.size() - group_base <=
                std::numeric_limits<uint32_t>::max())
        << "lane group overflows 32-bit CSR offsets";
    new_lane_entry_base[g + 1] = new_lane_targets.size();
  }

  new_entries.shrink_to_fit();
  new_edge_offsets.shrink_to_fit();
  new_node_offsets.shrink_to_fit();
  new_entry_base.shrink_to_fit();
  new_lane_targets.shrink_to_fit();
  new_lane_masks.shrink_to_fit();
  new_lane_edge_offsets.shrink_to_fit();
  entries_ = std::move(new_entries);
  edge_offsets_ = std::move(new_edge_offsets);
  node_offsets_ = std::move(new_node_offsets);
  entry_base_ = std::move(new_entry_base);
  lane_targets_ = std::move(new_lane_targets);
  lane_masks_ = std::move(new_lane_masks);
  lane_edge_offsets_ = std::move(new_lane_edge_offsets);
  lane_node_offsets_ = std::move(new_lane_node_offsets);
  lane_entry_base_ = std::move(new_lane_entry_base);
  graph_ = &new_graph;
  params_ = new_params;
  return Status::OK();
}

Status SketchOracle::ApplyDeltaLinearThreshold(
    const Graph& new_graph, const InfluenceParams& new_params) {
  const Graph& old_graph = *graph_;
  const NodeId n_old = old_graph.num_nodes();
  const NodeId n_new = new_graph.num_nodes();

  // LT draws are per *target*: dirty = targets whose in-row (sources, p)
  // contents changed positionally.
  std::vector<uint8_t> dirty(n_new, 0);
  bool any_dirty = false;
  for (NodeId v = 0; v < n_new; ++v) {
    bool is_dirty = v >= n_old;
    if (!is_dirty) {
      const auto old_src = old_graph.InNeighbors(v);
      const auto new_src = new_graph.InNeighbors(v);
      if (old_src.size() != new_src.size()) {
        is_dirty = true;
      } else {
        const auto old_ids = old_graph.InEdgeIds(v);
        const auto new_ids = new_graph.InEdgeIds(v);
        for (std::size_t i = 0; i < old_src.size(); ++i) {
          if (old_src[i] != new_src[i] ||
              params_.p(old_ids[i]) != new_params.p(new_ids[i])) {
            is_dirty = true;
            break;
          }
        }
      }
    }
    if (is_dirty) {
      dirty[v] = 1;
      any_dirty = true;
    }
  }
  if (!any_dirty) {  // identical CSR + params: rebind only
    graph_ = &new_graph;
    params_ = new_params;
    return Status::OK();
  }

  // Rebuild the scalar arena per snapshot: a clean target's live pick
  // replays identically (same stream, same in-row weights), so it is
  // *recovered* from the old arena instead of redrawn — only its edge
  // offset is re-derived against the source's possibly-shifted new
  // out-row. Dirty targets redraw from their streams on the new graph.
  std::vector<NodeId> pick(n_new, kInvalidNode);
  std::vector<NodeId> lt_source;
  std::vector<NodeId> lt_target;
  std::vector<uint32_t> lt_edge_offset;
  std::vector<uint32_t> counts;
  std::vector<NodeId> new_entries;
  std::vector<uint32_t> new_edge_offsets;  // always built: keys the lane pass
  std::vector<uint32_t> new_node_offsets;
  std::vector<std::size_t> new_entry_base;
  new_node_offsets.reserve(static_cast<std::size_t>(num_snapshots_) *
                           (n_new + 1));
  new_entry_base.reserve(num_snapshots_ + 1);
  new_entry_base.push_back(0);
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    std::fill(pick.begin(), pick.end(), kInvalidNode);
    const uint32_t* old_offsets =
        node_offsets_.data() + static_cast<std::size_t>(s) * (n_old + 1);
    const NodeId* old_entries = entries_.data() + entry_base_[s];
    for (NodeId u = 0; u < n_old; ++u) {
      for (uint32_t j = old_offsets[u]; j < old_offsets[u + 1]; ++j) {
        pick[old_entries[j]] = u;  // entry v in u's row: v picked u
      }
    }
    lt_source.clear();
    lt_target.clear();
    lt_edge_offset.clear();
    for (NodeId v = 0; v < n_new; ++v) {
      if (dirty[v]) {
        const auto in_edges = new_graph.InEdgeIds(v);
        if (in_edges.empty()) continue;
        uint64_t state = NodeStreamState(s, v);
        double r = UnitDouble(Rng::SplitMix64(state));
        std::size_t pos = in_edges.size();
        for (std::size_t i = 0; i < in_edges.size(); ++i) {
          const double w = new_params.p(in_edges[i]);
          if (r < w) {
            pos = i;
            break;
          }
          r -= w;
        }
        if (pos == in_edges.size()) continue;  // residual mass: no live edge
        const NodeId u = new_graph.InNeighbors(v)[pos];
        lt_source.push_back(u);
        lt_target.push_back(v);
        lt_edge_offset.push_back(static_cast<uint32_t>(
            in_edges[pos] - new_graph.OutEdgeBegin(u)));
      } else {
        const NodeId u = pick[v];
        if (u == kInvalidNode) continue;  // old draw kept no edge; replays so
        // v's in-row is unchanged, so edge (u -> v) still exists; its
        // offset in u's new out-row may have shifted (rows are strictly
        // ascending, so binary search recovers it).
        const auto row = new_graph.OutNeighbors(u);
        const auto it = std::lower_bound(row.begin(), row.end(), v);
        lt_source.push_back(u);
        lt_target.push_back(v);
        lt_edge_offset.push_back(static_cast<uint32_t>(it - row.begin()));
      }
    }
    // Counting sort by source — SampleOne's LT scatter, verbatim.
    counts.assign(n_new + 1, 0);
    for (NodeId u : lt_source) ++counts[u + 1];
    for (NodeId u = 0; u < n_new; ++u) counts[u + 1] += counts[u];
    new_node_offsets.insert(new_node_offsets.end(), counts.begin(),
                            counts.end());
    const std::size_t snapshot_base = new_entries.size();
    new_entries.resize(snapshot_base + lt_source.size());
    new_edge_offsets.resize(new_entries.size());
    for (std::size_t i = 0; i < lt_source.size(); ++i) {
      const NodeId u = lt_source[i];
      const std::size_t slot = snapshot_base + counts[u]++;
      new_entries[slot] = lt_target[i];
      new_edge_offsets[slot] = lt_edge_offset[i];
    }
    new_entry_base.push_back(new_entries.size());
  }
  new_entries.shrink_to_fit();
  new_edge_offsets.shrink_to_fit();
  new_node_offsets.shrink_to_fit();
  new_entry_base.shrink_to_fit();
  entries_ = std::move(new_entries);
  edge_offsets_ = std::move(new_edge_offsets);
  node_offsets_ = std::move(new_node_offsets);
  entry_base_ = std::move(new_entry_base);
  graph_ = &new_graph;
  params_ = new_params;

  // An LT lane row unions picks of many targets, so per-row splicing does
  // not apply; re-transpose wholesale from the spliced scalar arena — the
  // cold post-pass (BuildLaneArena assigns the offset arrays but appends
  // to the entry arrays, hence the clears).
  lane_targets_.clear();
  lane_masks_.clear();
  lane_edge_offsets_.clear();
  BuildLaneArena();
  if (!record_edge_offsets_) {
    edge_offsets_.clear();
    edge_offsets_.shrink_to_fit();
  }
  return Status::OK();
}

SketchOracle::Session::Session(const SketchOracle& oracle, SketchEval eval,
                               std::span<const double> node_weights)
    : oracle_(oracle),
      eval_(eval),
      weights_(node_weights),
      n_(oracle.graph().num_nodes()),
      num_groups_(oracle.num_lane_groups()),
      lanes_(static_cast<std::size_t>(oracle.num_lane_groups()) *
                 oracle.graph().num_nodes(),
             0) {
  HOLIM_CHECK(weights_.empty() || weights_.size() == n_)
      << "weight/node count mismatch";
  if (eval_ == SketchEval::kBitParallel) {
    pending_.assign(n_, 0);
  }
}

void SketchOracle::Session::Reset() {
  std::fill(lanes_.begin(), lanes_.end(), 0);
  total_active_ = 0;
  total_active_weight_ = 0.0;
  seed_weight_sum_ = 0.0;
  num_seeds_ = 0;
}

template <bool kCommit>
int64_t SketchOracle::Session::ExploreScalar(NodeId u) {
  const uint32_t snapshots = oracle_.num_snapshots();
  int64_t newly_total = 0;
  for (uint32_t s = 0; s < snapshots; ++s) {
    uint64_t* lanes =
        lanes_.data() + static_cast<std::size_t>(s / kLanesPerGroup) * n_;
    const uint64_t bit = uint64_t{1} << (s % kLanesPerGroup);
    if (lanes[u] & bit) continue;
    // The activated set is reachability-closed, so the walk prunes at
    // every activated node: only reach(u) \ activated is ever visited.
    if constexpr (kCommit) {
      lanes[u] |= bit;
    } else {
      trial_.Reset(n_);
      trial_.Insert(u);
    }
    stack_.assign(1, u);
    int64_t newly = 1;
    while (!stack_.empty()) {
      const NodeId v = stack_.back();
      stack_.pop_back();
      for (NodeId t : oracle_.LiveTargets(s, v)) {
        if (lanes[t] & bit) continue;
        if constexpr (kCommit) {
          lanes[t] |= bit;
        } else {
          if (trial_.Contains(t)) continue;
          trial_.Insert(t);
        }
        ++newly;
        stack_.push_back(t);
      }
    }
    newly_total += newly;
  }
  return newly_total;
}

template <bool kCommit>
int64_t SketchOracle::Session::ExploreLanes(NodeId u) {
  int64_t newly_total = 0;
  for (uint32_t g = 0; g < num_groups_; ++g) {
    uint64_t* activated = lanes_.data() + static_cast<std::size_t>(g) * n_;
    const uint64_t start = oracle_.LaneMaskAll(g) & ~activated[u];
    if (start == 0) continue;  // u already active in every lane
    newly_total += std::popcount(start);
    // Probes speculatively write trial lanes into the activated words and
    // roll back from undo_ afterwards, so probe and commit walks are the
    // same kernel with one random state access per edge.
    if constexpr (!kCommit) undo_.push_back({u, activated[u]});
    activated[u] |= start;
    pending_[u] = start;
    stack_.assign(1, u);
    // FIFO walk (see EstimateLanes): aggregates lane waves per node so a
    // union row is rescanned once per wave, not once per arriving lane.
    for (std::size_t head = 0; head < stack_.size(); ++head) {
      const NodeId v = stack_[head];
      const uint64_t active = pending_[v];
      if (active == 0) continue;
      pending_[v] = 0;  // self-clearing: processing zeroes the word
      if (head + 1 < stack_.size()) oracle_.PrefetchLaneRow(g, stack_[head + 1]);
      if (head + 2 < stack_.size()) {
        oracle_.PrefetchLaneOffsets(g, stack_[head + 2]);
      }
      const LaneAdjacency adj = oracle_.LaneTargets(g, v);
      for (uint32_t j = 0; j < adj.size; ++j) {
        if (j + kLanePrefetchDistance < adj.size) {
          __builtin_prefetch(&activated[adj.targets[j + kLanePrefetchDistance]]);
        }
        const NodeId t = adj.targets[j];
        const uint64_t fresh = adj.masks[j] & active & ~activated[t];
        if (fresh == 0) continue;
        newly_total += std::popcount(fresh);
        if constexpr (!kCommit) undo_.push_back({t, activated[t]});
        activated[t] |= fresh;
        if (pending_[t] == 0) stack_.push_back(t);
        pending_[t] |= fresh;
      }
    }
    if constexpr (!kCommit) {
      // Reverse replay restores a twice-freshened node's oldest word last.
      for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        activated[it->node] = it->word;
      }
      undo_.clear();
    }
  }
  return newly_total;
}

template <bool kCommit>
SketchOracle::Session::WeightedNewly
SketchOracle::Session::ExploreScalarWeighted(NodeId u) {
  const uint32_t snapshots = oracle_.num_snapshots();
  WeightedNewly total;
  for (uint32_t s = 0; s < snapshots; ++s) {
    uint64_t* lanes =
        lanes_.data() + static_cast<std::size_t>(s / kLanesPerGroup) * n_;
    const uint64_t bit = uint64_t{1} << (s % kLanesPerGroup);
    if (lanes[u] & bit) continue;
    if constexpr (kCommit) {
      lanes[u] |= bit;
    } else {
      trial_.Reset(n_);
      trial_.Insert(u);
    }
    stack_.assign(1, u);
    total.nodes += 1;
    total.weight += weights_[u];
    while (!stack_.empty()) {
      const NodeId v = stack_.back();
      stack_.pop_back();
      for (NodeId t : oracle_.LiveTargets(s, v)) {
        if (lanes[t] & bit) continue;
        if constexpr (kCommit) {
          lanes[t] |= bit;
        } else {
          if (trial_.Contains(t)) continue;
          trial_.Insert(t);
        }
        total.nodes += 1;
        total.weight += weights_[t];
        stack_.push_back(t);
      }
    }
  }
  return total;
}

template <bool kCommit>
SketchOracle::Session::WeightedNewly
SketchOracle::Session::ExploreLanesWeighted(NodeId u) {
  WeightedNewly total;
  for (uint32_t g = 0; g < num_groups_; ++g) {
    uint64_t* activated = lanes_.data() + static_cast<std::size_t>(g) * n_;
    const uint64_t start = oracle_.LaneMaskAll(g) & ~activated[u];
    if (start == 0) continue;  // u already active in every lane
    total.nodes += std::popcount(start);
    total.weight += std::popcount(start) * weights_[u];
    if constexpr (!kCommit) undo_.push_back({u, activated[u]});
    activated[u] |= start;
    pending_[u] = start;
    stack_.assign(1, u);
    for (std::size_t head = 0; head < stack_.size(); ++head) {
      const NodeId v = stack_[head];
      const uint64_t active = pending_[v];
      if (active == 0) continue;
      pending_[v] = 0;
      if (head + 1 < stack_.size()) oracle_.PrefetchLaneRow(g, stack_[head + 1]);
      if (head + 2 < stack_.size()) {
        oracle_.PrefetchLaneOffsets(g, stack_[head + 2]);
      }
      const LaneAdjacency adj = oracle_.LaneTargets(g, v);
      for (uint32_t j = 0; j < adj.size; ++j) {
        if (j + kLanePrefetchDistance < adj.size) {
          __builtin_prefetch(&activated[adj.targets[j + kLanePrefetchDistance]]);
        }
        const NodeId t = adj.targets[j];
        const uint64_t fresh = adj.masks[j] & active & ~activated[t];
        if (fresh == 0) continue;
        total.nodes += std::popcount(fresh);
        total.weight += std::popcount(fresh) * weights_[t];
        if constexpr (!kCommit) undo_.push_back({t, activated[t]});
        activated[t] |= fresh;
        if (pending_[t] == 0) stack_.push_back(t);
        pending_[t] |= fresh;
      }
    }
    if constexpr (!kCommit) {
      for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        activated[it->node] = it->word;
      }
      undo_.clear();
    }
  }
  return total;
}

double SketchOracle::Session::MarginalGain(NodeId u) {
  const uint32_t snapshots = oracle_.num_snapshots();
  if (!weights_.empty()) {
    const WeightedNewly newly =
        eval_ == SketchEval::kScalar
            ? ExploreScalarWeighted</*kCommit=*/false>(u)
            : ExploreLanesWeighted</*kCommit=*/false>(u);
    return (newly.weight - static_cast<double>(snapshots) * weights_[u]) /
           snapshots;
  }
  const int64_t newly = eval_ == SketchEval::kScalar
                            ? ExploreScalar</*kCommit=*/false>(u)
                            : ExploreLanes</*kCommit=*/false>(u);
  return static_cast<double>(newly - snapshots) / snapshots;
}

double SketchOracle::Session::Commit(NodeId u) {
  const uint32_t snapshots = oracle_.num_snapshots();
  if (!weights_.empty()) {
    const WeightedNewly newly =
        eval_ == SketchEval::kScalar
            ? ExploreScalarWeighted</*kCommit=*/true>(u)
            : ExploreLanesWeighted</*kCommit=*/true>(u);
    total_active_ += newly.nodes;
    total_active_weight_ += newly.weight;
    seed_weight_sum_ += weights_[u];
    ++num_seeds_;
    return (newly.weight - static_cast<double>(snapshots) * weights_[u]) /
           snapshots;
  }
  const int64_t newly = eval_ == SketchEval::kScalar
                            ? ExploreScalar</*kCommit=*/true>(u)
                            : ExploreLanes</*kCommit=*/true>(u);
  total_active_ += newly;
  ++num_seeds_;
  return static_cast<double>(newly - snapshots) / snapshots;
}

double SketchOracle::Session::Spread() const {
  if (!weights_.empty()) {
    return (total_active_weight_ -
            static_cast<double>(oracle_.num_snapshots()) * seed_weight_sum_) /
           oracle_.num_snapshots();
  }
  const int64_t spread =
      total_active_ - static_cast<int64_t>(oracle_.num_snapshots()) *
                          static_cast<int64_t>(num_seeds_);
  return static_cast<double>(spread) / oracle_.num_snapshots();
}

std::size_t SketchOracle::Session::ScratchBytes() const {
  return lanes_.capacity() * sizeof(uint64_t) +
         pending_.capacity() * sizeof(uint64_t) +
         undo_.capacity() * sizeof(LaneUndo) + trial_.size_bytes() +
         stack_.capacity() * sizeof(NodeId);
}

}  // namespace holim

#include "diffusion/sketch_oracle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace holim {

/// Per-shard sampling buffer: one block's snapshots back to back. The
/// snapshot boundaries inside `entries` are recovered from each snapshot's
/// final local offset (node_offsets holds n+1 values per snapshot).
struct SketchOracle::SnapshotBuffer {
  std::vector<NodeId> entries;
  std::vector<uint32_t> edge_offsets;
  std::vector<uint32_t> node_offsets;
  uint32_t num_snapshots = 0;
  // LT scratch: live picks arrive target-major, the arena is source-major.
  std::vector<NodeId> lt_source;
  std::vector<NodeId> lt_target;
  std::vector<uint32_t> lt_edge_offset;
  std::vector<uint32_t> counts;  // counting-sort offsets, n + 1
};

SketchOracle::SketchOracle(const Graph& graph, const InfluenceParams& params,
                           const SketchOptions& options)
    : graph_(graph),
      params_(params),
      num_snapshots_(options.num_snapshots),
      seed_(options.seed),
      record_edge_offsets_(options.record_edge_offsets),
      visited_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
  HOLIM_CHECK(num_snapshots_ > 0) << "need at least one snapshot";
  if (params_.model == DiffusionModel::kLinearThreshold) {
    live_edge_ = std::make_unique<LiveEdgeSimulator>(graph, params);
  }
  SampleAll(options.pool);
}

void SketchOracle::SampleOne(Rng& rng, SnapshotBuffer& buffer) const {
  const NodeId n = graph_.num_nodes();
  const std::size_t entry_base = buffer.entries.size();
  if (params_.model == DiffusionModel::kLinearThreshold) {
    // Live-edge LT: each node keeps at most one live in-edge, chosen with
    // the residual-probability scan shared with the RIS samplers.
    buffer.lt_source.clear();
    buffer.lt_target.clear();
    buffer.lt_edge_offset.clear();
    for (NodeId v = 0; v < n; ++v) {
      const int64_t pos = live_edge_->SampleLiveInEdge(v, rng);
      if (pos < 0) continue;
      const std::size_t i = static_cast<std::size_t>(pos);
      const NodeId u = graph_.InNeighbors(v)[i];
      const EdgeId e = graph_.InEdgeIds(v)[i];
      buffer.lt_source.push_back(u);
      buffer.lt_target.push_back(v);
      buffer.lt_edge_offset.push_back(
          static_cast<uint32_t>(e - graph_.OutEdgeBegin(u)));
    }
    // Counting sort by source into the snapshot-local CSR. Scatter order
    // is target-ascending within each source (the discovery order above).
    buffer.counts.assign(n + 1, 0);
    for (NodeId u : buffer.lt_source) ++buffer.counts[u + 1];
    for (NodeId u = 0; u < n; ++u) buffer.counts[u + 1] += buffer.counts[u];
    buffer.node_offsets.insert(buffer.node_offsets.end(),
                               buffer.counts.begin(), buffer.counts.end());
    buffer.entries.resize(entry_base + buffer.lt_source.size());
    if (record_edge_offsets_) {
      buffer.edge_offsets.resize(buffer.entries.size());
    }
    for (std::size_t i = 0; i < buffer.lt_source.size(); ++i) {
      const NodeId u = buffer.lt_source[i];
      const std::size_t slot = entry_base + buffer.counts[u]++;
      buffer.entries[slot] = buffer.lt_target[i];
      if (record_edge_offsets_) {
        buffer.edge_offsets[slot] = buffer.lt_edge_offset[i];
      }
    }
    return;
  }
  // IC/WC: every edge flips independently, in EdgeId order.
  for (NodeId u = 0; u < n; ++u) {
    buffer.node_offsets.push_back(
        static_cast<uint32_t>(buffer.entries.size() - entry_base));
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (rng.NextBernoulli(params_.p(base + i))) {
        buffer.entries.push_back(neighbors[i]);
        if (record_edge_offsets_) {
          buffer.edge_offsets.push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }
  buffer.node_offsets.push_back(
      static_cast<uint32_t>(buffer.entries.size() - entry_base));
}

void SketchOracle::SampleAll(ThreadPool* pool) {
  const NodeId n = graph_.num_nodes();
  const std::size_t num_blocks =
      (num_snapshots_ + kSnapshotBlockSize - 1) / kSnapshotBlockSize;
  node_offsets_.reserve(static_cast<std::size_t>(num_snapshots_) * (n + 1));
  entry_base_.reserve(num_snapshots_ + 1);
  entry_base_.push_back(0);

  // Waves of one block per shard, merged in block order (same shape as
  // RrCollection::GenerateParallel): block seeds depend only on the global
  // block index, so the merged arena is independent of the pool size, and
  // peak transient memory is one wave of shard buffers.
  const std::size_t shards =
      pool ? std::max<std::size_t>(
                 1, std::min<std::size_t>(pool->num_threads() * 2, num_blocks))
           : 1;
  std::vector<SnapshotBuffer> buffers(shards);
  for (std::size_t wave_start = 0; wave_start < num_blocks;
       wave_start += shards) {
    const std::size_t wave_blocks = std::min(shards, num_blocks - wave_start);
    auto sample_block = [&](std::size_t w) {
      SnapshotBuffer& buffer = buffers[w];
      buffer.entries.clear();
      buffer.edge_offsets.clear();
      buffer.node_offsets.clear();
      buffer.num_snapshots = 0;
      const std::size_t b = wave_start + w;
      uint64_t state = seed_ + kSnapshotSeedSalt * (b + 1);
      Rng rng(Rng::SplitMix64(state));
      const std::size_t lo = b * kSnapshotBlockSize;
      const std::size_t count =
          std::min(kSnapshotBlockSize,
                   static_cast<std::size_t>(num_snapshots_) - lo);
      for (std::size_t i = 0; i < count; ++i) {
        SampleOne(rng, buffer);
        ++buffer.num_snapshots;
      }
    };
    if (pool) {
      pool->ParallelFor(wave_blocks, sample_block);
    } else {
      for (std::size_t w = 0; w < wave_blocks; ++w) sample_block(w);
    }
    for (std::size_t w = 0; w < wave_blocks; ++w) {
      const SnapshotBuffer& buffer = buffers[w];
      std::size_t entry_cursor = 0;
      for (uint32_t j = 0; j < buffer.num_snapshots; ++j) {
        const std::size_t size =
            buffer.node_offsets[static_cast<std::size_t>(j) * (n + 1) + n];
        entries_.insert(entries_.end(),
                        buffer.entries.begin() + entry_cursor,
                        buffer.entries.begin() + entry_cursor + size);
        if (record_edge_offsets_) {
          edge_offsets_.insert(edge_offsets_.end(),
                               buffer.edge_offsets.begin() + entry_cursor,
                               buffer.edge_offsets.begin() + entry_cursor +
                                   size);
        }
        entry_cursor += size;
        entry_base_.push_back(entries_.size());
      }
      node_offsets_.insert(node_offsets_.end(), buffer.node_offsets.begin(),
                           buffer.node_offsets.end());
    }
  }
  // The arena is immutable from here on: trim growth slack so ArenaBytes()
  // is exact and deterministic.
  entries_.shrink_to_fit();
  edge_offsets_.shrink_to_fit();
  node_offsets_.shrink_to_fit();
  entry_base_.shrink_to_fit();
}

double SketchOracle::Estimate(std::span<const NodeId> seeds) const {
  if (seeds.empty()) return 0.0;
  const NodeId n = graph_.num_nodes();
  int64_t total_reached = 0;
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    int64_t reached = 0;
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      queue_.push_back(seed);
      ++reached;
    }
    while (!queue_.empty()) {
      const NodeId v = queue_.back();
      queue_.pop_back();
      for (NodeId t : LiveTargets(s, v)) {
        if (visited_.Contains(t)) continue;
        visited_.Insert(t);
        queue_.push_back(t);
        ++reached;
      }
    }
    total_reached += reached;
  }
  const int64_t spread =
      total_reached - static_cast<int64_t>(num_snapshots_) *
                          static_cast<int64_t>(seeds.size());
  return static_cast<double>(spread) / num_snapshots_;
}

double SketchOracle::EstimateIcnPositive(std::span<const NodeId> seeds,
                                         double quality_factor) const {
  if (seeds.empty()) return 0.0;
  HOLIM_CHECK(quality_factor >= 0.0 && quality_factor <= 1.0)
      << "quality factor out of [0,1]";
  const NodeId n = graph_.num_nodes();
  double total = 0.0;
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      queue_.push_back(seed);
    }
    double acc = 0.0;
    // Nodes discovered at live-edge distance d are positive w.p. q^(d+1).
    double factor = quality_factor * quality_factor;  // d == 1
    std::size_t lo = 0;
    std::size_t hi = queue_.size();
    while (lo < hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (NodeId t : LiveTargets(s, queue_[i])) {
          if (visited_.Contains(t)) continue;
          visited_.Insert(t);
          queue_.push_back(t);
          acc += factor;
        }
      }
      lo = hi;
      hi = queue_.size();
      factor *= quality_factor;
    }
    total += acc;
  }
  return total / num_snapshots_;
}

OpinionSpreadEstimate SketchOracle::EstimateOpinion(
    const OpinionParams& opinions, OiBase base, std::span<const NodeId> seeds,
    double lambda) const {
  OpinionSpreadEstimate estimate;
  if (seeds.empty()) return estimate;
  HOLIM_CHECK(base == OiBase::kIndependentCascade)
      << "sketch opinion replay supports the IC base only";
  HOLIM_CHECK(record_edge_offsets_)
      << "EstimateOpinion needs SketchOptions::record_edge_offsets";
  HOLIM_CHECK(opinions.opinion.size() == graph_.num_nodes())
      << "opinion/node count mismatch";
  HOLIM_CHECK(opinions.interaction.size() == graph_.num_edges())
      << "interaction/edge count mismatch";
  const NodeId n = graph_.num_nodes();
  if (node_value_.size() != n) node_value_.assign(n, 0.0);
  double opinion_sum = 0.0, positive_sum = 0.0, negative_sum = 0.0;
  int64_t plain = 0;
  for (uint32_t s = 0; s < num_snapshots_; ++s) {
    visited_.Reset(n);
    queue_.clear();
    for (NodeId seed : seeds) {
      if (visited_.Contains(seed)) continue;
      visited_.Insert(seed);
      node_value_[seed] = opinions.o(seed);  // o'_s = o_s, excluded below
      queue_.push_back(seed);
    }
    const uint32_t* offsets =
        node_offsets_.data() + static_cast<std::size_t>(s) * (n + 1);
    const NodeId* targets = entries_.data() + entry_base_[s];
    const uint32_t* edge_offs = edge_offsets_.data() + entry_base_[s];
    // BFS in activation order: the activator's expected opinion is settled
    // before any node it activates (first live arrival wins, matching the
    // IC simulator's queue semantics).
    std::size_t head = 0;
    while (head < queue_.size()) {
      const NodeId u = queue_[head++];
      const double value_u = node_value_[u];
      const EdgeId out_begin = graph_.OutEdgeBegin(u);
      for (uint32_t j = offsets[u]; j < offsets[u + 1]; ++j) {
        const NodeId v = targets[j];
        if (visited_.Contains(v)) continue;
        visited_.Insert(v);
        const EdgeId e = out_begin + edge_offs[j];
        // E[(-1)^alpha o'_u] with alpha = 0 w.p. phi(e).
        const double value =
            (opinions.o(v) + (2.0 * opinions.phi(e) - 1.0) * value_u) / 2.0;
        node_value_[v] = value;
        opinion_sum += value;
        if (value > 0) {
          positive_sum += value;
        } else {
          negative_sum += -value;
        }
        ++plain;
        queue_.push_back(v);
      }
    }
  }
  estimate.opinion_spread = opinion_sum / num_snapshots_;
  estimate.effective_opinion_spread =
      (positive_sum - lambda * negative_sum) / num_snapshots_;
  estimate.plain_spread = static_cast<double>(plain) / num_snapshots_;
  return estimate;
}

std::size_t SketchOracle::ArenaBytes() const {
  return entries_.capacity() * sizeof(NodeId) +
         edge_offsets_.capacity() * sizeof(uint32_t) +
         node_offsets_.capacity() * sizeof(uint32_t) +
         entry_base_.capacity() * sizeof(std::size_t);
}

SketchOracle::Session::Session(const SketchOracle& oracle)
    : oracle_(oracle),
      words_per_snapshot_((oracle.graph().num_nodes() + 63) / 64),
      activated_(static_cast<std::size_t>(oracle.num_snapshots()) *
                     words_per_snapshot_,
                 0),
      trial_(oracle.graph().num_nodes()) {}

void SketchOracle::Session::Reset() {
  std::fill(activated_.begin(), activated_.end(), 0);
  total_active_ = 0;
  num_seeds_ = 0;
}

template <bool kCommit>
int64_t SketchOracle::Session::Explore(NodeId u) {
  const NodeId n = oracle_.graph().num_nodes();
  const uint32_t snapshots = oracle_.num_snapshots();
  int64_t newly_total = 0;
  for (uint32_t s = 0; s < snapshots; ++s) {
    uint64_t* words = activated_.data() + s * words_per_snapshot_;
    auto active = [&](NodeId x) -> bool {
      return (words[x >> 6] >> (x & 63)) & 1;
    };
    if (active(u)) continue;
    // The activated set is reachability-closed, so the walk prunes at
    // every activated node: only reach(u) \ activated is ever visited.
    if constexpr (kCommit) {
      words[u >> 6] |= uint64_t{1} << (u & 63);
    } else {
      trial_.Reset(n);
      trial_.Insert(u);
    }
    stack_.assign(1, u);
    int64_t newly = 1;
    while (!stack_.empty()) {
      const NodeId v = stack_.back();
      stack_.pop_back();
      for (NodeId t : oracle_.LiveTargets(s, v)) {
        if (active(t)) continue;
        if constexpr (kCommit) {
          words[t >> 6] |= uint64_t{1} << (t & 63);
        } else {
          if (trial_.Contains(t)) continue;
          trial_.Insert(t);
        }
        ++newly;
        stack_.push_back(t);
      }
    }
    newly_total += newly;
  }
  return newly_total;
}

double SketchOracle::Session::MarginalGain(NodeId u) {
  const int64_t gain =
      Explore</*kCommit=*/false>(u) - oracle_.num_snapshots();
  return static_cast<double>(gain) / oracle_.num_snapshots();
}

double SketchOracle::Session::Commit(NodeId u) {
  const int64_t newly = Explore</*kCommit=*/true>(u);
  total_active_ += newly;
  ++num_seeds_;
  return static_cast<double>(newly - oracle_.num_snapshots()) /
         oracle_.num_snapshots();
}

double SketchOracle::Session::Spread() const {
  const int64_t spread =
      total_active_ - static_cast<int64_t>(oracle_.num_snapshots()) *
                          static_cast<int64_t>(num_seeds_);
  return static_cast<double>(spread) / oracle_.num_snapshots();
}

std::size_t SketchOracle::Session::ScratchBytes() const {
  return activated_.capacity() * sizeof(uint64_t) + trial_.size_bytes() +
         stack_.capacity() * sizeof(NodeId);
}

}  // namespace holim

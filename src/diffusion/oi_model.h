#ifndef HOLIM_DIFFUSION_OI_MODEL_H_
#define HOLIM_DIFFUSION_OI_MODEL_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/independent_cascade.h"
#include "diffusion/linear_threshold.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/rng.h"

namespace holim {

/// \brief Result of one OI run: the activation cascade plus final opinions.
///
/// `final_opinion[i]` is the final opinion o'_v of `cascade->order[i].node`.
struct OpinionCascade {
  const Cascade* cascade = nullptr;
  std::vector<double> final_opinion;  // parallel to cascade->order
  std::size_t num_seeds = 0;

  /// Opinion spread Γo(S) = sum of final opinions of activated non-seeds
  /// (paper Def. 6).
  double OpinionSpread() const;

  /// Effective opinion spread Γoλ(S) = Σ_{o'>0} o' − λ Σ_{o'<0} |o'|
  /// over activated non-seeds (paper Def. 7).
  double EffectiveOpinionSpread(double lambda) const;
};

/// Which first-layer model the OI second layer rides on (paper Sec. 2.2).
enum class OiBase { kIndependentCascade, kLinearThreshold };

/// \brief Opinion-cum-Interaction simulator (the paper's core model).
///
/// First layer: IC or LT activation dynamics. Second layer: when u activates
/// v along edge e, v adopts o'_v = (o_v + (-1)^α o'_u) / 2 with α = 0 w.p.
/// φ(e) and α = 1 otherwise. Under LT the contribution is averaged over all
/// in-neighbors active at the time of activation. Seeds keep o'_s = o_s.
class OiSimulator {
 public:
  OiSimulator(const Graph& graph, const InfluenceParams& influence,
              const OpinionParams& opinions, OiBase base);

  /// Runs one OI cascade. Result valid until the next Run().
  const OpinionCascade& Run(std::span<const NodeId> seeds, Rng& rng);

  /// Variant that never activates blocked nodes (ScoreGREEDY bookkeeping).
  const OpinionCascade& RunWithBlocked(std::span<const NodeId> seeds, Rng& rng,
                                       const EpochSet& blocked);

  OiBase base() const { return base_; }

 private:
  const OpinionCascade& ComputeOpinionsIc(const Cascade& cascade, Rng& rng);
  const OpinionCascade& ComputeOpinionsLt(const Cascade& cascade, Rng& rng);

  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
  OiBase base_;
  IcSimulator ic_;
  LtSimulator lt_;
  OpinionCascade result_;
  // Final opinion per node for the current run, epoch-guarded.
  std::vector<double> node_opinion_;
  std::vector<uint32_t> node_step_;
  EpochSet settled_;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_OI_MODEL_H_

#include "diffusion/oc_model.h"

#include "util/logging.h"

namespace holim {

double OcSimulator::OcCascade::OpinionSpread() const {
  double sum = 0.0;
  for (std::size_t i = num_seeds; i < final_opinion.size(); ++i) {
    sum += final_opinion[i];
  }
  return sum;
}

OcSimulator::OcSimulator(const Graph& graph, const InfluenceParams& influence,
                         const OpinionParams& opinions)
    : graph_(graph),
      opinions_(opinions),
      lt_(graph, influence),
      node_opinion_(graph.num_nodes(), 0.0),
      node_step_(graph.num_nodes(), 0),
      settled_(graph.num_nodes()) {
  HOLIM_CHECK(opinions.opinion.size() == graph.num_nodes())
      << "opinion/node count mismatch";
}

const OcSimulator::OcCascade& OcSimulator::Run(std::span<const NodeId> seeds,
                                               Rng& rng) {
  const Cascade& cascade = lt_.Run(seeds, rng);
  result_.cascade = &cascade;
  result_.final_opinion.clear();
  result_.final_opinion.reserve(cascade.order.size());
  result_.num_seeds = 0;
  settled_.Reset(graph_.num_nodes());
  for (const Activation& a : cascade.order) {
    const NodeId v = a.node;
    double o_final;
    if (a.via_edge == kSeedActivation) {
      ++result_.num_seeds;
      o_final = opinions_.o(v);
    } else {
      double acc = 0.0;
      uint32_t count = 0;
      for (NodeId u : graph_.InNeighbors(v)) {
        if (!settled_.Contains(u) || node_step_[u] >= a.step) continue;
        acc += node_opinion_[u];  // phi == 1: orientation always preserved
        ++count;
      }
      o_final = count == 0 ? opinions_.o(v) / 2.0
                           : (opinions_.o(v) + acc / count) / 2.0;
    }
    node_opinion_[v] = o_final;
    node_step_[v] = a.step;
    settled_.Insert(v);
    result_.final_opinion.push_back(o_final);
  }
  return result_;
}

}  // namespace holim

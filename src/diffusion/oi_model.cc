#include "diffusion/oi_model.h"

#include "util/logging.h"

namespace holim {

double OpinionCascade::OpinionSpread() const {
  double sum = 0.0;
  for (std::size_t i = num_seeds; i < final_opinion.size(); ++i) {
    sum += final_opinion[i];
  }
  return sum;
}

double OpinionCascade::EffectiveOpinionSpread(double lambda) const {
  double positive = 0.0, negative = 0.0;
  for (std::size_t i = num_seeds; i < final_opinion.size(); ++i) {
    const double o = final_opinion[i];
    if (o > 0) {
      positive += o;
    } else {
      negative += -o;
    }
  }
  return positive - lambda * negative;
}

OiSimulator::OiSimulator(const Graph& graph, const InfluenceParams& influence,
                         const OpinionParams& opinions, OiBase base)
    : graph_(graph),
      influence_(influence),
      opinions_(opinions),
      base_(base),
      ic_(graph, influence),
      lt_(graph, influence),
      node_opinion_(graph.num_nodes(), 0.0),
      node_step_(graph.num_nodes(), 0),
      settled_(graph.num_nodes()) {
  HOLIM_CHECK(opinions.opinion.size() == graph.num_nodes())
      << "opinion/node count mismatch";
  HOLIM_CHECK(opinions.interaction.size() == graph.num_edges())
      << "interaction/edge count mismatch";
}

const OpinionCascade& OiSimulator::Run(std::span<const NodeId> seeds,
                                       Rng& rng) {
  if (base_ == OiBase::kIndependentCascade) {
    const Cascade& cascade = ic_.Run(seeds, rng);
    return ComputeOpinionsIc(cascade, rng);
  }
  const Cascade& cascade = lt_.Run(seeds, rng);
  return ComputeOpinionsLt(cascade, rng);
}

const OpinionCascade& OiSimulator::RunWithBlocked(std::span<const NodeId> seeds,
                                                  Rng& rng,
                                                  const EpochSet& blocked) {
  if (base_ == OiBase::kIndependentCascade) {
    const Cascade& cascade = ic_.RunWithBlocked(seeds, rng, blocked);
    return ComputeOpinionsIc(cascade, rng);
  }
  const Cascade& cascade = lt_.RunWithBlocked(seeds, rng, blocked);
  return ComputeOpinionsLt(cascade, rng);
}

const OpinionCascade& OiSimulator::ComputeOpinionsIc(const Cascade& cascade,
                                                     Rng& rng) {
  // Second layer over IC (paper Sec. 2.2): when u activates v along edge e,
  //   o'_v = (o_v + (-1)^alpha o'_u) / 2,  alpha = 0 w.p. phi(e).
  // Activations are processed in cascade order, so the activator's final
  // opinion is already settled when we reach v.
  result_.cascade = &cascade;
  result_.final_opinion.clear();
  result_.final_opinion.reserve(cascade.order.size());
  result_.num_seeds = 0;
  settled_.Reset(graph_.num_nodes());
  for (const Activation& a : cascade.order) {
    const NodeId v = a.node;
    double o_final;
    if (a.via_edge == kSeedActivation) {
      ++result_.num_seeds;
      o_final = opinions_.o(v);  // o'_s = o_s
    } else {
      const NodeId u = graph_.EdgeSource(a.via_edge);
      HOLIM_DCHECK(settled_.Contains(u)) << "activator opinion not settled";
      const double phi = opinions_.phi(a.via_edge);
      const int alpha = rng.NextBernoulli(phi) ? 0 : 1;
      const double signed_parent =
          alpha == 0 ? node_opinion_[u] : -node_opinion_[u];
      o_final = (opinions_.o(v) + signed_parent) / 2.0;
    }
    node_opinion_[v] = o_final;
    settled_.Insert(v);
    result_.final_opinion.push_back(o_final);
  }
  return result_;
}

const OpinionCascade& OiSimulator::ComputeOpinionsLt(const Cascade& cascade,
                                                     Rng& rng) {
  // Second layer over LT: v averages the signed opinions of in-neighbors
  // that activated strictly before it:
  //   o'_v = (o_v + (1/|In(v)_a|) sum_u (-1)^alpha(u,v) o'_u) / 2.
  result_.cascade = &cascade;
  result_.final_opinion.clear();
  result_.final_opinion.reserve(cascade.order.size());
  result_.num_seeds = 0;
  settled_.Reset(graph_.num_nodes());
  for (const Activation& a : cascade.order) {
    const NodeId v = a.node;
    double o_final;
    if (a.via_edge == kSeedActivation) {
      ++result_.num_seeds;
      o_final = opinions_.o(v);
    } else {
      double acc = 0.0;
      uint32_t count = 0;
      auto in_neighbors = graph_.InNeighbors(v);
      auto in_edges = graph_.InEdgeIds(v);
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const NodeId u = in_neighbors[i];
        if (!settled_.Contains(u) || node_step_[u] >= a.step) continue;
        const double phi = opinions_.phi(in_edges[i]);
        const int alpha = rng.NextBernoulli(phi) ? 0 : 1;
        acc += alpha == 0 ? node_opinion_[u] : -node_opinion_[u];
        ++count;
      }
      o_final = count == 0 ? opinions_.o(v) / 2.0
                           : (opinions_.o(v) + acc / count) / 2.0;
    }
    node_opinion_[v] = o_final;
    node_step_[v] = a.step;
    settled_.Insert(v);
    result_.final_opinion.push_back(o_final);
  }
  return result_;
}

}  // namespace holim

#ifndef HOLIM_DIFFUSION_SKETCH_ORACLE_H_
#define HOLIM_DIFFUSION_SKETCH_ORACLE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace holim {

/// Which traversal answers sketch-oracle queries. Both modes walk the SAME
/// sampled worlds (the eval mode is not part of the sampling contract or
/// any cache key) and return bitwise-identical results; they differ only in
/// how the frozen snapshots are iterated:
///
///  * kBitParallel — the default: snapshot membership is packed into
///    64-bit lane masks, so one frontier expansion evaluates up to 64
///    live-edge worlds per machine word (R=200 becomes 4 word-group
///    passes).
///  * kScalar — one BFS per snapshot; kept as the differential-testing
///    reference the bit-parallel kernel is pinned against.
enum class SketchEval { kBitParallel, kScalar };

/// Tuning parameters for SketchOracle sampling.
struct SketchOptions {
  /// Number of presampled live-edge worlds R. Like the MC estimator's
  /// `num_simulations`, a few hundred suffice for greedy because the same
  /// worlds are reused across every candidate and round (StaticGreedy's
  /// observation: estimate-vs-estimate noise vanishes on a frozen sample).
  uint32_t num_snapshots = 200;
  uint64_t seed = 42;
  /// Pool for snapshot sampling (nullptr = serial). The arena is bitwise
  /// identical for any pool size — see the RNG-sharding contract below.
  ThreadPool* pool = nullptr;
  /// Additionally record, per live edge, its offset within the source's
  /// out-edge list (4 bytes/entry in both arenas). Required only by the
  /// replay estimators that read per-edge attributes (EstimateOpinion's
  /// phi lookups).
  bool record_edge_offsets = false;
  /// Cooperative deadline observed during sampling (borrowed; may be
  /// null). Checked per sampling block at wave boundaries; on expiry the
  /// build aborts early and the oracle reports the failure through
  /// build_status() — callers must check it before using the arenas.
  /// Never stored in Workspace cache entries (a cached artifact must not
  /// hold a pointer into a finished solve's stack).
  Deadline* deadline = nullptr;
};

/// \brief Snapshot-reuse spread oracle: presampled live-edge worlds with
/// one-shot batch evaluation and an incremental marginal-gain session.
///
/// The Monte-Carlo estimator (diffusion/spread_estimator.*) re-simulates a
/// fresh cascade per simulation per candidate seed set, so CELF-style
/// greedy pays O(k * n * mc * BFS) with zero reuse across candidates or
/// rounds. This oracle instead materializes R live-edge instantiations of
/// the graph ONCE (Kempe's equivalence: IC/WC keep each edge independently
/// w.p. p(e); LT gives each node at most one live in-edge) and answers
/// every sigma(S) query by reachability over the frozen worlds — the
/// StaticGreedy/sketch estimator family, the forward-direction sibling of
/// the RR engine's world reuse (algo/rr_sets.*).
///
/// ## Scalar arena layout
///
/// All R snapshots live in one CSR-packed forward-adjacency arena:
///
///   entries_      : NodeId[total live edges]   — live out-targets, grouped
///                                                by (snapshot, source)
///   node_offsets_ : uint32[R * (n + 1)]        — per-snapshot CSR offsets,
///                                                local to the snapshot
///   entry_base_   : size_t[R + 1]              — snapshot s's entries are
///                                                entries_[entry_base_[s] ..
///                                                entry_base_[s + 1])
///   edge_offsets_ : uint32[total live edges]   — optional (see
///                                                SketchOptions): live edge
///                                                j of source u is global
///                                                edge OutEdgeBegin(u) +
///                                                edge_offsets_[j]
///
/// Evaluation walks one snapshot at a time front to back — no hash sets,
/// no pointer chasing, no per-query allocation (epoch-stamped visited set).
///
/// ## Word-transposed lane-mask arena (the bit-parallel twin)
///
/// Snapshots are grouped into ceil(R / 64) lane groups of up to 64; inside
/// group g, snapshot s occupies lane bit (s - 64 g). Per group the sampled
/// worlds are re-packed as the UNION forward adjacency over the group's
/// snapshots, each union edge carrying a uint64_t lane mask ("edge (u, v)
/// is live in lane b"):
///
///   lane_targets_      : NodeId[union entries]  — distinct live out-edges,
///                                                 grouped by (group, source),
///                                                 EdgeId-ascending per source
///   lane_masks_        : uint64[union entries]  — lanes where that edge is
///                                                 live (parallel array)
///   lane_node_offsets_ : uint32[G * (n + 1)]    — per-group CSR offsets
///   lane_entry_base_   : size_t[G + 1]          — group extents
///   lane_edge_offsets_ : uint32[union entries]  — optional, mirrors
///                                                 edge_offsets_
///
/// Frontier expansion then evaluates 64 worlds per machine word:
///   fresh = live_mask[u -> v] & active[u] & ~activated[v]
/// and reached counts are popcount-accumulated, so one pass over the union
/// adjacency replaces up to 64 per-snapshot BFS walks. Groups are kept as
/// SEPARATE union CSRs on purpose: a frontier wave usually carries lanes
/// of one group, and a per-group row costs 12 bytes/edge to scan, where a
/// merged all-R row would pay G lane words per edge no matter how few
/// groups the wave touches (measured ~2x slower end to end). The transpose
/// is a deterministic post-pass over the sampled worlds — the RNG-sharding
/// contract below is untouched, and both arenas describe the same sample.
/// Memory: per group, |union live edges| <= min(m, sum of the group's live
/// edges) entries of 12 bytes (target + mask; +4 with edge offsets), plus
/// 4 (n + 1) offset bytes — for dense WC-style samples this is ~m entries
/// per group versus ~64 snapshot-local lists, i.e. the lane arena is a
/// fraction of the scalar arena's size.
///
/// ## RNG contract (counter-based per-(snapshot, node) streams)
///
/// Snapshot s's world is a pure function of (seed, s): every row of the
/// world is drawn from an independent SplitMix64 stream keyed per
/// (snapshot, node) — IC/WC flip source u's out-edges in order from the
/// stream with initial state
///   seed + kSnapshotSeedSalt * (s + 1) + kSnapshotNodeSalt * (u + 1),
/// and LT draws target v's live in-edge (one uniform, residual scan over
/// the in-row weights) from the v-keyed stream; empty rows draw nothing.
/// Because a row's draws depend only on (seed, s, node) and the row's own
/// (targets, p) contents, ApplyDelta can resample exactly the rows a graph
/// delta touched and byte-splice every clean row — bitwise equal to a cold
/// rebuild on the mutated graph. Sampling is sharded in blocks of
/// kSnapshotBlockSize (waves of one block per shard, merged in block
/// order), but the block decomposition is purely a scheduling choice:
/// neither the block size nor the pool affects the sampled worlds, and the
/// arena is bitwise identical for any thread count, including serial.
///
/// ## Determinism of estimates
///
/// Every estimator accumulates per-snapshot results in snapshot order into
/// integer (Estimate/Session/IC-N level counts) or serial double (replay)
/// accumulators and divides once at the end, so results are independent of
/// thread count and reproducible across runs — and the kBitParallel and
/// kScalar traversals are bitwise-identical to each other (integer counts
/// commute across lanes; the replay estimator reads the lane arena in the
/// scalar walk order). Estimate() and the replay estimators reuse member
/// scratch and are therefore NOT thread-safe per oracle instance;
/// concurrent callers should own separate Session objects (sessions carry
/// their own scratch) or separate oracles.
class SketchOracle {
 public:
  /// Snapshots sampled per scheduling block (wave sharding granularity
  /// only — NOT part of the sampling contract; the per-(snapshot, node)
  /// streams make the worlds independent of how sampling is partitioned).
  static constexpr std::size_t kSnapshotBlockSize = 4;
  /// Snapshot-axis salt of the per-(snapshot, node) stream keys
  /// (deliberately distinct from the RR engine's and the MC estimator's
  /// salts; the streams must stay unrelated).
  static constexpr uint64_t kSnapshotSeedSalt = 0xA24BAED4963EE407ULL;
  /// Node-axis salt of the per-(snapshot, node) stream keys.
  static constexpr uint64_t kSnapshotNodeSalt = 0xE7037ED1A0B428DBULL;
  /// Snapshots per lane group of the word-transposed arena (one machine
  /// word). Purely an evaluation-layout constant — NOT part of the
  /// sampling contract.
  static constexpr uint32_t kLanesPerGroup = 64;

  /// Samples all R snapshots up front (the only expensive step), then
  /// builds the word-transposed lane-mask arena from the sampled worlds.
  /// With a deadline in `options` the build may abort early: check
  /// build_status() before first use (the engine's checked acquisition
  /// path does; an aborted oracle is never cached).
  SketchOracle(const Graph& graph, const InfluenceParams& params,
               const SketchOptions& options = {});

  /// OK for a fully built oracle; the deadline/cancel status when the
  /// sampling pass aborted early (the arenas are then incomplete and no
  /// estimator may be called).
  const Status& build_status() const { return build_status_; }

  /// Incrementally re-points the oracle at a mutated graph: resamples only
  /// the rows whose (targets, p) contents changed between the bound graph
  /// and `new_graph` (IC/WC: out-rows; LT: in-rows) and byte-splices every
  /// clean row from the existing arenas. Both arenas end bitwise identical
  /// — contents AND ArenaBytes() — to a cold SketchOracle built on
  /// (new_graph, new_params) with the same options; every estimator and
  /// Session result is therefore bitwise equal to the cold rebuild's.
  ///
  /// `new_graph` must outlive the oracle (the oracle re-binds to it; the
  /// previously bound graph is only needed during this call). The model
  /// must not change and `new_params` must match `new_graph`'s edge count;
  /// violations fail with InvalidArgument and leave the oracle untouched.
  Status ApplyDelta(const Graph& new_graph, const InfluenceParams& new_params);

  uint32_t num_snapshots() const { return num_snapshots_; }
  const Graph& graph() const { return *graph_; }
  const InfluenceParams& params() const { return params_; }
  /// Number of 64-snapshot lane groups, ceil(R / 64).
  uint32_t num_lane_groups() const { return num_lane_groups_; }
  /// Mask of the lanes group `g` actually populates (all-ones except a
  /// trailing partial group).
  uint64_t LaneMaskAll(uint32_t g) const {
    const uint32_t lanes = std::min<uint32_t>(
        kLanesPerGroup, num_snapshots_ - g * kLanesPerGroup);
    return lanes == kLanesPerGroup ? ~uint64_t{0}
                                   : (uint64_t{1} << lanes) - 1;
  }

  /// One-shot batch estimate of sigma(S) = E[|V_a| - |S|] (paper Def. 3):
  /// reachability from `seeds` over the frozen worlds, averaged over
  /// snapshots. Exact over the frozen sample: the total reached count is
  /// accumulated as an integer and divided once, so Session::Spread()
  /// after committing the same seeds is bitwise equal — in either eval
  /// mode.
  double Estimate(std::span<const NodeId> seeds,
                  SketchEval eval = SketchEval::kBitParallel) const;

  /// Weighted twin of Estimate for targeted IM: sigma_w(S) =
  /// E[sum of w(v) over activated non-seeds v] — each reached node counts
  /// its weight instead of 1 (in lane space, a weighted popcount per lane
  /// group: popcount(fresh) * w(target)). `node_weights` must hold one
  /// finite weight >= 0 per node.
  ///
  /// Bitwise contract: with all-ones weights the accumulated weight sums
  /// are exact small integers in doubles and the final division matches
  /// Estimate's, so EstimateWeighted == Estimate bitwise in BOTH eval
  /// modes. With arbitrary weights each eval mode is deterministic, but
  /// the two modes accumulate per-node weights in different orders (one
  /// per discovery vs popcount-batched per union edge), so they agree
  /// exactly only when every partial sum is exactly representable (e.g.
  /// integer weights, the 0/1 target masks).
  double EstimateWeighted(std::span<const NodeId> seeds,
                          std::span<const double> node_weights,
                          SketchEval eval = SketchEval::kBitParallel) const;

  /// Expected IC-N positive spread over the frozen worlds (Chen et al.,
  /// SDM'11, uniform quality factor q): a node activated at live-edge BFS
  /// distance d is positive w.p. q^(d+1) (one quality flip per hop plus
  /// the seed's own flip). Both eval modes accumulate integer
  /// per-distance activation counts and fold them through one shared
  /// q-polynomial evaluation, so they are bitwise identical. Exact in the
  /// quality flips given the sampled worlds (a Rao-Blackwellized
  /// estimator of the MC path).
  double EstimateIcnPositive(std::span<const NodeId> seeds,
                             double quality_factor,
                             SketchEval eval = SketchEval::kBitParallel) const;

  /// Expected OI opinion spread over the frozen worlds, IC base only
  /// (requires record_edge_offsets). Replays the activation BFS per
  /// snapshot and propagates EXPECTED opinions analytically:
  /// E[(-1)^alpha o'_u] = (2 phi(e) - 1) E[o'_u], so
  /// E[o'_v] = (o_v + (2 phi(e) - 1) E[o'_u]) / 2 — exact in the alpha
  /// flips given the worlds. opinion_spread and plain_spread are unbiased;
  /// effective_opinion_spread splits the EXPECTED opinions by sign, which
  /// coincides with the MC estimand at lambda == 1 (where Gamma_o_lambda
  /// is linear in the opinions) and is a documented approximation
  /// otherwise. Opinion values are per-(snapshot, node) doubles, so the
  /// replay is inherently per-snapshot; kBitParallel rides the lane-mask
  /// arena (per-snapshot adjacency = union entries filtered by the lane
  /// bit, in the same EdgeId order the scalar arena stores), which keeps
  /// the replay bitwise identical while the forward arena stays free for
  /// the scalar reference path.
  OpinionSpreadEstimate EstimateOpinion(
      const OpinionParams& opinions, OiBase base,
      std::span<const NodeId> seeds, double lambda,
      SketchEval eval = SketchEval::kBitParallel) const;

  /// Live out-targets of `u` in snapshot `s` (zero-copy scalar-arena span).
  std::span<const NodeId> LiveTargets(uint32_t s, NodeId u) const {
    const uint32_t* off =
        node_offsets_.data() +
        static_cast<std::size_t>(s) * (graph_->num_nodes() + 1);
    const NodeId* base = entries_.data() + entry_base_[s];
    return {base + off[u], base + off[u + 1]};
  }

  /// Union live out-adjacency of `u` in lane group `g`: `size` parallel
  /// (target, lane-mask) pairs, EdgeId-ascending. Zero-copy arena view.
  struct LaneAdjacency {
    const NodeId* targets;
    const uint64_t* masks;
    uint32_t size;
  };
  LaneAdjacency LaneTargets(uint32_t g, NodeId u) const {
    const uint32_t* off =
        lane_node_offsets_.data() +
        static_cast<std::size_t>(g) * (graph_->num_nodes() + 1);
    const std::size_t base = lane_entry_base_[g];
    return {lane_targets_.data() + base + off[u],
            lane_masks_.data() + base + off[u], off[u + 1] - off[u]};
  }
  /// Prefetch hint for a union row about to be scanned: a lane walk's
  /// worklist names its upcoming rows, and each row is a short burst at a
  /// random address in an arena far larger than cache, so pulling the next
  /// row while the current one drains hides most of its DRAM latency.
  void PrefetchLaneRow(uint32_t g, NodeId u) const {
    const LaneAdjacency adj = LaneTargets(g, u);
    __builtin_prefetch(adj.targets);
    __builtin_prefetch(adj.masks);
    // One extra line per array: rows average a handful of entries, so two
    // lines cover nearly all rows (past-the-end prefetches are harmless).
    __builtin_prefetch(adj.targets + 7);
    __builtin_prefetch(adj.masks + 7);
  }
  /// Companion hint one step further out: pulls u's row OFFSETS so the
  /// PrefetchLaneRow issued for u next iteration doesn't itself stall.
  void PrefetchLaneOffsets(uint32_t g, NodeId u) const {
    __builtin_prefetch(lane_node_offsets_.data() +
                       static_cast<std::size_t>(g) * (graph_->num_nodes() + 1) +
                       u);
  }

  /// Bytes held by the snapshot arenas — scalar AND lane-mask (capacity-
  /// based, the repo-wide memory accounting convention).
  std::size_t ArenaBytes() const;

  /// \brief Incremental marginal-gain session: StaticGreedy-style
  /// activate-once evaluation across a whole greedy run.
  ///
  /// The session keeps one persistent activated lane mask per (lane group,
  /// node) — i.e. the per-snapshot activated bitsets, stored transposed so
  /// they double as the bit-parallel kernel's activation words. Because
  /// each snapshot's activated set is reachability-closed, the BFS for a
  /// new candidate prunes at every already-activated node, so round i+1
  /// only explores the newly added seed's frontier instead of re-walking
  /// reach(S) per evaluation. Gains are maintained as integer
  /// newly-activated counts, hence (in either eval mode, bitwise):
  ///   MarginalGain(u) == Estimate(S + u) - Estimate(S)   (same estimand)
  ///   Spread() after committing S  == Estimate(S)        (bitwise)
  /// The session owns its scratch; multiple sessions on one oracle are
  /// independent (but a single session is not thread-safe).
  class Session {
   public:
    /// `node_weights` non-empty switches the session to the weighted
    /// objective sigma_w (targeted IM): gains and Spread() count each
    /// activated node's weight instead of 1. The span must outlive the
    /// session (SketchSpreadObjective owns a copy for exactly this
    /// reason). With all-ones weights every weighted result is bitwise
    /// equal to the unweighted session's — see EstimateWeighted.
    explicit Session(const SketchOracle& oracle,
                     SketchEval eval = SketchEval::kBitParallel,
                     std::span<const double> node_weights = {});

    /// Drops all committed seeds (keeps capacity).
    void Reset();

    /// Marginal gain of adding `u` to the committed set, WITHOUT
    /// committing: avg over snapshots of |reach(u) \ activated| minus 1
    /// (the candidate joins the excluded seed set, mirroring Def. 3).
    /// Weighted sessions count w(v) per newly reached v and subtract
    /// w(u) instead of 1.
    double MarginalGain(NodeId u);

    /// Commits `u` as a seed, persistently activating its frontier in
    /// every snapshot. Returns its marginal gain.
    double Commit(NodeId u);

    /// sigma (or sigma_w) of the committed seed set; bitwise equal to
    /// oracle.Estimate(committed seeds) / EstimateWeighted(...) in either
    /// eval mode.
    double Spread() const;

    std::size_t num_seeds() const { return num_seeds_; }
    /// Total nodes activated across all snapshots — the session's
    /// exploration work counter (each node is activated at most once per
    /// snapshot over the whole run).
    int64_t total_activated() const { return total_active_; }
    /// Session scratch bytes (capacity-based).
    std::size_t ScratchBytes() const;

   private:
    /// Newly activated totals of one weighted explore: the node count
    /// feeds the work counter, the weight sum feeds gains/Spread.
    struct WeightedNewly {
      int64_t nodes = 0;
      double weight = 0.0;
    };

    /// One BFS per snapshot over the scalar arena (reference traversal).
    template <bool kCommit>
    int64_t ExploreScalar(NodeId u);
    /// One worklist pass per lane group over the lane-mask arena: every
    /// expansion of node v propagates v's pending lane word through each
    /// union edge with fresh = live & pending[v] & ~activated[t].
    template <bool kCommit>
    int64_t ExploreLanes(NodeId u);
    /// Weighted twins of the two kernels (kept separate so the unweighted
    /// hot loops stay branch-free): same traversal, but each fresh
    /// activation also accumulates its node weight (scalar: w(t) per
    /// discovery; lanes: popcount(fresh) * w(t) per union edge).
    template <bool kCommit>
    WeightedNewly ExploreScalarWeighted(NodeId u);
    template <bool kCommit>
    WeightedNewly ExploreLanesWeighted(NodeId u);

    const SketchOracle& oracle_;
    SketchEval eval_;
    /// Per-node objective weights; empty = unweighted (see constructor).
    std::span<const double> weights_;
    NodeId n_;
    uint32_t num_groups_;
    /// Activated lane masks, group-major: bit b of lanes_[g * n + u] means
    /// u is activated in snapshot 64 g + b. The scalar traversal reads the
    /// same words one bit at a time, so both modes share one state layout.
    std::vector<uint64_t> lanes_;
    /// Bit-parallel frontier words (pending lanes to expand per node);
    /// self-clearing — every pushed node is popped with its word zeroed.
    std::vector<uint64_t> pending_;
    /// Probe undo log: non-committing walks write their trial lanes into
    /// the activated words directly (one random access per edge instead of
    /// a separate overlay) and roll the words back in reverse order at
    /// probe end. A node can appear more than once (one entry per wave
    /// that freshened it); reverse replay restores the oldest word last.
    struct LaneUndo {
      NodeId node;
      uint64_t word;
    };
    std::vector<LaneUndo> undo_;
    EpochSet trial_;  // scalar-mode trial visited set
    /// Shared worklist: scalar BFS queue / bit-parallel FIFO wave walk.
    std::vector<NodeId> stack_;
    int64_t total_active_ = 0;
    /// Weighted-session accumulators (exactly mirror total_active_ /
    /// num_seeds_ when all weights are 1.0 — both stay exact integers in
    /// doubles, which is what makes the all-ones parity bitwise).
    double total_active_weight_ = 0.0;
    double seed_weight_sum_ = 0.0;
    std::size_t num_seeds_ = 0;
  };

 private:
  struct SnapshotBuffer;
  void SampleAll(ThreadPool* pool, Deadline* deadline);
  void SampleOne(uint32_t snapshot, SnapshotBuffer& buffer) const;
  /// Deterministic post-pass: transposes the sampled scalar arena into the
  /// per-group union lane-mask arena (same worlds, different layout).
  void BuildLaneArena();
  /// Initial SplitMix64 state of the (snapshot, node) row stream.
  uint64_t NodeStreamState(uint32_t snapshot, NodeId node) const {
    return seed_ + kSnapshotSeedSalt * (snapshot + uint64_t{1}) +
           kSnapshotNodeSalt * (static_cast<uint64_t>(node) + 1);
  }
  /// SplitMix64 output -> uniform double in [0, 1) (Rng::NextDouble's
  /// mantissa construction, applied to the row streams).
  static double UnitDouble(uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }
  /// ApplyDelta per model: IC/WC splice dirty *source* rows; LT recovers
  /// clean targets' live picks and redraws dirty *target* rows, then
  /// rebuilds the lane arena wholesale (LT lane rows depend on in-rows of
  /// every target, so per-row splicing does not apply).
  Status ApplyDeltaCascade(const Graph& new_graph,
                           const InfluenceParams& new_params);
  Status ApplyDeltaLinearThreshold(const Graph& new_graph,
                                   const InfluenceParams& new_params);

  int64_t EstimateScalar(std::span<const NodeId> seeds) const;
  int64_t EstimateLanes(std::span<const NodeId> seeds) const;
  double EstimateScalarWeighted(std::span<const NodeId> seeds,
                                std::span<const double> weights) const;
  double EstimateLanesWeighted(std::span<const NodeId> seeds,
                               std::span<const double> weights) const;
  void AccumulateIcnLevelCountsScalar(std::span<const NodeId> seeds) const;
  void AccumulateIcnLevelCountsLanes(std::span<const NodeId> seeds) const;

  // Re-bindable: ApplyDelta points the oracle at the mutated graph and
  // replaces the owned params copy (owning the copy keeps the oracle valid
  // when the caller's params object dies with the old epoch).
  const Graph* graph_;
  InfluenceParams params_;
  uint32_t num_snapshots_;
  uint32_t num_lane_groups_;
  uint64_t seed_;
  bool record_edge_offsets_;
  Status build_status_;  // non-OK when a deadline aborted the sampling pass

  std::vector<NodeId> entries_;
  std::vector<uint32_t> edge_offsets_;   // parallel to entries_ when recorded
  std::vector<uint32_t> node_offsets_;   // R * (n + 1), snapshot-local
  std::vector<std::size_t> entry_base_;  // R + 1

  // Word-transposed lane-mask arena (see class comment).
  std::vector<NodeId> lane_targets_;
  std::vector<uint64_t> lane_masks_;
  std::vector<uint32_t> lane_edge_offsets_;  // when recorded
  std::vector<uint32_t> lane_node_offsets_;  // G * (n + 1), group-local
  std::vector<std::size_t> lane_entry_base_;  // G + 1

  // Reusable one-shot evaluation scratch (Estimate and the replay
  // estimators are single-caller; see class comment).
  mutable EpochSet visited_;
  mutable std::vector<NodeId> queue_;
  mutable std::vector<NodeId> frontier_;     // bit-parallel level/touch lists
  mutable std::vector<uint64_t> lane_state_;    // activated words, n
  mutable std::vector<uint64_t> lane_pending_;  // frontier words, n
  mutable std::vector<uint64_t> lane_next_;     // next-level words, n
  mutable std::vector<int64_t> icn_level_counts_;
  mutable std::vector<double> node_value_;  // expected opinion per node
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_SKETCH_ORACLE_H_

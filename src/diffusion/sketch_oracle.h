#ifndef HOLIM_DIFFUSION_SKETCH_ORACLE_H_
#define HOLIM_DIFFUSION_SKETCH_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/live_edge.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/thread_pool.h"

namespace holim {

/// Tuning parameters for SketchOracle sampling.
struct SketchOptions {
  /// Number of presampled live-edge worlds R. Like the MC estimator's
  /// `num_simulations`, a few hundred suffice for greedy because the same
  /// worlds are reused across every candidate and round (StaticGreedy's
  /// observation: estimate-vs-estimate noise vanishes on a frozen sample).
  uint32_t num_snapshots = 200;
  uint64_t seed = 42;
  /// Pool for snapshot sampling (nullptr = serial). The arena is bitwise
  /// identical for any pool size — see the RNG-sharding contract below.
  ThreadPool* pool = nullptr;
  /// Additionally record, per live edge, its offset within the source's
  /// out-edge list (4 bytes/entry). Required only by the replay estimators
  /// that read per-edge attributes (EstimateOpinion's phi lookups).
  bool record_edge_offsets = false;
};

/// \brief Snapshot-reuse spread oracle: presampled live-edge worlds with
/// one-shot batch evaluation and an incremental marginal-gain session.
///
/// The Monte-Carlo estimator (diffusion/spread_estimator.*) re-simulates a
/// fresh cascade per simulation per candidate seed set, so CELF-style
/// greedy pays O(k * n * mc * BFS) with zero reuse across candidates or
/// rounds. This oracle instead materializes R live-edge instantiations of
/// the graph ONCE (Kempe's equivalence: IC/WC keep each edge independently
/// w.p. p(e); LT gives each node at most one live in-edge) and answers
/// every sigma(S) query by reachability over the frozen worlds — the
/// StaticGreedy/sketch estimator family, the forward-direction sibling of
/// the RR engine's world reuse (algo/rr_sets.*).
///
/// ## Arena layout
///
/// All R snapshots live in one CSR-packed forward-adjacency arena:
///
///   entries_      : NodeId[total live edges]   — live out-targets, grouped
///                                                by (snapshot, source)
///   node_offsets_ : uint32[R * (n + 1)]        — per-snapshot CSR offsets,
///                                                local to the snapshot
///   entry_base_   : size_t[R + 1]              — snapshot s's entries are
///                                                entries_[entry_base_[s] ..
///                                                entry_base_[s + 1])
///   edge_offsets_ : uint32[total live edges]   — optional (see
///                                                SketchOptions): live edge
///                                                j of source u is global
///                                                edge OutEdgeBegin(u) +
///                                                edge_offsets_[j]
///
/// Evaluation walks one snapshot at a time front to back — no hash sets,
/// no pointer chasing, no per-query allocation (epoch-stamped visited set).
///
/// ## RNG-sharding contract (same shape as RrCollection::GenerateParallel)
///
/// Snapshots are sampled in fixed blocks of kSnapshotBlockSize; block b is
/// sampled sequentially by an independent stream seeded with
/// SplitMix64(seed + kSnapshotSeedSalt * (b + 1)). Block decomposition and
/// block seeds depend only on (num_snapshots, seed) — never on the pool —
/// so the arena is bitwise identical for any thread count, including
/// serial. Blocks are processed in waves of one block per shard and merged
/// in block order; peak transient memory is one wave of shard buffers.
///
/// ## Determinism of estimates
///
/// Every estimator accumulates per-snapshot results in snapshot order into
/// integer (Estimate/Session) or serial double (replay) accumulators and
/// divides once at the end, so results are independent of thread count and
/// reproducible across runs. Estimate() and the replay estimators reuse
/// member scratch and are therefore NOT thread-safe per oracle instance;
/// concurrent callers should own separate Session objects (sessions carry
/// their own scratch) or separate oracles.
class SketchOracle {
 public:
  /// Snapshots sampled per RNG block. Part of the reproducibility
  /// contract: changing it changes the sampled worlds.
  static constexpr std::size_t kSnapshotBlockSize = 4;
  /// Salt for deriving block seeds (deliberately distinct from the RR
  /// engine's and the MC estimator's salts; the streams must stay
  /// unrelated).
  static constexpr uint64_t kSnapshotSeedSalt = 0xA24BAED4963EE407ULL;

  /// Samples all R snapshots up front (the only expensive step).
  SketchOracle(const Graph& graph, const InfluenceParams& params,
               const SketchOptions& options = {});

  uint32_t num_snapshots() const { return num_snapshots_; }
  const Graph& graph() const { return graph_; }

  /// One-shot batch estimate of sigma(S) = E[|V_a| - |S|] (paper Def. 3):
  /// per snapshot, BFS reachability from `seeds` over the packed arena;
  /// the average over snapshots. Exact over the frozen sample: the total
  /// reached count is accumulated as an integer and divided once, so
  /// Session::Spread() after committing the same seeds is bitwise equal.
  double Estimate(std::span<const NodeId> seeds) const;

  /// Expected IC-N positive spread over the frozen worlds (Chen et al.,
  /// SDM'11, uniform quality factor q): a node activated at live-edge BFS
  /// distance d is positive w.p. q^(d+1) (one quality flip per hop plus
  /// the seed's own flip), so per snapshot the level-BFS accumulates
  /// q^(d+1) over activated non-seeds. Exact in the quality flips given
  /// the sampled worlds (a Rao-Blackwellized estimator of the MC path).
  double EstimateIcnPositive(std::span<const NodeId> seeds,
                             double quality_factor) const;

  /// Expected OI opinion spread over the frozen worlds, IC base only
  /// (requires record_edge_offsets). Replays the activation BFS per
  /// snapshot and propagates EXPECTED opinions analytically:
  /// E[(-1)^alpha o'_u] = (2 phi(e) - 1) E[o'_u], so
  /// E[o'_v] = (o_v + (2 phi(e) - 1) E[o'_u]) / 2 — exact in the alpha
  /// flips given the worlds. opinion_spread and plain_spread are unbiased;
  /// effective_opinion_spread splits the EXPECTED opinions by sign, which
  /// coincides with the MC estimand at lambda == 1 (where Gamma_o_lambda
  /// is linear in the opinions) and is a documented approximation
  /// otherwise.
  OpinionSpreadEstimate EstimateOpinion(const OpinionParams& opinions,
                                        OiBase base,
                                        std::span<const NodeId> seeds,
                                        double lambda) const;

  /// Live out-targets of `u` in snapshot `s` (zero-copy arena span).
  std::span<const NodeId> LiveTargets(uint32_t s, NodeId u) const {
    const uint32_t* off = node_offsets_.data() +
                          static_cast<std::size_t>(s) * (graph_.num_nodes() + 1);
    const NodeId* base = entries_.data() + entry_base_[s];
    return {base + off[u], base + off[u + 1]};
  }

  /// Bytes held by the snapshot arena (capacity-based, the repo-wide
  /// memory accounting convention).
  std::size_t ArenaBytes() const;

  /// \brief Incremental marginal-gain session: StaticGreedy-style
  /// activate-once evaluation across a whole greedy run.
  ///
  /// The session keeps one persistent activated bitset per snapshot.
  /// Because each snapshot's activated set is reachability-closed, the
  /// BFS for a new candidate prunes at every already-activated node, so
  /// round i+1 only explores the newly added seed's frontier instead of
  /// re-walking reach(S) per evaluation. Gains are maintained as integer
  /// newly-activated counts, hence:
  ///   MarginalGain(u) == Estimate(S + u) - Estimate(S)   (same estimand)
  ///   Spread() after committing S  == Estimate(S)        (bitwise)
  /// The session owns its scratch; multiple sessions on one oracle are
  /// independent (but a single session is not thread-safe).
  class Session {
   public:
    explicit Session(const SketchOracle& oracle);

    /// Drops all committed seeds (keeps capacity).
    void Reset();

    /// Marginal gain of adding `u` to the committed set, WITHOUT
    /// committing: avg over snapshots of |reach(u) \ activated| minus 1
    /// (the candidate joins the excluded seed set, mirroring Def. 3).
    double MarginalGain(NodeId u);

    /// Commits `u` as a seed, persistently activating its frontier in
    /// every snapshot. Returns its marginal gain.
    double Commit(NodeId u);

    /// sigma of the committed seed set; bitwise equal to
    /// oracle.Estimate(committed seeds).
    double Spread() const;

    std::size_t num_seeds() const { return num_seeds_; }
    /// Total nodes activated across all snapshots — the session's
    /// exploration work counter (each node is activated at most once per
    /// snapshot over the whole run).
    int64_t total_activated() const { return total_active_; }
    /// Session scratch bytes (capacity-based).
    std::size_t ScratchBytes() const;

   private:
    template <bool kCommit>
    int64_t Explore(NodeId u);
    bool Activated(uint32_t s, NodeId u) const {
      const uint64_t* w = activated_.data() + s * words_per_snapshot_;
      return (w[u >> 6] >> (u & 63)) & 1;
    }

    const SketchOracle& oracle_;
    std::size_t words_per_snapshot_;
    std::vector<uint64_t> activated_;  // R * words_per_snapshot_ bits
    EpochSet trial_;                   // visited set for non-committing BFS
    std::vector<NodeId> stack_;
    int64_t total_active_ = 0;
    std::size_t num_seeds_ = 0;
  };

 private:
  struct SnapshotBuffer;
  void SampleAll(ThreadPool* pool);
  void SampleOne(Rng& rng, SnapshotBuffer& buffer) const;

  const Graph& graph_;
  const InfluenceParams& params_;
  uint32_t num_snapshots_;
  uint64_t seed_;
  bool record_edge_offsets_;
  // LT live-in-edge distribution (shared, stateless sampling helper); null
  // for IC/WC.
  std::unique_ptr<LiveEdgeSimulator> live_edge_;

  std::vector<NodeId> entries_;
  std::vector<uint32_t> edge_offsets_;   // parallel to entries_ when recorded
  std::vector<uint32_t> node_offsets_;   // R * (n + 1), snapshot-local
  std::vector<std::size_t> entry_base_;  // R + 1

  // Reusable one-shot evaluation scratch (Estimate and the replay
  // estimators are single-caller; see class comment).
  mutable EpochSet visited_;
  mutable std::vector<NodeId> queue_;
  mutable std::vector<double> node_value_;  // expected opinion per node
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_SKETCH_ORACLE_H_

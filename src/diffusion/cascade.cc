#include "diffusion/cascade.h"

// Header-only structures; this TU anchors the header in the build.

#include "diffusion/independent_cascade.h"

#include "util/logging.h"

namespace holim {

IcSimulator::IcSimulator(const Graph& graph, const InfluenceParams& params)
    : graph_(graph), params_(params), active_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
}

const Cascade& IcSimulator::Run(std::span<const NodeId> seeds, Rng& rng) {
  return RunImpl(seeds, rng, nullptr);
}

const Cascade& IcSimulator::RunWithBlocked(std::span<const NodeId> seeds,
                                           Rng& rng, const EpochSet& blocked) {
  return RunImpl(seeds, rng, &blocked);
}

const Cascade& IcSimulator::RunImpl(std::span<const NodeId> seeds, Rng& rng,
                                    const EpochSet* blocked) {
  active_.Reset(graph_.num_nodes());
  cascade_.order.clear();
  // clear() already retains capacity; this reserve makes the
  // keep-the-previous-run's-allocation invariant explicit and keeps it
  // if the buffer is ever shrunk or moved out between runs.
  cascade_.order.reserve(last_activation_count_);
  for (NodeId s : seeds) {
    if (active_.Contains(s)) continue;
    if (blocked && blocked->Contains(s)) continue;
    active_.Insert(s);
    cascade_.order.push_back({s, kSeedActivation, 0});
  }
  // cascade_.order doubles as the BFS frontier queue.
  std::size_t head = 0;
  while (head < cascade_.order.size()) {
    const Activation current = cascade_.order[head++];
    const NodeId u = current.node;
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId v = neighbors[i];
      if (active_.Contains(v)) continue;
      if (blocked && blocked->Contains(v)) continue;
      const EdgeId e = base + i;
      if (rng.NextBernoulli(params_.p(e))) {
        active_.Insert(v);
        cascade_.order.push_back({v, e, current.step + 1});
      }
    }
  }
  last_activation_count_ = cascade_.order.size();
  return cascade_;
}

}  // namespace holim

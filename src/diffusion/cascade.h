#ifndef HOLIM_DIFFUSION_CASCADE_H_
#define HOLIM_DIFFUSION_CASCADE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace holim {

/// Sentinel for "activated as a seed" (no incoming activation edge).
inline constexpr EdgeId kSeedActivation = static_cast<EdgeId>(-1);

/// One node activation inside a cascade.
struct Activation {
  NodeId node;
  /// Edge along which the activation arrived (kSeedActivation for seeds).
  /// Under LT multiple in-neighbors may fire a node; this records one
  /// representative — the full activator set is available via `step`.
  EdgeId via_edge;
  uint32_t step;  // 0 for seeds
};

/// \brief Result of a single diffusion run. Seeds come first in `order`.
///
/// The structure is reused across runs by the simulators (epoch-stamped
/// membership tests), so a Cascade returned by Run() is only valid until the
/// next Run() on the same simulator.
struct Cascade {
  std::vector<Activation> order;

  /// Number of activated nodes excluding seeds (paper Def. 3, Γ(S) for one run).
  std::size_t SpreadCount(std::size_t num_seeds) const {
    return order.size() >= num_seeds ? order.size() - num_seeds : 0;
  }
};

/// \brief O(1)-reset membership set over node ids using epoch stamping.
///
/// Used by every simulator so that back-to-back Monte-Carlo runs avoid an
/// O(n) clear per run.
class EpochSet {
 public:
  explicit EpochSet(std::size_t n = 0) : stamp_(n, 0) {}

  void Reset(std::size_t n) {
    if (stamp_.size() != n) stamp_.assign(n, 0);
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the rare full clear
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Clears membership, keeping capacity.
  void Clear() { Reset(stamp_.size()); }

  bool Contains(NodeId u) const { return stamp_[u] == epoch_; }
  void Insert(NodeId u) { stamp_[u] = epoch_; }

  std::size_t size_bytes() const { return stamp_.capacity() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_CASCADE_H_

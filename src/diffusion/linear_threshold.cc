#include "diffusion/linear_threshold.h"

#include "util/logging.h"

namespace holim {

LtSimulator::LtSimulator(const Graph& graph, const InfluenceParams& params)
    : graph_(graph),
      params_(params),
      active_(graph.num_nodes()),
      weight_in_(graph.num_nodes(), 0.0),
      threshold_(graph.num_nodes(), 0.0),
      touched_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
}

const Cascade& LtSimulator::Run(std::span<const NodeId> seeds, Rng& rng) {
  return RunImpl(seeds, rng, nullptr);
}

const Cascade& LtSimulator::RunWithBlocked(std::span<const NodeId> seeds,
                                           Rng& rng, const EpochSet& blocked) {
  return RunImpl(seeds, rng, &blocked);
}

const Cascade& LtSimulator::RunImpl(std::span<const NodeId> seeds, Rng& rng,
                                    const EpochSet* blocked) {
  active_.Reset(graph_.num_nodes());
  touched_.Reset(graph_.num_nodes());
  cascade_.order.clear();
  // clear() already retains capacity; this reserve makes the
  // keep-the-previous-run's-allocation invariant explicit and keeps it
  // if the buffer is ever shrunk or moved out between runs.
  cascade_.order.reserve(last_activation_count_);
  for (NodeId s : seeds) {
    if (active_.Contains(s)) continue;
    if (blocked && blocked->Contains(s)) continue;
    active_.Insert(s);
    cascade_.order.push_back({s, kSeedActivation, 0});
  }
  std::size_t head = 0;
  while (head < cascade_.order.size()) {
    const Activation current = cascade_.order[head++];
    const NodeId u = current.node;
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId v = neighbors[i];
      if (active_.Contains(v)) continue;
      if (blocked && blocked->Contains(v)) continue;
      const EdgeId e = base + i;
      if (!touched_.Contains(v)) {
        touched_.Insert(v);
        weight_in_[v] = 0.0;
        threshold_[v] = rng.NextDouble();  // theta_v ~ U(0,1), fresh per run
      }
      weight_in_[v] += params_.p(e);
      if (weight_in_[v] >= threshold_[v]) {
        active_.Insert(v);
        cascade_.order.push_back({v, e, current.step + 1});
      }
    }
  }
  last_activation_count_ = cascade_.order.size();
  return cascade_;
}

}  // namespace holim

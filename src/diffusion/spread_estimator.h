#ifndef HOLIM_DIFFUSION_SPREAD_ESTIMATOR_H_
#define HOLIM_DIFFUSION_SPREAD_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "diffusion/oi_model.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace holim {

/// Monte-Carlo estimation options shared by all estimators.
///
/// Determinism contract: simulation i draws from its own SplitMix64
/// stream derived from (seed, i), and simulations are accumulated in
/// fixed-size blocks reduced in block order — so every estimate is
/// bitwise identical for any pool thread count (including nullptr).
struct McOptions {
  uint32_t num_simulations = 1000;  // the paper uses 10K; configurable
  uint64_t seed = 42;
  ThreadPool* pool = nullptr;  // nullptr -> DefaultThreadPool()
  /// Cooperative stop poll (borrowed; may be null). Blocks whose start
  /// observes StopRequested() are skipped, leaving their partials zero —
  /// the caller (a deadline-aware selector) discards the estimate of a
  /// round that observed expiry, so partial sums never leak into results.
  const Deadline* deadline = nullptr;
};

/// Expected opinion-oblivious spread sigma(S) = E[|V_a| - |S|] (Def. 3)
/// under the model in `params` (IC/WC via IcSimulator, LT via LtSimulator).
double EstimateSpread(const Graph& graph, const InfluenceParams& params,
                      const std::vector<NodeId>& seeds,
                      const McOptions& options = {});

/// Expected opinion spread E[Γo(S)] and effective opinion spread E[Γoλ(S)]
/// under the OI model.
struct OpinionSpreadEstimate {
  double opinion_spread = 0.0;            // E[Γo(S)]
  double effective_opinion_spread = 0.0;  // E[Γoλ(S)]
  double plain_spread = 0.0;              // E[|V_a| - |S|], for reference
};

OpinionSpreadEstimate EstimateOpinionSpread(
    const Graph& graph, const InfluenceParams& influence,
    const OpinionParams& opinions, OiBase base,
    const std::vector<NodeId>& seeds, double lambda,
    const McOptions& options = {});

/// Expected opinion spread under OC (LT first layer, phi ≡ 1).
double EstimateOcOpinionSpread(const Graph& graph,
                               const InfluenceParams& influence,
                               const OpinionParams& opinions,
                               const std::vector<NodeId>& seeds,
                               const McOptions& options = {});

}  // namespace holim

#endif  // HOLIM_DIFFUSION_SPREAD_ESTIMATOR_H_

#ifndef HOLIM_DIFFUSION_OC_MODEL_H_
#define HOLIM_DIFFUSION_OC_MODEL_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/linear_threshold.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/rng.h"

namespace holim {

/// \brief OC model (Zhang, Dinh, Thai, ICDCS'13) — opinion cascades over LT.
///
/// Reconstruction per this paper's description (Secs. 1, 4, 5): the first
/// layer is LT; when a node activates, its new opinion depends on its own
/// prior opinion and the opinions of the activating in-neighbors — with NO
/// interaction probability (every contribution arrives with the activator's
/// orientation):
///   o'_v = (o_v + mean_{u in In(v)_active} o'_u) / 2.
/// This is exactly OI-over-LT with phi ≡ 1, which is how the paper positions
/// OC as a special case lacking interaction modelling.
class OcSimulator {
 public:
  OcSimulator(const Graph& graph, const InfluenceParams& influence,
              const OpinionParams& opinions);

  /// Runs one OC cascade; reuses the OpinionCascade layout from oi_model.h.
  struct OcCascade {
    const Cascade* cascade = nullptr;
    std::vector<double> final_opinion;
    std::size_t num_seeds = 0;
    double OpinionSpread() const;
  };

  const OcCascade& Run(std::span<const NodeId> seeds, Rng& rng);

 private:
  const Graph& graph_;
  const OpinionParams& opinions_;
  LtSimulator lt_;
  OcCascade result_;
  std::vector<double> node_opinion_;
  std::vector<uint32_t> node_step_;
  EpochSet settled_;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_OC_MODEL_H_

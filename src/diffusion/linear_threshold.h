#ifndef HOLIM_DIFFUSION_LINEAR_THRESHOLD_H_
#define HOLIM_DIFFUSION_LINEAR_THRESHOLD_H_

#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

/// \brief Linear Threshold simulator in its classical (threshold) form.
///
/// Each run samples fresh thresholds theta_v ~ U(0,1). A node v activates
/// once the summed weights of its active in-neighbors reach theta_v; weights
/// are w(u,v) = params.p(edge) (the paper uses 1/indeg(v)). Kempe's live-edge
/// equivalence is exercised separately in live_edge.h and validated by tests.
class LtSimulator {
 public:
  LtSimulator(const Graph& graph, const InfluenceParams& params);

  const Cascade& Run(std::span<const NodeId> seeds, Rng& rng);

  /// Variant that never activates blocked nodes.
  const Cascade& RunWithBlocked(std::span<const NodeId> seeds, Rng& rng,
                                const EpochSet& blocked);

 private:
  const Cascade& RunImpl(std::span<const NodeId> seeds, Rng& rng,
                         const EpochSet* blocked);

  const Graph& graph_;
  const InfluenceParams& params_;
  Cascade cascade_;
  EpochSet active_;
  // Incoming active weight accumulated so far; epoch-guarded by touched_.
  std::vector<double> weight_in_;
  std::vector<double> threshold_;
  EpochSet touched_;
  // Activation count of the previous run; seeds Run's reserve.
  std::size_t last_activation_count_ = 0;
};

}  // namespace holim

#endif  // HOLIM_DIFFUSION_LINEAR_THRESHOLD_H_

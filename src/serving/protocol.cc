#include "serving/protocol.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_support/bench_main.h"

namespace holim {

namespace {

Status BadToken(const std::string& what, const std::string& token) {
  return Status::InvalidArgument("protocol: " + what + ": " + token);
}

Result<uint64_t> ParseU64(const std::string& key, const std::string& value) {
  if (value.empty()) return BadToken("empty value for " + key, value);
  uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return BadToken("bad number for " + key, value);
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      return BadToken("number overflows for " + key, value);
    }
    out = out * 10 + digit;
  }
  return out;
}

Result<double> ParseMillis(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (...) {
    return BadToken("bad number for " + key, value);
  }
  if (consumed != value.size() || !(out >= 0.0)) {
    return BadToken("bad number for " + key, value);
  }
  return out;
}

}  // namespace

Result<ProtocolRequest> ParseRequestLine(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return BadToken("empty request line", line);

  ProtocolRequest request;
  if (verb == "solve") {
    request.verb = RequestVerb::kSolve;
  } else if (verb == "ping") {
    request.verb = RequestVerb::kPing;
  } else if (verb == "stats") {
    request.verb = RequestVerb::kStats;
  } else if (verb == "quit") {
    request.verb = RequestVerb::kQuit;
  } else {
    return BadToken("unknown verb", verb);
  }

  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return BadToken("expected key=value", token);
    }
    if (request.verb != RequestVerb::kSolve) {
      return BadToken("verb takes no fields", verb + " " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      HOLIM_ASSIGN_OR_RETURN(request.id, ParseU64(key, value));
    } else if (key == "tenant") {
      HOLIM_ASSIGN_OR_RETURN(const uint64_t tenant, ParseU64(key, value));
      if (tenant > UINT32_MAX) return BadToken("tenant out of range", value);
      request.tenant = static_cast<uint32_t>(tenant);
    } else if (key == "model") {
      if (value != "IC" && value != "WC" && value != "LT") {
        return BadToken("unknown model (IC|WC|LT)", value);
      }
      request.model = value;
    } else if (key == "algo") {
      if (value.empty()) return BadToken("empty value for algo", token);
      request.algo = value;
    } else if (key == "k") {
      HOLIM_ASSIGN_OR_RETURN(const uint64_t k, ParseU64(key, value));
      if (k == 0 || k > UINT32_MAX) return BadToken("k out of range", value);
      request.k = static_cast<uint32_t>(k);
    } else if (key == "query") {
      bool known = false;
      for (const QueryKind kind : kAllQueryKinds) {
        if (value == QueryKindName(kind)) {
          request.query = kind;
          known = true;
          break;
        }
      }
      if (!known) return BadToken("unknown query kind", value);
    } else if (key == "deadline_ms") {
      HOLIM_ASSIGN_OR_RETURN(request.deadline_ms, ParseMillis(key, value));
    } else {
      return BadToken("unknown key", key);
    }
  }
  return request;
}

std::string FormatOkResponse(const ProtocolReply& reply, bool echo_timings) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ok id=%llu tenant=%u warm_sketch=%d warm_selector=%d "
                "coalesced=%d degraded=%d tier=%s",
                static_cast<unsigned long long>(reply.id), reply.tenant,
                reply.warm_sketch ? 1 : 0, reply.warm_selector ? 1 : 0,
                reply.coalesced ? 1 : 0, reply.degraded ? 1 : 0,
                ResultTierName(reply.tier));
  std::string out = buf;
  out += " seeds=" + (reply.seeds_csv.empty() ? "-" : reply.seeds_csv);
  std::snprintf(buf, sizeof(buf), " spread=%.4f", reply.spread);
  out += buf;
  if (echo_timings) {
    std::snprintf(buf, sizeof(buf), " wait_ms=%.3f solve_ms=%.3f",
                  reply.wait_ms, reply.solve_ms);
    out += buf;
  }
  return out;
}

std::string FormatErrorResponse(uint64_t id, const Status& status) {
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return "err id=" + std::to_string(id) +
         " code=" + std::to_string(ExitCodeForStatus(status)) +
         " msg=" + msg;
}

}  // namespace holim

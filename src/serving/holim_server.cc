#include "serving/holim_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "engine/workspace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace holim {
namespace {

/// Writes all of `data` to a connected socket. MSG_NOSIGNAL: a client
/// that disconnects mid-response must surface as a short write here,
/// not a process-killing SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) return false;
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace

HolimServer::HolimServer(const ServerOptions& options) : options_(options) {
  HOLIM_CHECK(options_.queue_depth >= 1);
  HOLIM_CHECK(options_.num_sketches >= 1);
}

HolimServer::~HolimServer() = default;

Status HolimServer::AddTenant(Graph graph) {
  auto tenant = std::make_unique<Tenant>();
  tenant->graph = std::move(graph);
  if (tenant->graph.num_nodes() == 0) {
    return Status::InvalidArgument("tenant graph has no nodes");
  }
  // All three first-layer models up front: SolveRequest borrows params by
  // pointer, so they must live as long as the engine, and building them
  // here keeps Execute allocation-free on the model axis.
  tenant->params.emplace("IC", MakeUniformIc(tenant->graph));
  tenant->params.emplace("WC", MakeWeightedCascade(tenant->graph));
  tenant->params.emplace("LT", MakeLinearThreshold(tenant->graph));
  EngineOptions engine_options;
  engine_options.max_cache_bytes = options_.max_cache_bytes;
  tenant->engine =
      std::make_unique<HolimEngine>(tenant->graph, engine_options);
  tenant->engine->workspace().set_eviction_policy(options_.cache_policy);
  tenants_.push_back(std::move(tenant));
  return Status::OK();
}

HolimEngine& HolimServer::tenant_engine(uint32_t tenant) {
  HOLIM_CHECK(tenant < tenants_.size());
  return *tenants_[tenant]->engine;
}

std::string HolimServer::ArenaKeyFor(const Tenant& tenant,
                                     const ProtocolRequest& request) const {
  // Mirrors HolimEngine::Solve's sketch key exactly (same fingerprint,
  // R, seed, no edge offsets, current graph token) — the affinity
  // scheduler and the coalescing counter key on the same artifact the
  // engine will fetch.
  return SketchOracleKey(
      FingerprintParams(tenant.params.at(request.model)),
      options_.num_sketches, options_.seed,
      /*record_edge_offsets=*/false, tenant.engine->graph_token());
}

Status HolimServer::Submit(const ProtocolRequest& request) {
  if (request.verb != RequestVerb::kSolve) {
    return Status::InvalidArgument("only solve requests can be queued");
  }
  if (request.tenant >= tenants_.size()) {
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(request.tenant));
  }
  if (queue_full()) {
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (depth " +
        std::to_string(options_.queue_depth) + ")");
  }
  Tenant& tenant = *tenants_[request.tenant];
  Pending pending;
  pending.request = request;
  pending.arena_key = ArenaKeyFor(tenant, request);
  pending.enqueue_nanos = clock().NowNanos();
  pending.cold_at_admission =
      tenant.engine->workspace().PeekSketchOracle(pending.arena_key) ==
      nullptr;
  queue_.push_back(std::move(pending));
  ++stats_.admitted;
  return Status::OK();
}

Result<ProtocolReply> HolimServer::DispatchNext() {
  if (queue_.empty()) return Status::NotFound("serving queue is empty");
  Pending pending = PopNext();
  Result<ProtocolReply> reply = Execute(pending);
  if (!reply.ok()) ++stats_.failed;
  return reply;
}

HolimServer::Pending HolimServer::PopNext() {
  auto it = queue_.begin();
  if (options_.affinity && !last_arena_key_.empty()) {
    // Earliest queued request sharing the last-dispatched arena: the
    // whole same-key group runs back to back off one build. Falls back
    // to FIFO front, so no request can starve longer than one group.
    for (auto q = queue_.begin(); q != queue_.end(); ++q) {
      if (q->arena_key == last_arena_key_) {
        it = q;
        break;
      }
    }
  }
  Pending pending = std::move(*it);
  queue_.erase(it);
  return pending;
}

Result<ProtocolReply> HolimServer::Execute(const Pending& pending) {
  Tenant& tenant = *tenants_[pending.request.tenant];
  const InfluenceParams& params = tenant.params.at(pending.request.model);

  SolveRequest request;
  request.algorithm = pending.request.algo;
  request.k =
      std::min<uint32_t>(pending.request.k, tenant.graph.num_nodes());
  request.query = pending.request.query;
  request.params = &params;
  request.oracle = SpreadOracle::kSketch;
  request.num_sketches = options_.num_sketches;
  request.mc = options_.num_sketches;
  request.seed = options_.seed;
  request.evaluate_spread = true;
  request.clock = options_.clock;

  // Queue-wait deadline charging: the request's deadline budget started
  // at admission. Overstayed requests still get an answer — work_budget=1
  // expires at the first checkpoint, which lands them deterministically
  // in the heuristic degradation tier (the overload response).
  const double wait_ms = static_cast<double>(clock().NowNanos() -
                                             pending.enqueue_nanos) /
                         1e6;
  if (pending.request.deadline_ms > 0.0) {
    const double remaining = pending.request.deadline_ms - wait_ms;
    if (remaining <= 0.0) {
      request.work_budget = 1;
      ++stats_.expired_in_queue;
    } else {
      request.deadline_ms = remaining;
    }
  }

  Timer solve_timer;
  HOLIM_ASSIGN_OR_RETURN(SolveResult result, tenant.engine->Solve(request));

  ProtocolReply reply;
  reply.id = pending.request.id;
  reply.tenant = pending.request.tenant;
  reply.warm_sketch = result.warm_sketch;
  reply.warm_selector = result.warm_selector;
  reply.coalesced = pending.cold_at_admission && result.warm_sketch;
  reply.degraded = result.degraded;
  reply.tier = result.tier;
  reply.spread = result.spread;
  reply.wait_ms = wait_ms;
  reply.solve_ms = solve_timer.ElapsedMillis();
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    if (i) reply.seeds_csv += ',';
    reply.seeds_csv += std::to_string(result.seeds[i]);
  }

  ++stats_.served;
  if (result.warm_sketch) {
    ++stats_.warm_sketch_hits;
    if (reply.coalesced) ++stats_.coalesced;
  } else if (result.sketch_arena_bytes != 0) {
    // A cold arena was actually built (an expired-in-queue heuristic
    // solve builds nothing and counts nowhere).
    ++stats_.sketch_builds;
  }
  tenant.key_model[pending.arena_key] = pending.request.model;
  last_arena_key_ = pending.arena_key;
  MaybePrewarm(tenant);
  return reply;
}

void HolimServer::MaybePrewarm(Tenant& tenant) {
  if (!options_.prewarm) return;
  if (options_.cache_policy != Workspace::EvictionPolicy::kHeatBenefit) {
    return;
  }
  Workspace& workspace = tenant.engine->workspace();
  const std::string ghost_key = workspace.HottestGhost();
  if (ghost_key.empty()) return;
  const auto model_it = tenant.key_model.find(ghost_key);
  if (model_it == tenant.key_model.end()) {
    // A ghost we cannot rebuild (key from a retired configuration).
    workspace.ForgetGhost(ghost_key);
    return;
  }
  const auto ghost_it = workspace.ghosts().find(ghost_key);
  if (ghost_it == workspace.ghosts().end()) return;
  if (workspace.max_bytes() != 0 &&
      workspace.MemoryFootprintBytes() + ghost_it->second.bytes >
          workspace.max_bytes()) {
    return;  // no headroom yet; keep the ghost for later
  }
  SketchOptions sketch_options;
  sketch_options.num_snapshots = options_.num_sketches;
  sketch_options.seed = options_.seed;
  bool reused = false;
  workspace.GetSketchOracle(tenant.graph,
                            tenant.params.at(model_it->second),
                            sketch_options, tenant.engine->graph_token(),
                            &reused);
  if (!reused) ++stats_.prewarms;
}

std::string HolimServer::DispatchOneLine() {
  Pending pending = PopNext();
  Result<ProtocolReply> reply = Execute(pending);
  if (reply.ok()) return FormatOkResponse(*reply, options_.echo_timings);
  ++stats_.failed;
  return FormatErrorResponse(pending.request.id, reply.status());
}

void HolimServer::DrainQueue(std::vector<std::string>* lines) {
  while (!queue_.empty()) lines->push_back(DispatchOneLine());
}

std::string HolimServer::FormatStats() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "stats tenants=%zu admitted=%llu rejected=%llu served=%llu "
      "failed=%llu builds=%llu warm_sketch_hits=%llu coalesced=%llu "
      "prewarms=%llu expired_in_queue=%llu",
      tenants_.size(), static_cast<unsigned long long>(stats_.admitted),
      static_cast<unsigned long long>(stats_.rejected),
      static_cast<unsigned long long>(stats_.served),
      static_cast<unsigned long long>(stats_.failed),
      static_cast<unsigned long long>(stats_.sketch_builds),
      static_cast<unsigned long long>(stats_.warm_sketch_hits),
      static_cast<unsigned long long>(stats_.coalesced),
      static_cast<unsigned long long>(stats_.prewarms),
      static_cast<unsigned long long>(stats_.expired_in_queue));
  return buf;
}

void HolimServer::HandleLine(const std::string& line,
                             std::vector<std::string>* out_lines,
                             bool* quit) {
  // Blank lines and #-comments keep request scripts human-editable.
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return;

  Result<ProtocolRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    out_lines->push_back(FormatErrorResponse(0, parsed.status()));
    return;
  }
  const ProtocolRequest& request = *parsed;
  switch (request.verb) {
    case RequestVerb::kPing:
      out_lines->push_back("pong");
      return;
    case RequestVerb::kStats:
      DrainQueue(out_lines);
      out_lines->push_back(FormatStats());
      return;
    case RequestVerb::kQuit:
      DrainQueue(out_lines);
      out_lines->push_back("bye");
      *quit = true;
      return;
    case RequestVerb::kSolve:
      break;
  }
  // Closed-loop admission: a solve line meeting a full queue first frees
  // one slot by dispatching, so the interleaving — and therefore every
  // response byte — is a pure function of the script.
  if (queue_full()) out_lines->push_back(DispatchOneLine());
  const Status submitted = Submit(request);
  if (!submitted.ok()) {
    out_lines->push_back(FormatErrorResponse(request.id, submitted));
  }
}

Status HolimServer::RunPipe(std::istream& in, std::ostream& out) {
  std::string line;
  std::vector<std::string> lines;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    lines.clear();
    HandleLine(line, &lines, &quit);
    for (const std::string& response : lines) out << response << '\n';
    out.flush();
  }
  if (!quit) {
    // EOF without quit: answer everything still queued.
    lines.clear();
    DrainQueue(&lines);
    for (const std::string& response : lines) out << response << '\n';
    out.flush();
  }
  return Status::OK();
}

Status HolimServer::ServeUnixSocket(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("bad socket path: " + path);
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return Status::IOError("socket(): " + path);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    return Status::IOError("bind/listen failed on " + path);
  }
  bool quit = false;
  while (!quit) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      ::close(listener);
      return Status::IOError("accept failed on " + path);
    }
    // One client at a time, line-buffered over the raw fd; the protocol
    // and loop semantics are RunPipe's exactly.
    std::string buffer;
    std::vector<std::string> lines;
    char chunk[4096];
    ssize_t n = 0;
    while (!quit && (n = ::read(client, chunk, sizeof(chunk))) > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        lines.clear();
        HandleLine(line, &lines, &quit);
        std::string response;
        for (const std::string& l : lines) response += l + "\n";
        if (!SendAll(client, response)) break;
      }
    }
    if (!quit) {
      // EOF without quit: answer everything still queued, matching
      // RunPipe. A half-closing client (shutdown(SHUT_WR) after its last
      // request) is still reading and receives these.
      lines.clear();
      DrainQueue(&lines);
      std::string response;
      for (const std::string& l : lines) response += l + "\n";
      SendAll(client, response);
    }
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return Status::OK();
}

}  // namespace holim

#include "serving/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace holim {

namespace {

/// Top 53 bits of a raw draw as a double in [0, 1): exact on every
/// platform (53-bit integers are representable, and the divisor is a
/// power of two), unlike a 1.0/2^64 multiply whose rounding can differ.
double UnitDouble(uint64_t raw) {
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

}  // namespace

ZipfianSampler::ZipfianSampler(std::size_t n, double exponent) {
  HOLIM_CHECK(n >= 1);
  HOLIM_CHECK(exponent >= 0.0 && std::isfinite(exponent));
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[i] = total;
  }
  for (std::size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;  // pin against normalization round-off
}

std::size_t ZipfianSampler::Sample(uint64_t raw) const {
  const double u = UnitDouble(raw);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  // u < 1.0 and cdf_.back() == 1.0, so `it` can never be end(); the
  // clamp is belt-and-braces against a hostile cdf.
  const std::size_t rank = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(rank, cdf_.size() - 1);
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec),
      tenants_(spec.num_tenants, spec.tenant_exponent),
      models_(spec.models.size(), spec.model_exponent),
      state_(spec.seed) {
  HOLIM_CHECK(spec_.num_tenants >= 1);
  HOLIM_CHECK(!spec_.models.empty());
  HOLIM_CHECK(!spec_.ks.empty());
}

WorkloadItem WorkloadGenerator::Next() {
  WorkloadItem item;
  item.id = count_++;
  // Exactly three draws per item, in fixed order — the stream-stability
  // contract the class comment pins.
  item.tenant = static_cast<uint32_t>(tenants_.Sample(Rng::SplitMix64(state_)));
  item.model = spec_.models[models_.Sample(Rng::SplitMix64(state_))];
  item.k = spec_.ks[Rng::SplitMix64(state_) % spec_.ks.size()];
  return item;
}

}  // namespace holim

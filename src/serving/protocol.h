#ifndef HOLIM_SERVING_PROTOCOL_H_
#define HOLIM_SERVING_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "engine/solve_request.h"
#include "util/status.h"

namespace holim {

/// \brief holimd's line-delimited request protocol.
///
/// One request per line, space-separated tokens: a verb followed by
/// key=value fields (order-free, no quoting — values may not contain
/// whitespace). Blank lines and lines starting with '#' are ignored by
/// the serving loop. The same grammar is spoken over the local socket and
/// over stdin/stdout pipe mode, so a request script exercises the exact
/// production parse path.
///
/// Verbs:
///   solve id=<n> tenant=<t> model=IC|WC|LT k=<n>
///         [algo=<name>] [query=topk|...] [deadline_ms=<ms>]
///   ping                      -> "pong"
///   stats                     -> drains the queue, then one counter line
///   quit                      -> drains the queue, replies "bye", exits
///
/// Responses (one line each):
///   ok id=<n> tenant=<t> warm_sketch=0|1 warm_selector=0|1 coalesced=0|1
///      degraded=0|1 tier=<full|prefix|heuristic> seeds=<a,b,c>
///      spread=<%.4f> [wait_ms=<ms> solve_ms=<ms>]
///   err id=<n> code=<exit-code> msg=<message-with-underscores>
///
/// Timing fields only appear when the server echoes timings (off by
/// default): responses are then a pure function of the request stream,
/// which is what the deterministic pipe-mode smoke diffs.
enum class RequestVerb { kSolve, kPing, kStats, kQuit };

/// One parsed request line.
struct ProtocolRequest {
  RequestVerb verb = RequestVerb::kSolve;
  uint64_t id = 0;
  uint32_t tenant = 0;
  std::string model = "IC";
  std::string algo = "celf";
  uint32_t k = 10;
  QueryKind query = QueryKind::kTopK;
  double deadline_ms = 0.0;
};

/// Parses one protocol line (verb + key=value fields). InvalidArgument on
/// an unknown verb, unknown key, malformed number, or out-of-range value;
/// the message names the offending token.
Result<ProtocolRequest> ParseRequestLine(const std::string& line);

/// What a dispatched solve answers with — the response-relevant slice of
/// the SolveResult plus the serving-side bookkeeping.
struct ProtocolReply {
  uint64_t id = 0;
  uint32_t tenant = 0;
  bool warm_sketch = false;
  bool warm_selector = false;
  /// This request missed its artifact at admission but found it built by
  /// the time it was dispatched — its build was coalesced away.
  bool coalesced = false;
  bool degraded = false;
  ResultTier tier = ResultTier::kFull;
  std::string seeds_csv;  ///< comma-joined seed ids
  double spread = 0.0;
  double wait_ms = 0.0;   ///< time spent queued
  double solve_ms = 0.0;  ///< engine Solve wall time
};

/// Renders the "ok ..." line. `echo_timings` appends wait_ms/solve_ms —
/// leave it off wherever byte-identical replay matters.
std::string FormatOkResponse(const ProtocolReply& reply, bool echo_timings);

/// Renders the "err ..." line for a failed request. The status message is
/// whitespace-mangled (spaces -> '_') to keep the one-line grammar.
std::string FormatErrorResponse(uint64_t id, const Status& status);

}  // namespace holim

#endif  // HOLIM_SERVING_PROTOCOL_H_

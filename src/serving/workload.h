#ifndef HOLIM_SERVING_WORKLOAD_H_
#define HOLIM_SERVING_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace holim {

/// \brief Deterministic Zipfian rank sampler over `n` items.
///
/// Item i (0-based) gets weight 1/(i+1)^exponent; the CDF is precomputed
/// once and each Sample is a binary search, so drawing is O(log n) with no
/// RNG state of its own — the caller supplies the raw 64-bit draw. That
/// split is what makes workload streams bitwise reproducible: the sampler
/// is a pure function of (n, exponent, raw).
///
/// exponent 0 degenerates to uniform; larger skews harder (exponent ~1 is
/// the classic web/cache shape where the head items dominate).
class ZipfianSampler {
 public:
  /// `n` >= 1; `exponent` >= 0 and finite.
  ZipfianSampler(std::size_t n, double exponent);

  /// Maps a raw 64-bit uniform draw to a rank in [0, size()). The raw
  /// value is first mapped to a double in [0, 1) by taking its top 53
  /// bits, so the result is identical on every platform.
  std::size_t Sample(uint64_t raw) const;

  std::size_t size() const { return cdf_.size(); }

  /// Normalized inclusive CDF, cdf()[i] = P(rank <= i); back() == 1.0.
  const std::vector<double>& cdf() const { return cdf_; }

 private:
  std::vector<double> cdf_;
};

/// One request of a serving workload, in stream order. `id` is the
/// 0-based position in the stream (the serving protocol echoes it back so
/// out-of-order dispatch stays attributable).
struct WorkloadItem {
  uint64_t id = 0;
  uint32_t tenant = 0;      ///< which tenant graph the request targets
  std::string model;        ///< diffusion model name: "IC" | "WC" | "LT"
  uint32_t k = 0;           ///< seed-set size
};

/// Shape of a synthetic serving workload. Skew is Zipfian over tenants
/// and over models independently; k is drawn uniformly from `ks`.
struct WorkloadSpec {
  uint32_t num_tenants = 3;
  double tenant_exponent = 1.1;   ///< Zipf skew across tenants
  double model_exponent = 0.9;    ///< Zipf skew across `models`
  std::vector<std::string> models = {"IC", "WC", "LT"};
  std::vector<uint32_t> ks = {5, 10};
  uint64_t seed = 42;
};

/// \brief Bitwise-deterministic request stream: a fixed SplitMix64 state
/// seeded from `spec.seed`, consuming EXACTLY three draws per item
/// (tenant, model, k) — so item j is a pure function of (spec, j),
/// independent of how earlier draws were consumed or of the platform.
/// Two generators built from equal specs produce identical streams.
class WorkloadGenerator {
 public:
  /// Dies (HOLIM_CHECK) on an empty models/ks list or zero tenants.
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  /// The next item of the stream.
  WorkloadItem Next();

  /// Items generated so far (== the next item's id).
  uint64_t count() const { return count_; }

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  ZipfianSampler tenants_;
  ZipfianSampler models_;
  uint64_t state_ = 0;  ///< SplitMix64 stream state
  uint64_t count_ = 0;
};

}  // namespace holim

#endif  // HOLIM_SERVING_WORKLOAD_H_

#ifndef HOLIM_SERVING_HOLIM_SERVER_H_
#define HOLIM_SERVING_HOLIM_SERVER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/holim_engine.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "serving/protocol.h"
#include "util/deadline.h"
#include "util/status.h"

namespace holim {

/// Serving-loop knobs. The two perf mechanisms (affinity + heat policy)
/// are independently switchable so the bench can run the same binary as
/// its own baseline (FIFO + plain LRU).
struct ServerOptions {
  /// Bounded admission queue depth; a solve submitted to a full queue is
  /// rejected with kResourceExhausted (the caller sees an "err ... 11"
  /// response and may retry).
  std::size_t queue_depth = 32;
  /// Artifact-affinity scheduling: dispatch the earliest queued request
  /// sharing the last-dispatched sketch-arena key before falling back to
  /// FIFO order. Off = strict FIFO.
  bool affinity = true;
  /// Per-tenant Workspace eviction policy (heat = benefit-per-byte).
  Workspace::EvictionPolicy cache_policy =
      Workspace::EvictionPolicy::kHeatBenefit;
  /// Per-tenant Workspace byte budget (0 = unlimited).
  std::size_t max_cache_bytes = 0;
  /// After a dispatch under the heat policy, rebuild the hottest ghost
  /// arena when the freed budget covers its bytes.
  bool prewarm = true;
  /// Sketch-arena snapshot count R shared by every served solve.
  uint32_t num_sketches = 64;
  /// RNG seed behind every arena and selector.
  uint64_t seed = 42;
  /// Clock charging queue wait against deadlines (null = real clock);
  /// tests inject a ManualClock to expire queued requests on cue.
  const Clock* clock = nullptr;
  /// Append wait_ms/solve_ms to ok-responses (off keeps responses a pure
  /// function of the request stream — the pipe-mode determinism contract).
  bool echo_timings = false;
};

/// Monotonic serving counters (all exact and deterministic for a fixed
/// request stream when wall deadlines don't fire).
struct ServerStats {
  uint64_t admitted = 0;          ///< requests accepted into the queue
  uint64_t rejected = 0;          ///< admission-control rejections
  uint64_t served = 0;            ///< solve responses produced
  uint64_t failed = 0;            ///< dispatched solves that errored
  uint64_t sketch_builds = 0;     ///< cold sketch-arena builds paid
  uint64_t warm_sketch_hits = 0;  ///< solves served off a cached arena
  uint64_t coalesced = 0;  ///< queued misses whose build was coalesced away
  uint64_t prewarms = 0;   ///< ghost arenas rebuilt ahead of demand
  uint64_t expired_in_queue = 0;  ///< deadlines that died waiting
};

/// \brief `holimd`'s core: a single-threaded serving loop in front of one
/// HolimEngine per tenant.
///
/// ## Admission and dispatch
///
/// Submit() parses nothing — it takes a ProtocolRequest, validates it
/// against the tenant set, stamps it with the enqueue time and its sketch
/// -arena key, and enqueues it; a full queue rejects with
/// kResourceExhausted (admission control — the bounded queue is the
/// backpressure mechanism). DispatchNext() pops one request and runs it:
///
///  * **Artifact-affinity scheduling** (options.affinity): the dispatcher
///    picks the earliest queued request whose arena key equals the last
///    dispatched one, falling back to the queue front. Requests sharing
///    an artifact therefore run back to back, so one build serves the
///    whole group — N queued misses on one key trigger exactly one build.
///    The `coalesced` counter is exact: a request whose key was cold at
///    admission but warm at dispatch is a build that scheduling saved.
///  * **Queue-wait deadline charging**: a request's deadline_ms budget
///    starts at admission. Wait time is subtracted at dispatch; a request
///    that already overstayed runs with work_budget=1, which forces the
///    engine's deterministic heuristic degradation tier — the PR 9 ladder
///    (full -> prefix -> heuristic) is the overload response, not an
///    error.
///  * **Pre-warm** (options.prewarm, heat policy only): after a dispatch,
///    if the hottest ghost (see Workspace) fits the freed budget, its
///    arena is rebuilt ahead of demand and counted in `prewarms`.
///
/// Scheduling never changes results: a solve is a pure function of its
/// request, so any dispatch order yields bitwise-identical per-request
/// responses (the serving bench HOLIM_CHECKs this across legs).
///
/// ## Tenancy
///
/// Each tenant owns a graph, its IC/WC/LT params, and a HolimEngine with
/// its own Workspace (options.max_cache_bytes each). Engines are
/// per-tenant because Workspace keys fingerprint params *content* —
/// two same-shaped graphs under uniform IC share a fingerprint, which a
/// shared workspace would conflate.
///
/// Single-threaded by design (the perf story is work reduction, not
/// parallel dispatch); not thread-safe.
class HolimServer {
 public:
  explicit HolimServer(const ServerOptions& options);
  ~HolimServer();

  /// Registers the next tenant (ids are dense, in call order). The graph
  /// is moved in and owned by the server.
  Status AddTenant(Graph graph);

  std::size_t num_tenants() const { return tenants_.size(); }

  /// Admission control: enqueues a solve request, or rejects it —
  /// kResourceExhausted when the queue is full (counted in
  /// stats().rejected), kInvalidArgument for an unknown tenant.
  Status Submit(const ProtocolRequest& request);

  /// True when Submit would reject for lack of space.
  bool queue_full() const { return queue_.size() >= options_.queue_depth; }
  std::size_t queue_size() const { return queue_.size(); }

  /// Dispatches one queued request (affinity pick or FIFO front) through
  /// its tenant engine and returns the reply. NotFound on an empty queue;
  /// engine-level failures are returned as the error (the caller formats
  /// an err-response; the request is consumed either way).
  Result<ProtocolReply> DispatchNext();

  /// Dispatches until the queue is empty, appending every response line
  /// (ok or err) to `lines`.
  void DrainQueue(std::vector<std::string>* lines);

  /// Runs the stdin/stdout-style serving loop until "quit" or EOF: one
  /// request per input line, one response line each (see protocol.h).
  /// Deterministic for a fixed script (with echo_timings off): admission
  /// is closed-loop — a solve line arriving at a full queue first drains
  /// one dispatch, so the interleaving is a pure function of the script.
  Status RunPipe(std::istream& in, std::ostream& out);

  /// Binds an AF_UNIX socket at `path` (unlinking any stale file) and
  /// serves clients one connection at a time, same line protocol as
  /// RunPipe. Returns when a client sends "quit" (IOError on socket
  /// failures).
  Status ServeUnixSocket(const std::string& path);

  /// One-line counter rendering ("stats served=... ..."), the `stats`
  /// verb's response.
  std::string FormatStats() const;

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }

  /// The tenant's engine (for tests/bench inspection). Dies on a bad id.
  HolimEngine& tenant_engine(uint32_t tenant);

 private:
  struct Tenant {
    Graph graph;
    std::map<std::string, InfluenceParams> params;  // "IC"/"WC"/"LT"
    std::unique_ptr<HolimEngine> engine;
    /// Reverse map: sketch-arena key -> model name, for pre-warm rebuilds.
    std::map<std::string, std::string> key_model;
  };

  struct Pending {
    ProtocolRequest request;
    std::string arena_key;
    int64_t enqueue_nanos = 0;
    /// The arena was absent at admission; if it is present at dispatch,
    /// this request's build was coalesced into an earlier one.
    bool cold_at_admission = false;
  };

  const Clock& clock() const {
    return options_.clock ? *options_.clock : *Clock::Real();
  }

  /// The Workspace key of the sketch arena `request` will use.
  std::string ArenaKeyFor(const Tenant& tenant,
                          const ProtocolRequest& request) const;

  /// Removes and returns the next request to run: the affinity pick when
  /// enabled, else the FIFO front. Queue must be non-empty.
  Pending PopNext();

  /// Dispatches one request and renders its response line (ok or err).
  /// Queue must be non-empty.
  std::string DispatchOneLine();

  /// Runs one pending request through its tenant engine.
  Result<ProtocolReply> Execute(const Pending& pending);

  /// Heat-policy pre-warm: rebuild the hottest ghost arena of `tenant`
  /// when the current footprint leaves room for it.
  void MaybePrewarm(Tenant& tenant);

  /// Handles one protocol line of the pipe/socket loop; appends response
  /// lines to `out_lines`. Sets `*quit` on the quit verb.
  void HandleLine(const std::string& line, std::vector<std::string>* out_lines,
                  bool* quit);

  ServerOptions options_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::deque<Pending> queue_;
  std::string last_arena_key_;  ///< affinity target
  ServerStats stats_;
};

}  // namespace holim

#endif  // HOLIM_SERVING_HOLIM_SERVER_H_

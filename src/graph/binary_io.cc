#include "graph/binary_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "graph/graph_builder.h"

namespace holim {

namespace {

constexpr uint64_t kMagic = 0x484F4C494D470101ULL;  // "HOLIMG" + version 1.1

struct FileCloser {
  void operator()(FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

Status WriteBlob(FILE* f, const void* data, std::size_t bytes) {
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

template <typename T>
Status WriteArray(FILE* f, const std::vector<T>& values) {
  const uint64_t count = values.size();
  HOLIM_RETURN_NOT_OK(WriteBlob(f, &count, sizeof(count)));
  return WriteBlob(f, values.data(), count * sizeof(T));
}

Status ReadBlob(FILE* f, void* data, std::size_t bytes) {
  if (bytes > 0 && std::fread(data, 1, bytes, f) != bytes) {
    return Status::IOError("short read (truncated or corrupt file)");
  }
  return Status::OK();
}

template <typename T>
Status ReadArray(FILE* f, std::vector<T>* values, uint64_t max_count) {
  uint64_t count = 0;
  HOLIM_RETURN_NOT_OK(ReadBlob(f, &count, sizeof(count)));
  if (count > max_count) {
    return Status::IOError("array length implausible (corrupt file)");
  }
  // The payload cannot exceed the bytes left in the file; reject a corrupt
  // count BEFORE resize so it can't trigger a gigabyte allocation.
  const long pos = std::ftell(f);
  if (pos >= 0 && std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (std::fseek(f, pos, SEEK_SET) != 0) {
      return Status::IOError("seek failed while validating array length");
    }
    if (end >= pos &&
        count * sizeof(T) > static_cast<uint64_t>(end - pos)) {
      return Status::IOError("array length exceeds file size (corrupt file)");
    }
  }
  values->resize(count);
  return ReadBlob(f, values->data(), count * sizeof(T));
}

}  // namespace

Status WriteGraphBundle(const std::string& path, const Graph& graph,
                        const std::vector<double>* edge_probability,
                        const std::vector<double>* node_opinion,
                        const std::vector<double>* edge_interaction) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for writing: " + path);

  HOLIM_RETURN_NOT_OK(WriteBlob(f.get(), &kMagic, sizeof(kMagic)));
  const uint64_t n = graph.num_nodes();
  HOLIM_RETURN_NOT_OK(WriteBlob(f.get(), &n, sizeof(n)));
  // Out-CSR in edge-id order: (source, target) per edge suffices to rebuild
  // bit-identical CSR via GraphBuilder (which sorts by (src, dst) — the
  // stored order is already sorted, so edge ids are preserved).
  std::vector<NodeId> sources, targets;
  sources.reserve(graph.num_edges());
  targets.reserve(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      sources.push_back(u);
      targets.push_back(v);
    }
  }
  HOLIM_RETURN_NOT_OK(WriteArray(f.get(), sources));
  HOLIM_RETURN_NOT_OK(WriteArray(f.get(), targets));

  const auto write_optional = [&](const std::vector<double>* values,
                                  uint64_t expected) -> Status {
    const uint8_t present = values != nullptr;
    HOLIM_RETURN_NOT_OK(WriteBlob(f.get(), &present, sizeof(present)));
    if (!present) return Status::OK();
    if (values->size() != expected) {
      return Status::InvalidArgument("parameter array size mismatch");
    }
    return WriteArray(f.get(), *values);
  };
  HOLIM_RETURN_NOT_OK(write_optional(edge_probability, graph.num_edges()));
  HOLIM_RETURN_NOT_OK(write_optional(node_opinion, graph.num_nodes()));
  HOLIM_RETURN_NOT_OK(write_optional(edge_interaction, graph.num_edges()));
  return Status::OK();
}

Result<GraphBundle> ReadGraphBundle(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open: " + path);

  uint64_t magic = 0;
  HOLIM_RETURN_NOT_OK(ReadBlob(f.get(), &magic, sizeof(magic)));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a holim graph bundle (bad magic)");
  }
  uint64_t n = 0;
  HOLIM_RETURN_NOT_OK(ReadBlob(f.get(), &n, sizeof(n)));
  if (n > static_cast<uint64_t>(kInvalidNode)) {
    return Status::OutOfRange("node count exceeds NodeId range");
  }
  // Plausibility cap: CSR offsets allocate n+1 entries up front, so a
  // corrupt node count must not be allowed to demand gigabytes before any
  // structural check can fail.
  constexpr uint64_t kMaxNodes = 1ull << 28;
  if (n > kMaxNodes) {
    return Status::IOError("node count implausible (corrupt file)");
  }
  constexpr uint64_t kMaxEdges = 1ull << 36;  // plausibility bound
  std::vector<NodeId> sources, targets;
  HOLIM_RETURN_NOT_OK(ReadArray(f.get(), &sources, kMaxEdges));
  HOLIM_RETURN_NOT_OK(ReadArray(f.get(), &targets, kMaxEdges));
  if (sources.size() != targets.size()) {
    return Status::IOError("source/target arrays disagree (corrupt file)");
  }

  GraphBundle bundle;
  GraphBuilder builder(static_cast<NodeId>(n));
  builder.set_deduplicate(false);  // was already deduped when written
  for (std::size_t i = 0; i < sources.size(); ++i) {
    // GraphBuilder::Build would also reject these, but as a caller-bug
    // InvalidArgument; here an out-of-range endpoint means the file lied.
    if (sources[i] >= n || targets[i] >= n) {
      return Status::IOError("edge endpoint " + std::to_string(i) +
                             " out of node range (corrupt file)");
    }
    builder.AddEdge(sources[i], targets[i]);
  }
  HOLIM_ASSIGN_OR_RETURN(bundle.graph, std::move(builder).Build());

  const auto read_optional = [&](std::vector<double>* values,
                                 uint64_t expected, bool probability,
                                 const char* what) -> Status {
    uint8_t present = 0;
    HOLIM_RETURN_NOT_OK(ReadBlob(f.get(), &present, sizeof(present)));
    if (!present) return Status::OK();
    HOLIM_RETURN_NOT_OK(ReadArray(f.get(), values, kMaxEdges));
    if (values->size() != expected) {
      return Status::IOError("parameter array size mismatch (corrupt file)");
    }
    for (const double v : *values) {
      // NaN fails every range comparison; check finiteness explicitly.
      if (!std::isfinite(v) || (probability && (v < 0.0 || v > 1.0))) {
        return Status::IOError(std::string(what) +
                               (probability
                                    ? " outside finite [0,1] (corrupt file)"
                                    : " not finite (corrupt file)"));
      }
    }
    return Status::OK();
  };
  HOLIM_RETURN_NOT_OK(read_optional(&bundle.edge_probability,
                                    bundle.graph.num_edges(),
                                    /*probability=*/true,
                                    "edge probability"));
  HOLIM_RETURN_NOT_OK(read_optional(&bundle.node_opinion,
                                    bundle.graph.num_nodes(),
                                    /*probability=*/false, "node opinion"));
  HOLIM_RETURN_NOT_OK(read_optional(&bundle.edge_interaction,
                                    bundle.graph.num_edges(),
                                    /*probability=*/false,
                                    "edge interaction"));
  // A well-formed bundle ends exactly here; trailing bytes mean the file
  // was concatenated, doubly written, or otherwise corrupt.
  uint8_t trailing = 0;
  if (std::fread(&trailing, 1, 1, f.get()) != 0) {
    return Status::IOError("trailing bytes after bundle (corrupt file)");
  }
  return bundle;
}

}  // namespace holim

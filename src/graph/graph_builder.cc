#include "graph/graph_builder.h"

#include <algorithm>
#include <numeric>

namespace holim {

Result<Graph> GraphBuilder::Build() && {
  for (std::size_t i = 0; i < srcs_.size(); ++i) {
    if (srcs_[i] >= n_ || dsts_[i] >= n_) {
      return Status::InvalidArgument("edge endpoint out of range at index " +
                                     std::to_string(i));
    }
  }

  // Sort edges by (src, dst) via index permutation to define stable EdgeIds.
  std::vector<uint64_t> order(srcs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    if (srcs_[a] != srcs_[b]) return srcs_[a] < srcs_[b];
    return dsts_[a] < dsts_[b];
  });

  Graph g;
  g.n_ = n_;
  g.out_offsets_.assign(n_ + 1, 0);
  g.out_targets_.reserve(srcs_.size());

  NodeId prev_src = kInvalidNode;
  NodeId prev_dst = kInvalidNode;
  for (uint64_t idx : order) {
    const NodeId s = srcs_[idx];
    const NodeId d = dsts_[idx];
    if (dedup_) {
      if (s == d) continue;  // drop self loops
      if (s == prev_src && d == prev_dst) continue;  // drop duplicates
    }
    prev_src = s;
    prev_dst = d;
    g.out_targets_.push_back(d);
    ++g.out_offsets_[s + 1];
  }
  for (NodeId u = 0; u < n_; ++u) g.out_offsets_[u + 1] += g.out_offsets_[u];

  // Build in-CSR carrying the out-CSR EdgeIds.
  const EdgeId m = g.out_targets_.size();
  g.in_offsets_.assign(n_ + 1, 0);
  for (EdgeId e = 0; e < m; ++e) ++g.in_offsets_[g.out_targets_[e] + 1];
  for (NodeId v = 0; v < n_; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];

  g.in_sources_.resize(m);
  g.in_edge_ids_.resize(m);
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (NodeId u = 0; u < n_; ++u) {
    for (EdgeId e = g.out_offsets_[u]; e < g.out_offsets_[u + 1]; ++e) {
      const NodeId v = g.out_targets_[e];
      const EdgeId slot = cursor[v]++;
      g.in_sources_[slot] = u;
      g.in_edge_ids_[slot] = e;
    }
  }

  srcs_.clear();
  srcs_.shrink_to_fit();
  dsts_.clear();
  dsts_.shrink_to_fit();
  return g;
}

}  // namespace holim

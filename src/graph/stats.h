#ifndef HOLIM_GRAPH_STATS_H_
#define HOLIM_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace holim {

/// Aggregate structural statistics, matching the columns of the paper's
/// Table 2 (n, m, average degree, 90th-percentile effective diameter).
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_out_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  /// 90th-percentile effective diameter estimated by BFS from sampled
  /// sources with linear interpolation between hop counts (SNAP convention).
  double effective_diameter_90 = 0.0;
  /// Largest observed shortest-path distance over the sampled BFS runs.
  uint32_t observed_diameter = 0;
};

/// Computes stats; `diameter_samples` BFS sources are sampled for the
/// effective-diameter estimate (0 disables the estimate).
GraphStats ComputeGraphStats(const Graph& graph, uint32_t diameter_samples = 64,
                             uint64_t seed = 1);

/// Forward BFS distances from `source` (kUnreachable for unreached nodes).
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const Graph& graph, NodeId source);

/// Nodes reachable from any seed (forward closure size, includes seeds).
std::size_t ForwardReachableCount(const Graph& graph,
                                  const std::vector<NodeId>& seeds);

}  // namespace holim

#endif  // HOLIM_GRAPH_STATS_H_

#include "graph/stats.h"

#include <algorithm>
#include <deque>

#include "util/rng.h"

namespace holim {

std::vector<uint32_t> BfsDistances(const Graph& graph, NodeId source) {
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::size_t ForwardReachableCount(const Graph& graph,
                                  const std::vector<NodeId>& seeds) {
  std::vector<char> seen(graph.num_nodes(), 0);
  std::deque<NodeId> queue;
  std::size_t count = 0;
  for (NodeId s : seeds) {
    if (!seen[s]) {
      seen[s] = 1;
      ++count;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count;
}

GraphStats ComputeGraphStats(const Graph& graph, uint32_t diameter_samples,
                             uint64_t seed) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  if (stats.num_nodes == 0) return stats;
  stats.avg_out_degree =
      static_cast<double>(stats.num_edges) / stats.num_nodes;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(u));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(u));
  }

  if (diameter_samples == 0) return stats;
  // Hop-count histogram over sampled BFS runs; the 90th-percentile effective
  // diameter is the interpolated hop count h such that 90% of reachable
  // pairs are within distance h.
  Rng rng(seed);
  std::vector<uint64_t> hop_counts;  // hop_counts[d] = #pairs at distance d
  uint64_t reachable_pairs = 0;
  const uint32_t samples =
      std::min<uint32_t>(diameter_samples, graph.num_nodes());
  for (uint32_t i = 0; i < samples; ++i) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
    auto dist = BfsDistances(graph, src);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const uint32_t d = dist[v];
      if (d == kUnreachable || d == 0) continue;
      if (d >= hop_counts.size()) hop_counts.resize(d + 1, 0);
      ++hop_counts[d];
      ++reachable_pairs;
      stats.observed_diameter = std::max(stats.observed_diameter, d);
    }
  }
  if (reachable_pairs == 0) return stats;
  const double target = 0.9 * static_cast<double>(reachable_pairs);
  uint64_t cumulative = 0;
  for (uint32_t d = 1; d < hop_counts.size(); ++d) {
    const uint64_t next = cumulative + hop_counts[d];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation within hop d (SNAP's effective diameter).
      const double frac =
          hop_counts[d] == 0
              ? 0.0
              : (target - static_cast<double>(cumulative)) / hop_counts[d];
      stats.effective_diameter_90 = (d - 1) + frac;
      break;
    }
    cumulative = next;
  }
  return stats;
}

}  // namespace holim

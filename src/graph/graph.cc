#include "graph/graph.h"

#include <algorithm>

namespace holim {

NodeId Graph::EdgeSource(EdgeId e) const {
  // First offset strictly greater than e belongs to source+1.
  auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<NodeId>((it - out_offsets_.begin()) - 1);
}

std::size_t Graph::MemoryFootprintBytes() const {
  return out_offsets_.capacity() * sizeof(EdgeId) +
         out_targets_.capacity() * sizeof(NodeId) +
         in_offsets_.capacity() * sizeof(EdgeId) +
         in_sources_.capacity() * sizeof(NodeId) +
         in_edge_ids_.capacity() * sizeof(EdgeId);
}

}  // namespace holim

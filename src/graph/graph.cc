#include "graph/graph.h"

#include <algorithm>

namespace holim {

NodeId Graph::EdgeSourceBinarySearch(EdgeId e) const {
  // First offset strictly greater than e belongs to source+1.
  auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<NodeId>((it - out_offsets_.begin()) - 1);
}

void Graph::BuildEdgeSourceIndex() {
  if (!edge_sources_.empty() || num_edges() == 0) return;
  edge_sources_.resize(num_edges());
  for (NodeId u = 0; u < n_; ++u) {
    for (EdgeId e = out_offsets_[u]; e < out_offsets_[u + 1]; ++e) {
      edge_sources_[e] = u;
    }
  }
}

std::size_t Graph::MemoryFootprintBytes() const {
  return out_offsets_.capacity() * sizeof(EdgeId) +
         out_targets_.capacity() * sizeof(NodeId) +
         in_offsets_.capacity() * sizeof(EdgeId) +
         in_sources_.capacity() * sizeof(NodeId) +
         in_edge_ids_.capacity() * sizeof(EdgeId) +
         edge_sources_.capacity() * sizeof(NodeId);
}

}  // namespace holim

#ifndef HOLIM_GRAPH_GRAPH_BUILDER_H_
#define HOLIM_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// \brief Accumulates directed edges, then freezes them into a CSR Graph.
///
/// Usage:
///   GraphBuilder b(num_nodes);
///   b.AddEdge(u, v);           // directed u -> v
///   b.AddUndirectedEdge(u, v); // arcs in both directions (paper Sec. 4)
///   Graph g = std::move(b).Build().ValueOrDie();
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : n_(num_nodes) {}

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return srcs_.size(); }

  /// Adds directed edge u -> v. Out of range endpoints are a caller bug and
  /// surface as an error at Build() time.
  void AddEdge(NodeId u, NodeId v) {
    srcs_.push_back(u);
    dsts_.push_back(v);
  }

  /// Adds both u -> v and v -> u (the paper makes undirected graphs directed
  /// by adding arcs in both directions).
  void AddUndirectedEdge(NodeId u, NodeId v) {
    AddEdge(u, v);
    AddEdge(v, u);
  }

  /// If enabled, duplicate (u, v) pairs and self-loops are dropped at Build.
  void set_deduplicate(bool dedup) { dedup_ = dedup; }

  /// Freezes into an immutable CSR graph. Consumes the builder.
  Result<Graph> Build() &&;

 private:
  NodeId n_;
  bool dedup_ = true;
  std::vector<NodeId> srcs_;
  std::vector<NodeId> dsts_;
};

}  // namespace holim

#endif  // HOLIM_GRAPH_GRAPH_BUILDER_H_

#ifndef HOLIM_GRAPH_GENERATORS_H_
#define HOLIM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// Synthetic graph generators used as stand-ins for the paper's SNAP
/// datasets (see DESIGN.md, substitution table) and as test fixtures.
/// All generators are deterministic in their seed.

/// G(n, p)-style random digraph with expected `avg_out_degree` out-edges per
/// node (sampled, not exhaustive, so it scales to large n).
Result<Graph> GenerateErdosRenyi(NodeId n, double avg_out_degree, uint64_t seed,
                                 bool undirected = false);

/// Barabási–Albert preferential attachment. Produces a power-law degree
/// distribution like the social graphs in Table 2. `edges_per_node` new
/// (undirected by default) edges attach each arriving node.
Result<Graph> GenerateBarabasiAlbert(NodeId n, uint32_t edges_per_node,
                                     uint64_t seed, bool undirected = true);

/// Social-graph stand-in: preferential attachment where each arriving node
/// attaches c_i edges with c_i ~ 1 + Exponential(mean = avg_edges_per_node-1).
/// Unlike plain Barabási–Albert (minimum degree == mean degree), this yields
/// the SNAP-like shape — median degree well below the mean, heavy tail —
/// which is what keeps IC cascades partial instead of graph-saturating.
Result<Graph> GenerateSocialGraph(NodeId n, double avg_edges_per_node,
                                  uint64_t seed, bool undirected = true);

/// Watts–Strogatz small world: ring lattice with k neighbors, rewire prob beta.
Result<Graph> GenerateWattsStrogatz(NodeId n, uint32_t k, double beta,
                                    uint64_t seed, bool undirected = true);

/// RMAT / Kronecker-style generator (a,b,c,d quadrant probabilities); used
/// for the directed large-graph stand-ins (socLive/Twitter shapes).
struct RmatOptions {
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  bool undirected = false;
};
Result<Graph> GenerateRmat(uint32_t scale, EdgeId num_edges, uint64_t seed,
                           const RmatOptions& options = {});

/// Rooted random tree with given branching factor cap; every node except the
/// root has exactly one parent edge (parent -> child). Used by the
/// correctness tests: EaSyIM is exact on trees (Conclusion 2).
Result<Graph> GenerateRandomTree(NodeId n, uint32_t max_children, uint64_t seed);

/// Directed path 0 -> 1 -> ... -> n-1 (OSIM closed-form tests, Lemma 8/9).
Result<Graph> GeneratePath(NodeId n);

/// Random DAG: edges only go from lower to higher node id, each forward
/// pair kept with probability `edge_probability`. Used by the paper's DAG
/// analyses (Lemmas 5-6, Conclusions 2-3): EaSyIM is exact on DAGs under
/// LT, and its IC error is bounded by the non-disjoint-path terms.
Result<Graph> GenerateRandomDag(NodeId n, double edge_probability,
                                uint64_t seed);

/// Complete bipartite-ish construction from the submodularity proof
/// (Fig. 3a): X-layer of nx nodes, Y-layer of 2*nx nodes, x_i -> y_{2i-1},y_{2i}.
Result<Graph> GenerateSubmodularityGadget(NodeId nx);

/// Layered set-cover reduction graph from the tractability proof (Fig. 3b).
/// `sets` is an incidence: sets[i] lists element indices covered by set i.
struct SetCoverGadget {
  Graph graph;
  NodeId first_set_node;      // x_i = first_set_node + i
  NodeId first_element_node;  // y_j
  NodeId first_z_node;        // z_l
  NodeId sink;                // s
};
Result<SetCoverGadget> GenerateSetCoverGadget(
    const std::vector<std::vector<NodeId>>& sets, NodeId num_elements);

}  // namespace holim

#endif  // HOLIM_GRAPH_GENERATORS_H_

#ifndef HOLIM_GRAPH_BINARY_IO_H_
#define HOLIM_GRAPH_BINARY_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/status.h"

namespace holim {

/// \brief Binary cache for graphs + model parameters.
///
/// Parsing large SNAP edge lists (renumber + two CSR builds) dominates
/// start-up on billion-edge inputs; the binary format stores the already
/// built out-CSR (in-CSR is rebuilt on load, which is cheap and keeps the
/// file small) plus optional parameter arrays. Format: fixed little-endian
/// header with magic/version, then raw arrays with length prefixes.
///
/// The cache is a private format, versioned; loaders reject mismatched
/// versions rather than guessing.
struct GraphBundle {
  Graph graph;
  /// Empty vectors when the file carried no parameters.
  std::vector<double> edge_probability;
  std::vector<double> node_opinion;
  std::vector<double> edge_interaction;
};

/// Writes graph (+ optional params; pass nullptr to skip) to `path`.
Status WriteGraphBundle(const std::string& path, const Graph& graph,
                        const std::vector<double>* edge_probability = nullptr,
                        const std::vector<double>* node_opinion = nullptr,
                        const std::vector<double>* edge_interaction = nullptr);

/// Reads a bundle written by WriteGraphBundle.
Result<GraphBundle> ReadGraphBundle(const std::string& path);

}  // namespace holim

#endif  // HOLIM_GRAPH_BINARY_IO_H_

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace holim {

Result<Graph> GenerateErdosRenyi(NodeId n, double avg_out_degree, uint64_t seed,
                                 bool undirected) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (avg_out_degree < 0 || avg_out_degree > n - 1) {
    return Status::InvalidArgument("avg_out_degree out of range");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  const uint64_t total = static_cast<uint64_t>(avg_out_degree * n);
  for (uint64_t i = 0; i < total; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateBarabasiAlbert(NodeId n, uint32_t edges_per_node,
                                     uint64_t seed, bool undirected) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (edges_per_node == 0) {
    return Status::InvalidArgument("edges_per_node must be positive");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  // Endpoint list doubles as the preferential-attachment distribution:
  // sampling a uniform entry picks a node proportional to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2ull * n * edges_per_node);
  // Seed clique among the first m0 = edges_per_node + 1 nodes.
  const NodeId m0 = std::min<NodeId>(n, edges_per_node + 1);
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) {
      if (undirected) {
        builder.AddUndirectedEdge(u, v);
      } else {
        builder.AddEdge(u, v);
      }
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = m0; u < n; ++u) {
    std::unordered_set<NodeId> picked;
    for (uint32_t e = 0; e < edges_per_node && picked.size() < u; ++e) {
      NodeId v;
      do {
        v = endpoints.empty()
                ? static_cast<NodeId>(rng.NextBounded(u))
                : endpoints[rng.NextBounded(endpoints.size())];
      } while (v == u || picked.count(v));
      picked.insert(v);
      if (undirected) {
        builder.AddUndirectedEdge(u, v);
      } else {
        builder.AddEdge(u, v);
      }
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateSocialGraph(NodeId n, double avg_edges_per_node,
                                  uint64_t seed, bool undirected) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (avg_edges_per_node < 1.0) {
    return Status::InvalidArgument("avg_edges_per_node must be >= 1");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  std::vector<NodeId> endpoints;  // degree-proportional sampling pool
  endpoints.reserve(static_cast<std::size_t>(2.2 * n * avg_edges_per_node));
  builder.AddUndirectedEdge(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  const double mean_extra = avg_edges_per_node - 1.0;
  for (NodeId u = 2; u < n; ++u) {
    // c ~ 1 + Exponential(mean_extra): many 1s, a heavy tail.
    double extra = 0.0;
    if (mean_extra > 0) {
      double r = rng.NextDouble();
      while (r <= 1e-300) r = rng.NextDouble();
      extra = -mean_extra * std::log(r);
    }
    const uint32_t c = 1 + static_cast<uint32_t>(extra);
    std::unordered_set<NodeId> picked;
    for (uint32_t e = 0; e < c && picked.size() < u; ++e) {
      NodeId v;
      do {
        v = endpoints[rng.NextBounded(endpoints.size())];
      } while (v == u || picked.count(v));
      picked.insert(v);
      if (undirected) {
        builder.AddUndirectedEdge(u, v);
      } else {
        builder.AddEdge(u, v);
      }
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateWattsStrogatz(NodeId n, uint32_t k, double beta,
                                    uint64_t seed, bool undirected) {
  if (n < 3) return Status::InvalidArgument("n must be >= 3");
  if (k == 0 || k >= n) return Status::InvalidArgument("k out of range");
  if (beta < 0 || beta > 1) return Status::InvalidArgument("beta in [0,1]");
  Rng rng(seed);
  GraphBuilder builder(n);
  const uint32_t half = std::max<uint32_t>(1, k / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= half; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.NextBernoulli(beta)) {
        // Rewire target uniformly (retry on self loop).
        do {
          v = static_cast<NodeId>(rng.NextBounded(n));
        } while (v == u);
      }
      if (undirected) {
        builder.AddUndirectedEdge(u, v);
      } else {
        builder.AddEdge(u, v);
      }
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateRmat(uint32_t scale, EdgeId num_edges, uint64_t seed,
                           const RmatOptions& options) {
  if (scale == 0 || scale > 31) return Status::InvalidArgument("scale in [1,31]");
  const double sum = options.a + options.b + options.c + options.d;
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("RMAT quadrant probabilities must sum to 1");
  }
  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(1u << scale);
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < options.a) {
        // top-left: no bits set
      } else if (r < options.a + options.b) {
        v |= 1;
      } else if (r < options.a + options.b + options.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (options.undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateRandomTree(NodeId n, uint32_t max_children,
                                 uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (max_children == 0) {
    return Status::InvalidArgument("max_children must be positive");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  std::vector<uint32_t> child_count(n, 0);
  std::vector<NodeId> open = {0};  // nodes that can still take children
  for (NodeId u = 1; u < n; ++u) {
    const std::size_t idx = rng.NextBounded(open.size());
    const NodeId parent = open[idx];
    builder.AddEdge(parent, u);
    if (++child_count[parent] >= max_children) {
      open[idx] = open.back();
      open.pop_back();
    }
    open.push_back(u);
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateRandomDag(NodeId n, double edge_probability,
                                uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (edge_probability < 0.0 || edge_probability > 1.0) {
    return Status::InvalidArgument("edge_probability in [0,1]");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(edge_probability)) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GeneratePath(NodeId n) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return std::move(builder).Build();
}

Result<Graph> GenerateSubmodularityGadget(NodeId nx) {
  if (nx == 0) return Status::InvalidArgument("nx must be positive");
  const NodeId n = nx + 2 * nx;  // X layer then Y layer
  GraphBuilder builder(n);
  for (NodeId i = 0; i < nx; ++i) {
    builder.AddEdge(i, nx + 2 * i);
    builder.AddEdge(i, nx + 2 * i + 1);
  }
  return std::move(builder).Build();
}

Result<SetCoverGadget> GenerateSetCoverGadget(
    const std::vector<std::vector<NodeId>>& sets, NodeId num_elements) {
  if (sets.empty() || num_elements == 0) {
    return Status::InvalidArgument("need at least one set and one element");
  }
  const NodeId m = static_cast<NodeId>(sets.size());
  const NodeId n_elems = num_elements;
  const NodeId z_count = m + n_elems - 2;
  SetCoverGadget gadget;
  gadget.first_set_node = 0;
  gadget.first_element_node = m;
  gadget.first_z_node = m + n_elems;
  gadget.sink = m + n_elems + z_count;
  GraphBuilder builder(gadget.sink + 1);
  for (NodeId i = 0; i < m; ++i) {
    for (NodeId q : sets[i]) {
      if (q >= n_elems) {
        return Status::InvalidArgument("element index out of range");
      }
      builder.AddEdge(gadget.first_set_node + i, gadget.first_element_node + q);
    }
  }
  for (NodeId j = 0; j < n_elems; ++j) {
    for (NodeId l = 0; l < z_count; ++l) {
      builder.AddEdge(gadget.first_element_node + j, gadget.first_z_node + l);
    }
  }
  for (NodeId l = 0; l < z_count; ++l) {
    builder.AddEdge(gadget.first_z_node + l, gadget.sink);
  }
  HOLIM_ASSIGN_OR_RETURN(gadget.graph, std::move(builder).Build());
  return gadget;
}

}  // namespace holim

#include "graph/edge_list_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace holim {

Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);

  std::vector<std::pair<uint64_t, uint64_t>> raw_edges;
  std::unordered_map<uint64_t, NodeId> remap;
  uint64_t max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    auto tokens = SplitTokens(sv);
    if (tokens.size() < 2) {
      return Status::IOError("malformed edge line: " + line);
    }
    uint64_t u = 0, v = 0;
    try {
      u = std::stoull(std::string(tokens[0]));
      v = std::stoull(std::string(tokens[1]));
    } catch (...) {
      return Status::IOError("non-numeric node id in line: " + line);
    }
    raw_edges.emplace_back(u, v);
    max_id = std::max(max_id, std::max(u, v));
    if (options.renumber) {
      if (remap.emplace(u, static_cast<NodeId>(remap.size())).second) {}
      if (remap.emplace(v, static_cast<NodeId>(remap.size())).second) {}
    }
  }
  if (in.bad()) {
    return Status::IOError("read error (truncated stream?): " + path);
  }

  const uint64_t n64 = options.renumber ? remap.size() : max_id + 1;
  if (n64 > static_cast<uint64_t>(kInvalidNode)) {
    return Status::OutOfRange("node count exceeds NodeId range");
  }
  GraphBuilder builder(static_cast<NodeId>(raw_edges.empty() ? 0 : n64));
  for (auto [u, v] : raw_edges) {
    NodeId uu = options.renumber ? remap[u] : static_cast<NodeId>(u);
    NodeId vv = options.renumber ? remap[v] : static_cast<NodeId>(v);
    if (options.undirected) {
      builder.AddUndirectedEdge(uu, vv);
    } else {
      builder.AddEdge(uu, vv);
    }
  }
  return std::move(builder).Build();
}

Result<WeightedEdgeList> ReadWeightedEdgeList(const std::string& path,
                                              const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);

  struct Row {
    uint64_t u, v;
    double p;
  };
  std::vector<Row> rows;
  std::unordered_map<uint64_t, NodeId> remap;
  uint64_t max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    auto tokens = SplitTokens(sv);
    if (tokens.size() < 3) {
      return Status::IOError("expected 'u v p' row, got: " + line);
    }
    Row row;
    try {
      row.u = std::stoull(std::string(tokens[0]));
      row.v = std::stoull(std::string(tokens[1]));
      row.p = std::stod(std::string(tokens[2]));
    } catch (...) {
      return Status::IOError("malformed weighted edge row: " + line);
    }
    // NaN fails every comparison, so the range check alone would wave it
    // through; reject non-finite explicitly.
    if (!std::isfinite(row.p) || row.p < 0.0 || row.p > 1.0) {
      return Status::InvalidArgument(
          "probability not a finite value in [0,1] in: " + line);
    }
    rows.push_back(row);
    max_id = std::max(max_id, std::max(row.u, row.v));
    if (options.renumber) {
      remap.emplace(row.u, static_cast<NodeId>(remap.size()));
      remap.emplace(row.v, static_cast<NodeId>(remap.size()));
    }
  }
  if (in.bad()) {
    return Status::IOError("read error (truncated stream?): " + path);
  }
  const uint64_t n64 = options.renumber ? remap.size() : max_id + 1;
  if (n64 > static_cast<uint64_t>(kInvalidNode)) {
    return Status::OutOfRange("node count exceeds NodeId range");
  }
  const NodeId n = static_cast<NodeId>(rows.empty() ? 0 : n64);

  // GraphBuilder sorts arcs by (src, dst); build the probability array in
  // that same order. Duplicate arcs keep the max probability.
  struct Arc {
    NodeId u, v;
    double p;
  };
  std::vector<Arc> arcs;
  arcs.reserve(rows.size() * (options.undirected ? 2 : 1));
  for (const Row& row : rows) {
    const NodeId u =
        options.renumber ? remap[row.u] : static_cast<NodeId>(row.u);
    const NodeId v =
        options.renumber ? remap[row.v] : static_cast<NodeId>(row.v);
    if (u >= n || v >= n) {
      return Status::InvalidArgument("endpoint out of range");
    }
    if (u == v) continue;
    arcs.push_back({u, v, row.p});
    if (options.undirected) arcs.push_back({v, u, row.p});
  }
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  WeightedEdgeList out;
  GraphBuilder builder(n);
  builder.set_deduplicate(false);
  NodeId prev_u = kInvalidNode, prev_v = kInvalidNode;
  for (const Arc& arc : arcs) {
    if (arc.u == prev_u && arc.v == prev_v) {
      out.probability.back() = std::max(out.probability.back(), arc.p);
      continue;
    }
    prev_u = arc.u;
    prev_v = arc.v;
    builder.AddEdge(arc.u, arc.v);
    out.probability.push_back(arc.p);
  }
  HOLIM_ASSIGN_OR_RETURN(out.graph, std::move(builder).Build());
  return out;
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out << "# holim edge list: n=" << graph.num_nodes()
      << " m=" << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      out << u << '\t' << v << '\n';
    }
  }
  return Status::OK();
}

}  // namespace holim

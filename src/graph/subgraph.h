#ifndef HOLIM_GRAPH_SUBGRAPH_H_
#define HOLIM_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// Result of extracting an induced subgraph: the new graph plus mappings in
/// both directions so node/edge attributes can be projected.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;   // subgraph id -> original id
  std::vector<NodeId> to_subgraph;   // original id -> subgraph id (or kInvalidNode)
  /// For each subgraph edge id, the original edge id it came from.
  std::vector<EdgeId> edge_to_original;
};

/// Induces the subgraph on `nodes` (keeps edges with both endpoints inside).
Result<InducedSubgraph> ExtractInducedSubgraph(const Graph& graph,
                                               const std::vector<NodeId>& nodes);

/// Projects per-original-edge values onto the subgraph's edges.
template <typename T>
std::vector<T> ProjectEdgeValues(const InducedSubgraph& sub,
                                 const std::vector<T>& original) {
  std::vector<T> out;
  out.reserve(sub.edge_to_original.size());
  for (EdgeId e : sub.edge_to_original) out.push_back(original[e]);
  return out;
}

/// Projects per-original-node values onto the subgraph's nodes.
template <typename T>
std::vector<T> ProjectNodeValues(const InducedSubgraph& sub,
                                 const std::vector<T>& original) {
  std::vector<T> out;
  out.reserve(sub.to_original.size());
  for (NodeId u : sub.to_original) out.push_back(original[u]);
  return out;
}

}  // namespace holim

#endif  // HOLIM_GRAPH_SUBGRAPH_H_

#ifndef HOLIM_GRAPH_GRAPH_H_
#define HOLIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace holim {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// \brief Immutable directed graph in compressed-sparse-row form.
///
/// Both out-adjacency (forward diffusion) and in-adjacency (reverse
/// reachable sampling, WC weights) are materialized. Each directed edge has
/// a stable EdgeId: out-CSR order defines the id; the in-CSR carries the
/// same ids so per-edge attributes (influence probability p, interaction
/// probability phi, LT weight w) live in plain arrays indexed by EdgeId.
///
/// Construct via GraphBuilder; Graph itself is cheap to move, expensive to
/// copy (explicitly allowed for tests/subgraphs).
class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(out_targets_.size()); }

  /// Out-neighbors of u (diffusion direction).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  /// EdgeIds of u's out-edges; parallel to OutNeighbors(u). The out-CSR is
  /// identity-ordered, so edge i of u has id out_offsets_[u] + i.
  EdgeId OutEdgeBegin(NodeId u) const { return out_offsets_[u]; }

  /// In-neighbors of v.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }
  /// EdgeIds parallel to InNeighbors(v) (ids refer to out-CSR positions).
  std::span<const EdgeId> InEdgeIds(NodeId v) const {
    return {in_edge_ids_.data() + in_offsets_[v],
            in_edge_ids_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Source node of edge `e` (ids are out-CSR positions). O(1) after
  /// BuildEdgeSourceIndex(); otherwise O(log n) via binary search over the
  /// offset array.
  NodeId EdgeSource(EdgeId e) const {
    if (!edge_sources_.empty()) return edge_sources_[e];
    return EdgeSourceBinarySearch(e);
  }

  /// Precomputes the m-entry edge -> source array so EdgeSource is O(1) on
  /// hot paths (cascade replay, stats). Optional: costs m * sizeof(NodeId)
  /// bytes, counted by MemoryFootprintBytes(). Idempotent.
  void BuildEdgeSourceIndex();
  bool has_edge_source_index() const { return !edge_sources_.empty(); }

  /// Target node of edge `e`; O(1).
  NodeId EdgeTarget(EdgeId e) const { return out_targets_[e]; }

  /// Approximate heap footprint of the adjacency arrays, for the memory
  /// experiments (Figs. 5h, 6i, 6j, 7j).
  std::size_t MemoryFootprintBytes() const;

 private:
  friend class GraphBuilder;
  friend class StreamingGraph;

  NodeId EdgeSourceBinarySearch(EdgeId e) const;

  NodeId n_ = 0;
  std::vector<EdgeId> out_offsets_;   // size n_+1
  std::vector<NodeId> out_targets_;   // size m
  std::vector<EdgeId> in_offsets_;    // size n_+1
  std::vector<NodeId> in_sources_;    // size m
  std::vector<EdgeId> in_edge_ids_;   // size m
  std::vector<NodeId> edge_sources_;  // size m when built, else empty
};

}  // namespace holim

#endif  // HOLIM_GRAPH_GRAPH_H_

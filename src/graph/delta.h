#ifndef HOLIM_GRAPH_DELTA_H_
#define HOLIM_GRAPH_DELTA_H_

// Streaming graph deltas: batched edge insert / delete / weight-update on
// the immutable CSR Graph.
//
// The CSR Graph is deliberately frozen — every arena, index, and sampled
// world in the repo keys off its stable EdgeIds. Mutation therefore happens
// *between* epochs: a GraphDelta batch is resolved against the current
// graph (last-wins per edge, self-loop rejection, insert/reweight/remove
// classification) and materialized into a brand-new Graph whose CSR is
// bitwise identical to what GraphBuilder would produce on the edited edge
// list. StreamingGraph owns the epoch chain and keeps the previous epoch's
// graph alive so artifact patchers (SketchOracle::ApplyDelta,
// RrCollection::ApplyDelta) can diff old vs new rows while splicing.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"
#include "util/status.h"

namespace holim {

/// One edge mutation. kUpsert inserts the edge if absent and re-weights it
/// if present (`probability` is the new per-edge p either way); kRemove
/// deletes the edge if present and is a no-op otherwise.
struct GraphDeltaOp {
  enum class Kind : uint8_t { kUpsert, kRemove };
  Kind kind = Kind::kUpsert;
  NodeId src = 0;
  NodeId dst = 0;
  double probability = 0.0;  // meaningful for kUpsert only
};

/// A batch of edge mutations, applied atomically at an epoch boundary.
/// Ops may repeat an edge; the *last* op per (src, dst) wins.
struct GraphDelta {
  std::vector<GraphDeltaOp> ops;

  void Upsert(NodeId src, NodeId dst, double probability) {
    ops.push_back({GraphDeltaOp::Kind::kUpsert, src, dst, probability});
  }
  void Remove(NodeId src, NodeId dst) {
    ops.push_back({GraphDeltaOp::Kind::kRemove, src, dst, 0.0});
  }
  bool empty() const { return ops.empty(); }
};

/// A GraphDelta normalized against a concrete base graph: one op per edge
/// (last-wins), sorted by (src, dst), removes filtered to edges that
/// actually exist, upserts classified as insert vs reweight. This is the
/// canonical form every artifact patcher consumes.
struct ResolvedDelta {
  std::vector<GraphDeltaOp> upserts;  // sorted by (src, dst), unique
  std::vector<GraphDeltaOp> removes;  // sorted by (src, dst), unique, present
  std::size_t num_inserted = 0;       // upserts hitting no existing edge
  std::size_t num_reweighted = 0;     // upserts hitting an existing edge
  NodeId new_num_nodes = 0;           // >= base n; grows to max endpoint + 1

  bool Empty() const { return upserts.empty() && removes.empty(); }
};

/// Normalizes `delta` against `graph`. Fails with InvalidArgument on
/// self-loop upserts and on non-finite or out-of-[0,1] probabilities.
/// Removes of absent edges (including edges of out-of-range endpoints) are
/// dropped as no-ops. A reweight to the edge's existing probability still
/// counts as an upsert (the artifact layer treats it as dirty).
Result<ResolvedDelta> ResolveDelta(const Graph& graph, const GraphDelta& delta);

/// Materializes the edited graph. The result is bitwise identical (CSR
/// contents) to GraphBuilder::Build() over the edited edge list. Fails with
/// InvalidArgument if the base graph is not simple (rows must be strictly
/// ascending — GraphBuilder's dedup guarantees this).
Result<Graph> ApplyDeltaToGraph(const Graph& graph,
                                const ResolvedDelta& resolved);

/// Re-maps per-edge params onto the edited graph's EdgeIds: surviving edges
/// keep their old probability, upserted edges take the op's probability.
/// The model tag carries over verbatim — after a delta the params are an
/// explicit per-edge assignment; WC/LT closed forms are not re-derived.
Result<InfluenceParams> ApplyDeltaToParams(const Graph& old_graph,
                                           const InfluenceParams& old_params,
                                           const Graph& new_graph,
                                           const ResolvedDelta& resolved);

/// Content fingerprint of the adjacency structure (FNV-1a over n,
/// out-offsets, out-targets). Two graphs with equal CSR contents collide by
/// construction; distinct topologies collide with FNV's usual odds.
uint64_t FingerprintGraph(const Graph& graph);

/// \brief Epoch chain over a base Graph: apply deltas, keep the previous
/// epoch alive for artifact patching.
///
/// Epoch 0 aliases the caller's base graph (not owned; must outlive this
/// object). Each effective Apply() materializes a new owned Graph and bumps
/// the epoch; `previous()` is the graph the artifacts were built against
/// and stays valid until the *next* effective Apply. Deltas that resolve to
/// nothing are no-ops and do not bump the epoch.
class StreamingGraph {
 public:
  explicit StreamingGraph(const Graph& base);

  /// Resolves and applies one batch. Returns the resolved form so callers
  /// can patch artifacts from the same normalized view.
  Result<ResolvedDelta> Apply(const GraphDelta& delta);

  /// Applies an already-resolved batch (resolved against graph()).
  Status ApplyResolved(const ResolvedDelta& resolved);

  const Graph& graph() const { return *current_; }
  const Graph& previous() const { return *previous_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t base_fingerprint() const { return base_fingerprint_; }

 private:
  friend Result<Graph> ApplyDeltaToGraph(const Graph& graph,
                                         const ResolvedDelta& resolved);

  /// The O(n + m + |delta|) three-way row merge producing the edited CSR.
  static Result<Graph> Materialize(const Graph& old_graph,
                                   const ResolvedDelta& resolved);

  const Graph* current_;
  const Graph* previous_;
  std::unique_ptr<Graph> owned_current_;
  std::unique_ptr<Graph> owned_previous_;
  uint64_t epoch_ = 0;
  uint64_t base_fingerprint_ = 0;
};

/// Seeded random churn batch for the CLI `--churn` replay, the streaming
/// bench, and the fuzz test: a mix of inserts (fresh probability in
/// [0.01, 0.2)), removes of existing edges, and reweights of existing
/// edges. Never emits self-loops; on graphs without edges every op is an
/// insert.
GraphDelta MakeRandomDelta(const Graph& graph, std::size_t num_ops, Rng& rng);

}  // namespace holim

#endif  // HOLIM_GRAPH_DELTA_H_

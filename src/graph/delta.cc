#include "graph/delta.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <string>
#include <utility>

namespace holim {

namespace {

constexpr EdgeId kNoOldEdge = static_cast<EdgeId>(-1);

/// Every patcher relies on out-rows being strictly ascending by target
/// (binary-searchable, mergeable). GraphBuilder's dedup guarantees it; a
/// graph built with dedup disabled may not be.
Status ValidateSimple(const Graph& graph) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto row = graph.OutNeighbors(u);
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] <= row[i - 1]) {
        return Status::InvalidArgument(
            "base graph must be simple: out-row of node " + std::to_string(u) +
            " is not strictly ascending");
      }
    }
  }
  return Status::OK();
}

/// Three-way merge of (old out-row) ∪ (upserts) \ (removes), per row, u
/// ascending and dst ascending within u — exactly the edge order
/// GraphBuilder produces on the edited edge list. Calls
/// `emit(u, dst, upsert_or_null, old_edge_or_kNoOldEdge)` per surviving
/// edge. Requires ValidateSimple(old_graph) and `resolved` normalized
/// against old_graph.
template <typename Emit>
void MergeRows(const Graph& old_graph, const ResolvedDelta& resolved,
               Emit&& emit) {
  const NodeId n_old = old_graph.num_nodes();
  const auto& ups = resolved.upserts;
  const auto& rms = resolved.removes;
  std::size_t ui = 0;
  std::size_t ri = 0;
  for (NodeId u = 0; u < resolved.new_num_nodes; ++u) {
    const auto old_row =
        u < n_old ? old_graph.OutNeighbors(u) : std::span<const NodeId>{};
    const EdgeId old_base = u < n_old ? old_graph.OutEdgeBegin(u) : 0;
    std::size_t oi = 0;
    while (oi < old_row.size() || (ui < ups.size() && ups[ui].src == u)) {
      const bool have_old = oi < old_row.size();
      const bool have_up = ui < ups.size() && ups[ui].src == u;
      if (have_up && (!have_old || ups[ui].dst < old_row[oi])) {
        emit(u, ups[ui].dst, &ups[ui], kNoOldEdge);  // fresh insert
        ++ui;
      } else if (have_up && ups[ui].dst == old_row[oi]) {
        emit(u, old_row[oi], &ups[ui], old_base + oi);  // reweight
        ++ui;
        ++oi;
      } else if (ri < rms.size() && rms[ri].src == u &&
                 rms[ri].dst == old_row[oi]) {
        ++ri;  // removed
        ++oi;
      } else {
        emit(u, old_row[oi], nullptr, old_base + oi);  // untouched survivor
        ++oi;
      }
    }
  }
}

bool EdgeExists(const Graph& graph, NodeId src, NodeId dst) {
  if (src >= graph.num_nodes()) return false;
  const auto row = graph.OutNeighbors(src);
  return std::binary_search(row.begin(), row.end(), dst);
}

}  // namespace

Result<ResolvedDelta> ResolveDelta(const Graph& graph,
                                   const GraphDelta& delta) {
  for (std::size_t i = 0; i < delta.ops.size(); ++i) {
    const GraphDeltaOp& op = delta.ops[i];
    if (op.kind != GraphDeltaOp::Kind::kUpsert) continue;
    if (op.src == op.dst) {
      return Status::InvalidArgument("self-loop upsert at op " +
                                     std::to_string(i) + " (node " +
                                     std::to_string(op.src) + ")");
    }
    // The negated form catches NaN as well as out-of-range values.
    if (!(op.probability >= 0.0 && op.probability <= 1.0)) {
      return Status::InvalidArgument("upsert probability out of [0, 1] at op " +
                                     std::to_string(i));
    }
  }

  // Last-wins per (src, dst): a stable sort by key keeps equal-key runs in
  // original op order, so the last element of each run is the latest op.
  std::vector<std::size_t> order(delta.ops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const GraphDeltaOp& oa = delta.ops[a];
                     const GraphDeltaOp& ob = delta.ops[b];
                     if (oa.src != ob.src) return oa.src < ob.src;
                     return oa.dst < ob.dst;
                   });

  ResolvedDelta out;
  out.new_num_nodes = graph.num_nodes();
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i + 1;
    while (j < order.size() &&
           delta.ops[order[j]].src == delta.ops[order[i]].src &&
           delta.ops[order[j]].dst == delta.ops[order[i]].dst) {
      ++j;
    }
    const GraphDeltaOp& op = delta.ops[order[j - 1]];
    const bool exists = EdgeExists(graph, op.src, op.dst);
    if (op.kind == GraphDeltaOp::Kind::kRemove) {
      if (exists) out.removes.push_back(op);  // absent-edge removes are no-ops
    } else {
      exists ? ++out.num_reweighted : ++out.num_inserted;
      out.upserts.push_back(op);
      out.new_num_nodes =
          std::max(out.new_num_nodes, std::max(op.src, op.dst) + 1);
    }
    i = j;
  }
  return out;
}

Result<Graph> StreamingGraph::Materialize(const Graph& old_graph,
                                          const ResolvedDelta& resolved) {
  HOLIM_RETURN_NOT_OK(ValidateSimple(old_graph));
  const NodeId n = resolved.new_num_nodes;

  Graph g;
  g.n_ = n;
  g.out_offsets_.assign(n + 1, 0);
  MergeRows(old_graph, resolved,
            [&](NodeId u, NodeId, const GraphDeltaOp*, EdgeId) {
              ++g.out_offsets_[u + 1];
            });
  for (NodeId u = 0; u < n; ++u) g.out_offsets_[u + 1] += g.out_offsets_[u];

  const EdgeId m = g.out_offsets_[n];
  g.out_targets_.resize(m);
  EdgeId out_cursor = 0;
  MergeRows(old_graph, resolved,
            [&](NodeId, NodeId dst, const GraphDeltaOp*, EdgeId) {
              g.out_targets_[out_cursor++] = dst;
            });

  // In-CSR exactly as GraphBuilder::Build: count by target, prefix-sum,
  // cursor-scatter iterating u ascending so each in-row is source-ascending
  // and carries out-CSR EdgeIds.
  g.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) ++g.in_offsets_[g.out_targets_[e] + 1];
  for (NodeId v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_sources_.resize(m);
  g.in_edge_ids_.resize(m);
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (EdgeId e = g.out_offsets_[u]; e < g.out_offsets_[u + 1]; ++e) {
      const NodeId v = g.out_targets_[e];
      const EdgeId slot = cursor[v]++;
      g.in_sources_[slot] = u;
      g.in_edge_ids_[slot] = e;
    }
  }
  return g;
}

Result<Graph> ApplyDeltaToGraph(const Graph& graph,
                                const ResolvedDelta& resolved) {
  return StreamingGraph::Materialize(graph, resolved);
}

Result<InfluenceParams> ApplyDeltaToParams(const Graph& old_graph,
                                           const InfluenceParams& old_params,
                                           const Graph& new_graph,
                                           const ResolvedDelta& resolved) {
  if (old_params.probability.size() != old_graph.num_edges()) {
    return Status::InvalidArgument(
        "params/graph size mismatch: " +
        std::to_string(old_params.probability.size()) + " probabilities vs " +
        std::to_string(old_graph.num_edges()) + " edges");
  }
  InfluenceParams out;
  out.model = old_params.model;
  out.probability.reserve(new_graph.num_edges());
  MergeRows(old_graph, resolved,
            [&](NodeId, NodeId, const GraphDeltaOp* upsert, EdgeId old_edge) {
              out.probability.push_back(upsert ? upsert->probability
                                               : old_params.p(old_edge));
            });
  if (out.probability.size() != new_graph.num_edges()) {
    return Status::Internal(
        "delta param remap produced " +
        std::to_string(out.probability.size()) + " probabilities for " +
        std::to_string(new_graph.num_edges()) + " edges");
  }
  return out;
}

uint64_t FingerprintGraph(const Graph& graph) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  const auto mix = [&hash](const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001B3ULL;
    }
  };
  const NodeId n = graph.num_nodes();
  mix(&n, sizeof(n));
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId begin = graph.OutEdgeBegin(u);
    mix(&begin, sizeof(begin));
  }
  const EdgeId m = graph.num_edges();
  mix(&m, sizeof(m));
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId target = graph.EdgeTarget(e);
    mix(&target, sizeof(target));
  }
  return hash;
}

StreamingGraph::StreamingGraph(const Graph& base)
    : current_(&base),
      previous_(&base),
      base_fingerprint_(FingerprintGraph(base)) {}

Result<ResolvedDelta> StreamingGraph::Apply(const GraphDelta& delta) {
  Result<ResolvedDelta> resolved = ResolveDelta(*current_, delta);
  if (!resolved.ok()) return resolved.status();
  HOLIM_RETURN_NOT_OK(ApplyResolved(*resolved));
  return std::move(resolved.value());
}

Status StreamingGraph::ApplyResolved(const ResolvedDelta& resolved) {
  if (resolved.Empty()) return Status::OK();
  Result<Graph> next = Materialize(*current_, resolved);
  if (!next.ok()) return next.status();
  owned_previous_ = std::move(owned_current_);
  previous_ = current_;
  owned_current_ = std::make_unique<Graph>(std::move(next.value()));
  current_ = owned_current_.get();
  ++epoch_;
  return Status::OK();
}

GraphDelta MakeRandomDelta(const Graph& graph, std::size_t num_ops, Rng& rng) {
  GraphDelta delta;
  const NodeId n = graph.num_nodes();
  if (n < 2) return delta;
  const EdgeId m = graph.num_edges();
  for (std::size_t i = 0; i < num_ops; ++i) {
    const uint64_t roll = rng.NextBounded(3);
    if (roll == 0 || m == 0) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      delta.Upsert(u, v, rng.Uniform(0.01, 0.2));
    } else {
      const EdgeId e = rng.NextBounded(m);
      const NodeId u = graph.EdgeSource(e);
      const NodeId v = graph.EdgeTarget(e);
      if (roll == 1) {
        delta.Remove(u, v);
      } else {
        delta.Upsert(u, v, rng.Uniform(0.01, 0.2));
      }
    }
  }
  return delta;
}

}  // namespace holim

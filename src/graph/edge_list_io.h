#ifndef HOLIM_GRAPH_EDGE_LIST_IO_H_
#define HOLIM_GRAPH_EDGE_LIST_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// Options for reading SNAP-style whitespace-separated edge lists.
struct EdgeListOptions {
  /// Treat each line "u v" as an undirected edge (emit both arcs).
  bool undirected = false;
  /// Lines starting with '#' or '%' are skipped regardless.
  bool renumber = true;  ///< Compact arbitrary ids to [0, n).
};

/// Reads a SNAP edge-list file ("# comment" headers, "u<TAB>v" rows) into a
/// Graph. Real SNAP datasets (NetHEPT, DBLP, ...) drop in here unchanged.
Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

/// Writes the graph as a SNAP-style edge list (one "u\tv" row per arc).
Status WriteEdgeList(const Graph& graph, const std::string& path);

/// A graph together with a per-edge influence probability read from a
/// weighted edge list ("u v p" rows). Feeds real parameterized datasets
/// (e.g., learned influence probabilities) straight into the selectors.
struct WeightedEdgeList {
  Graph graph;
  std::vector<double> probability;  // indexed by EdgeId
};

/// Reads "u v p" rows (comments as in ReadEdgeList). Probabilities outside
/// [0, 1] are rejected. With `options.undirected`, both arcs get p.
Result<WeightedEdgeList> ReadWeightedEdgeList(
    const std::string& path, const EdgeListOptions& options = {});

}  // namespace holim

#endif  // HOLIM_GRAPH_EDGE_LIST_IO_H_

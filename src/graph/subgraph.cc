#include "graph/subgraph.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace holim {

Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& graph, const std::vector<NodeId>& nodes) {
  InducedSubgraph sub;
  sub.to_subgraph.assign(graph.num_nodes(), kInvalidNode);
  sub.to_original.reserve(nodes.size());
  for (NodeId u : nodes) {
    if (u >= graph.num_nodes()) {
      return Status::InvalidArgument("subgraph node out of range");
    }
    if (sub.to_subgraph[u] != kInvalidNode) continue;  // dedup
    sub.to_subgraph[u] = static_cast<NodeId>(sub.to_original.size());
    sub.to_original.push_back(u);
  }

  // Collect (new_u, new_v, original_edge) triples, then build in one pass.
  struct Arc {
    NodeId u, v;
    EdgeId orig;
  };
  std::vector<Arc> arcs;
  for (NodeId new_u = 0; new_u < sub.to_original.size(); ++new_u) {
    const NodeId u = sub.to_original[new_u];
    const EdgeId base = graph.OutEdgeBegin(u);
    auto neighbors = graph.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId new_v = sub.to_subgraph[neighbors[i]];
      if (new_v == kInvalidNode) continue;
      arcs.push_back({new_u, new_v, base + i});
    }
  }
  // GraphBuilder sorts by (src, dst); replicate that order so edge ids line up.
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  GraphBuilder builder(static_cast<NodeId>(sub.to_original.size()));
  builder.set_deduplicate(false);  // already deduped by construction
  sub.edge_to_original.reserve(arcs.size());
  for (const Arc& a : arcs) {
    builder.AddEdge(a.u, a.v);
    sub.edge_to_original.push_back(a.orig);
  }
  HOLIM_ASSIGN_OR_RETURN(sub.graph, std::move(builder).Build());
  return sub;
}

}  // namespace holim

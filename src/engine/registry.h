#ifndef HOLIM_ENGINE_REGISTRY_H_
#define HOLIM_ENGINE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "engine/solve_request.h"
#include "engine/workspace.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace holim {

/// Everything a registered factory gets to build a selector: the engine's
/// graph, the validated request, the workspace (for shared artifacts like
/// the sketch oracle), and the engine-owned pool for `request.threads`
/// (nullptr when serial).
struct SolveContext {
  const Graph& graph;
  const SolveRequest& request;
  Workspace& workspace;
  ThreadPool* pool = nullptr;
  /// The engine's "(base fingerprint, delta epoch)" tag, folded into any
  /// Workspace sketch key a factory builds; empty until the engine's graph
  /// advances past epoch 0 (see HolimEngine::graph_token).
  std::string graph_token;
  /// The solve's deadline (borrowed, may be null — and last on purpose, so
  /// deadline-free aggregate initializations stay valid). Factories thread
  /// it into artifact builds (SketchOptions::deadline, McOptions::deadline);
  /// the engine binds it to the selector itself via set_deadline. Never
  /// stored in Workspace cache entries — it dies with the solve.
  Deadline* deadline = nullptr;
};

/// Capability bit of one query kind (for AlgorithmInfo::supported_queries).
inline constexpr uint32_t QueryBit(QueryKind kind) {
  return uint32_t{1} << static_cast<uint32_t>(kind);
}

/// The capability mask every algorithm supports for free: top-k selection
/// plus the oracle-side evaluate/explain endpoints (those score
/// caller-supplied seeds through the Workspace's sketch oracle / MC
/// estimator, so the algorithm choice never constrains them).
inline constexpr uint32_t kBaseQueries = QueryBit(QueryKind::kTopK) |
                                         QueryBit(QueryKind::kEvaluate) |
                                         QueryBit(QueryKind::kExplain);

/// "topk,evaluate,explain"-style rendering of a capability mask, in
/// QueryKind declaration order (for --list-algorithms and error text).
std::string QueryMaskNames(uint32_t mask);

/// \brief One registry row: the canonical name every CLI/bench dispatch
/// uses, plus the metadata `holim_cli --list-algorithms` prints and the
/// factory HolimEngine::Solve calls on a selector-cache miss.
struct AlgorithmInfo {
  /// Canonical registry key, e.g. "easyim", "tim+", "celf++".
  std::string name;
  /// Accepted alternative spellings (e.g. "tim" for "tim+").
  std::vector<std::string> aliases;
  /// Human-readable supported first-layer models, e.g. "IC, WC, LT".
  std::string models;
  /// Artifact kinds this algorithm keeps in the Workspace across solves
  /// ("none" for stateless heuristics).
  std::string artifacts;
  /// Requires SolveRequest::opinions.
  bool needs_opinions = false;
  /// QueryBit mask of the query kinds this algorithm can answer.
  /// HolimEngine::Solve rejects an unsupported (algorithm, kind) pair with
  /// a typed Unimplemented error instead of silently running top-k. The
  /// cost/weight-aware selectors (greedy, celf, celf++) additionally set
  /// kBudgeted and kTargeted.
  uint32_t supported_queries = kBaseQueries;
  /// Builds a fresh selector for the request. Must be deterministic in the
  /// request: the parity contract (engine solve == direct selector call,
  /// warm == cold) holds because this is the only construction path.
  std::function<Result<std::unique_ptr<SeedSelector>>(const SolveContext&)>
      factory;
};

/// \brief Process-global name -> factory table behind HolimEngine.
///
/// The built-in algorithms (engine/algorithms.cc) self-register on first
/// engine/registry use; embedders may Register additional algorithms
/// before or after (names must be unique, checked).
class AlgorithmRegistry {
 public:
  /// The global registry with the built-ins registered.
  static AlgorithmRegistry& Global();

  /// Registers `info`; aborts on a duplicate canonical name or alias.
  void Register(AlgorithmInfo info);

  /// Looks up a canonical name or alias; nullptr when unknown.
  const AlgorithmInfo* Find(const std::string& name) const;

  /// All entries, sorted by canonical name.
  std::vector<const AlgorithmInfo*> List() const;

  /// "a, b, c" over canonical names (for error messages / --help).
  std::string NamesOneLine() const;

 private:
  std::vector<std::unique_ptr<AlgorithmInfo>> entries_;
};

}  // namespace holim

#endif  // HOLIM_ENGINE_REGISTRY_H_

// Built-in algorithm registrations for HolimEngine — the one place that
// maps registry names onto selector constructions. Every factory uses the
// same options the historical per-binary dispatch code used, so an engine
// solve is bitwise-identical to the direct construction it replaced (the
// parity suite in tests/engine_test.cc pins this per entry).
//
// NOTE for tools/check_docs.py: registrations follow the fixed
//   info.name = "<canonical>";  info.aliases = {"<alias>", ...};
// shape — the docs gate greps these to keep README's registry table in
// sync. Keep the shape when adding algorithms.

#include <memory>
#include <utility>

#include "algo/asim.h"
#include "algo/celf.h"
#include "algo/greedy.h"
#include "algo/heuristics.h"
#include "algo/imm.h"
#include "algo/imrank.h"
#include "algo/irie.h"
#include "algo/path_union.h"
#include "algo/score_greedy.h"
#include "algo/simpath.h"
#include "algo/static_greedy.h"
#include "algo/tim_plus.h"
#include "engine/registry.h"

namespace holim {

namespace {

ScoreGreedyOptions MakeScoreGreedyOptions(const SolveContext& ctx) {
  ScoreGreedyOptions options;
  options.incremental_rescore = ctx.request.incremental_rescore;
  options.pool = ctx.pool;
  return options;
}

/// The objective GREEDY/CELF/CELF++ hill-climb, chosen exactly as
/// holim_cli's legacy dispatch did: sketch oracle (plain spread only) >
/// effective-opinion > plain Monte-Carlo spread.
Result<std::shared_ptr<McObjective>> MakeMcObjective(const SolveContext& ctx) {
  const SolveRequest& r = ctx.request;
  if (r.oracle == SpreadOracle::kSketch) {
    if (r.opinions != nullptr) {
      return Status::InvalidArgument(
          "oracle=sketch supports the plain spread objective only; drop the "
          "opinion layer or use oracle=mc");
    }
    SketchOptions options;
    options.num_snapshots = r.EffectiveSketchCount();
    options.seed = r.seed;
    options.pool = ctx.pool;
    options.deadline = ctx.deadline;
    HOLIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const SketchOracle> sketch,
        ctx.workspace.GetSketchOracleChecked(ctx.graph, *r.params, options,
                                             ctx.graph_token));
    // Targeted queries hill-climb the weighted objective sigma_w; the
    // objective copies the weights so the cached selector never dangles
    // into a caller-owned request vector.
    std::vector<double> weights =
        r.query == QueryKind::kTargeted ? r.target_weights
                                        : std::vector<double>{};
    return std::shared_ptr<McObjective>(std::make_shared<SketchSpreadObjective>(
        std::move(sketch), /*use_session=*/true, r.sketch_eval,
        std::move(weights)));
  }
  McOptions mc;
  mc.num_simulations = r.mc;
  mc.seed = r.seed;
  mc.deadline = ctx.deadline;
  if (r.opinions != nullptr) {
    return std::shared_ptr<McObjective>(
        std::make_shared<EffectiveOpinionObjective>(
            ctx.graph, *r.params, *r.opinions, r.oi_base, r.lambda, mc));
  }
  return std::shared_ptr<McObjective>(
      std::make_shared<SpreadObjective>(ctx.graph, *r.params, mc));
}

using SelectorResult = Result<std::unique_ptr<SeedSelector>>;

/// Capability mask of the hill-climbing selectors: on top of the base
/// kinds they answer budgeted queries (benefit-per-cost lazy greedy) and
/// targeted queries (weighted sketch objective).
constexpr uint32_t kHillClimbQueries = kBaseQueries |
                                       QueryBit(QueryKind::kBudgeted) |
                                       QueryBit(QueryKind::kTargeted);

}  // namespace

void RegisterBuiltinAlgorithms(AlgorithmRegistry& registry) {
  {
    AlgorithmInfo info;
    info.name = "easyim";
    info.models = "IC, WC, LT";
    info.artifacts = "score-sweep scratch + incremental level table";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(std::make_unique<EasyImSelector>(
          ctx.graph, *ctx.request.params, ctx.request.l,
          MakeScoreGreedyOptions(ctx)));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "osim";
    info.models = "OI over IC or LT base";
    info.artifacts = "score-sweep scratch + incremental level table";
    info.needs_opinions = true;
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(std::make_unique<OsimSelector>(
          ctx.graph, *ctx.request.params, *ctx.request.opinions,
          ctx.request.oi_base, ctx.request.l, MakeScoreGreedyOptions(ctx)));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "greedy";
    info.models = "IC, WC, LT (+ opinion objective)";
    info.artifacts = "sketch-oracle arena (oracle=sketch)";
    info.supported_queries = kHillClimbQueries;
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      HOLIM_ASSIGN_OR_RETURN(std::shared_ptr<McObjective> objective,
                             MakeMcObjective(ctx));
      return std::unique_ptr<SeedSelector>(
          std::make_unique<GreedySelector>(ctx.graph, std::move(objective)));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "celf";
    info.models = "IC, WC, LT (+ opinion objective)";
    info.artifacts = "sketch-oracle arena (oracle=sketch)";
    info.supported_queries = kHillClimbQueries;
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      HOLIM_ASSIGN_OR_RETURN(std::shared_ptr<McObjective> objective,
                             MakeMcObjective(ctx));
      return std::unique_ptr<SeedSelector>(std::make_unique<CelfSelector>(
          ctx.graph, std::move(objective), /*plus_plus=*/false, "CELF"));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "celf++";
    info.aliases = {"celfpp"};
    info.models = "IC, WC, LT (+ opinion objective)";
    info.artifacts = "sketch-oracle arena (oracle=sketch)";
    info.supported_queries = kHillClimbQueries;
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      HOLIM_ASSIGN_OR_RETURN(std::shared_ptr<McObjective> objective,
                             MakeMcObjective(ctx));
      return std::unique_ptr<SeedSelector>(std::make_unique<CelfSelector>(
          ctx.graph, std::move(objective), /*plus_plus=*/true, "CELF++"));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "tim+";
    info.aliases = {"tim"};
    info.models = "IC, WC, LT";
    info.artifacts = "RR arena (transient per solve)";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      TimPlusOptions options;
      options.epsilon = ctx.request.epsilon;
      options.max_theta = ctx.request.max_theta;
      options.pool = ctx.pool;
      return std::unique_ptr<SeedSelector>(std::make_unique<TimPlusSelector>(
          ctx.graph, *ctx.request.params, options));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "imm";
    info.models = "IC, WC, LT";
    info.artifacts = "RR arena (transient per solve)";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      ImmOptions options;
      options.epsilon = ctx.request.epsilon;
      options.max_theta = ctx.request.max_theta;
      options.pool = ctx.pool;
      return std::unique_ptr<SeedSelector>(std::make_unique<ImmSelector>(
          ctx.graph, *ctx.request.params, options));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "irie";
    info.models = "IC, WC";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<IrieSelector>(ctx.graph, *ctx.request.params));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "simpath";
    info.models = "LT";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<SimpathSelector>(ctx.graph, *ctx.request.params));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "imrank";
    info.models = "IC, WC";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<ImRankSelector>(ctx.graph, *ctx.request.params));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "static-greedy";
    info.aliases = {"staticgreedy"};
    info.models = "IC, WC, LT";
    info.artifacts = "live-edge snapshot sample";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      StaticGreedyOptions options;
      options.num_snapshots = ctx.request.num_snapshots;
      return std::unique_ptr<SeedSelector>(
          std::make_unique<StaticGreedySelector>(ctx.graph,
                                                 *ctx.request.params,
                                                 options));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "asim";
    info.models = "IC, WC, LT (probability-blind)";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      AsimOptions options;
      options.l = ctx.request.l;
      return std::unique_ptr<SeedSelector>(std::make_unique<AsimSelector>(
          ctx.graph, *ctx.request.params, options));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "path-union";
    info.aliases = {"pathunion"};
    info.models = "IC, WC, LT (dense; n <= 4096)";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<PathUnionSelector>(ctx.graph, *ctx.request.params,
                                              ctx.request.l));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "degree";
    info.models = "model-free";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<DegreeSelector>(ctx.graph));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "singlediscount";
    info.models = "model-free";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<SingleDiscountSelector>(ctx.graph));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "degreediscount";
    info.models = "IC (uniform p)";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<DegreeDiscountSelector>(ctx.graph,
                                                   ctx.request.p));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "pagerank";
    info.models = "model-free";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<PageRankSelector>(ctx.graph));
    };
    registry.Register(std::move(info));
  }
  {
    AlgorithmInfo info;
    info.name = "random";
    info.models = "model-free";
    info.artifacts = "none";
    info.factory = [](const SolveContext& ctx) -> SelectorResult {
      return std::unique_ptr<SeedSelector>(
          std::make_unique<RandomSelector>(ctx.graph, ctx.request.seed));
    };
    registry.Register(std::move(info));
  }
}

}  // namespace holim

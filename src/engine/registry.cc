#include "engine/registry.h"

#include <algorithm>

#include "util/logging.h"

namespace holim {

// Defined in engine/algorithms.cc; registers every built-in selector into
// `registry`. Called exactly once, under Global()'s static init.
void RegisterBuiltinAlgorithms(AlgorithmRegistry& registry);

std::string QueryMaskNames(uint32_t mask) {
  std::string out;
  for (const QueryKind kind : kAllQueryKinds) {
    if ((mask & QueryBit(kind)) == 0) continue;
    if (!out.empty()) out += ",";
    out += QueryKindName(kind);
  }
  return out.empty() ? "-" : out;
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    RegisterBuiltinAlgorithms(*r);
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::Register(AlgorithmInfo info) {
  HOLIM_CHECK(!info.name.empty()) << "algorithm name must be non-empty";
  HOLIM_CHECK(info.factory != nullptr)
      << "algorithm '" << info.name << "' has no factory";
  HOLIM_CHECK(Find(info.name) == nullptr)
      << "duplicate algorithm name: " << info.name;
  for (const std::string& alias : info.aliases) {
    HOLIM_CHECK(Find(alias) == nullptr)
        << "duplicate algorithm alias: " << alias;
  }
  entries_.push_back(std::make_unique<AlgorithmInfo>(std::move(info)));
}

const AlgorithmInfo* AlgorithmRegistry::Find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
    for (const std::string& alias : entry->aliases) {
      if (alias == name) return entry.get();
    }
  }
  return nullptr;
}

std::vector<const AlgorithmInfo*> AlgorithmRegistry::List() const {
  std::vector<const AlgorithmInfo*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  std::sort(out.begin(), out.end(),
            [](const AlgorithmInfo* a, const AlgorithmInfo* b) {
              return a->name < b->name;
            });
  return out;
}

std::string AlgorithmRegistry::NamesOneLine() const {
  std::string out;
  for (const AlgorithmInfo* info : List()) {
    if (!out.empty()) out += ", ";
    out += info->name;
  }
  return out;
}

}  // namespace holim

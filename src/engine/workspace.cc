#include "engine/workspace.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "util/fault_injection.h"

namespace holim {

namespace {

// FNV-1a over raw bytes. Doubles hash by representation, which is exactly
// the "bitwise equivalence" the cache contract wants: parameters that
// differ in any bit are different artifacts.
uint64_t Fnv1a(const void* data, std::size_t len, uint64_t hash) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

uint64_t HashDoubles(const std::vector<double>& values, uint64_t hash) {
  return values.empty()
             ? hash
             : Fnv1a(values.data(), values.size() * sizeof(double), hash);
}

}  // namespace

uint64_t FingerprintParams(const InfluenceParams& params) {
  uint64_t hash = kFnvOffset;
  const uint32_t model = static_cast<uint32_t>(params.model);
  hash = Fnv1a(&model, sizeof(model), hash);
  return HashDoubles(params.probability, hash);
}

uint64_t FingerprintOpinions(const OpinionParams& opinions) {
  uint64_t hash = kFnvOffset;
  hash = HashDoubles(opinions.opinion, hash);
  return HashDoubles(opinions.interaction, hash);
}

uint64_t FingerprintDoubles(const std::vector<double>& values) {
  return HashDoubles(values, kFnvOffset);
}

uint64_t FingerprintNodes(const std::vector<NodeId>& nodes) {
  return nodes.empty() ? kFnvOffset
                       : Fnv1a(nodes.data(), nodes.size() * sizeof(NodeId),
                               kFnvOffset);
}

std::string SketchOracleKey(uint64_t params_fingerprint, uint32_t snapshots,
                            uint64_t seed, bool record_edge_offsets,
                            const std::string& graph_token) {
  std::string key = "sketch|fp=" + std::to_string(params_fingerprint) +
                    "|R=" + std::to_string(snapshots) +
                    "|seed=" + std::to_string(seed) +
                    "|eo=" + (record_edge_offsets ? "1" : "0");
  if (!graph_token.empty()) key += "|" + graph_token;
  return key;
}

Workspace::Entry* Workspace::Touch(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  it->second.heat = DecayedHeat(it->second, tick_) + 1.0;
  it->second.heat_tick = tick_;
  return &it->second;
}

double Workspace::DecayedHeat(const Entry& entry, uint64_t now) const {
  const uint64_t halvings = (now - entry.heat_tick) / heat_half_life_;
  // Past ~1074 halvings even DBL_MAX underflows to exactly 0; clamping
  // keeps the ldexp exponent in int range.
  if (halvings > 1074) return 0.0;
  return std::ldexp(entry.heat, -static_cast<int>(halvings));
}

double Workspace::HeatOf(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : DecayedHeat(it->second, tick_);
}

double Workspace::BenefitPerByte(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0.0;
  const double bytes = static_cast<double>(
      std::max<std::size_t>(it->second.FootprintBytes(), 1));
  return DecayedHeat(it->second, tick_) * it->second.rebuild_cost / bytes;
}

std::string Workspace::HottestGhost() const {
  std::string best;
  double best_heat = -1.0;
  // Ascending key order + strict ">" keeps the smallest key among
  // equally hot ghosts.
  for (const auto& [key, ghost] : ghosts_) {
    if (ghost.heat > best_heat) {
      best = key;
      best_heat = ghost.heat;
    }
  }
  return best;
}

void Workspace::EvictEntry(std::map<std::string, Entry>::iterator it) {
  if (policy_ == EvictionPolicy::kHeatBenefit) {
    GhostEntry ghost;
    ghost.heat = DecayedHeat(it->second, tick_);
    ghost.bytes = it->second.FootprintBytes();
    ghosts_[it->first] = ghost;
    if (ghosts_.size() > kMaxGhosts) {
      auto coldest = ghosts_.begin();
      for (auto g = ghosts_.begin(); g != ghosts_.end(); ++g) {
        if (g->second.heat < coldest->second.heat) coldest = g;
      }
      ghosts_.erase(coldest);
    }
  }
  entries_.erase(it);
  ++evictions_;
}

std::shared_ptr<const SketchOracle> Workspace::GetSketchOracle(
    const Graph& graph, const InfluenceParams& params,
    const SketchOptions& options, const std::string& graph_token,
    bool* reused) {
  return GetSketchOracleChecked(graph, params, options, graph_token, reused)
      .ValueOrDie();
}

Result<std::shared_ptr<const SketchOracle>> Workspace::GetSketchOracleChecked(
    const Graph& graph, const InfluenceParams& params,
    const SketchOptions& options, const std::string& graph_token,
    bool* reused) {
  const uint64_t params_fp = FingerprintParams(params);
  const std::string key =
      SketchOracleKey(params_fp, options.num_snapshots, options.seed,
                      options.record_edge_offsets, graph_token);
  if (Entry* entry = Touch(key)) {
    ++hits_;
    if (reused) *reused = true;
    return std::shared_ptr<const SketchOracle>(entry->sketch);
  }
  ++misses_;
  if (reused) *reused = false;
  HOLIM_RETURN_NOT_OK(FaultInjection::Hit("workspace/sketch"));
  Entry entry;
  entry.sketch = std::make_shared<SketchOracle>(graph, params, options);
  if (!entry.sketch->build_status().ok()) {
    // Deadline-aborted sample: the partial arena must never be cached.
    return entry.sketch->build_status();
  }
  HOLIM_RETURN_NOT_OK(AdmitBytes(entry.sketch->ArenaBytes()));
  entry.last_used = ++tick_;
  entry.heat = 1.0;
  entry.heat_tick = tick_;
  // Deterministic sampling-work proxy (NOT wall time, which would make
  // eviction order — and the serving bench's exactly-gated counters —
  // machine-dependent): R forward simulations over the whole graph.
  entry.rebuild_cost =
      static_cast<double>(options.num_snapshots) *
      static_cast<double>(graph.num_nodes() + graph.num_edges());
  entry.params_fp = params_fp;
  entry.graph_token = graph_token;
  entry.options = options;
  entry.options.deadline = nullptr;  // the deadline dies with the solve
  std::shared_ptr<const SketchOracle> sketch = entry.sketch;
  ghosts_.erase(key);
  entries_[key] = std::move(entry);
  return sketch;
}

std::shared_ptr<const SketchOracle> Workspace::PeekSketchOracle(
    const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.sketch;
}

Result<SeedSelector*> Workspace::GetSelector(
    const std::string& key,
    const std::function<Result<std::unique_ptr<SeedSelector>>()>& build,
    bool* reused) {
  if (Entry* entry = Touch(key)) {
    ++hits_;
    if (reused) *reused = true;
    return entry->selector.get();
  }
  ++misses_;
  if (reused) *reused = false;
  HOLIM_RETURN_NOT_OK(FaultInjection::Hit("workspace/selector"));
  HOLIM_ASSIGN_OR_RETURN(std::unique_ptr<SeedSelector> selector, build());
  Entry entry;
  entry.selector = std::move(selector);
  HOLIM_RETURN_NOT_OK(AdmitBytes(entry.selector->MemoryFootprintBytes()));
  entry.last_used = ++tick_;
  entry.heat = 1.0;
  entry.heat_tick = tick_;
  // Footprint bytes as the rebuild-cost proxy: deterministic, and it
  // ranks selectors below same-heat sketch arenas (whose R*(n+m) work
  // units dwarf their byte counts), matching their actual rebuild cost.
  entry.rebuild_cost =
      static_cast<double>(entry.selector->MemoryFootprintBytes());
  SeedSelector* raw = entry.selector.get();
  ghosts_.erase(key);
  entries_[key] = std::move(entry);
  return raw;
}

SeedSelector* Workspace::PeekSelector(const std::string& key) {
  Entry* entry = Touch(key);
  return entry ? entry->selector.get() : nullptr;
}

bool Workspace::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++evictions_;
  return true;
}

void Workspace::Clear() { entries_.clear(); }

Status Workspace::AdmitBytes(std::size_t incoming_bytes) {
  if (!hard_budget_ || max_bytes_ == 0) return Status::OK();
  if (MemoryFootprintBytes() + incoming_bytes <= max_bytes_) {
    return Status::OK();
  }
  EnforceBudget();  // one evict-and-retry before giving up
  const std::size_t resident = MemoryFootprintBytes();
  if (resident + incoming_bytes <= max_bytes_) return Status::OK();
  return Status::ResourceExhausted(
      "workspace byte budget exhausted: artifact of " +
      std::to_string(incoming_bytes) + " bytes does not fit in " +
      std::to_string(max_bytes_) + " (resident " + std::to_string(resident) +
      ")");
}

Workspace::DeltaPatchStats Workspace::ApplyGraphDelta(
    uint64_t old_params_fp, uint64_t new_params_fp,
    const std::string& new_graph_token,
    const std::function<Status(SketchOracle&)>& patch) {
  DeltaPatchStats stats;
  // Collect keys first: patching re-keys entries via extract/insert, which
  // would invalidate a live iteration over the map.
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  for (const std::string& key : keys) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    bool keep = false;
    if (entry.sketch && entry.params_fp == old_params_fp) {
      keep = patch(*entry.sketch).ok();
    }
    if (!keep) {
      // Selectors hold graph-shaped internals (RR arenas, sweep tables,
      // snapshot samples) with no patch path; mismatched-fingerprint
      // sketches were built for params that no longer map onto the new
      // EdgeIds; failed patches are stale. All must go.
      entries_.erase(it);
      ++stats.evicted;
      ++evictions_;
      continue;
    }
    entry.params_fp = new_params_fp;
    entry.graph_token = new_graph_token;
    const std::string new_key = SketchOracleKey(
        new_params_fp, entry.options.num_snapshots, entry.options.seed,
        entry.options.record_edge_offsets, new_graph_token);
    if (new_key != key) {
      auto node = entries_.extract(it);
      node.key() = new_key;
      entries_.insert(std::move(node));
    }
    ++stats.patched;
  }
  return stats;
}

std::size_t Workspace::MemoryFootprintBytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.FootprintBytes();
  return total;
}

std::size_t Workspace::EnforceBudget(uint64_t pin_newer_than) {
  if (max_bytes_ == 0) return 0;
  std::size_t evicted = 0;
  while (entries_.size() > 1 && MemoryFootprintBytes() > max_bytes_) {
    auto eligible = [pin_newer_than](const Entry& e) {
      return e.last_used <= pin_newer_than;
    };
    auto victim = entries_.end();
    if (policy_ == EvictionPolicy::kLru) {
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (!eligible(it->second)) continue;
        if (victim == entries_.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
    } else {
      auto score_of = [this](const Entry& e) {
        const double bytes = static_cast<double>(
            std::max<std::size_t>(e.FootprintBytes(), 1));
        return DecayedHeat(e, tick_) * e.rebuild_cost / bytes;
      };
      // Ascending key order + strict "<" breaks equal-benefit ties
      // toward the lexicographically smallest key.
      double victim_score = 0.0;
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (!eligible(it->second)) continue;
        const double score = score_of(it->second);
        if (victim == entries_.end() || score < victim_score) {
          victim = it;
          victim_score = score;
        }
      }
    }
    if (victim == entries_.end()) break;  // only pinned entries left
    EvictEntry(victim);
    ++evicted;
  }
  // A single over-budget artifact is kept: evicting the only copy of the
  // thing the next solve needs would just thrash rebuild/evict.
  return evicted;
}

}  // namespace holim

#include "engine/workspace.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "util/fault_injection.h"

namespace holim {

namespace {

// FNV-1a over raw bytes. Doubles hash by representation, which is exactly
// the "bitwise equivalence" the cache contract wants: parameters that
// differ in any bit are different artifacts.
uint64_t Fnv1a(const void* data, std::size_t len, uint64_t hash) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

uint64_t HashDoubles(const std::vector<double>& values, uint64_t hash) {
  return values.empty()
             ? hash
             : Fnv1a(values.data(), values.size() * sizeof(double), hash);
}

}  // namespace

uint64_t FingerprintParams(const InfluenceParams& params) {
  uint64_t hash = kFnvOffset;
  const uint32_t model = static_cast<uint32_t>(params.model);
  hash = Fnv1a(&model, sizeof(model), hash);
  return HashDoubles(params.probability, hash);
}

uint64_t FingerprintOpinions(const OpinionParams& opinions) {
  uint64_t hash = kFnvOffset;
  hash = HashDoubles(opinions.opinion, hash);
  return HashDoubles(opinions.interaction, hash);
}

uint64_t FingerprintDoubles(const std::vector<double>& values) {
  return HashDoubles(values, kFnvOffset);
}

uint64_t FingerprintNodes(const std::vector<NodeId>& nodes) {
  return nodes.empty() ? kFnvOffset
                       : Fnv1a(nodes.data(), nodes.size() * sizeof(NodeId),
                               kFnvOffset);
}

std::string SketchOracleKey(uint64_t params_fingerprint, uint32_t snapshots,
                            uint64_t seed, bool record_edge_offsets,
                            const std::string& graph_token) {
  std::string key = "sketch|fp=" + std::to_string(params_fingerprint) +
                    "|R=" + std::to_string(snapshots) +
                    "|seed=" + std::to_string(seed) +
                    "|eo=" + (record_edge_offsets ? "1" : "0");
  if (!graph_token.empty()) key += "|" + graph_token;
  return key;
}

Workspace::Entry* Workspace::Touch(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  return &it->second;
}

std::shared_ptr<const SketchOracle> Workspace::GetSketchOracle(
    const Graph& graph, const InfluenceParams& params,
    const SketchOptions& options, const std::string& graph_token,
    bool* reused) {
  return GetSketchOracleChecked(graph, params, options, graph_token, reused)
      .ValueOrDie();
}

Result<std::shared_ptr<const SketchOracle>> Workspace::GetSketchOracleChecked(
    const Graph& graph, const InfluenceParams& params,
    const SketchOptions& options, const std::string& graph_token,
    bool* reused) {
  const uint64_t params_fp = FingerprintParams(params);
  const std::string key =
      SketchOracleKey(params_fp, options.num_snapshots, options.seed,
                      options.record_edge_offsets, graph_token);
  if (Entry* entry = Touch(key)) {
    ++hits_;
    if (reused) *reused = true;
    return std::shared_ptr<const SketchOracle>(entry->sketch);
  }
  ++misses_;
  if (reused) *reused = false;
  HOLIM_RETURN_NOT_OK(FaultInjection::Hit("workspace/sketch"));
  Entry entry;
  entry.sketch = std::make_shared<SketchOracle>(graph, params, options);
  if (!entry.sketch->build_status().ok()) {
    // Deadline-aborted sample: the partial arena must never be cached.
    return entry.sketch->build_status();
  }
  HOLIM_RETURN_NOT_OK(AdmitBytes(entry.sketch->ArenaBytes()));
  entry.last_used = ++tick_;
  entry.params_fp = params_fp;
  entry.graph_token = graph_token;
  entry.options = options;
  entry.options.deadline = nullptr;  // the deadline dies with the solve
  std::shared_ptr<const SketchOracle> sketch = entry.sketch;
  entries_[key] = std::move(entry);
  return sketch;
}

std::shared_ptr<const SketchOracle> Workspace::PeekSketchOracle(
    const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.sketch;
}

Result<SeedSelector*> Workspace::GetSelector(
    const std::string& key,
    const std::function<Result<std::unique_ptr<SeedSelector>>()>& build,
    bool* reused) {
  if (Entry* entry = Touch(key)) {
    ++hits_;
    if (reused) *reused = true;
    return entry->selector.get();
  }
  ++misses_;
  if (reused) *reused = false;
  HOLIM_RETURN_NOT_OK(FaultInjection::Hit("workspace/selector"));
  HOLIM_ASSIGN_OR_RETURN(std::unique_ptr<SeedSelector> selector, build());
  Entry entry;
  entry.selector = std::move(selector);
  HOLIM_RETURN_NOT_OK(AdmitBytes(entry.selector->MemoryFootprintBytes()));
  entry.last_used = ++tick_;
  SeedSelector* raw = entry.selector.get();
  entries_[key] = std::move(entry);
  return raw;
}

SeedSelector* Workspace::PeekSelector(const std::string& key) {
  Entry* entry = Touch(key);
  return entry ? entry->selector.get() : nullptr;
}

bool Workspace::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++evictions_;
  return true;
}

void Workspace::Clear() { entries_.clear(); }

Status Workspace::AdmitBytes(std::size_t incoming_bytes) {
  if (!hard_budget_ || max_bytes_ == 0) return Status::OK();
  if (MemoryFootprintBytes() + incoming_bytes <= max_bytes_) {
    return Status::OK();
  }
  EnforceBudget();  // one evict-and-retry before giving up
  const std::size_t resident = MemoryFootprintBytes();
  if (resident + incoming_bytes <= max_bytes_) return Status::OK();
  return Status::ResourceExhausted(
      "workspace byte budget exhausted: artifact of " +
      std::to_string(incoming_bytes) + " bytes does not fit in " +
      std::to_string(max_bytes_) + " (resident " + std::to_string(resident) +
      ")");
}

Workspace::DeltaPatchStats Workspace::ApplyGraphDelta(
    uint64_t old_params_fp, uint64_t new_params_fp,
    const std::string& new_graph_token,
    const std::function<Status(SketchOracle&)>& patch) {
  DeltaPatchStats stats;
  // Collect keys first: patching re-keys entries via extract/insert, which
  // would invalidate a live iteration over the map.
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  for (const std::string& key : keys) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    bool keep = false;
    if (entry.sketch && entry.params_fp == old_params_fp) {
      keep = patch(*entry.sketch).ok();
    }
    if (!keep) {
      // Selectors hold graph-shaped internals (RR arenas, sweep tables,
      // snapshot samples) with no patch path; mismatched-fingerprint
      // sketches were built for params that no longer map onto the new
      // EdgeIds; failed patches are stale. All must go.
      entries_.erase(it);
      ++stats.evicted;
      ++evictions_;
      continue;
    }
    entry.params_fp = new_params_fp;
    entry.graph_token = new_graph_token;
    const std::string new_key = SketchOracleKey(
        new_params_fp, entry.options.num_snapshots, entry.options.seed,
        entry.options.record_edge_offsets, new_graph_token);
    if (new_key != key) {
      auto node = entries_.extract(it);
      node.key() = new_key;
      entries_.insert(std::move(node));
    }
    ++stats.patched;
  }
  return stats;
}

std::size_t Workspace::MemoryFootprintBytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.FootprintBytes();
  return total;
}

std::size_t Workspace::EnforceBudget() {
  if (max_bytes_ == 0) return 0;
  std::size_t evicted = 0;
  while (entries_.size() > 1 && MemoryFootprintBytes() > max_bytes_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++evicted;
    ++evictions_;
  }
  // A single over-budget artifact is kept: evicting the only copy of the
  // thing the next solve needs would just thrash rebuild/evict.
  return evicted;
}

}  // namespace holim

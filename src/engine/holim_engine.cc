#include "engine/holim_engine.h"

#include <bit>
#include <cstdint>
#include <utility>

#include "diffusion/spread_estimator.h"
#include "util/timer.h"

namespace holim {

namespace {

/// Bit-exact rendering of a double for cache keys: std::to_string
/// truncates to 6 decimals, which would collide distinct knob values onto
/// one key and silently warm-reuse the wrong selector.
std::string KeyBits(double value) {
  return std::to_string(std::bit_cast<uint64_t>(value));
}

}  // namespace

HolimEngine::HolimEngine(const Graph& graph, const EngineOptions& options)
    : graph_(graph), workspace_(options.max_cache_bytes) {
  // Touch the registry so built-ins are registered before the first Solve
  // (and before any embedder Register calls race static init order).
  (void)AlgorithmRegistry::Global();
}

ThreadPool* HolimEngine::PoolFor(uint32_t threads) {
  if (threads == 0) return nullptr;
  auto& pool = pools_[threads];
  if (!pool) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

std::string HolimEngine::SelectorKey(const AlgorithmInfo& info,
                                     const SolveRequest& r) const {
  // Every knob that could influence the built selector is in the key; k is
  // deliberately absent (selectors take k at Select time), which is what
  // makes a k-sweep reuse one artifact. Over-keying on knobs an algorithm
  // ignores only costs a cheap rebuild, never correctness.
  std::string key = "selector|" + info.name;
  key += "|fp=" + std::to_string(FingerprintParams(*r.params));
  key += "|op=" + (r.opinions != nullptr
                       ? std::to_string(FingerprintOpinions(*r.opinions))
                       : std::string("-"));
  key += "|base=" + std::to_string(static_cast<int>(r.oi_base));
  key += "|lambda=" + KeyBits(r.lambda);
  key += "|l=" + std::to_string(r.l);
  key += "|eps=" + KeyBits(r.epsilon);
  key += "|maxtheta=" + std::to_string(r.max_theta);
  key += "|p=" + KeyBits(r.p);
  key += "|mc=" + std::to_string(r.mc);
  key += "|seed=" + std::to_string(r.seed);
  key += "|oracle=" + std::to_string(static_cast<int>(r.oracle));
  key += "|R=" + std::to_string(r.EffectiveSketchCount());
  key += "|snapshots=" + std::to_string(r.num_snapshots);
  key += "|rescore=" + std::to_string(r.incremental_rescore ? 1 : 0);
  key += "|threads=" + std::to_string(r.threads);
  // Eval mode changes no result bits, but sketch-backed selectors capture
  // it at construction (session scratch layout), so cached selectors must
  // not leak across modes. The sketch ARENA key deliberately omits it —
  // both traversals read the same worlds.
  key += "|eval=" + std::to_string(static_cast<int>(r.sketch_eval));
  return key;
}

Result<SolveResult> HolimEngine::Solve(const SolveRequest& request) {
  Timer total_timer;
  if (request.params == nullptr) {
    return Status::InvalidArgument("SolveRequest.params must be set");
  }
  if (request.k == 0) return Status::InvalidArgument("k must be positive");
  const AlgorithmInfo* info =
      AlgorithmRegistry::Global().Find(request.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown algorithm '" + request.algorithm + "' (registered: " +
        AlgorithmRegistry::Global().NamesOneLine() + ")");
  }
  if (info->needs_opinions && request.opinions == nullptr) {
    return Status::InvalidArgument("algorithm '" + info->name +
                                   "' requires SolveRequest.opinions");
  }

  SolveResult result;
  SolveContext ctx{graph_, request, workspace_, PoolFor(request.threads)};

  // Artifact acquisition: the cached selector (and, inside the factory,
  // any shared sketch oracle). artifact_seconds covers exactly the
  // cold-build work a warm solve skips.
  Timer artifact_timer;
  const std::string sketch_key =
      SketchOracleKey(FingerprintParams(*request.params),
                      request.EffectiveSketchCount(), request.seed,
                      /*record_edge_offsets=*/false);
  if (request.oracle == SpreadOracle::kSketch) {
    // "Warm" = the arena predates this solve (the factory may build it
    // below, which is still a cold build).
    result.warm_sketch = workspace_.PeekSketchOracle(sketch_key) != nullptr;
  }
  HOLIM_ASSIGN_OR_RETURN(
      SeedSelector * selector,
      workspace_.GetSelector(SelectorKey(*info, request),
                             [&]() { return info->factory(ctx); },
                             &result.warm_selector));
  // The spread-evaluation sketch is acquired up front too, so its build
  // cost lands in artifact_seconds, not spread_seconds. When the request
  // doesn't evaluate spread, the arena is only *peeked* (the factory
  // builds it when the objective needs it) so stateless algorithms under
  // --oracle=sketch don't pay for worlds nobody reads.
  std::shared_ptr<const SketchOracle> eval_sketch;
  if (request.oracle == SpreadOracle::kSketch) {
    if (request.evaluate_spread) {
      SketchOptions options;
      options.num_snapshots = request.EffectiveSketchCount();
      options.seed = request.seed;
      options.pool = ctx.pool;
      eval_sketch =
          workspace_.GetSketchOracle(graph_, *request.params, options);
    } else {
      eval_sketch = workspace_.PeekSketchOracle(sketch_key);
    }
    if (eval_sketch != nullptr) {
      result.sketch_arena_bytes = eval_sketch->ArenaBytes();
    }
  }
  result.artifact_seconds = artifact_timer.ElapsedSeconds();

  HOLIM_ASSIGN_OR_RETURN(SeedSelection selection,
                         selector->Select(request.k));
  result.seeds = std::move(selection.seeds);
  result.seed_scores = std::move(selection.seed_scores);
  result.algorithm = selector->name();
  result.select_seconds = selection.elapsed_seconds;
  result.overhead_bytes = selection.overhead_bytes;
  result.scratch_bytes = selection.scratch_bytes;
  result.stats = selector->LastRunStats();

  if (request.evaluate_spread) {
    Timer spread_timer;
    if (eval_sketch != nullptr) {
      result.spread = eval_sketch->Estimate(result.seeds,
                                            request.sketch_eval);
    } else {
      McOptions mc;
      mc.num_simulations = request.mc;
      mc.seed = request.seed;
      result.spread = EstimateSpread(graph_, *request.params, result.seeds,
                                     mc);
    }
    result.spread_seconds = spread_timer.ElapsedSeconds();
  }

  workspace_.EnforceBudget();
  result.workspace_bytes = workspace_.MemoryFootprintBytes();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace holim
